"""Figure 7: resolution-failure rates per attack event.

Paper: 99% of the 12,691 events saw no failure; failures split 92%
timeout / 8% SERVFAIL; 99% of failing domains were on unicast; the most
effective attacks hit small-medium deployments; nic.ru's secondary
service saw 100% failure.
"""

from repro.core.impact import analyze_failures
from repro.util.tables import Table, format_pct


def test_fig7_failure_rates(benchmark, study, emit):
    analysis = benchmark(analyze_failures, study.events)

    table = Table(["metric", "paper", "measured"],
                  title="Figure 7 - resolution failures per event")
    for row in [
        ("events", "12,691", str(analysis.n_events)),
        ("events with failures", "~1%", format_pct(analysis.failing_share)),
        ("timeout share of failures", "92%",
         format_pct(analysis.timeout_share_of_failures)),
        ("SERVFAIL share of failures", "8%",
         format_pct(analysis.servfail_share_of_failures)),
        ("failing events on unicast", "99%",
         format_pct(analysis.unicast_share_of_failing)),
        ("failing single-ASN", "81%",
         format_pct(analysis.single_asn_share_of_failing)),
        ("failing single-/24", "60%",
         format_pct(analysis.single_prefix_share_of_failing)),
    ]:
        table.add_row(row)

    scatter_lines = ["", "failure-rate scatter (the Figure 7 dots):",
                     "  measured | fail rate | hosted domains | deployment"]
    for point in sorted(analysis.scatter, key=lambda p: -p.failure_rate)[:15]:
        scatter_lines.append(
            f"  {point.n_measured:8d} | {point.failure_rate:9.1%} | "
            f"{point.n_domains_hosted:14d} | {point.anycast_label}"
            f"{', 1x/24' if point.single_prefix else ''}")
    emit("fig7_failure_rates", table.render() + "\n".join(scatter_lines))

    # Most events see no failures (paper 99%; our scaled event
    # population over-represents the scripted successful incidents, so
    # the bound is looser).
    assert analysis.failing_share < 0.30
    # Timeout dominates the failure split (paper 92/8).
    assert analysis.timeout_share_of_failures > 0.75
    assert analysis.servfail_share_of_failures < 0.25
    # Failing events concentrate on unicast single-ASN deployments.
    assert analysis.unicast_share_of_failing > 0.6
    assert analysis.single_asn_share_of_failing > 0.6
    # A complete (~100%) failure exists: the nic.ru incident.
    assert analysis.complete_failures >= 1
    complete_companies = {p.company for p in analysis.scatter
                          if p.failure_rate >= 0.999}
    assert "nic.ru" in complete_companies
