"""Table 4: top attacked ASNs among DNS-classified attacks.

Paper's top 10: Google 7,324 | Unified Layer 2,841 | Cloudflare 2,428 |
OVH 2,192 | Hetzner 2,172 | Amazon 1,564 | Microsoft 1,240 |
Fastly 1,054 | Birbir 894 | Pendc 562. The shape claim: large DNS
hosting companies and clouds dominate, with Google/Cloudflare inflated
by the public-resolver misconfiguration phenomenon.
"""

from repro.core.topasn import top_attacked_asns
from repro.util.tables import Table

PAPER_TOP = ["Google", "Unified Layer", "Cloudflare", "OVH", "Hetzner",
             "Amazon", "Microsoft", "Fastly", "Birbir", "Pendc"]
PAPER_COUNTS = [7324, 2841, 2428, 2192, 2172, 1564, 1240, 1054, 894, 562]


def test_table4_top_asns(benchmark, study, emit):
    ranked = benchmark(top_attacked_asns, study.join, study.metadata, 10)

    table = Table(["rank", "paper company", "paper #", "measured company",
                   "measured ASN", "measured #"],
                  title="Table 4 - top attacked ASNs")
    for i in range(10):
        measured = ranked[i] if i < len(ranked) else None
        table.add_row([
            i + 1, PAPER_TOP[i], PAPER_COUNTS[i],
            measured.company if measured else "-",
            measured.asn if measured else "-",
            measured.n_attacks if measured else "-"])
    emit("table4_top_asns", table.render())

    assert ranked
    names = [r.company for r in ranked]
    # Google tops the list (8.8.8.8 + 8.8.4.4 hot targets).
    assert names[0] == "Google"
    # The misconfiguration phenomenon puts the resolver operators high.
    assert "Cloudflare" in names[:6]
    assert "Unified Layer" in names[:6]
    # Counts are sorted.
    counts = [r.n_attacks for r in ranked]
    assert counts == sorted(counts, reverse=True)
