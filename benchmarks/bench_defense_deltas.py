"""Defense pack: per-attack impact deltas under layered mitigations.

"Defending Root DNS Servers Against DDoS Using Layered Defenses"
(PAPERS.md) evaluates filtering, capacity surge, and anycast scale-out
against real attack traces. The bench runs the defense pack's
counterfactual node over a study schedule and reports, per mitigation
layer, the mean Equation-1 impact, the mean delta against the
unmitigated baseline, and the share of harmful attacks each layer
neutralizes — through the *unmodified* impact pipeline.
"""

import dataclasses

from repro import WorldConfig, run_study
from repro.util.tables import Table, format_pct

DEF_CONFIG = dataclasses.replace(
    WorldConfig(
        seed=37, start="2021-03-01", end_exclusive="2021-05-01",
        n_domains=900, n_selfhosted_providers=24, n_filler_providers=10,
        attacks_per_month=120),
    scenario_pack="defense")


def regenerate():
    study = run_study(DEF_CONFIG)
    return study, study.counterfactuals


def test_defense_deltas(benchmark, emit, emit_json):
    study, report = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    harmful = report.harmful_rows()

    table = Table(["layer", "mean impact", "mean delta", "neutralized"],
                  title=f"Layered-defense counterfactuals "
                        f"({report.n_attacks} attacks, "
                        f"{len(harmful)} harmful, baseline "
                        f"{report.mean_impact():.1f}x)")
    for layer in report.layers:
        table.add_row([
            layer.name,
            f"{report.mean_impact(layer.name):.1f}x",
            f"{report.mean_delta(layer.name):.1f}",
            format_pct(report.neutralized_share(layer.name))])
    table.caption = f"best single lever by mean delta: {report.best_layer()}"
    emit("defense_deltas", table.render())

    values = {
        "n_attacks": report.n_attacks,
        "n_harmful": len(harmful),
        "baseline_mean_impact": round(report.mean_impact(), 2),
    }
    for layer in report.layers:
        key = layer.name.replace("-", "_")
        values[f"{key}_mean_delta"] = round(report.mean_delta(layer.name), 2)
        values[f"{key}_neutralized"] = round(
            report.neutralized_share(layer.name), 4)
    emit_json("defense_deltas", values)

    assert report.n_attacks > 0 and harmful
    # Every layer helps; the layered combination dominates each single
    # lever and neutralizes the majority of harmful attacks.
    for layer in report.layers:
        assert report.mean_delta(layer.name) >= 0
        assert report.mean_impact(layer.name) <= report.mean_impact()
    single = [l.name for l in report.layers if l.name != "layered"]
    assert all(report.mean_delta("layered")
               >= report.mean_delta(name) - 1e-9 for name in single)
    assert report.neutralized_share("layered") >= 0.5
