"""Ablation: the §4.1 baseline window choice (day vs week vs month).

Paper: "We evaluated using different time-window metrics as a baseline
(e.g., Average RTT (Week/Month Before)) finding similar results." This
bench reproduces that evaluation: per-event impact under each baseline
horizon correlates strongly across choices.
"""

import math

from repro.core.events import events_for_attack
from repro.util.stats import pearson
from repro.util.tables import Table


def regenerate(study):
    impacts = {"day": [], "week": [], "month": []}
    for classified in study.join.dns_direct_attacks:
        per_kind = {}
        for kind in impacts:
            events = events_for_attack(classified, study.store,
                                       study.metadata,
                                       study.config.event_min_domains,
                                       baseline_kind=kind)
            per_kind[kind] = {e.nsset_id: e.impact for e in events
                              if e.impact is not None}
        shared = set(per_kind["day"]) & set(per_kind["week"]) \
            & set(per_kind["month"])
        for nsset_id in shared:
            for kind in impacts:
                impacts[kind].append(per_kind[kind][nsset_id])
    return impacts


def test_ablation_baseline_window(benchmark, study, emit):
    impacts = benchmark.pedantic(regenerate, args=(study,),
                                 rounds=1, iterations=1)

    logs = {kind: [math.log10(max(v, 1e-3)) for v in values]
            for kind, values in impacts.items()}
    r_day_week = pearson(logs["day"], logs["week"])
    r_day_month = pearson(logs["day"], logs["month"])

    table = Table(["baseline pair", "Pearson r (log impact)",
                   "paper expectation"],
                  title="Ablation - Impact_on_RTT baseline window (§4.1)")
    table.add_row(["day vs week", f"{r_day_week:+.3f}", "similar results"])
    table.add_row(["day vs month", f"{r_day_month:+.3f}", "similar results"])
    table.caption = (f"{len(impacts['day'])} events with all three "
                     f"baselines computable")
    emit("ablation_baseline_window", table.render())

    assert len(impacts["day"]) > 10
    # The paper's claim: baseline choice barely matters.
    assert r_day_week > 0.9
    assert r_day_month > 0.9
