"""§5.2 case studies: mil.ru and RZD railways, end to end.

Paper: mil.ru — 8-day attack (Mar 11-18, 2022), modest telescope
intensity, complete OpenINTEL resolution failure Mar 12-16, reactive
probes find all three nameservers unresponsive; RZD — attack Mar 8
15:30-20:45, intermittently responsive from 06:00 next morning.
"""

from repro import ReactivePlatform
from repro.util.tables import Table
from repro.util.timeutil import DAY, HOUR, Window, format_ts, parse_ts

MILRU_ATTACK = Window(parse_ts("2022-03-11 10:00"), parse_ts("2022-03-18 20:00"))
MILRU_BLACKOUT = Window(parse_ts("2022-03-12 00:00"), parse_ts("2022-03-17 06:00"))
RZD_ATTACK = Window(parse_ts("2022-03-08 15:30"), parse_ts("2022-03-08 20:45"))


def regenerate(study):
    milru = study.world.directory.get_by_name("mil.ru")
    rzd = study.world.directory.get_by_name("rzd.ru")

    daily = []
    day = parse_ts("2022-03-10")
    while day < parse_ts("2022-03-20"):
        agg = study.store.day_aggregate(milru.nsset_id, day)
        daily.append((day, agg.ok_n if agg else 0, agg.n if agg else 0))
        day += DAY

    platform = ReactivePlatform(study.world)
    store = platform.run(study.feed, window=Window(RZD_ATTACK.start,
                                                   MILRU_ATTACK.end))
    milru_unresponsive = store.unresponsive_share(milru.domain_id,
                                                  MILRU_BLACKOUT)
    rzd_first = store.first_responsive_after(rzd.domain_id,
                                             parse_ts("2022-03-08 21:00"))
    return daily, milru_unresponsive, rzd_first


def test_case_russia(benchmark, russia_study, emit):
    daily, milru_unresponsive, rzd_first = benchmark.pedantic(
        regenerate, args=(russia_study,), rounds=1, iterations=1)

    table = Table(["day", "mil.ru queries", "resolved"],
                  title="mil.ru OpenINTEL daily view (paper: complete "
                        "failure March 12-16 inclusive)")
    for day, ok, n in daily:
        table.add_row([format_ts(day)[:10], n, ok])
    lines = [
        table.render(), "",
        f"mil.ru reactive unresponsive share during geofence blackout: "
        f"{milru_unresponsive:.0%} (paper: all three nameservers dead)",
        f"rzd.ru first responsive probe after attack: "
        f"{format_ts(rzd_first) if rzd_first else 'never'} "
        f"(paper: ~06:00 March 9)",
    ]
    emit("case_russia", "\n".join(lines))

    # OpenINTEL: zero resolutions March 12-16, recovery after.
    failures = {format_ts(day)[:10]: ok for day, ok, _ in daily}
    for day_text in ("2022-03-12", "2022-03-13", "2022-03-14",
                     "2022-03-15", "2022-03-16"):
        assert failures[day_text] == 0
    assert failures["2022-03-19"] > 0
    # Reactive: unresolvable through the blackout.
    assert milru_unresponsive > 0.95
    # RZD recovery at ~06:00 next morning.
    assert rzd_first is not None
    recovery = parse_ts("2022-03-09 06:00")
    assert recovery - 2 * HOUR <= rzd_first <= recovery + HOUR
