"""Figure 3: timeout errors during the TransIP attacks.

Paper: ~20% of OpenINTEL queries timed out during the March 2021 attack,
causing actual resolution failures for end users; December's timeout
share was negligible.
"""

from repro.core.metrics import impact_series
from repro.util.tables import Table
from repro.util.timeutil import Window, format_ts, parse_ts

DEC_WINDOW = Window(parse_ts("2020-11-30 22:00"), parse_ts("2020-12-01 00:00"))
MAR_WINDOW = Window(parse_ts("2021-03-01 19:00"), parse_ts("2021-03-02 01:00"))


def regenerate(study):
    record = next(d for d in study.world.directory.domains
                  if d.provider_name == "TransIP" and not d.misconfig
                  and d.secondary_provider is None)
    dec = impact_series(study.store, record.nsset_id, DEC_WINDOW)
    mar = impact_series(study.store, record.nsset_id, MAR_WINDOW)
    return dec, mar


def test_fig3_transip_timeouts(benchmark, transip_study, emit):
    dec, mar = benchmark(regenerate, transip_study)

    table = Table(["attack", "measured", "timeouts", "timeout rate", "paper"],
                  title="Figure 3 - TransIP timeout errors")
    table.add_row(["December 2020", dec.n_measured, dec.n_timeouts,
                   f"{dec.failure_rate:.1%}", "negligible"])
    table.add_row(["March 2021", mar.n_measured, mar.n_timeouts,
                   f"{mar.failure_rate:.1%}", "~20% of observed domains"])
    lines = [table.render(), "",
             "March per-bucket timeout-rate series:"]
    for point in mar.points:
        if point.n:
            bar = "#" * int(40 * (point.n - point.ok) / point.n)
            lines.append(f"  {format_ts(point.ts)}  "
                         f"{(point.n - point.ok) / point.n:6.1%}  {bar}")
    emit("fig3_transip_timeouts", "\n".join(lines))

    # December: negligible timeouts. March: ~20%.
    assert dec.failure_rate < 0.08
    assert 0.08 < mar.failure_rate < 0.40
    assert mar.failure_rate > dec.failure_rate * 2
