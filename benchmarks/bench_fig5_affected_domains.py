"""Figure 5: registered domains potentially affected, by month.

Paper: typically 10-100 domains per attack, but peaks where single
attacks hit deployments serving >10M domains (~4% of the measured
namespace). At our population scale the peak share of the namespace is
the scale-invariant shape.
"""

from repro.core.longitudinal import affected_domains_by_month
from repro.util.tables import Table


def test_fig5_affected_domains(benchmark, study, emit):
    rows = benchmark(affected_domains_by_month, study.join,
                     study.world.directory)
    n_domains = len(study.world.directory)
    per_attack = sorted(c.affected_domains
                        for c in study.join.dns_direct_attacks)

    table = Table(["month", "unique affected", "largest single attack",
                   "peak share of namespace"],
                  title="Figure 5 - potentially affected domains by month "
                        "(paper: peaks >10M domains, ~4% of namespace)")
    for (year, month), unique, peak in rows:
        table.add_row([f"{year}-{month:02d}", unique, peak,
                       f"{peak / n_domains:.1%}"])
    emit("fig5_affected_domains", table.render())

    assert len(rows) == 17
    peaks = [peak for _, _, peak in rows]
    # The mega-provider campaigns create months where one attack touches
    # a large slice of the namespace (paper: ~4%; ours: >4% because the
    # biggest providers hold a proportionally larger share at this scale).
    assert max(peaks) > n_domains * 0.04
    # The *typical* attack affects orders of magnitude fewer domains
    # than the peaks (paper: "on average, 10-100 domains").
    median_affected = per_attack[len(per_attack) // 2]
    assert median_affected < max(peaks) / 10
    # Every month shows some affected domains.
    assert all(unique > 0 for _, unique, _ in rows)
