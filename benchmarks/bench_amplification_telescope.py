"""Amplification pack: the reflector-query telescope signature.

"The Far Side of DNS Amplification" (PAPERS.md): reflection attacks
reach the telescope as *queries* sprayed at stale amplifier-list
entries, not as victim backscatter. This bench runs the amplification
pack's seeded schedule through the reflector branch and reports the
signature the darknet sees — windows, query volumes, distinct stale
targets — validated against the ground-truth schedule (the acceptance
criterion's inferred-vs-scheduled comparison).
"""

import dataclasses

from repro import WorldConfig, run_study
from repro.attacks.amplification import AmplificationParams
from repro.util.tables import Table, format_count, format_pct

AMP_CONFIG = dataclasses.replace(
    WorldConfig(
        seed=23, start="2021-03-01", end_exclusive="2021-05-01",
        n_domains=900, n_selfhosted_providers=24, n_filler_providers=10,
        attacks_per_month=120),
    scenario_pack="amplification",
    pack_params=AmplificationParams(n_attacks=10))


def regenerate():
    study = run_study(AMP_CONFIG)
    return study, study.pack_analysis()


def test_amplification_telescope(benchmark, emit, emit_json):
    study, analysis = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    feed = study.reflector_feed

    n_queries = sum(o.n_queries for o in feed.observations)
    max_targets = max(r.max_dark_targets for r in feed.reflections)
    backscatter_victims = {a.victim_ip for a in study.feed.attacks}
    amplified = [a for a in study.world.attacks
                 if a.amplification is not None]
    leaked = sum(1 for a in amplified
                 if a.victim_ip in backscatter_victims
                 and any(f.start < a.window.end and a.window.start < f.end
                         for f in study.feed.attacks
                         if f.victim_ip == a.victim_ip))

    table = Table(["property", "expected", "measured"],
                  title="Amplification telescope signature "
                        "(reflector-query branch)")
    for row in [
        ("scheduled reflections", str(analysis.n_scheduled),
         str(analysis.n_scheduled)),
        ("inferred at darknet", "~scheduled", str(analysis.n_inferred)),
        ("matched to ground truth", "-", str(analysis.n_matched)),
        ("recall", ">= 80%", format_pct(analysis.recall)),
        ("mean BAF", "~32", f"{analysis.mean_baf:.1f}"),
        ("reflector queries seen", "-", format_count(n_queries)),
        ("max distinct stale targets", ">= 3", str(max_targets)),
        ("RSDoS (backscatter) matches", "0 (no backscatter)",
         str(leaked)),
    ]:
        table.add_row(row)
    emit("amplification_telescope", table.render())
    emit_json("amplification_telescope", {
        "n_scheduled": analysis.n_scheduled,
        "n_inferred": analysis.n_inferred,
        "n_matched": analysis.n_matched,
        "recall": round(analysis.recall, 4),
        "mean_baf": round(analysis.mean_baf, 2),
        "reflector_queries": n_queries,
        "max_dark_targets": max_targets,
    })

    # The branch recovers the seeded schedule...
    assert analysis.n_scheduled == 10
    assert analysis.recall >= 0.8
    # ...from a genuinely multi-target query spray...
    assert max_targets >= 3
    # ...while the backscatter branch stays structurally blind to it.
    assert leaked == 0
