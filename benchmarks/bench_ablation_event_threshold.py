"""Ablation: the >=5-measured-domains event threshold (§6.3).

The paper filters events to NSSets with at least five domains measured
during the attack window "to reduce possible sources of noise". This
bench quantifies the trade-off: lower thresholds admit more (noisier)
events; higher thresholds progressively discard small-deployment events
— the ones where the failures live.
"""

from repro.core.events import extract_events
from repro.util.tables import Table, format_pct


def regenerate(study):
    out = {}
    for threshold in (1, 3, 5, 10, 25):
        events = extract_events(study.join, study.store, study.metadata,
                                min_domains=threshold)
        failing = sum(1 for e in events if e.has_failures)
        small = sum(1 for e in events if e.info.n_domains < 50)
        out[threshold] = (len(events), failing, small)
    return out


def test_ablation_event_threshold(benchmark, study, emit):
    results = benchmark.pedantic(regenerate, args=(study,),
                                 rounds=1, iterations=1)

    table = Table(["min domains", "events", "failing events",
                   "small-NSSet events (<50 domains)"],
                  title="Ablation - event threshold (§6.3; paper uses 5)")
    for threshold, (n, failing, small) in sorted(results.items()):
        table.add_row([threshold, n, failing, small])
    emit("ablation_event_threshold", table.render())

    counts = [results[t][0] for t in sorted(results)]
    # Monotone: stricter thresholds keep fewer events.
    assert counts == sorted(counts, reverse=True)
    # The paper's threshold of 5 retains a solid event population...
    assert results[5][0] > 50
    # ...while the strictest threshold loses the small-deployment
    # events (which carry the §6.3.1 failures).
    assert results[25][2] < results[5][2]
