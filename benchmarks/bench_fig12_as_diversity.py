"""Figure 12: AS diversity as a resilience technique.

Paper: AS diversity alone does not provide clear protection (multi-AS
NSSets still see impact), but complete failures concentrate on
single-ASN deployments (81%).
"""

from repro.core.resilience import analyze_resilience
from repro.util.tables import Table, format_pct


def test_fig12_as_diversity(benchmark, study, emit):
    res = benchmark(analyze_resilience, study.events)

    table = Table(["stratum", "events", "median impact", ">=10x share",
                   "failing share"],
                  title="Figure 12 - AS diversity "
                        "(paper: no clear protection alone; 81% of "
                        "complete failures single-ASN)")
    for label in sorted(res.by_asn_count):
        stats = res.by_asn_count[label]
        median = f"{stats.median_impact:.2f}x" if stats.median_impact else "-"
        table.add_row([label, stats.n_events, median,
                       format_pct(stats.over_10x_share),
                       format_pct(stats.failing_share)])
    failures = study.failures
    table.caption = (f"failing events on a single ASN: "
                     f"{format_pct(failures.single_asn_share_of_failing)} "
                     f"(paper: 81%)")
    emit("fig12_as_diversity", table.render())

    single = res.by_asn_count.get("1 ASN")
    assert single is not None
    multi_labels = [l for l in res.by_asn_count if l != "1 ASN"]
    assert multi_labels, "multi-AS NSSets must exist (secondary providers)"
    # Failures concentrate on single-ASN deployments.
    assert failures.single_asn_share_of_failing > 0.6
    # Multi-AS is not a magic shield: its events still show some impact
    # (the paper's "no clear link" finding) — median exists and is >= 1.
    for label in multi_labels:
        stats = res.by_asn_count[label]
        if stats.impacts:
            assert stats.median_impact >= 1.0
