"""Wartime pack: the correlated attack-wave timeline.

Generalizes the paper's §5.2 case studies (mil.ru, RZD): after
February 2022, attacks on one country's organizations arrived in
correlated waves. The bench runs the wartime pack over a two-month
window and reports the per-wave timeline — attacks, distinct target
organizations, telescope-visible share — the campaign-scale version of
the §4.3 visibility split.
"""

import dataclasses

from repro import WorldConfig, run_study
from repro.attacks.wartime import WartimeParams
from repro.util.tables import Table, format_pct
from repro.util.timeutil import format_ts

WAR_CONFIG = dataclasses.replace(
    WorldConfig(
        seed=31, start="2022-02-01", end_exclusive="2022-04-01",
        n_domains=900, n_selfhosted_providers=24, n_filler_providers=10,
        attacks_per_month=120),
    scenario_pack="wartime",
    pack_params=WartimeParams(start_day=20))


def regenerate():
    study = run_study(WAR_CONFIG)
    return study, study.pack_analysis()


def test_wartime_waves(benchmark, emit, emit_json):
    study, analysis = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    table = Table(["wave", "starts", "attacks", "orgs",
                   "telescope-visible"],
                  title=f"Wartime waves against "
                        f"{analysis.target_country} organizations")
    for wave in analysis.waves:
        share = (wave.spoofed_visible / wave.n_attacks
                 if wave.n_attacks else 0.0)
        table.add_row([wave.index + 1, format_ts(wave.start),
                       wave.n_attacks, wave.n_orgs,
                       f"{wave.spoofed_visible} ({format_pct(share)})"])
    table.caption = (f"{analysis.n_attacks} wave attacks total; "
                     f"reflected share configured at "
                     f"{WartimeParams().reflected_share:.0%}")
    emit("wartime_waves", table.render())

    visible = sum(w.spoofed_visible for w in analysis.waves)
    emit_json("wartime_waves", {
        "n_waves": len(analysis.waves),
        "n_attacks": analysis.n_attacks,
        "n_visible": visible,
        "visible_share": round(visible / analysis.n_attacks, 4),
        "min_orgs_per_wave": min(w.n_orgs for w in analysis.waves),
    })

    # Three waves, every one of them landing on several organizations
    # at once — that correlation is the pack's point.
    assert len(analysis.waves) == 3
    for wave in analysis.waves:
        assert wave.n_attacks > 0
        assert wave.n_orgs >= 3
    # The visibility mix straddles the telescope boundary: part of the
    # campaign is invisible (reflected), like mil.ru's severe vector.
    assert 0 < visible < analysis.n_attacks
