"""Table 6: most affected companies by RTT impact.

Paper: NForce 348x | Co-Co NL 219x | NMU 181x | Hetzner 174x |
My Lock 146x | DigiHosting 140x | Apple Russia 100x | GoDaddy 76x |
Linode 75x | ITandTEL 74x — small/medium DNS hosting providers dominate.
"""

from repro.core.impact import top_companies_by_impact
from repro.util.tables import Table

PAPER_LADDER = [("NForce B.V.", 348), ("Co-Co NL", 219), ("NMU Group", 181),
                ("Hetzner", 174), ("My Lock De", 146), ("DigiHosting NL", 140),
                ("Apple Russia", 100), ("GoDaddy", 76), ("Linode", 75),
                ("ITandTEL", 74)]


def test_table6_top_impact(benchmark, study, emit):
    ranked = benchmark(top_companies_by_impact, study.events, 12)

    table = Table(["rank", "paper company", "paper impact",
                   "measured company", "measured impact"],
                  title="Table 6 - most affected companies (Impact_on_RTT)")
    for i in range(10):
        measured = ranked[i] if i < len(ranked) else ("-", 0.0)
        paper_name, paper_impact = PAPER_LADDER[i]
        table.add_row([i + 1, paper_name, f"{paper_impact}x",
                       measured[0], f"{measured[1]:.0f}x"])
    emit("table6_top_impact", table.render())

    by_company = dict(ranked)
    paper_names = {name for name, _ in PAPER_LADDER}
    measured_paper = [name for name, _ in ranked if name in paper_names]
    # Most of the paper's companies appear among the most affected
    # (TransIP additionally tops our list via its March campaign).
    assert len(measured_paper) >= 5
    # The worst measured impacts are in the paper's order of magnitude
    # (tens to hundreds of times the baseline).
    top_impact = ranked[0][1]
    assert 50 < top_impact < 2000
    # Every impact in the ladder is a genuine impairment.
    for name in measured_paper[:5]:
        assert by_company[name] > 10
