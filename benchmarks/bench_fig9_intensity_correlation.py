"""Figure 9: telescope intensity vs DNS impact — the negative result.

Paper: low Pearson correlation between RSDoS intensity metrics and
observed RTT impact; no correlation with inferred attacker counts; and a
bimodal intensity distribution with modes near 50 and 6000 packets per
minute at the telescope.
"""

from repro.core.correlation import analyze_correlation, attack_intensity_modes
from repro.util.tables import Table


def regenerate(study):
    corr = analyze_correlation(study.events)
    modes = attack_intensity_modes(
        [c.attack for c in study.join.dns_direct_attacks])
    return corr, modes


def test_fig9_intensity_correlation(benchmark, study, emit):
    corr, modes = benchmark(regenerate, study)

    table = Table(["metric", "paper", "measured"],
                  title="Figure 9 - intensity vs impact")
    for row in [
        ("Pearson r(log intensity, log impact)", "low (no strong corr.)",
         f"{corr.intensity_pearson:+.3f}"),
        ("Spearman rank correlation", "-", f"{corr.intensity_spearman:+.3f}"),
        ("Pearson r(attacker count, impact)", "no correlation",
         f"{corr.attackers_pearson:+.3f}"),
        ("intensity mode #1 (telescope ppm)", "~50",
         f"{modes[0]:.0f}" if modes else "-"),
        ("intensity mode #2 (telescope ppm)", "~6000",
         f"{modes[1]:.0f}" if len(modes) > 1 else "-"),
    ]:
        table.add_row(row)
    emit("fig9_intensity_correlation", table.render())

    # The headline negative result: intensity does not predict impact.
    assert abs(corr.intensity_pearson) < 0.6
    assert abs(corr.attackers_pearson) < 0.6
    # Bimodal intensity with well-separated modes.
    assert len(modes) == 2
    assert modes[1] / modes[0] > 20
    # Low mode near the paper's ~50 ppm, high mode in the thousands.
    assert 10 < modes[0] < 500
    assert 2_000 < modes[1] < 400_000
