"""Table 2: attack metrics for the two TransIP attacks.

Paper (Dec 2020): A=21.8 Kppm / 1.4 Gbps / 5.79M attacker IPs,
B=3.8K/247 Mbps/1.57M, C=2.9K/188 Mbps/1.33M.
Paper (Mar 2021): A=125 Kppm / 8 Gbps / 7M, B=123K/7.8 Gbps/6.19M,
C=13K/845 Mbps/823K. The March peak is ~6x December's.
"""

import pytest

from repro.telescope.feed import ppm_to_victim_pps
from repro.util.tables import Table, format_bps, format_si
from repro.util.timeutil import Window, parse_ts

DEC_WINDOW = Window(parse_ts("2020-11-30 20:00"), parse_ts("2020-12-01 13:00"))
MAR_WINDOW = Window(parse_ts("2021-03-01 18:00"), parse_ts("2021-03-02 04:00"))

PAPER = {
    "dec": [("A", 21_800, 1.4e9, 5_790_000), ("B", 3_800, 247e6, 1_570_000),
            ("C", 2_900, 188e6, 1_330_000)],
    "mar": [("A", 125_000, 8e9, 7_000_000), ("B", 123_000, 7.8e9, 6_190_000),
            ("C", 13_000, 845e6, 823_000)],
}

# The paper infers volume from full-size flood packets; our TransIP
# vectors are 60-byte TCP SYNs, so we report bits at the paper's implied
# ~1400-byte equivalent for comparability of the volume column.
PAPER_PACKET_BITS = 1400 * 8


def regenerate(study):
    transip_ips = study.world.providers["TransIP"].ns_ips
    out = {}
    for key, window in (("dec", DEC_WINDOW), ("mar", MAR_WINDOW)):
        attacks = sorted(
            (a for a in study.feed.attacks
             if a.victim_ip in transip_ips and window.contains(a.start)),
            key=lambda a: -a.max_ppm)
        out[key] = [(chr(ord("A") + i), a.max_ppm,
                     ppm_to_victim_pps(a.max_ppm) * PAPER_PACKET_BITS,
                     a.inferred_attacker_ips())
                    for i, a in enumerate(attacks)]
    return out


def test_table2_transip_metrics(benchmark, transip_study, emit):
    measured = benchmark(regenerate, transip_study)

    table = Table(["attack", "NS", "ppm (paper)", "ppm (ours)",
                   "volume (paper)", "volume (ours)",
                   "attacker IPs (paper)", "attacker IPs (ours)"],
                  title="Table 2 - TransIP attack metrics")
    for key, label in (("dec", "Dec 2020"), ("mar", "Mar 2021")):
        for (ns, p_ppm, p_vol, p_ips), (ns2, m_ppm, m_vol, m_ips) in zip(
                PAPER[key], measured[key]):
            table.add_row([label, ns, format_si(p_ppm), format_si(m_ppm),
                           format_bps(p_vol), format_bps(m_vol),
                           format_si(p_ips), format_si(m_ips)])
    emit("table2_transip_metrics", table.render())

    # Shape: all three nameservers observed in both attacks.
    assert len(measured["dec"]) == 3
    assert len(measured["mar"]) == 3
    # Peak rates within 20% of the paper's.
    assert measured["dec"][0][1] == pytest.approx(21_800, rel=0.2)
    assert measured["mar"][0][1] == pytest.approx(125_000, rel=0.2)
    # March ~6x December (paper's headline comparison).
    ratio = measured["mar"][0][1] / measured["dec"][0][1]
    assert 3.5 < ratio < 9.0
    # Attacker-IP magnitudes (millions, bounded by the spoof pools).
    assert measured["mar"][0][3] == pytest.approx(7_000_000, rel=0.3)
    assert measured["dec"][0][3] == pytest.approx(5_790_000, rel=0.3)
