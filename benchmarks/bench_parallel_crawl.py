"""Serial vs sharded crawl: wall time, speedup, and bit-for-bit equality.

The crawl is the dominant cost of every figure/table benchmark, and the
sharded crawl is the study's default scale path (``run_study(...,
n_workers=N)``). This bench times the serial crawl against 2- and
4-worker runs of the *same pre-built world* and asserts the tentpole
contract along the way: every store is bit-for-bit identical, so the
workers change wall clock and nothing else.

Speedup scales with physical cores: fork-based sharding cannot beat the
GIL-free lower bound of one core, so on a single-core container the
ratios land near (or slightly below, from fork+merge overhead) 1.0x.
The >= 2x @ 4 workers acceptance bound is therefore asserted only when
the host actually has >= 4 CPUs; the table records the measured ratios
either way.
"""

import os
import time

from repro import WorldConfig, build_world
from repro.openintel.platform import OpenIntelPlatform
from repro.util.tables import Table

#: acceptance bound at 4 workers on a >= 4-core host (the ISSUE criterion).
MIN_SPEEDUP_4W = 2.0
WORKER_COUNTS = (1, 2, 4)

# One month of the default-scale world: same per-domain-day work as the
# full 17-month run (the crawl is embarrassingly parallel over domains,
# so the ratio is window-invariant), at a bench-friendly wall clock.
BENCH_WORLD = WorldConfig(seed=42, start="2021-03-01",
                          end_exclusive="2021-04-01")


def measure(world):
    """Time the serial crawl and each worker count on one shared world."""
    t0 = time.perf_counter()
    serial = OpenIntelPlatform(world).run()
    serial_s = time.perf_counter() - t0

    rows = [("serial", serial_s, 1.0, True)]
    for n_workers in WORKER_COUNTS[1:]:
        t0 = time.perf_counter()
        store = OpenIntelPlatform(world).run_parallel(n_workers)
        elapsed = time.perf_counter() - t0
        rows.append((f"{n_workers} workers", elapsed, serial_s / elapsed,
                     store == serial))
    return {"rows": rows, "n_measurements": serial.n_measurements,
            "cpus": os.cpu_count() or 1}


def render(result):
    table = Table(
        ["crawl", "wall time (s)", "speedup", "store == serial"],
        title=f"Sharded crawl scaling ({result['n_measurements']} "
              f"measurements, {result['cpus']} CPUs)")
    for name, elapsed, speedup, equal in result["rows"]:
        table.add_row([name, f"{elapsed:.2f}", f"{speedup:.2f}x",
                       "yes" if equal else "NO"])
    return table.render()


def test_parallel_crawl_speedup(emit, emit_json):
    world = build_world(BENCH_WORLD)
    result = measure(world)
    emit("parallel_crawl", render(result))
    emit_json("parallel_crawl", {
        "n_measurements": result["n_measurements"],
        "cpus": result["cpus"],
        **{f"wall_s_{name.replace(' ', '_')}": elapsed
           for name, elapsed, _, _ in result["rows"]},
        **{f"speedup_{name.replace(' ', '_')}": speedup
           for name, _, speedup, _ in result["rows"]},
    })

    # Invariance is unconditional: every worker count, same store.
    assert all(equal for _, _, _, equal in result["rows"])
    # The speedup bound only means something with cores to spread over.
    if result["cpus"] >= 4:
        four = next(s for name, _, s, _ in result["rows"]
                    if name == "4 workers")
        assert four >= MIN_SPEEDUP_4W


if __name__ == "__main__":  # standalone: python benchmarks/bench_parallel_crawl.py
    result = measure(build_world(BENCH_WORLD))
    print(render(result))
    ok = all(equal for _, _, _, equal in result["rows"])
    if result["cpus"] >= 4:
        four = next(s for name, _, s, _ in result["rows"]
                    if name == "4 workers")
        ok = ok and four >= MIN_SPEEDUP_4W
        print(f"\n4-worker speedup: {four:.2f}x (bound {MIN_SPEEDUP_4W}x)")
    else:
        print(f"\nonly {result['cpus']} CPU(s): speedup bound not asserted")
    raise SystemExit(0 if ok else 1)
