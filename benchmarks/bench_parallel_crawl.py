"""Serial vs sharded crawl: wall time, speedup, and bit-for-bit equality.

The crawl is the dominant cost of every figure/table benchmark, and the
sharded crawl is the study's default scale path (``run_study(...,
n_workers=N)``). This bench times the serial crawl against 2- and
4-worker runs of the *same pre-built world* and asserts the tentpole
contract along the way: every store is bit-for-bit identical, so the
workers change wall clock and nothing else.

Speedup scales with physical cores: fork-based sharding cannot beat the
GIL-free lower bound of one core, so on a single-core container the
ratios land near (or slightly below, from fork+merge overhead) 1.0x.
The >= 2x @ 4 workers acceptance bound is therefore asserted only when
the host actually has >= 4 CPUs; the table records the measured ratios
either way.
"""

import os
import time

from repro import WorldConfig, build_world
from repro.columnar import HAVE_NUMPY
from repro.columnar.crawl import STATUS_BY_CODE
from repro.openintel.platform import OpenIntelPlatform
from repro.openintel.storage import MeasurementStore
from repro.util.tables import Table

#: acceptance bound at 4 workers on a >= 4-core host (the ISSUE criterion).
MIN_SPEEDUP_4W = 2.0
#: acceptance bound for the columnar ingest replay (batch flush vs one
#: add_fast per row), asserted on the NumPy fast path.
MIN_INGEST_SPEEDUP = 5.0
#: below this row count the flush is too quick to time against its
#: fixed costs (CI smoke worlds), so only equality is asserted.
MIN_INGEST_ROWS = 500_000
WORKER_COUNTS = (1, 2, 4)

# One month of the default-scale world: same per-domain-day work as the
# full 17-month run (the crawl is embarrassingly parallel over domains,
# so the ratio is window-invariant), at a bench-friendly wall clock.
# REPRO_BENCH_DOMAINS scales the population down for CI smoke runs.
_bench_domains = os.environ.get("REPRO_BENCH_DOMAINS")
BENCH_WORLD = WorldConfig(
    seed=42, start="2021-03-01", end_exclusive="2021-04-01",
    **({"n_domains": int(_bench_domains)} if _bench_domains else {}))


def measure(world):
    """Time the serial crawl and each worker count on one shared world."""
    t0 = time.perf_counter()
    serial = OpenIntelPlatform(world).run()
    serial_s = time.perf_counter() - t0

    rows = [("serial", serial_s, 1.0, True)]
    for n_workers in WORKER_COUNTS[1:]:
        t0 = time.perf_counter()
        store = OpenIntelPlatform(world).run_parallel(n_workers)
        elapsed = time.perf_counter() - t0
        rows.append((f"{n_workers} workers", elapsed, serial_s / elapsed,
                     store == serial))

    t0 = time.perf_counter()
    columnar = OpenIntelPlatform(world, columnar=True).run()
    columnar_s = time.perf_counter() - t0
    rows.append(("columnar serial", columnar_s, serial_s / columnar_s,
                 columnar == serial))

    ingest = measure_ingest_replay(world, serial)
    return {"rows": rows, "n_measurements": serial.n_measurements,
            "cpus": os.cpu_count() or 1, "ingest": ingest}


#: timing repeats per ingest path; the best (min) of the repeats is
#: reported, the standard noise-robust estimator for a shared host.
INGEST_REPEATS = 3


def measure_ingest_replay(world, serial):
    """Time store ingest alone: one ``add_fast`` per row vs one batch
    flush over the same rows.

    The resolver's RNG draws dominate crawl wall time, so the tentpole
    speedup lives at the ingest boundary — replay the full crawl's
    measurement rows into fresh stores both ways (best of
    :data:`INGEST_REPEATS` each) and compare.
    """
    platform = OpenIntelPlatform(world, columnar=True)
    platform._defer_flush = True
    platform.run()
    batch = platform._pending_batch

    object_times = []
    for _ in range(INGEST_REPEATS):
        object_store = MeasurementStore()
        add_fast = object_store.add_fast
        t0 = time.perf_counter()
        for nsset_id, ts, code, rtt, dense in zip(
                batch.nsset_id, batch.ts, batch.status, batch.rtt_ms,
                batch.dense):
            add_fast(nsset_id, ts, STATUS_BY_CODE[code], rtt, bool(dense))
        object_times.append(time.perf_counter() - t0)

    columnar_times = []
    for _ in range(INGEST_REPEATS):
        columnar_store = MeasurementStore()
        t0 = time.perf_counter()
        batch.flush_into(columnar_store)
        columnar_times.append(time.perf_counter() - t0)

    object_s, columnar_s = min(object_times), min(columnar_times)
    return {"rows": len(batch), "object_s": object_s,
            "columnar_s": columnar_s, "speedup": object_s / columnar_s,
            "equal": object_store == columnar_store == serial}


def render(result):
    table = Table(
        ["crawl", "wall time (s)", "speedup", "store == serial"],
        title=f"Sharded crawl scaling ({result['n_measurements']} "
              f"measurements, {result['cpus']} CPUs)")
    for name, elapsed, speedup, equal in result["rows"]:
        table.add_row([name, f"{elapsed:.2f}", f"{speedup:.2f}x",
                       "yes" if equal else "NO"])
    ingest = result["ingest"]
    return (table.render()
            + f"\n\ningest replay over {ingest['rows']} rows: "
              f"add_fast {ingest['object_s']:.2f}s vs columnar flush "
              f"{ingest['columnar_s']:.2f}s "
              f"({ingest['speedup']:.1f}x, numpy={HAVE_NUMPY}, "
              f"stores equal: {'yes' if ingest['equal'] else 'NO'})")


def test_parallel_crawl_speedup(emit, emit_json):
    world = build_world(BENCH_WORLD)
    result = measure(world)
    emit("parallel_crawl", render(result))
    ingest = result["ingest"]
    emit_json("parallel_crawl", {
        "n_measurements": result["n_measurements"],
        "cpus": result["cpus"],
        "numpy": 1.0 if HAVE_NUMPY else 0.0,
        "ingest_rows": ingest["rows"],
        "ingest_wall_s_object": ingest["object_s"],
        "ingest_wall_s_columnar": ingest["columnar_s"],
        "ingest_speedup_columnar": ingest["speedup"],
        **{f"wall_s_{name.replace(' ', '_')}": elapsed
           for name, elapsed, _, _ in result["rows"]},
        **{f"speedup_{name.replace(' ', '_')}": speedup
           for name, _, speedup, _ in result["rows"]},
    })

    # Invariance is unconditional: every worker count and the columnar
    # path produce the serial object store, bit for bit.
    assert all(equal for _, _, _, equal in result["rows"])
    assert ingest["equal"]
    # The speedup bound only means something with cores to spread over.
    if result["cpus"] >= 4:
        four = next(s for name, _, s, _ in result["rows"]
                    if name == "4 workers")
        assert four >= MIN_SPEEDUP_4W
    # The columnar ingest bound holds on the NumPy fast path at real
    # batch sizes; the stdlib fallback trades speed for zero
    # dependencies, and tiny smoke batches are all fixed cost.
    if HAVE_NUMPY and ingest["rows"] >= MIN_INGEST_ROWS:
        assert ingest["speedup"] >= MIN_INGEST_SPEEDUP


if __name__ == "__main__":  # standalone: python benchmarks/bench_parallel_crawl.py
    result = measure(build_world(BENCH_WORLD))
    print(render(result))
    ok = all(equal for _, _, _, equal in result["rows"])
    ok = ok and result["ingest"]["equal"]
    if result["cpus"] >= 4:
        four = next(s for name, _, s, _ in result["rows"]
                    if name == "4 workers")
        ok = ok and four >= MIN_SPEEDUP_4W
        print(f"\n4-worker speedup: {four:.2f}x (bound {MIN_SPEEDUP_4W}x)")
    else:
        print(f"\nonly {result['cpus']} CPU(s): speedup bound not asserted")
    if HAVE_NUMPY and result["ingest"]["rows"] >= MIN_INGEST_ROWS:
        ok = ok and result["ingest"]["speedup"] >= MIN_INGEST_SPEEDUP
        print(f"ingest speedup: {result['ingest']['speedup']:.1f}x "
              f"(bound {MIN_INGEST_SPEEDUP}x)")
    else:
        print("small batch or no numpy: ingest speedup bound not asserted")
    raise SystemExit(0 if ok else 1)
