"""Table 3: monthly attack activity, DNS vs other.

Paper: DNS-infrastructure attacks are 0.57%-2.12% of monthly attacks
(1.21% overall) and ~1-2% of victim IPs. These are scale-invariant
ratios and must reproduce directly.
"""

from repro.core.longitudinal import monthly_summary
from repro.util.tables import Table, format_pct

PAPER_TOTAL_SHARE = 0.0121
PAPER_MONTHLY_RANGE = (0.0057, 0.0212)


def test_table3_monthly_summary(benchmark, study, emit):
    summary = benchmark(monthly_summary, study.join)

    table = Table(["month", "#DNS", "#other", "total", "DNS share",
                   "DNS IPs", "DNS IP share"],
                  title="Table 3 - monthly attack activity "
                        "(paper: DNS share 0.57%..2.12%, 1.21% overall)")
    for row in summary.rows:
        table.add_row([f"{row.year}-{row.month:02d}", row.dns_attacks,
                       row.other_attacks, row.total_attacks,
                       format_pct(row.dns_attack_share),
                       len(row.dns_ips), format_pct(row.dns_ip_share)])
    lo, hi = summary.dns_share_range()
    table.caption = (f"measured: total DNS share "
                     f"{format_pct(summary.dns_attack_share)} "
                     f"(monthly {format_pct(lo)}..{format_pct(hi)}) | "
                     f"paper: 1.21% (0.57%..2.12%)")
    emit("table3_monthly_summary", table.render())

    # The headline ratio: DNS attacks are a small percent of the total.
    assert 0.005 < summary.dns_attack_share < 0.035
    # Every month has both classes and a sane share.
    assert len(summary.rows) == 17
    for row in summary.rows:
        assert 0.0 < row.dns_attack_share < 0.06
    # Victim-IP share in the same ballpark band as attacks (paper ~1-2%).
    ip_share = summary.unique_dns_ips() / summary.unique_ips()
    assert 0.003 < ip_share < 0.05
