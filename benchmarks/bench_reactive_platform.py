"""§4.3.1: the reactive measurement platform's operational properties.

Paper: triggers within 10 minutes of the feed reporting an attack;
probes up to 50 related domains every 5 minutes, spread evenly (~one
query every 6 seconds — the ethics bound); keeps probing for 24 hours
after the attack; probes every nameserver of each domain.
"""

from repro import ReactivePlatform
from repro.util.tables import Table
from repro.util.timeutil import DAY, FIVE_MINUTES, MINUTE, Window, parse_ts

TRANSIP_MARCH = Window(parse_ts("2021-03-01 18:00"), parse_ts("2021-03-02 04:00"))


def regenerate(study):
    platform = ReactivePlatform(study.world)
    store = platform.run(study.feed, window=TRANSIP_MARCH)
    return platform, store


def test_reactive_platform(benchmark, transip_study, emit):
    platform, store = benchmark.pedantic(regenerate, args=(transip_study,),
                                         rounds=1, iterations=1)

    delays = [c.triggered_at - c.attack.start for c in platform.campaigns]
    tails = [c.ends_at - c.attack.end for c in platform.campaigns]
    per_bucket = {}
    for probe in store.probes:
        key = probe.ts // FIVE_MINUTES
        per_bucket[key] = per_bucket.get(key, 0) + 1
    spacings = sorted({p.ts % FIVE_MINUTES for p in store.probes})

    table = Table(["property", "paper", "measured"],
                  title="Reactive measurement platform (§4.3.1)")
    for row in [
        ("campaigns triggered", "-", str(len(platform.campaigns))),
        ("max trigger delay", "<= 10 min",
         f"{max(delays) / MINUTE:.0f} min"),
        ("post-attack probing", "24 h", f"{max(tails) / 3600:.0f} h"),
        ("probes recorded", "-", str(len(store.probes))),
        ("max probes per 5-min window", "50/domain-set bound",
         str(max(per_bucket.values()))),
        ("distinct in-window offsets", "spread evenly",
         str(len(spacings))),
    ]:
        table.add_row(row)
    emit("reactive_platform", table.render())

    assert platform.campaigns
    assert max(delays) <= 10 * MINUTE
    assert max(tails) == DAY
    # Probes are spread inside the window, not bursted at the boundary.
    assert len(spacings) > 1
    # Every domain's probes cover every one of its nameservers.
    domain_id = store.probes[0].domain_id
    record = transip_study.world.directory[domain_id]
    probed = {p.ns_ip for p in store.domain_probes(domain_id)}
    assert probed == set(record.delegation.nameserver_ips)
