"""§4.3.1: the reactive measurement platform's operational properties.

Paper: triggers within 10 minutes of the feed reporting an attack;
probes up to 50 related domains every 5 minutes, spread evenly (~one
query every 6 seconds — the ethics bound); keeps probing for 24 hours
after the attack; probes every nameserver of each domain.
"""

from repro import ReactivePlatform
from repro.util.tables import Table
from repro.util.timeutil import DAY, FIVE_MINUTES, MINUTE, Window, parse_ts

TRANSIP_MARCH = Window(parse_ts("2021-03-01 18:00"), parse_ts("2021-03-02 04:00"))


def regenerate(study):
    platform = ReactivePlatform(study.world)
    store = platform.run(study.feed, window=TRANSIP_MARCH)
    return platform, store


def test_reactive_platform(benchmark, transip_study, emit, emit_json):
    platform, store = benchmark.pedantic(regenerate, args=(transip_study,),
                                         rounds=1, iterations=1)

    delays = [c.triggered_at - c.attack.start for c in platform.campaigns]
    tails = [c.ends_at - c.attack.end for c in platform.campaigns]
    per_bucket = {}
    for probe in store.probes:
        key = probe.ts // FIVE_MINUTES
        per_bucket[key] = per_bucket.get(key, 0) + 1
    spacings = sorted({p.ts % FIVE_MINUTES for p in store.probes})

    table = Table(["property", "paper", "measured"],
                  title="Reactive measurement platform (§4.3.1)")
    for row in [
        ("campaigns triggered", "-", str(len(platform.campaigns))),
        ("max trigger delay", "<= 10 min",
         f"{max(delays) / MINUTE:.0f} min"),
        ("post-attack probing", "24 h", f"{max(tails) / 3600:.0f} h"),
        ("probes recorded", "-", str(len(store.probes))),
        ("max probes per 5-min window", "50/domain-set bound",
         str(max(per_bucket.values()))),
        ("distinct in-window offsets", "spread evenly",
         str(len(spacings))),
    ]:
        table.add_row(row)
    emit("reactive_platform", table.render())
    emit_json("reactive_platform", {
        "campaigns": len(platform.campaigns),
        "max_trigger_delay_s": max(delays),
        "post_attack_tail_s": max(tails),
        "probes": len(store.probes),
        "max_probes_per_window": max(per_bucket.values()),
        "distinct_offsets": len(spacings),
    })

    assert platform.campaigns
    assert max(delays) <= 10 * MINUTE
    assert max(tails) == DAY
    # Probes are spread inside the window, not bursted at the boundary.
    assert len(spacings) > 1
    # Every domain's probes cover every one of its nameservers.
    domain_id = store.probes[0].domain_id
    record = transip_study.world.directory[domain_id]
    probed = {p.ns_ip for p in store.domain_probes(domain_id)}
    assert probed == set(record.delegation.nameserver_ips)


def test_reactive_production_rate(emit, emit_json):
    """The overload-aware platform (``repro.reactive``) at production
    rate: >= 1000 concurrent triggers through the bounded feed, with
    admission control and budget fairness.  Reports sustained event
    throughput and the p99 trigger latency; zero silent campaign drops
    is an assertion, not a hope.
    """
    import time

    from repro import WorldConfig, build_world
    from repro.reactive import CampaignState, ReactiveService, \
        fast_transport, synthetic_triggers
    from repro.util.timeutil import HOUR, MINUTE

    world = build_world(WorldConfig(
        seed=9, start="2021-03-01", end_exclusive="2021-04-01",
        n_domains=1200, n_selfhosted_providers=40, n_filler_providers=16,
        attacks_per_month=120))
    triggers = synthetic_triggers(world, 1000, seed=5, invalid_share=0.02)
    assert len(triggers) >= 1000

    service = ReactiveService(
        world, probes_per_window=3, post_attack_s=HOUR, probe_budget=60,
        feed_capacity=64, backpressure="block",
        transport=fast_transport(seed=2))
    t0 = time.perf_counter()
    report = service.run(triggers)
    elapsed = time.perf_counter() - t0

    c = report.counts
    # every trigger accounted for: nothing ever dropped silently
    assert c["unaccounted"] == 0
    assert c["feed_shed"] == 0          # block policy loses nothing
    assert c["done"] > 0
    events = c["triggers"] + c["probes"]
    events_per_s = events / elapsed
    p99 = report.trigger_latency_p99_s

    table = Table(["property", "paper", "measured"],
                  title="Production-rate reactive platform")
    for row in [
        ("concurrent triggers", ">= 1000", str(c["triggers"])),
        ("campaigns completed", "-", str(c["done"])),
        ("campaigns shed (loudly)", "-", str(c["shed"])),
        ("probes recorded", "-", str(c["probes"])),
        ("sustained events/sec", "-", f"{events_per_s:,.0f}"),
        ("p99 trigger latency", "<= 10 min or flagged",
         f"{p99 / MINUTE:.1f} min"),
        ("silently dropped campaigns", "0", str(c["unaccounted"])),
    ]:
        table.add_row(row)
    emit("reactive_production_rate", table.render())
    emit_json("reactive_production_rate", {
        "triggers": c["triggers"],
        "done": c["done"],
        "shed": c["shed"],
        "probes": c["probes"],
        "events_per_s": round(events_per_s, 1),
        "p99_trigger_latency_s": p99,
        "wall_s": round(elapsed, 3),
    })

    # the SLO contract: done campaigns past the 10-minute trigger
    # bound carry the ``late`` flag
    for campaign in report.campaigns:
        if campaign.state == CampaignState.DONE \
                and campaign.trigger_latency_s > 10 * MINUTE:
            assert "late" in campaign.reasons
