"""Figure 10: RTT impact vs attack duration.

Paper: durations are bimodal with modes near 15 minutes and 1 hour;
high-impact attacks concentrate in those bands; long attacks trend
ineffective — with the 19-hour, 30x Contabo attack as the exception.
"""

from repro.core.correlation import (
    analyze_correlation,
    attack_duration_modes,
    duration_impact_buckets,
)
from repro.util.plot import ascii_scatter
from repro.util.tables import Table
from repro.util.timeutil import HOUR, MINUTE


def regenerate(study):
    corr = analyze_correlation(study.events)
    modes = attack_duration_modes(
        [c.attack for c in study.join.dns_direct_attacks])
    buckets = duration_impact_buckets(study.events)
    return corr, modes, buckets


def test_fig10_duration_correlation(benchmark, study, emit):
    corr, modes, buckets = benchmark(regenerate, study)

    table = Table(["duration bucket", "events", ">=10x impact"],
                  title="Figure 10 - impact by attack duration "
                        "(paper: high impact concentrates at 15 min - "
                        "a few hours; long attacks trend ineffective)")
    for label, n, high in buckets:
        table.add_row([label, n, high])
    mode_text = ", ".join(f"{m / 60:.0f} min" for m in modes)
    lines = [table.render(), "",
             f"duration modes: {mode_text} (paper: ~15 min and ~60 min)"]
    if corr.longest_high_impact:
        company, duration, impact = corr.longest_high_impact
        lines.append(f"longest high-impact event: {company}, "
                     f"{duration / 3600:.1f} h, {impact:.0f}x "
                     f"(paper: Contabo, 19 h, 30x)")
    xs = [e.duration_s / 60 for e in study.events
          if e.mean_impact is not None]
    ys = [max(e.mean_impact, 0.1) for e in study.events
          if e.mean_impact is not None]
    lines.append("")
    lines.append(ascii_scatter(
        xs, ys, log_x=True, log_y=True, width=64, height=16,
        x_label="duration (min)", y_label="impact",
        title="Figure 10 shape - impact vs attack duration"))
    emit("fig10_duration_correlation", "\n".join(lines))

    # Bimodal durations with the first mode in the minutes-to-an-hour
    # band.
    assert modes
    assert 8 * MINUTE < modes[0] < 90 * MINUTE
    if len(modes) > 1:
        assert modes[1] > modes[0]
    # High-impact events exist and none of the typical ones last >12h...
    total_high = sum(high for _, _, high in buckets)
    assert total_high > 0
    # ...except the Contabo outlier, which the paper singles out.
    assert corr.longest_high_impact is not None
    company, duration, impact = corr.longest_high_impact
    assert company == "Contabo"
    assert 17 * HOUR < duration < 21 * HOUR
    assert 10 < impact < 120
