"""Table 1: RSDoS dataset summary (attacks, victim IPs, /24s, ASes).

Paper: 4,039,485 attacks | 1,022,102 IPs | 404,076 /24s | 25,821 ASes
over Nov 2020 - Mar 2022. Absolute counts scale with the configured
attack volume; the *ratios* (IPs per attack, /24s per IP, ASes per IP)
are the scale-invariant shape.
"""

from repro.core.longitudinal import dataset_totals
from repro.util.tables import Table

PAPER = {"attacks": 4_039_485, "ips": 1_022_102,
         "slash24s": 404_076, "ases": 25_821}


def regenerate(study):
    totals = dataset_totals(study.feed.attacks)
    ases = {study.metadata.prefix2as.lookup(a.victim_ip)
            for a in study.feed.attacks}
    ases.discard(None)
    totals["ases"] = len(ases)
    return totals


def test_table1_rsdos_dataset(benchmark, study, emit):
    totals = benchmark(regenerate, study)

    scale = totals["attacks"] / PAPER["attacks"]
    table = Table(["metric", "paper", "measured", "paper ratio", "measured ratio"],
                  title="Table 1 - RSDoS dataset (absolute counts scale "
                        f"by ~{scale:.4f}; ratios are shape)")
    for key, label, denom in (("attacks", "#Attacks", None),
                              ("ips", "#IPs", "attacks"),
                              ("slash24s", "#/24 Prefixes", "ips"),
                              ("ases", "#ASes", "ips")):
        paper_ratio = f"{PAPER[key] / PAPER[denom]:.3f}" if denom else "-"
        measured_ratio = f"{totals[key] / totals[denom]:.3f}" if denom else "-"
        table.add_row([label, PAPER[key], totals[key],
                       paper_ratio, measured_ratio])
    emit("table1_rsdos_dataset", table.render())

    # Shape assertions: victims per attack and /24 consolidation.
    assert 0.05 < totals["ips"] / totals["attacks"] < 0.8
    assert totals["slash24s"] <= totals["ips"]
    assert totals["ases"] <= totals["slash24s"]
