"""Ablation: the previous-day nameserver view in the join (§4.2).

The paper joins RSDoS victims against the nameservers observed the day
BEFORE the attack "to minimize the chance of missing a nameserver that
is unreachable due to an attack". This bench quantifies the alternative:
joining against only the nameservers *successfully measured during* the
attack loses exactly the hard-hit (unreachable) nameservers.
"""

from repro.core.join import join_datasets
from repro.util.tables import Table
from repro.util.timeutil import Window


def regenerate(study):
    # Per attacked nameserver, look at what its NSSets measured during
    # the attack window: the previous-day view keeps a victim whenever
    # its domains were measured at all; the same-day view keeps it only
    # if a measurement SUCCEEDED — which is exactly what an attack that
    # knocks the deployment out prevents.
    prevday = set()
    sameday = set()
    fail_rate = {}
    for classified in study.join.dns_direct_attacks:
        attack = classified.attack
        measured = ok = 0
        for nsset_id in classified.nsset_ids:
            for _, agg in study.store.buckets_in(nsset_id, attack.start,
                                                 attack.end):
                measured += agg.n
                ok += agg.ok_n
        if measured == 0:
            continue
        prevday.add(classified.victim_ip)
        if ok > 0:
            sameday.add(classified.victim_ip)
        rate = 1.0 - ok / measured
        fail_rate[classified.victim_ip] = max(
            fail_rate.get(classified.victim_ip, 0.0), rate)

    lost = prevday - sameday
    lost_hard_hit = {ip for ip in lost if fail_rate[ip] > 0.5}
    return prevday, sameday, lost, lost_hard_hit


def test_ablation_join_day(benchmark, study, emit):
    prevday, sameday, lost, lost_hard_hit = benchmark.pedantic(
        regenerate, args=(study,), rounds=1, iterations=1)

    table = Table(["join view", "attacked nameservers found"],
                  title="Ablation - previous-day vs same-day nameserver "
                        "view in the join (§4.2)")
    table.add_row(["previous-day (paper's choice)", len(prevday)])
    table.add_row(["same-day successful-measurement view", len(sameday)])
    table.add_row(["lost by same-day view", len(lost)])
    table.add_row(["...of which hard-hit (>50% failure)", len(lost_hard_hit)])
    table.caption = ("the same-day view loses exactly the nameservers an "
                     "effective attack made unreachable — the paper's "
                     "rationale for the previous-day join")
    emit("ablation_join_day", table.render())

    assert sameday <= prevday
    # The same-day view loses victims, and the lost ones skew hard-hit.
    assert lost
    assert lost_hard_hit
