"""Figure 11: anycast efficacy against DDoS.

Paper: anycast deployments suffer RTT increases of only 1-1.5x under
attack; partial anycast shows small impact; the effective attacks all
hit unicast infrastructure; NO anycast NSSet experienced a 100-fold
increase.
"""

from repro.core.resilience import analyze_resilience
from repro.util.tables import Table, format_pct


def test_fig11_anycast(benchmark, study, emit):
    res = benchmark(analyze_resilience, study.events)

    table = Table(["stratum", "events", "median impact", ">=10x share",
                   ">=100x events", "failing share"],
                  title="Figure 11 - anycast vs DDoS "
                        "(paper: anycast 1-1.5x; no anycast NSSet at 100x)")
    for label in ("anycast", "partial", "unicast"):
        stats = res.by_anycast.get(label)
        if stats is None:
            continue
        median = f"{stats.median_impact:.2f}x" if stats.median_impact else "-"
        table.add_row([label, stats.n_events, median,
                       format_pct(stats.over_10x_share), stats.over_100x,
                       format_pct(stats.failing_share)])
    emit("fig11_anycast", table.render())

    anycast = res.by_anycast.get("anycast")
    unicast = res.by_anycast.get("unicast")
    assert anycast and unicast
    # Anycast's typical impact is negligible (paper: 1-1.5x).
    assert anycast.median_impact < 1.6
    # Unicast suffers far more high-impact events than anycast.
    assert unicast.over_10x_share > anycast.over_10x_share
    # No anycast NSSet at 100x (the paper's strongest claim).
    assert res.anycast_over_100x() == 0
    # Failures concentrate on unicast.
    assert unicast.failing_share >= anycast.failing_share
