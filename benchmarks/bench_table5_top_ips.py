"""Table 5: top attacked IPs, exposing the open-resolver phenomenon.

Paper's top 10: 8.8.4.4 (2,803) | UL-shared (2,566, redacted) |
8.8.8.8 (2,298) | 1.1.1.1 (1,118) | 204.79.197.200 Bing (668) |
194.67.7.1 Beeline (481) | 13.107.21.200 Bing (438) | NAS (400) |
private (346) | 23.227.38.32 Cloudflare (273). Public resolvers appear
because misconfigured domains use them as NS; the paper filters them
before impact analysis.
"""

from repro.core.topasn import top_attacked_ips
from repro.util.tables import Table

PAPER_ROWS = [("8.8.4.4", 2803, "Google DNS"),
              ("REDACTED", 2566, "Unified Layer"),
              ("8.8.8.8", 2298, "Google DNS"),
              ("1.1.1.1", 1118, "CloudFlare DNS"),
              ("204.79.197.200", 668, "Bing"),
              ("194.67.7.1", 481, "Beeline RU"),
              ("13.107.21.200", 438, "Bing"),
              ("REDACTED", 400, "Company NAS"),
              ("REDACTED", 346, "Private IP"),
              ("23.227.38.32", 273, "Cloudflare")]


def regenerate(study):
    unfiltered = top_attacked_ips(study.join, study.metadata,
                                  study.open_resolvers, 10)
    filtered = top_attacked_ips(study.join, study.metadata,
                                study.open_resolvers, 10, filtered=True)
    return unfiltered, filtered


def test_table5_top_ips(benchmark, study, emit):
    unfiltered, filtered = benchmark(regenerate, study)

    table = Table(["rank", "paper IP", "paper #", "paper type",
                   "measured IP", "measured #", "measured type"],
                  title="Table 5 - top attacked IPs (pre-filtering)")
    for i in range(10):
        m = unfiltered[i] if i < len(unfiltered) else None
        p_ip, p_n, p_type = PAPER_ROWS[i]
        marker = " (open resolver)" if m and m.is_open_resolver else ""
        table.add_row([i + 1, p_ip, p_n, p_type,
                       m.ip_text if m else "-",
                       m.n_attacks if m else "-",
                       (m.label + marker) if m else "-"])
    filtered_names = ", ".join(r.ip_text for r in filtered[:5])
    table.caption = (f"after open-resolver filtering the top IPs are: "
                     f"{filtered_names}")
    emit("table5_top_ips", table.render())

    ips = [r.ip_text for r in unfiltered]
    # The public resolvers rank at the very top, as in the paper.
    assert "8.8.4.4" in ips[:3]
    assert "8.8.8.8" in ips[:4]
    # 8.8.4.4 leads 8.8.8.8 (paper's ordering of the hot targets).
    assert ips.index("8.8.4.4") < ips.index("8.8.8.8")
    # The Unified Layer shared IP ranks near the top.
    labels = [r.label for r in unfiltered[:4]]
    assert "Unified Layer" in labels
    # Filtering removes every open resolver.
    assert all(not r.is_open_resolver for r in filtered)
    assert "8.8.4.4" not in [r.ip_text for r in filtered]
