"""Figure 6: protocol and destination-port distribution of DNS attacks.

Paper: 80.7% single-port; protocol mix TCP 90.4% / UDP 8.4% / ICMP 1.2%;
within TCP, port 80 (37%) > port 53 (30%) > 443; one third of UDP
attacks target port 53. Plus §6.3.1: successful attacks skew to port 53
(49% vs 30%).
"""

from repro.core.ports import analyze_ports, analyze_successful_ports
from repro.net.ports import (
    PORT_DNS,
    PORT_HTTP,
    PORT_HTTPS,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
)
from repro.util.tables import Table, format_pct


def regenerate(study):
    return analyze_ports(study.join), analyze_successful_ports(study.events)


def test_fig6_port_distribution(benchmark, study, emit):
    ports, successful = benchmark(regenerate, study)

    table = Table(["metric", "paper", "measured"],
                  title="Figure 6 - targeted services")
    rows = [
        ("single-port attacks", "80.7%", format_pct(ports.single_port_share)),
        ("TCP share", "90.4%", format_pct(ports.proto_share(PROTO_TCP))),
        ("UDP share", "8.4%", format_pct(ports.proto_share(PROTO_UDP))),
        ("ICMP share", "1.2%", format_pct(ports.proto_share(PROTO_ICMP))),
        ("TCP port 80", "37%",
         format_pct(ports.port_share_within_proto(PROTO_TCP, PORT_HTTP))),
        ("TCP port 53", "30%",
         format_pct(ports.port_share_within_proto(PROTO_TCP, PORT_DNS))),
        ("UDP port 53", "~33%",
         format_pct(ports.port_share_within_proto(PROTO_UDP, PORT_DNS))),
        ("successful on port 53", "49%",
         format_pct(successful.port_share(PORT_DNS))),
        ("successful on port 80", "31%",
         format_pct(successful.port_share(PORT_HTTP))),
    ]
    for row in rows:
        table.add_row(row)
    emit("fig6_port_distribution", table.render())

    # Single-port dominance.
    assert 0.70 < ports.single_port_share < 0.95
    # TCP >> UDP >> ICMP ordering with TCP strongly dominant.
    assert ports.proto_share(PROTO_TCP) > 0.7
    assert ports.proto_share(PROTO_UDP) > ports.proto_share(PROTO_ICMP)
    # Within TCP, HTTP is the most-hit port, DNS second (paper's finding
    # that most attacks do NOT target port 53).
    tcp_top = ports.top_ports(proto=PROTO_TCP, n=2)
    assert {name for _, name, _, _ in tcp_top} >= {"HTTP"}
    assert ports.port_share_within_proto(PROTO_TCP, PORT_HTTP) > \
        ports.port_share_within_proto(PROTO_TCP, PORT_DNS)
    # The §6.3.1 contrast: successful attacks skew toward port 53.
    if successful.n_attacks:
        assert successful.port_share(PORT_DNS) > ports.port_share(PORT_DNS)
