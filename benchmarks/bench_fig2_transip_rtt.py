"""Figure 2: RTT variation around the two TransIP attacks.

Paper: December's impairment (~10x RTT) persisted ~8 hours past the
RSDoS-inferred end of the attack; the March attack induced larger
impairments whose window matched the telescope window.
"""

from repro.core.metrics import impact_series
from repro.util.plot import ascii_series
from repro.util.tables import Table
from repro.util.timeutil import Window, format_ts, parse_ts

DEC_ATTACK = Window(parse_ts("2020-11-30 22:00"), parse_ts("2020-12-01 00:00"))
DEC_AFTERMATH = Window(parse_ts("2020-12-01 01:00"), parse_ts("2020-12-01 07:00"))
DEC_RECOVERED = Window(parse_ts("2020-12-01 09:00"), parse_ts("2020-12-01 12:00"))
MAR_ATTACK = Window(parse_ts("2021-03-01 19:00"), parse_ts("2021-03-02 01:00"))
MAR_AFTER = Window(parse_ts("2021-03-02 02:00"), parse_ts("2021-03-02 08:00"))


def _primary_nsset(study):
    record = next(d for d in study.world.directory.domains
                  if d.provider_name == "TransIP" and not d.misconfig
                  and d.secondary_provider is None)
    return record.nsset_id


def regenerate(study):
    nsset_id = _primary_nsset(study)
    return {name: impact_series(study.store, nsset_id, window)
            for name, window in (("dec_attack", DEC_ATTACK),
                                 ("dec_aftermath", DEC_AFTERMATH),
                                 ("dec_recovered", DEC_RECOVERED),
                                 ("mar_attack", MAR_ATTACK),
                                 ("mar_after", MAR_AFTER))}


def test_fig2_transip_rtt(benchmark, transip_study, emit):
    series = benchmark(regenerate, transip_study)

    table = Table(["phase", "paper expectation", "measured max impact",
                   "measured mean impact"],
                  title="Figure 2 - TransIP RTT impact by phase")
    expectations = {
        "dec_attack": "~10x during attack",
        "dec_aftermath": "impairment persists ~8h past attack",
        "dec_recovered": "recovered by late morning",
        "mar_attack": "larger impairment than December",
        "mar_after": "impact window matches telescope window",
    }
    for name, s in series.items():
        mx = f"{s.max_impact:.1f}x" if s.max_impact else "-"
        mean = f"{s.mean_impact:.1f}x" if s.mean_impact else "-"
        table.add_row([name, expectations[name], mx, mean])
    mar_points = [(p.ts, p.impact) for p in series["mar_attack"].points
                  if p.impact is not None]
    chart = ascii_series(
        mar_points, width=64, height=12, log_y=True,
        title="Figure 2 shape - March attack Impact_on_RTT per 5-min bucket")
    emit("fig2_transip_rtt", table.render() + "\n\n" + chart)

    # December: significant impairment during the attack...
    assert series["dec_attack"].mean_impact > 5
    # ...that persists into the aftermath hours (the paper's 8-hour tail)...
    assert series["dec_aftermath"].max_impact is not None
    assert series["dec_aftermath"].max_impact > 2
    # ...and is gone by late morning.
    recovered = series["dec_recovered"].max_impact
    assert recovered is None or recovered < 3
    # March is worse than December...
    assert series["mar_attack"].mean_impact > series["dec_attack"].mean_impact
    # ...but confined to the telescope-visible window (scrubbing, no tail).
    after = series["mar_after"].max_impact
    assert after is None or after < 3
