"""§6.3.1's end-user discussion + Moura et al. 2018, quantified.

Paper: "a popular domain (queried frequently, available in most caches)
with a high TTL value may be less affected than a less popular one" —
and the cited controlled experiments showed caching lets almost all
users tolerate attacks causing up to ~50% packet loss.
"""

import random

from repro.core.enduser import CacheScenario, caching_grid, simulate_enduser_impact
from repro.util.tables import Table, format_pct
from repro.util.timeutil import HOUR, Window

ATTACK = Window(0, 6 * HOUR)   # the March-TransIP-like 6-hour outage
FAILURE_P = 0.88

POPULARITIES = (1.0, 10.0, 100.0, 1000.0)
TTLS = (60, 300, 3600, 86400)
N_SEEDS = 8


def regenerate():
    """Average the cache simulation over several resolver seeds."""
    shares = {}
    for seed in range(N_SEEDS):
        for scenario, impact in caching_grid(seed, ATTACK, FAILURE_P,
                                             POPULARITIES, TTLS):
            key = (scenario.queries_per_hour, scenario.ttl_s)
            shares[key] = shares.get(key, 0.0) + impact.failure_share / N_SEEDS
    tolerance = {}
    scenario = CacheScenario(queries_per_hour=60.0, ttl_s=3600)
    for loss in (0.25, 0.5, 0.75):
        impacts = [simulate_enduser_impact(random.Random(seed), scenario,
                                           ATTACK, failure_p=loss)
                   for seed in range(N_SEEDS)]
        tolerance[loss] = sum(i.failure_share for i in impacts) / N_SEEDS
    return shares, tolerance


def test_enduser_caching(benchmark, emit):
    shares, tolerance = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    table = Table(["queries/hour"] + [f"TTL {ttl}s" for ttl in TTLS],
                  title="End-user failure share by (popularity, TTL) - "
                        "§6.3.1's caching discussion")
    for qph in POPULARITIES:
        table.add_row([f"{qph:g}"] + [format_pct(shares[(qph, ttl)])
                                      for ttl in TTLS])
    lines = [table.render(), "",
             "cache tolerance of partial loss (Moura et al. 2018: "
             "caching absorbs up to ~50% loss):"]
    for loss, share in sorted(tolerance.items()):
        lines.append(f"  {loss:.0%} loss -> {share:6.1%} user failures")
    emit("enduser_caching", "\n".join(lines))

    # Monotone in TTL for the popular rows.
    for qph in (100.0, 1000.0):
        row = [shares[(qph, ttl)] for ttl in TTLS]
        assert row[0] > row[2] > row[3] - 1e-9
    # High-TTL popular domains are barely affected.
    assert shares[(1000.0, 86400)] < 0.05
    # Low-TTL domains suffer regardless of popularity.
    assert shares[(1.0, 60)] > 0.5
    # Moura et al.: ~50% loss is nearly invisible to cached users.
    assert tolerance[0.5] < 0.05
    assert tolerance[0.25] <= tolerance[0.5] <= tolerance[0.75]
