"""Figure 13: /24 prefix diversity as a resilience technique.

Paper: a single /24 is the worst deployment choice (shared upstream
infrastructure fails together); two or more prefixes contribute
significantly; 60% of failing NSSets were single-prefix; among complete
failures, ~30% used two prefixes and only ~10% three or more.
"""

from repro.core.resilience import analyze_resilience, complete_failure_prefix_shares
from repro.util.tables import Table, format_pct


def regenerate(study):
    return (analyze_resilience(study.events),
            complete_failure_prefix_shares(study.events))


def test_fig13_prefix_diversity(benchmark, study, emit):
    res, complete_shares = benchmark(regenerate, study)

    table = Table(["stratum", "events", "median impact", ">=10x share",
                   "failing share"],
                  title="Figure 13 - /24 prefix diversity "
                        "(paper: single /24 is the worst choice)")
    for label in sorted(res.by_prefix_count):
        stats = res.by_prefix_count[label]
        median = f"{stats.median_impact:.2f}x" if stats.median_impact else "-"
        table.add_row([label, stats.n_events, median,
                       format_pct(stats.over_10x_share),
                       format_pct(stats.failing_share)])
    failures = study.failures
    shares_text = ", ".join(f"{k}: {format_pct(v)}"
                            for k, v in complete_shares.items())
    table.caption = (
        f"failing single-/24 share: "
        f"{format_pct(failures.single_prefix_share_of_failing)} (paper 60%) | "
        f"complete failures by prefix count: {shares_text or 'none'} "
        f"(paper: most on 1, ~30% on 2, ~10% on 3+)")
    emit("fig13_prefix_diversity", table.render())

    single = res.by_prefix_count.get("1 /24")
    assert single is not None and single.n_events > 0
    # Single-/24 NSSets fail at a higher rate than multi-prefix ones.
    multi_failing = [res.by_prefix_count[l].failing_share
                     for l in res.by_prefix_count if l != "1 /24"]
    assert single.failing_share >= max(multi_failing) * 0.8 or \
        single.failing_share > 0.10
    # A substantial share of failing events are single-prefix.
    assert failures.single_prefix_share_of_failing > 0.25
