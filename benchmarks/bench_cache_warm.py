"""Cold vs warm study through the artifact cache: wall time and hits.

The phase cache exists to make the second run of a study cheap: the
telescope, crawl, join, and event-extraction phases are fetched by
fingerprint instead of recomputed, leaving only the world build and the
lazy analyses. This bench times a cold run (populating a fresh cache
directory) against a warm run of the same config and asserts the
tentpole contract along the way: the warm report is byte-identical to
the cold one, and every phase hits.

The speedup floor is deliberately modest (>= 1.2x): the warm run still
rebuilds the world — the cache deliberately stores measurement products,
not ground truth — so the ratio is bounded by the world-build share of
the wall clock, which varies with host and scale.
"""

import shutil
import tempfile
import time

from repro import WorldConfig, run_study
from repro.obs import RunTelemetry
from repro.util.tables import Table

#: acceptance floor for the warm/cold wall-time ratio.
MIN_WARM_SPEEDUP = 1.2

# One month at default scale: the same crawl-dominated profile as the
# full 17-month run, at a bench-friendly wall clock.
BENCH_WORLD = WorldConfig(seed=42, start="2021-03-01",
                          end_exclusive="2021-04-01")


def _timed_run(cache_dir):
    telemetry = RunTelemetry.create()
    t0 = time.perf_counter()
    study = run_study(BENCH_WORLD, cache=cache_dir, telemetry=telemetry)
    elapsed = time.perf_counter() - t0
    counters = telemetry.snapshot()["metrics"]["counters"]
    hits = sum(v for k, v in counters.items()
               if k.startswith("repro.cache.hits"))
    return study, elapsed, hits


def measure(cache_dir):
    """Run the same study cold then warm against one cache directory."""
    cold, cold_s, cold_hits = _timed_run(cache_dir)
    warm, warm_s, warm_hits = _timed_run(cache_dir)
    return {
        "cold_s": cold_s, "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
        "cold_hits": cold_hits, "warm_hits": warm_hits,
        "identical": warm.report() == cold.report(),
        "n_measurements": cold.store.n_measurements,
    }


def render(result):
    table = Table(
        ["run", "wall time (s)", "phase hits", "report == cold"],
        title=f"Warm-cache study ({result['n_measurements']} measurements, "
              f"{result['speedup']:.2f}x speedup)")
    table.add_row(["cold", f"{result['cold_s']:.2f}",
                   result["cold_hits"], "-"])
    table.add_row(["warm", f"{result['warm_s']:.2f}", result["warm_hits"],
                   "yes" if result["identical"] else "NO"])
    return table.render()


def test_cache_warm_speedup(tmp_path_factory, emit, emit_json):
    cache_dir = str(tmp_path_factory.mktemp("bench-cache"))
    result = measure(cache_dir)
    emit("cache_warm", render(result))
    emit_json("cache_warm", {
        "wall_s_cold": result["cold_s"],
        "wall_s_warm": result["warm_s"],
        "speedup": result["speedup"],
        "warm_hits": result["warm_hits"],
        "n_measurements": result["n_measurements"],
    })

    # The contract is unconditional; the wall-clock floor is the bench.
    assert result["identical"]
    assert result["cold_hits"] == 0
    assert result["warm_hits"] == 4
    assert result["speedup"] >= MIN_WARM_SPEEDUP


if __name__ == "__main__":  # standalone: python benchmarks/bench_cache_warm.py
    cache_dir = tempfile.mkdtemp(prefix="bench-cache-")
    try:
        result = measure(cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    print(render(result))
    ok = (result["identical"] and result["warm_hits"] == 4
          and result["speedup"] >= MIN_WARM_SPEEDUP)
    print(f"\nwarm speedup: {result['speedup']:.2f}x "
          f"(floor {MIN_WARM_SPEEDUP}x)")
    raise SystemExit(0 if ok else 1)
