"""Ablation: how resolver retries shape the paper's observable.

The agnostic resolver's retry-after-timeout behaviour is what converts
partial packet loss into *RTT inflation* and total loss into *timeouts*
(§4.1's impact signal). With retries disabled (one attempt, as a naive
measurement client would do), the same attacks show up as failures
instead of latency — the paper's impact metric would not exist.
"""

import random

from repro.dns.resolver import AgnosticResolver, ResolverConfig
from repro.dns.rr import RRType
from repro.dns.server import ServerReply
from repro.util.tables import Table, format_pct

NS_SET = (0x0A000001, 0x0A000002, 0x0A000003)
DROP_P = 0.6  # per-attempt loss during a moderate attack
N = 4000


def lossy_transport(rng):
    def transport(ns_ip, qname, qtype, ts):
        if rng.random() < DROP_P:
            return ServerReply.dropped()
        return ServerReply.ok(20.0)
    return transport


def run_resolver(max_attempts: int):
    rng = random.Random(99)
    resolver = AgnosticResolver(
        lossy_transport(rng), random.Random(7),
        ResolverConfig(max_attempts=max_attempts))
    ok_rtts = []
    failures = 0
    for _ in range(N):
        result = resolver.resolve("example.com", RRType.NS, NS_SET, when=0)
        if result.status.name == "OK":
            ok_rtts.append(result.rtt_ms)
        else:
            failures += 1
    mean_rtt = sum(ok_rtts) / len(ok_rtts) if ok_rtts else float("nan")
    return mean_rtt, failures / N


def regenerate():
    return {attempts: run_resolver(attempts) for attempts in (1, 2, 4, 6)}


def test_ablation_resolver_retries(benchmark, emit):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    table = Table(["max attempts", "mean answered RTT (ms)",
                   "failure rate", "impact vs 20ms baseline"],
                  title="Ablation - resolver retry budget at 60% per-attempt "
                        "loss (the mechanism behind Equation 1)")
    for attempts, (mean_rtt, failure_rate) in sorted(results.items()):
        table.add_row([attempts, f"{mean_rtt:.0f}",
                       format_pct(failure_rate),
                       f"{mean_rtt / 20.0:.0f}x"])
    emit("ablation_resolver_retries", table.render())

    # One attempt: the loss shows up as failures, not latency.
    assert results[1][1] > 0.45
    assert results[1][0] < 25.0
    # Six attempts (unbound-like; effectively four before the 15 s
    # deadline truncates the backoff ladder): failures collapse to
    # ~p^4 ~= 13% while answered latency inflates enormously — the
    # paper's RTT-impact observable.
    assert results[6][1] < 0.20
    assert results[6][0] > 500.0
    # Monotone: more retries, fewer failures, higher answered RTT.
    failure_rates = [results[a][1] for a in sorted(results)]
    assert failure_rates == sorted(failure_rates, reverse=True)
