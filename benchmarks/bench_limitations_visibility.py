"""§4.3 limitations, quantified with the simulation's ground-truth oracle.

Paper (citing Jonker et al. 2017): ~60% of attacks are randomly spoofed
(telescope-visible) and ~40% reflected (invisible); multi-vector attacks
are only partially visible, under-estimating intensity (§6.4); and a
single vantage can be blinded by anycast catchment.
"""

from repro.core.vantage import masking_analysis
from repro.core.visibility import analyze_visibility
from repro.util.tables import Table, format_pct


def regenerate(study):
    report = analyze_visibility(study.world.attacks, study.feed)
    masking = masking_analysis(study.world, study.feed,
                               max_attacks=120, n_probes=12)
    return report, masking


def test_limitations_visibility(benchmark, study, emit):
    report, masking = benchmark.pedantic(regenerate, args=(study,),
                                         rounds=1, iterations=1)

    table = Table(["metric", "paper", "measured"],
                  title="§4.3 limitations, quantified by the oracle")
    rows = [
        ("overall detection rate", "-",
         format_pct(report.detection_rate)),
        ("randomly-spoofed detection", "visible",
         format_pct(report.class_rate("randomly spoofed (visible)"))),
        ("reflected/unspoofed detection", "invisible (0%)",
         format_pct(report.class_rate("invisible (reflected/unspoofed)"))),
        ("multi-vector rate seen", "under-estimated",
         f"{report.multivector_underestimate:.0%}"
         if report.multivector_underestimate else "-"),
        ("pure-spoofed rate seen", "~accurate (x341/60)",
         f"{report.pure_spoofed_estimate:.0%}"
         if report.pure_spoofed_estimate else "-"),
        ("vantage disagreement >30%", "catchment masking",
         format_pct(sum(1 for r in masking if r.max_disagreement > 0.3)
                    / max(len(masking), 1))),
    ]
    for row in rows:
        table.add_row(row)
    emit("limitations_visibility", table.render())

    # Invisible attacks are (essentially) never detected; the rare
    # nonzero match is an interval-matching collision where an invisible
    # attack overlaps a visible one on the same victim.
    assert report.class_rate("invisible (reflected/unspoofed)") < 0.01
    assert report.class_rate("randomly spoofed (visible)") > 0.85
    # The overall detection rate reflects the invisible share.
    assert 0.75 < report.detection_rate < 0.98
    # Multi-vector attacks are under-estimated; pure ones are accurate.
    assert report.multivector_underestimate is not None
    assert report.multivector_underestimate < 0.9
    assert abs(report.pure_spoofed_estimate - 1.0) < 0.35
