"""Figure 8: RTT impact vs NSSet size.

Paper: most attacks show no observable impairment; ~5% of events reach
a 10-fold RTT increase, a third of those peak past 100-fold; the
high-impact events concentrate on small-medium deployments while very
large deployments show only 2-3x.
"""

from repro.core.impact import analyze_impact
from repro.util.plot import ascii_scatter
from repro.util.tables import Table, format_pct


def test_fig8_rtt_impact(benchmark, study, emit):
    analysis = benchmark(analyze_impact, study.events)

    table = Table(["metric", "paper", "measured"],
                  title="Figure 8 - RTT impact distribution")
    for row in [
        ("events with computable impact", "-", str(analysis.n_with_impact)),
        ("events >= 10x", "~5%", format_pct(analysis.over_10x_share)),
        (">=100x among the >=10x", "~1/3",
         format_pct(analysis.over_100x_share_of_10x)),
    ]:
        table.add_row(row)

    grid_lines = ["", "impact decade x hosted-domain decade "
                      "(the Figure 8 plane):",
                  "  domains     | <10x | 10-100x | >=100x"]
    by_size = {}
    for (size_dec, impact_dec), count in analysis.grid.items():
        buckets = by_size.setdefault(size_dec, [0, 0, 0])
        if impact_dec < 1:
            buckets[0] += count
        elif impact_dec < 2:
            buckets[1] += count
        else:
            buckets[2] += count
    for size_dec in sorted(by_size):
        low, mid, high = by_size[size_dec]
        grid_lines.append(
            f"  10^{size_dec}-10^{size_dec + 1} | {low:4d} | {mid:7d} | {high:6d}")
    xs = [max(e.n_domains_hosted, 1) for e in study.events
          if e.impact is not None]
    ys = [max(e.impact, 0.1) for e in study.events if e.impact is not None]
    scatter = ascii_scatter(
        xs, ys, log_x=True, log_y=True, width=64, height=18,
        x_label="hosted domains", y_label="impact",
        title="Figure 8 shape - Impact_on_RTT vs NSSet size")
    emit("fig8_rtt_impact",
         table.render() + "\n".join(grid_lines) + "\n\n" + scatter)

    # Most events show no meaningful impairment.
    assert analysis.over_10x_share < 0.35
    # Some events reach 10x, and some of those reach 100x.
    assert analysis.over_10x >= 3
    assert 0 < analysis.over_100x <= analysis.over_10x
    # The very largest deployments never show the extreme impacts
    # (paper: 10M-domain NSSets capped at 2-3x). The stable window-mean
    # statistic carries this claim; single thin buckets can still spike.
    top_decade = max(analysis.mean_by_size)
    small_decades = [d for d in analysis.mean_by_size if d < top_decade]
    if small_decades:
        assert analysis.mean_by_size[top_decade] <= max(
            analysis.mean_by_size[d] for d in small_decades)
        assert analysis.mean_by_size[top_decade] < 10.0
