"""Figure 8: RTT impact vs NSSet size.

Paper: most attacks show no observable impairment; ~5% of events reach
a 10-fold RTT increase, a third of those peak past 100-fold; the
high-impact events concentrate on small-medium deployments while very
large deployments show only 2-3x.

Also times the columnar :class:`~repro.columnar.EventFrame` analysis
against repeated object-path ``analyze_impact`` calls: the object path
re-walks every event's 5-minute points on each call (the series
statistics are properties), the frame walks them once at build time and
then bins flat scalar columns.
"""

import time

from repro.columnar import EventFrame, analyze_impact_frame
from repro.core.impact import analyze_impact
from repro.util.plot import ascii_scatter
from repro.util.tables import Table, format_pct

#: acceptance bound for the amortized frame analysis (the ISSUE
#: criterion), asserted when the object path is slow enough to time.
MIN_FRAME_SPEEDUP = 5.0
#: analysis calls the frame build is amortized over — the figure
#: benches re-run the binning at least this often per study.
ANALYSIS_REPEATS = 20
#: below this object-path wall time the ratio is timer noise (CI smoke
#: worlds have a handful of events), so only equality is asserted.
MIN_TIMEABLE_S = 0.01

_ANALYSIS_FIELDS = ("n_events", "n_with_impact", "over_10x", "over_100x",
                    "grid", "peak_by_size", "mean_by_size")


def measure_frame_analysis(events):
    """Time ``ANALYSIS_REPEATS`` object analyses vs one frame build
    plus as many frame analyses, and check they agree field by field."""
    t0 = time.perf_counter()
    for _ in range(ANALYSIS_REPEATS):
        obj = analyze_impact(events)
    object_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    frame = EventFrame(events)
    for _ in range(ANALYSIS_REPEATS):
        col = analyze_impact_frame(frame)
    columnar_s = time.perf_counter() - t0

    return {"n_events": len(events), "repeats": ANALYSIS_REPEATS,
            "object_s": object_s, "columnar_s": columnar_s,
            "speedup": object_s / columnar_s,
            "equal": all(getattr(col, f) == getattr(obj, f)
                         for f in _ANALYSIS_FIELDS)}


def test_fig8_rtt_impact(benchmark, study, emit, emit_json):
    analysis = benchmark(analyze_impact, study.events)

    frame_result = measure_frame_analysis(study.events)
    emit_json("fig8_rtt_impact", {
        "n_events": frame_result["n_events"],
        "analysis_repeats": frame_result["repeats"],
        "object_s": frame_result["object_s"],
        "columnar_s": frame_result["columnar_s"],
        "speedup_columnar": frame_result["speedup"],
        "over_10x_share": analysis.over_10x_share,
        "n_with_impact": analysis.n_with_impact,
    })
    # The frame analysis must agree with the object path exactly, and
    # beat it by the acceptance bound once the work is big enough to
    # time reliably.
    assert frame_result["equal"]
    if frame_result["object_s"] >= MIN_TIMEABLE_S:
        assert frame_result["speedup"] >= MIN_FRAME_SPEEDUP

    table = Table(["metric", "paper", "measured"],
                  title="Figure 8 - RTT impact distribution")
    for row in [
        ("events with computable impact", "-", str(analysis.n_with_impact)),
        ("events >= 10x", "~5%", format_pct(analysis.over_10x_share)),
        (">=100x among the >=10x", "~1/3",
         format_pct(analysis.over_100x_share_of_10x)),
    ]:
        table.add_row(row)

    grid_lines = ["", "impact decade x hosted-domain decade "
                      "(the Figure 8 plane):",
                  "  domains     | <10x | 10-100x | >=100x"]
    by_size = {}
    for (size_dec, impact_dec), count in analysis.grid.items():
        buckets = by_size.setdefault(size_dec, [0, 0, 0])
        if impact_dec < 1:
            buckets[0] += count
        elif impact_dec < 2:
            buckets[1] += count
        else:
            buckets[2] += count
    for size_dec in sorted(by_size):
        low, mid, high = by_size[size_dec]
        grid_lines.append(
            f"  10^{size_dec}-10^{size_dec + 1} | {low:4d} | {mid:7d} | {high:6d}")
    xs = [max(e.n_domains_hosted, 1) for e in study.events
          if e.impact is not None]
    ys = [max(e.impact, 0.1) for e in study.events if e.impact is not None]
    scatter = ascii_scatter(
        xs, ys, log_x=True, log_y=True, width=64, height=18,
        x_label="hosted domains", y_label="impact",
        title="Figure 8 shape - Impact_on_RTT vs NSSet size")
    emit("fig8_rtt_impact",
         table.render() + "\n".join(grid_lines) + "\n\n" + scatter)

    # Most events show no meaningful impairment.
    assert analysis.over_10x_share < 0.35
    # Some events reach 10x, and some of those reach 100x.
    assert analysis.over_10x >= 3
    assert 0 < analysis.over_100x <= analysis.over_10x
    # The very largest deployments never show the extreme impacts
    # (paper: 10M-domain NSSets capped at 2-3x). The stable window-mean
    # statistic carries this claim; single thin buckets can still spike.
    top_decade = max(analysis.mean_by_size)
    small_decades = [d for d in analysis.mean_by_size if d < top_decade]
    if small_decades:
        assert analysis.mean_by_size[top_decade] <= max(
            analysis.mean_by_size[d] for d in small_decades)
        assert analysis.mean_by_size[top_decade] < 10.0
