"""Query-service load bench: 100+ concurrent clients, p99 latency.

Builds a one-week shard store, starts the asyncio HTTP server on an
ephemeral port, and storms it with ``N_CLIENTS`` concurrent clients
each issuing a fixed mixed workload (meta, top-N, slices, events,
impact misses) over its own keep-alive connection. Latency is measured
client-side per request.

Asserted contract, not just numbers:

- zero failed queries — every response parses and carries an expected
  status (the workload includes deliberate 404s, so "failed" means a
  transport error, a 5xx, or an unexpected status);
- zero *unaccounted* queries — the server's
  ``repro.serve.queries{endpoint,outcome}`` counters sum exactly to
  the number of requests sent;
- the whole storm is served from cached artifacts (the store is built
  once, before the first connection).
"""

import asyncio
import json
import time

from repro import WorldConfig
from repro.obs import RunTelemetry
from repro.serve import QueryServer, QueryService, ShardedStudyStore
from repro.util.tables import Table

#: concurrent client connections (the acceptance floor is >= 100).
N_CLIENTS = 120
#: requests issued per client.
REQUESTS_PER_CLIENT = 8

BENCH_WORLD = WorldConfig(seed=7, n_domains=700, attacks_per_month=400,
                          start="2021-03-01", end_exclusive="2021-03-08")

#: (target, expected statuses) — the mixed per-client workload.
WORKLOAD = [
    ("/healthz", {200}),
    ("/v1/meta", {200}),
    ("/v1/top?by=victims&n=5", {200}),
    ("/v1/top?by=companies&n=5", {200}),
    ("/v1/events?day=2021-03-02", {200}),
    ("/v1/slices?nsset=1", {200, 404}),
    ("/v1/impact?attack=203.0.113.9@99999&domain=nope.example", {404}),
    ("/no-such-endpoint", {404}),
]


async def _client(port: int, client_id: int, latencies, failures):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for i in range(REQUESTS_PER_CLIENT):
            target, expected = WORKLOAD[(client_id + i) % len(WORKLOAD)]
            t0 = time.perf_counter()
            writer.write(f"GET {target} HTTP/1.1\r\nHost: bench\r\n"
                         "\r\n".encode())
            await writer.drain()
            status_line = await reader.readline()
            length = None
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                if line.lower().startswith(b"content-length"):
                    length = int(line.split(b":")[1])
            body = await reader.readexactly(length)
            latencies.append((time.perf_counter() - t0) * 1000.0)
            status = int(status_line.split()[1])
            if status not in expected:
                failures.append((target, status))
            json.loads(body)  # must always parse
    except Exception as exc:  # pragma: no cover - failure accounting
        failures.append((f"client-{client_id}", repr(exc)))
    finally:
        writer.close()


def _percentile(sorted_values, q: float) -> float:
    index = min(len(sorted_values) - 1,
                max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def measure(cache_dir: str):
    store = ShardedStudyStore(BENCH_WORLD, cache_dir)
    t0 = time.perf_counter()
    store.build()
    build_s = time.perf_counter() - t0
    telemetry = RunTelemetry.create()
    service = QueryService(store, telemetry=telemetry)

    latencies, failures = [], []

    async def storm():
        server = QueryServer(service, port=0)
        await server.start()
        try:
            t0 = time.perf_counter()
            await asyncio.gather(*[
                _client(server.port, client_id, latencies, failures)
                for client_id in range(N_CLIENTS)])
            return time.perf_counter() - t0
        finally:
            await server.stop()

    storm_s = asyncio.run(storm())
    n_sent = N_CLIENTS * REQUESTS_PER_CLIENT
    counters = telemetry.registry.snapshot()["counters"]
    accounted = sum(value for key, value in counters.items()
                    if key.startswith("repro.serve.queries{"))
    errors = sum(value for key, value in counters.items()
                 if key.startswith("repro.serve.queries{")
                 and "outcome=error" in key)
    latencies.sort()
    return {
        "build_s": build_s,
        "storm_s": storm_s,
        "n_clients": N_CLIENTS,
        "n_queries": n_sent,
        "qps": n_sent / storm_s if storm_s else float("inf"),
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "max_ms": latencies[-1],
        "failures": failures,
        "accounted": accounted,
        "server_errors": errors,
    }


def render(result):
    table = Table(
        ["metric", "value"],
        title=f"Query service under {result['n_clients']} concurrent "
              f"clients ({result['n_queries']} queries)")
    table.add_row(["store build (s)", f"{result['build_s']:.2f}"])
    table.add_row(["storm wall (s)", f"{result['storm_s']:.2f}"])
    table.add_row(["throughput (q/s)", f"{result['qps']:.0f}"])
    table.add_row(["p50 latency (ms)", f"{result['p50_ms']:.2f}"])
    table.add_row(["p99 latency (ms)", f"{result['p99_ms']:.2f}"])
    table.add_row(["max latency (ms)", f"{result['max_ms']:.2f}"])
    table.add_row(["failed queries", len(result["failures"])])
    table.add_row(["unaccounted queries",
                   result["n_queries"] - result["accounted"]])
    return table.render()


def test_query_service_storm(tmp_path_factory, emit, emit_json):
    cache_dir = str(tmp_path_factory.mktemp("bench-serve"))
    result = measure(cache_dir)
    emit("query_service", render(result))
    emit_json("query_service", {
        "build_s": result["build_s"],
        "storm_s": result["storm_s"],
        "qps": result["qps"],
        "p50_ms": result["p50_ms"],
        "p99_ms": result["p99_ms"],
        "n_clients": result["n_clients"],
        "n_queries": result["n_queries"],
        "failures": len(result["failures"]),
    })

    assert result["n_clients"] >= 100
    assert not result["failures"], result["failures"][:5]
    assert result["server_errors"] == 0
    assert result["accounted"] == result["n_queries"]
    assert result["p99_ms"] > 0


if __name__ == "__main__":  # standalone run
    import shutil
    import tempfile

    cache_dir = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        result = measure(cache_dir)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    print(render(result))
    ok = (not result["failures"]
          and result["accounted"] == result["n_queries"])
    raise SystemExit(0 if ok else 1)
