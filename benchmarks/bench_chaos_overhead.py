"""Chaos-layer overhead: disabled fault injection must cost <5%.

The fault injector's contract is "pay only when you play": with a null
policy, ``wrap_transport`` returns the original callable (zero
overhead), and even the *armed* wrapper (``force=True``) — every fault
probability zero but the per-call checks still executed — must stay
under 5% on the pipeline's hot path. This bench prices both by running
the reactive platform (transport-bound: one transport call per probe)
over the TransIP window with each transport variant.
"""

import time

from repro import ChaosConfig, ReactivePlatform
from repro.chaos import FaultInjector
from repro.util.tables import Table
from repro.util.timeutil import Window, parse_ts

TRANSIP_MARCH = Window(parse_ts("2021-03-01 18:00"), parse_ts("2021-03-02 04:00"))

#: acceptance bound on disabled-chaos overhead (the ISSUE criterion).
MAX_OVERHEAD = 0.05
#: noise-tolerant sanity bound on the always-armed wrapper.
MAX_ARMED_OVERHEAD = 0.15
ROUNDS = 5


def _run_platform(study, transport):
    platform = ReactivePlatform(study.world, transport=transport)
    return platform.run(study.feed, window=TRANSIP_MARCH)


def measure(study):
    plain = study.world.transport
    injector = FaultInjector(ChaosConfig(seed=0))
    disabled = injector.wrap_transport(plain)            # null -> unwrapped
    armed = injector.wrap_transport(plain, force=True)   # wrapper, zero probs

    # Arms run back-to-back within each round, and overhead is the
    # *median of per-round ratios*: slow CPU phases (container
    # throttling) hit all arms of a round alike and cancel in the
    # ratio, where a min-per-arm across rounds would compare different
    # moments in time.
    times = {"plain": [], "disabled": [], "armed": []}
    stores = {}
    for _ in range(ROUNDS):
        for name, transport in (("plain", plain), ("disabled", disabled),
                                ("armed", armed)):
            t0 = time.perf_counter()
            stores[name] = _run_platform(study, transport)
            times[name].append(time.perf_counter() - t0)

    def median_ratio(name):
        ratios = sorted(t / p for t, p in zip(times[name], times["plain"]))
        return ratios[len(ratios) // 2]

    return {
        "plain": min(times["plain"]),
        "disabled": min(times["disabled"]),
        "armed": min(times["armed"]),
        "overhead_disabled": median_ratio("disabled") - 1.0,
        "overhead_armed": median_ratio("armed") - 1.0,
        "identical_disabled": disabled is plain,
        "n_probes": len(stores["plain"].probes),
        # Repeated platform runs share the world's transport RNG stream,
        # so exact probe samples differ run-to-run (see architecture.md
        # on determinism); only the *volume* is comparable.
        "probe_spread": (max(len(s.probes) for s in stores.values())
                         / min(len(s.probes) for s in stores.values()) - 1.0),
        "faults": len(injector.events),
    }


def render(result):
    table = Table(["transport variant", "best of %d (s)" % ROUNDS,
                   "overhead (median of paired rounds)"],
                  title="Chaos layer overhead (reactive platform, "
                        f"{result['n_probes']} probes)")
    table.add_row(["plain", f"{result['plain']:.3f}", "+0.0%"])
    for name in ("disabled", "armed"):
        table.add_row([name, f"{result[name]:.3f}",
                       f"{result['overhead_' + name]:+.1%}"])
    return table.render()


def test_chaos_overhead(transip_study, emit, emit_json):
    result = measure(transip_study)
    emit("chaos_overhead", render(result))
    emit_json("chaos_overhead", {
        "plain_s": result["plain"],
        "disabled_s": result["disabled"],
        "armed_s": result["armed"],
        "overhead_disabled": result["overhead_disabled"],
        "overhead_armed": result["overhead_armed"],
        "n_probes": result["n_probes"],
    })

    # Null policy short-circuits to the unwrapped callable, so disabled
    # chaos must sit inside the 5% acceptance bound (any excess is
    # measurement noise on an identical code path).
    assert result["identical_disabled"]
    assert result["overhead_disabled"] < MAX_OVERHEAD
    # The armed wrapper does real per-call work; it lands ~4% in
    # isolation, bounded looser here to tolerate shared-run noise.
    assert result["overhead_armed"] < MAX_ARMED_OVERHEAD
    # Zero probabilities: no faults fired, probe volume unchanged (the
    # exact samples legitimately drift with the shared RNG stream).
    assert result["faults"] == 0
    assert result["probe_spread"] < 0.02


if __name__ == "__main__":  # standalone: python benchmarks/bench_chaos_overhead.py
    from repro import WorldConfig, run_study

    study = run_study(WorldConfig(
        seed=7, start="2020-11-01", end_exclusive="2021-04-01",
        n_domains=2500, n_selfhosted_providers=20, n_filler_providers=10,
        attacks_per_month=200))
    result = measure(study)
    print(render(result))
    disabled = result["overhead_disabled"]
    armed = result["overhead_armed"]
    print(f"\ndisabled overhead: {disabled:+.1%} (bound {MAX_OVERHEAD:.0%}, "
          f"identical callable: {result['identical_disabled']}); "
          f"armed wrapper: {armed:+.1%} (bound {MAX_ARMED_OVERHEAD:.0%})")
    raise SystemExit(0 if disabled < MAX_OVERHEAD
                     and armed < MAX_ARMED_OVERHEAD else 1)
