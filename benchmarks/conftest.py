"""Shared benchmark fixtures: session-scoped studies and result output.

Every benchmark regenerates one of the paper's tables or figures from a
shared 17-month study (scaled world), times the regeneration step with
pytest-benchmark, and writes the paper-vs-measured rows both to stdout
and to ``benchmarks/out/<name>.txt`` so the results survive pytest's
output capture.

Benchmarks with numeric results additionally dump them machine-readable
via ``emit_json`` as ``BENCH_<name>.json`` in the ``repro.obs/v2``
telemetry snapshot schema (each value a ``repro.bench.<name>.<key>``
gauge; older baselines on disk are v1, and every reader accepts both),
so a perf trajectory accumulates across runs in one parseable format —
``python -m repro obs bench-diff`` compares a fresh batch against the
tracked baselines direction-aware. Unlike the rendered ``.txt`` files (scratch output under the
gitignored ``benchmarks/out/``), the JSON snapshots land in the
**tracked** ``benchmarks/baselines/`` directory — the perf trajectory
is only a trajectory if the snapshots actually reach version control —
or wherever ``REPRO_BENCH_OUT`` points (CI uploads them as artifacts
from there).

``REPRO_BENCH_DOMAINS`` scales the shared study's domain population
(default 20000) so CI smoke runs can exercise the full bench path in
seconds.
"""

from __future__ import annotations

import os

import pytest

from repro import ReactivePlatform, RunTelemetry, WorldConfig, run_study

# The full 17-month window at a laptop-scale population (large enough
# that the mega-anycast providers sit a full domain-count decade above
# the mid-market tier, which Figure 8 stratifies on). One build is
# shared by every benchmark in the session (~2-3 minutes).
BENCH_CONFIG = WorldConfig(
    n_domains=int(os.environ.get("REPRO_BENCH_DOMAINS", "20000")),
    attacks_per_month=1500)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
#: where BENCH_*.json perf snapshots go: a tracked baseline directory
#: by default, or the CI artifact staging dir via REPRO_BENCH_OUT.
JSON_OUT_DIR = (os.environ.get("REPRO_BENCH_OUT")
                or os.path.join(os.path.dirname(__file__), "baselines"))


@pytest.fixture(scope="session")
def study():
    """The shared 17-month bench study."""
    return run_study(BENCH_CONFIG)


@pytest.fixture(scope="session")
def transip_study():
    """A Nov-2020..Mar-2021 study for the TransIP case benches."""
    return run_study(WorldConfig(
        seed=7, start="2020-11-01", end_exclusive="2021-04-01",
        n_domains=2500, n_selfhosted_providers=20, n_filler_providers=10,
        attacks_per_month=200))


@pytest.fixture(scope="session")
def russia_study():
    """A Feb-Mar 2022 study for the Russian case benches."""
    return run_study(WorldConfig(
        seed=11, start="2022-02-01", end_exclusive="2022-04-01",
        n_domains=2000, n_selfhosted_providers=20, n_filler_providers=10,
        attacks_per_month=200))


@pytest.fixture(scope="session")
def emit():
    """Write a benchmark's rendered result to stdout + a file."""
    os.makedirs(OUT_DIR, exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fp:
            fp.write(text + "\n")

    return _emit


@pytest.fixture(scope="session")
def emit_json():
    """Dump a benchmark's numeric results as ``BENCH_<name>.json``.

    ``values`` is a flat mapping of result keys to numbers; each becomes
    a ``repro.bench.<name>.<key>`` gauge and the file is a full
    ``repro.obs/v2`` snapshot, parseable by the same tooling that reads
    ``--metrics-out`` files (``repro obs summary`` / ``bench-diff``). Snapshots go to :data:`JSON_OUT_DIR` — the
    tracked ``benchmarks/baselines/`` unless ``REPRO_BENCH_OUT``
    redirects them (e.g. to a CI artifact directory).
    """
    os.makedirs(JSON_OUT_DIR, exist_ok=True)

    def _emit_json(name: str, values) -> str:
        telemetry = RunTelemetry.create()
        for key, value in sorted(values.items()):
            telemetry.registry.gauge(f"repro.bench.{name}.{key}").set(value)
        path = os.path.join(JSON_OUT_DIR, f"BENCH_{name}.json")
        telemetry.write_json(path)
        return path

    return _emit_json
