"""Quarterly anycast census (MAnycast2 analog).

The paper labels nameserver /24s as anycast by matching them against
quarterly census snapshots (Jan 2021 .. Jan 2022), treating the census
as a *lower bound*: a /24 the census missed is silently treated as
unicast. The simulated census reproduces both the /24 matching and the
imperfect recall.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, TextIO

from repro.net.ip import ip_to_str, parse_ip, slash24_of
from repro.util.rng import derive_seed
from repro.util.timeutil import parse_ts

CENSUS_DATES = ("2021-01-01", "2021-04-01", "2021-07-01", "2021-10-01",
                "2022-01-01")


@dataclass
class CensusSnapshot:
    """One quarterly snapshot: the set of /24s detected as anycast."""

    taken_at: int
    anycast_slash24s: Set[int] = field(default_factory=set)

    def add_ip(self, ip: int) -> None:
        self.anycast_slash24s.add(slash24_of(ip))

    def is_anycast(self, ip: int) -> bool:
        """Is the /24 containing ``ip`` in this snapshot's anycast set?"""
        return slash24_of(ip) in self.anycast_slash24s

    def __len__(self) -> int:
        return len(self.anycast_slash24s)


class AnycastCensus:
    """The full quarterly census series with point-in-time lookup."""

    def __init__(self, snapshots: Optional[List[CensusSnapshot]] = None):
        self.snapshots: List[CensusSnapshot] = sorted(
            snapshots or [], key=lambda s: s.taken_at)

    def add_snapshot(self, snapshot: CensusSnapshot) -> None:
        self.snapshots.append(snapshot)
        self.snapshots.sort(key=lambda s: s.taken_at)

    def snapshot_for(self, ts: int) -> Optional[CensusSnapshot]:
        """The most recent snapshot at or before ``ts`` (or the earliest
        one, mirroring the paper's use of the Jan-2021 census for
        Nov/Dec-2020 data)."""
        if not self.snapshots:
            return None
        chosen = self.snapshots[0]
        for snap in self.snapshots:
            if snap.taken_at <= ts:
                chosen = snap
            else:
                break
        return chosen

    def is_anycast(self, ip: int, ts: int) -> bool:
        snap = self.snapshot_for(ts)
        return bool(snap and snap.is_anycast(ip))

    def label_nsset(self, ns_ips: Iterable[int], ts: int) -> str:
        """Label an NSSet ``anycast`` / ``partial`` / ``unicast``.

        ``anycast``: every nameserver /24 detected as anycast;
        ``partial``: at least one but not all (paper's partial anycast);
        ``unicast``: none.
        """
        ips = list(ns_ips)
        if not ips:
            return "unicast"
        flags = [self.is_anycast(ip, ts) for ip in ips]
        if all(flags):
            return "anycast"
        if any(flags):
            return "partial"
        return "unicast"

    # -- construction from ground truth --------------------------------------

    @classmethod
    def observe_world(cls, seed: int, anycast_ips: Iterable[int],
                      recall: float = 0.9,
                      dates: Iterable[str] = CENSUS_DATES) -> "AnycastCensus":
        """Simulate the census observing the world's true anycast IPs.

        Each snapshot independently detects each anycast /24 with
        probability ``recall`` — the lower-bound character the paper
        relies on. False positives are not modeled (MAnycast2's
        methodology errs toward missing, not inventing, anycast).
        """
        if not 0 < recall <= 1:
            raise ValueError("recall must be within (0, 1]")
        slash24s = sorted({slash24_of(ip) for ip in anycast_ips})
        census = cls()
        for date in dates:
            ts = parse_ts(date)
            rng = random.Random(derive_seed(seed, "census", date))
            snap = CensusSnapshot(taken_at=ts)
            for s24 in slash24s:
                if rng.random() < recall:
                    snap.anycast_slash24s.add(s24)
            census.add_snapshot(snap)
        return census

    # -- serialization --------------------------------------------------------

    def dump(self, fp: TextIO) -> None:
        for snap in self.snapshots:
            fp.write(json.dumps({
                "taken_at": snap.taken_at,
                "slash24s": [ip_to_str(s) for s in sorted(snap.anycast_slash24s)],
            }) + "\n")

    @classmethod
    def load(cls, fp: TextIO) -> "AnycastCensus":
        census = cls()
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                snap = CensusSnapshot(taken_at=int(row["taken_at"]))
                for text in row["slash24s"]:
                    snap.anycast_slash24s.add(parse_ip(text))
                census.add_snapshot(snap)
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(f"line {lineno}: malformed census row") from exc
        return census
