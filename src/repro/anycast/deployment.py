"""Anycast deployments: sites, catchments, and traffic splitting.

The resilience mechanism the paper finds most effective (§6.6.1) is
mechanistic: a volumetric attack's sources are spread across the
Internet, so each anycast site absorbs only its catchment's share, while
a legitimate client is served by exactly one site. Both behaviours are
modeled here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.util.rng import derive_seed

_REGIONS = ("eu-west", "eu-east", "us-east", "us-west", "sa", "af",
            "ap-south", "ap-east", "oceania", "me")


@dataclass(frozen=True)
class AnycastSite:
    """One replica site of an anycast deployment."""

    site_id: str
    region: str
    catchment_weight: float
    capacity_pps: float

    def __post_init__(self) -> None:
        if self.catchment_weight < 0:
            raise ValueError("catchment weight must be non-negative")
        if self.capacity_pps <= 0:
            raise ValueError("capacity must be positive")


class AnycastDeployment:
    """A set of sites announcing one service address.

    ``catchment_weight`` captures what share of globally-spread traffic
    (spoofed attack sources are uniform over IPv4 space) lands at each
    site. Weights are normalized on construction.
    """

    def __init__(self, sites: Sequence[AnycastSite]):
        if not sites:
            raise ValueError("an anycast deployment needs at least one site")
        total = sum(s.catchment_weight for s in sites)
        if total <= 0:
            raise ValueError("total catchment weight must be positive")
        self.sites: Tuple[AnycastSite, ...] = tuple(
            AnycastSite(s.site_id, s.region, s.catchment_weight / total,
                        s.capacity_pps)
            for s in sites
        )

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    @property
    def total_capacity_pps(self) -> float:
        return sum(s.capacity_pps for s in self.sites)

    def site_for_region(self, region: str) -> AnycastSite:
        """The site a client in ``region`` is routed to: the site of the
        same region if one exists, else the largest-catchment site.

        This is the "catchment can mask regional impact" phenomenon from
        the paper's limitations (§4.3): a single vantage point only ever
        observes its own site.
        """
        for site in self.sites:
            if site.region == region:
                return site
        return max(self.sites, key=lambda s: s.catchment_weight)

    def spread_attack(self, attack_pps: float) -> List[Tuple[AnycastSite, float]]:
        """Split a uniformly-sourced attack across sites by catchment."""
        if attack_pps < 0:
            raise ValueError("attack rate must be non-negative")
        return [(site, attack_pps * site.catchment_weight) for site in self.sites]

    def load_at_site(self, site: AnycastSite, attack_pps: float) -> float:
        """Utilization (attack pps / capacity) at one site."""
        return attack_pps * site.catchment_weight / site.capacity_pps

    @classmethod
    def build(cls, seed: int, n_sites: int, per_site_capacity_pps: float,
              skew: float = 0.5) -> "AnycastDeployment":
        """Generate a deployment with mildly skewed catchments.

        ``skew`` in [0, 1): 0 gives uniform catchments; larger values
        concentrate traffic on a few sites (real catchments are uneven).
        """
        if n_sites <= 0:
            raise ValueError("n_sites must be positive")
        if not 0 <= skew < 1:
            raise ValueError("skew must be within [0, 1)")
        rng = random.Random(derive_seed(seed, "anycast-sites"))
        sites = []
        for i in range(n_sites):
            weight = 1.0 + skew * rng.expovariate(1.0) * 3.0
            sites.append(AnycastSite(
                site_id=f"site-{i:02d}",
                region=_REGIONS[i % len(_REGIONS)],
                catchment_weight=weight,
                capacity_pps=per_site_capacity_pps,
            ))
        return cls(sites)


class CatchmentModel:
    """Maps client regions to sites for a set of deployments.

    A thin indirection so experiments can swap in alternative catchment
    policies (e.g. fully random, or weight-proportional) when studying
    vantage-point effects.
    """

    def __init__(self, policy: str = "regional"):
        if policy not in ("regional", "largest", "weighted"):
            raise ValueError(f"unknown catchment policy: {policy}")
        self.policy = policy

    def site_for(self, deployment: AnycastDeployment, region: str,
                 rng: Optional[random.Random] = None) -> AnycastSite:
        if self.policy == "regional":
            return deployment.site_for_region(region)
        if self.policy == "largest":
            return max(deployment.sites, key=lambda s: s.catchment_weight)
        if rng is None:
            raise ValueError("weighted policy requires an rng")
        x = rng.random()
        acc = 0.0
        for site in deployment.sites:
            acc += site.catchment_weight
            if x < acc:
                return site
        return deployment.sites[-1]
