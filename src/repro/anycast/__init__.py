"""IP anycast modeling and the quarterly anycast census.

Anycast lets multiple sites announce the same address; attack traffic is
split across sites by BGP catchment while a single-vantage measurement
only ever sees its own catchment site. The census mirrors the MAnycast2
snapshots the paper uses: a *lower-bound* detector of anycast /24s.
"""

from repro.anycast.deployment import AnycastDeployment, AnycastSite, CatchmentModel
from repro.anycast.census import AnycastCensus, CensusSnapshot

__all__ = [
    "AnycastDeployment",
    "AnycastSite",
    "CatchmentModel",
    "AnycastCensus",
    "CensusSnapshot",
]
