"""The on-disk artifact store: content-addressed blobs + manifest.

Layout of a cache directory::

    <root>/
      index.json          # manifest: key -> {phase, size, created, last_used}
      lock                # advisory lockfile serializing manifest updates
      objects/<k[:2]>/<k> # one blob per key (sha256 hex, sharded by prefix)

Blobs are addressed by their phase fingerprint key (see
:mod:`repro.artifacts.fingerprint`) and written atomically (temp file +
``os.replace``), so a crashed writer can never leave a truncated blob
behind. Manifest updates run under an advisory ``flock`` so concurrent
study runs sharing one cache directory cannot corrupt the index; blob
writes themselves need no lock because two writers of the same key are
writing identical bytes (the key fixes the content).

The store is a plain LRU: :meth:`ArtifactStore.get` stamps
``last_used``, and :meth:`ArtifactStore.gc` evicts least-recently-used
entries until the store fits a byte cap.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.util.fileio import atomic_write

try:  # pragma: no cover - fcntl is present on every POSIX target
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

__all__ = ["ArtifactEntry", "ArtifactStore"]

_INDEX = "index.json"
_LOCK = "lock"
_OBJECTS = "objects"
_INDEX_SCHEMA = "repro.artifacts.index/v1"


@dataclass(frozen=True)
class ArtifactEntry:
    """One manifest row: what is cached and how it has been used."""

    key: str
    phase: str
    size: int
    created: float
    last_used: float


class ArtifactStore:
    """A size-capped, content-addressed blob store on a local directory."""

    def __init__(self, root: str, max_bytes: Optional[int] = None):
        self.root = root
        #: soft cap enforced by :meth:`gc` (``None`` = unbounded).
        self.max_bytes = max_bytes
        os.makedirs(os.path.join(root, _OBJECTS), exist_ok=True)

    # -- paths / locking ------------------------------------------------------

    def _blob_path(self, key: str) -> str:
        return os.path.join(self.root, _OBJECTS, key[:2], key)

    @property
    def _index_path(self) -> str:
        return os.path.join(self.root, _INDEX)

    @contextmanager
    def _lock(self, shared: bool = False) -> Iterator[None]:
        """Advisory lock over manifest access: exclusive for writers,
        shared (``LOCK_SH``) for read-only paths, so concurrent readers
        never serialize behind each other — only behind a writer."""
        path = os.path.join(self.root, _LOCK)
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_SH if shared else fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    # -- manifest -------------------------------------------------------------

    def _read_index(self) -> Dict[str, Dict]:
        try:
            with open(self._index_path) as fp:
                doc = json.load(fp)
        except (OSError, ValueError):
            # Missing or damaged manifest: start empty. Blobs still on
            # disk are re-adopted lazily as their keys are re-put.
            return {}
        if doc.get("schema") != _INDEX_SCHEMA:
            return {}
        entries = doc.get("entries")
        return entries if isinstance(entries, dict) else {}

    def _write_index(self, entries: Dict[str, Dict]) -> None:
        with atomic_write(self._index_path) as fp:
            json.dump({"schema": _INDEX_SCHEMA, "entries": entries},
                      fp, indent=2, sort_keys=True)
            fp.write("\n")

    # -- blob access ----------------------------------------------------------

    def has(self, key: str) -> bool:
        """Whether ``key`` is present (manifest and blob both)."""
        return key in self._read_index() and os.path.exists(
            self._blob_path(key))

    def get(self, key: str, touch: bool = True) -> Optional[bytes]:
        """The blob for ``key``, or ``None`` on a miss.

        A hit stamps the entry's ``last_used``; a manifest entry whose
        blob vanished (or vice versa) is treated as a miss and dropped.
        ``touch=False`` is a pure read: it takes only the shared lock,
        never rewrites the manifest, and leaves LRU state untouched —
        the path concurrent readers (the serve layer) use while a
        writer may be racing them.
        """
        if not touch:
            with self._lock(shared=True):
                if key not in self._read_index():
                    return None
                try:
                    with open(self._blob_path(key), "rb") as fp:
                        return fp.read()
                except OSError:
                    return None
        with self._lock():
            entries = self._read_index()
            meta = entries.get(key)
            if meta is None:
                return None
            try:
                with open(self._blob_path(key), "rb") as fp:
                    data = fp.read()
            except OSError:
                del entries[key]
                self._write_index(entries)
                return None
            meta["last_used"] = time.time()
            self._write_index(entries)
            return data

    def put(self, key: str, data: bytes, phase: str = "") -> None:
        """Store ``data`` under ``key`` atomically and index it."""
        with atomic_write(self._blob_path(key), "wb") as fp:
            fp.write(data)
        now = time.time()
        with self._lock():
            entries = self._read_index()
            created = entries.get(key, {}).get("created", now)
            entries[key] = {"phase": phase, "size": len(data),
                            "created": created, "last_used": now}
            self._write_index(entries)

    # -- inspection -----------------------------------------------------------

    def entries(self) -> List[ArtifactEntry]:
        """Manifest rows, most recently used first."""
        rows = [
            ArtifactEntry(key=key, phase=str(meta.get("phase", "")),
                          size=int(meta.get("size", 0)),
                          created=float(meta.get("created", 0.0)),
                          last_used=float(meta.get("last_used", 0.0)))
            for key, meta in self._read_index().items()
        ]
        rows.sort(key=lambda e: (-e.last_used, e.key))
        return rows

    @property
    def total_bytes(self) -> int:
        """Sum of indexed blob sizes."""
        return sum(int(m.get("size", 0))
                   for m in self._read_index().values())

    def __len__(self) -> int:
        return len(self._read_index())

    # -- maintenance ----------------------------------------------------------

    def gc(self, max_bytes: Optional[int] = None) -> List[ArtifactEntry]:
        """Evict least-recently-used entries until the store fits
        ``max_bytes`` (defaults to the store's cap); returns what was
        evicted. A ``None``/absent cap is a no-op.
        """
        cap = self.max_bytes if max_bytes is None else max_bytes
        if cap is None:
            return []
        evicted: List[ArtifactEntry] = []
        with self._lock():
            entries = self._read_index()
            total = sum(int(m.get("size", 0)) for m in entries.values())
            # Oldest last_used first.
            for key in sorted(entries,
                              key=lambda k: (entries[k].get("last_used", 0.0),
                                             k)):
                if total <= cap:
                    break
                meta = entries.pop(key)
                total -= int(meta.get("size", 0))
                evicted.append(ArtifactEntry(
                    key=key, phase=str(meta.get("phase", "")),
                    size=int(meta.get("size", 0)),
                    created=float(meta.get("created", 0.0)),
                    last_used=float(meta.get("last_used", 0.0))))
                try:
                    os.unlink(self._blob_path(key))
                except OSError:
                    pass
            if evicted:
                self._write_index(entries)
        return evicted

    def clear(self) -> int:
        """Remove every entry and blob; returns how many were dropped."""
        with self._lock():
            entries = self._read_index()
            for key in entries:
                try:
                    os.unlink(self._blob_path(key))
                except OSError:
                    pass
            self._write_index({})
            return len(entries)
