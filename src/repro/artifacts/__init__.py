"""repro.artifacts — the content-addressed phase cache.

The paper's own workflow is "measure once, analyze many times"
(OpenINTEL Avro archives + CAIDA's curated RSDoS feed, §3); this
package gives the reproduction the same property. Each expensive
pipeline phase — telescope, crawl, join, events — gets a deterministic
sha256 fingerprint chained from the canonical
:class:`~repro.world.config.WorldConfig` (see
:mod:`repro.artifacts.fingerprint`), its output an exact serialized
form (:mod:`repro.artifacts.serializers`), and a content-addressed
on-disk home with an LRU-capped manifest
(:mod:`repro.artifacts.store`). ``run_study(..., cache="~/.cache/...")``
then skips every phase whose key is already present — warm-cache
output is bit-identical to cold, at any worker count.

>>> from repro import WorldConfig, run_study
>>> study = run_study(WorldConfig.tiny(), cache="/tmp/repro-cache")
>>> warm = run_study(WorldConfig.tiny(), cache="/tmp/repro-cache")  # skips
>>> warm.report() == study.report()
True

Chaos runs bypass the cache entirely: injected faults must never be
cached. See ``docs/caching.md`` for the layout and invalidation rules.
"""

from repro.artifacts.cache import PhaseCache
from repro.artifacts.fingerprint import (PHASES, SCHEMA_VERSIONS,
                                         catalog_key, config_fingerprint,
                                         day_keys, phase_key, study_keys)
from repro.artifacts.serializers import (PHASE_SERIALIZERS, dumps_catalog,
                                         dumps_events, dumps_feed, dumps_join,
                                         dumps_store, loads_catalog,
                                         loads_events, loads_feed, loads_join,
                                         loads_store)
from repro.artifacts.store import ArtifactEntry, ArtifactStore

__all__ = [
    "ArtifactEntry",
    "ArtifactStore",
    "PhaseCache",
    "PHASES",
    "PHASE_SERIALIZERS",
    "SCHEMA_VERSIONS",
    "config_fingerprint",
    "phase_key",
    "study_keys",
    "day_keys",
    "catalog_key",
    "dumps_feed", "loads_feed",
    "dumps_store", "loads_store",
    "dumps_join", "loads_join",
    "dumps_events", "loads_events",
    "dumps_catalog", "loads_catalog",
]
