"""The pipeline-facing phase cache: store + serializers + metrics.

:class:`PhaseCache` is what ``run_study(..., cache=...)`` talks to at
each phase boundary: *fetch* an artifact by its fingerprint key (a hit
deserializes and skips the phase), or *save* a freshly-computed one.
The pipeline no longer calls it inline: fetch/save is driven by
:class:`repro.engine.CacheMiddleware`, which applies this cache
uniformly to every study-graph node declaring a ``cache_key``.
Every operation is accounted through :mod:`repro.obs`:

- ``repro.cache.hits{phase=...}`` / ``repro.cache.misses{phase=...}``
- ``repro.cache.bytes_read{phase=...}`` / ``repro.cache.bytes_written{phase=...}``

A damaged or unreadable cache entry is a *miss*, never an error: the
pipeline recomputes and overwrites it. Saving is likewise best-effort —
an artifact that refuses to serialize (e.g. a degraded join) is skipped
with a ``repro.cache.skipped`` count, and the run proceeds unaffected.

Chaos runs never construct a :class:`PhaseCache` at all (the pipeline
bypasses caching entirely when a fault injector is active): injected
faults are schedule-dependent state, and caching them would replay one
run's faults into every later run.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.artifacts.serializers import PHASE_SERIALIZERS
from repro.artifacts.store import ArtifactStore
from repro.obs import NULL_TELEMETRY, RunTelemetry

__all__ = ["PhaseCache"]


class PhaseCache:
    """Fetch/save phase artifacts against one :class:`ArtifactStore`."""

    def __init__(self, store: ArtifactStore,
                 telemetry: Optional[RunTelemetry] = None):
        self.store = store
        self.telemetry = telemetry or NULL_TELEMETRY

    @classmethod
    def open(cls, cache: Union[str, ArtifactStore, "PhaseCache"],
             telemetry: Optional[RunTelemetry] = None) -> "PhaseCache":
        """Normalize what callers hand ``run_study``: a cache directory
        path, a bare :class:`ArtifactStore`, or a ready cache."""
        if isinstance(cache, PhaseCache):
            if telemetry is not None and cache.telemetry is NULL_TELEMETRY:
                cache.telemetry = telemetry
            return cache
        if isinstance(cache, ArtifactStore):
            return cls(cache, telemetry)
        return cls(ArtifactStore(str(cache)), telemetry)

    # -- counters -------------------------------------------------------------

    def _count(self, name: str, phase: str, n: int = 1) -> None:
        self.telemetry.registry.counter(f"repro.cache.{name}",
                                        phase=phase).inc(n)

    # -- fetch / save ---------------------------------------------------------

    def fetch(self, phase: str, key: str,
              loads: Optional[Callable[[bytes], object]] = None):
        """The cached artifact of ``phase`` under ``key``, or ``None``.

        A present-but-undeserializable blob counts as a miss (the
        recompute will overwrite it); ``loads`` defaults to the phase's
        registered serializer.
        """
        loads = loads or PHASE_SERIALIZERS[phase][1]
        journal = self.telemetry.journal
        data = self.store.get(key)
        if data is None:
            self._count("misses", phase)
            journal.emit("cache.miss", phase=phase, key=key)
            return None
        try:
            artifact = loads(data)
        except Exception:
            self._count("misses", phase)
            journal.emit("cache.miss", phase=phase, key=key,
                         corrupt=True)
            return None
        self._count("hits", phase)
        self._count("bytes_read", phase, len(data))
        journal.emit("cache.hit", phase=phase, key=key, bytes=len(data))
        return artifact

    def save(self, phase: str, key: str, artifact: object,
             dumps: Optional[Callable[[object], bytes]] = None) -> bool:
        """Serialize and store a phase artifact; returns whether it was
        written. Unserializable artifacts are skipped, not fatal."""
        dumps = dumps or PHASE_SERIALIZERS[phase][0]
        try:
            data = dumps(artifact)
        except ValueError:
            self._count("skipped", phase)
            self.telemetry.journal.emit("cache.skipped", phase=phase,
                                        key=key)
            return False
        self.store.put(key, data, phase=phase)
        self._count("bytes_written", phase, len(data))
        self.telemetry.journal.emit("cache.save", phase=phase, key=key,
                                    bytes=len(data))
        return True
