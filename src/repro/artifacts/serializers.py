"""Exact serializers for the expensive phase outputs.

Each cacheable phase artifact — the telescope's :class:`RSDoSFeed`, the
crawl's :class:`MeasurementStore`, the :class:`DatasetJoin`, and the
extracted :class:`AttackEvent` list — gets a ``dumps``/``loads`` pair
over UTF-8 JSON bytes. These extend the :mod:`repro.datasets.io` text
formats with one stricter contract: **every value round-trips exactly**.
Floats are emitted via ``json``'s ``repr``-faithful formatting (the
export CSVs round RTTs for human eyes; a cache must not), so a warm
study is bit-identical to the cold run that populated it — the property
the pipeline tests assert.

Serialized bytes are deterministic (sorted keys, fixed separators, no
whitespace variance), so re-serializing a loaded artifact reproduces
the cached bytes byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List

from repro.core.events import AttackEvent
from repro.core.join import (AttackClass, ClassifiedAttack, DatasetJoin)
from repro.core.metrics import ImpactPoint, ImpactSeries
from repro.core.nsset import NSSetInfo
from repro.openintel.storage import Aggregate, MeasurementStore
from repro.telescope.feed import FeedRecord, RSDoSFeed
from repro.telescope.rsdos import InferredAttack
from repro.util.timeutil import Window

__all__ = [
    "dumps_feed", "loads_feed",
    "dumps_store", "loads_store",
    "dumps_join", "loads_join",
    "dumps_events", "loads_events",
    "dumps_catalog", "loads_catalog",
    "PHASE_SERIALIZERS",
]

_FEED_SCHEMA = "repro.artifacts.feed/v1"
_STORE_SCHEMA_V1 = "repro.artifacts.store/v1"
#: v2: columnar layout — one flat vector per aggregate field instead of
#: one row list per aggregate, so a warm crawl read deserializes a few
#: long JSON arrays and rebuilds aggregates in one tight column walk.
_STORE_SCHEMA = "repro.artifacts.store/v2"
_JOIN_SCHEMA = "repro.artifacts.join/v1"
_EVENTS_SCHEMA = "repro.artifacts.events/v1"

_RECORD_FIELDS = [f.name for f in dataclasses.fields(FeedRecord)]
_ATTACK_FIELDS = [f.name for f in dataclasses.fields(InferredAttack)]


def _dumps(doc: Dict) -> bytes:
    return json.dumps(doc, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _loads(data: bytes, schema: str) -> Dict:
    doc = json.loads(data.decode("utf-8"))
    found = doc.get("schema")
    if found != schema:
        raise ValueError(f"artifact schema mismatch: expected {schema!r}, "
                         f"found {found!r}")
    return doc


def _row(obj, field_names) -> List:
    return [getattr(obj, name) for name in field_names]


def _attack_from_row(row) -> InferredAttack:
    return InferredAttack(**dict(zip(_ATTACK_FIELDS, row)))


# -- telescope: RSDoSFeed -----------------------------------------------------


def dumps_feed(feed: RSDoSFeed) -> bytes:
    """Serialize the curated feed: window records + inferred attacks."""
    return _dumps({
        "schema": _FEED_SCHEMA,
        "record_fields": _RECORD_FIELDS,
        "attack_fields": _ATTACK_FIELDS,
        "records": [_row(r, _RECORD_FIELDS) for r in feed.records],
        "attacks": [_row(a, _ATTACK_FIELDS) for a in feed.attacks],
    })


def loads_feed(data: bytes) -> RSDoSFeed:
    """Deserialize :func:`dumps_feed` output (exact round-trip)."""
    doc = _loads(data, _FEED_SCHEMA)
    if doc["record_fields"] != _RECORD_FIELDS \
            or doc["attack_fields"] != _ATTACK_FIELDS:
        raise ValueError("feed artifact field layout mismatch")
    records = [FeedRecord(**dict(zip(_RECORD_FIELDS, row)))
               for row in doc["records"]]
    attacks = [_attack_from_row(row) for row in doc["attacks"]]
    return RSDoSFeed(records, attacks)


# -- crawl: MeasurementStore --------------------------------------------------

#: Aggregate columns as serialized, in order (matches ``Aggregate.state()``).
_AGG_COLUMNS = ("n", "ok_n", "rtt_sum", "rtt_min", "rtt_max",
                "timeout_n", "servfail_n", "other_err_n")


def _agg_from_row(row) -> Aggregate:
    agg = Aggregate()
    agg.n = row[2]
    agg.ok_n = row[3]
    # The expansion [rtt_sum] represents the same exact value as the
    # original multi-term expansion: fsum collapses to rtt_sum either
    # way, so every observable column round-trips bit-for-bit.
    rtt_sum = float(row[4])
    agg._rtt_partials = [rtt_sum] if rtt_sum else []
    agg.rtt_min = float(row[5])
    agg.rtt_max = float(row[6])
    agg.timeout_n = row[7]
    agg.servfail_n = row[8]
    agg.other_err_n = row[9]
    return agg


def _table_doc(table) -> Dict:
    """One aggregate dict as sorted column vectors (the v2 layout)."""
    rows = sorted(table.items())
    states = [agg.state() for _, agg in rows]
    doc: Dict = {
        "nsset_id": [key[0] for key, _ in rows],
        "ts": [key[1] for key, _ in rows],
    }
    for i, name in enumerate(_AGG_COLUMNS):
        doc[name] = [state[i] for state in states]
    return doc


def _table_load(doc: Dict, target) -> None:
    """Rebuild one aggregate dict from v2 column vectors."""
    nsset_id = doc["nsset_id"]
    ts = doc["ts"]
    cols = [doc[name] for name in _AGG_COLUMNS]
    n_col, ok_col, sum_col, min_col, max_col, to_col, sf_col, oe_col = cols
    for i in range(len(nsset_id)):
        agg = Aggregate()
        agg.n = n_col[i]
        agg.ok_n = ok_col[i]
        # [rtt_sum] represents the same exact value as the original
        # multi-term expansion (see _agg_from_row).
        rtt_sum = float(sum_col[i])
        agg._rtt_partials = [rtt_sum] if rtt_sum else []
        agg.rtt_min = float(min_col[i])
        agg.rtt_max = float(max_col[i])
        agg.timeout_n = to_col[i]
        agg.servfail_n = sf_col[i]
        agg.other_err_n = oe_col[i]
        target[(nsset_id[i], ts[i])] = agg


def dumps_store(store: MeasurementStore) -> bytes:
    """Serialize daily + dense 5-minute aggregates and ingest totals."""
    return _dumps({
        "schema": _STORE_SCHEMA,
        "columns": ["nsset_id", "ts", *_AGG_COLUMNS],
        "n_measurements": store.n_measurements,
        "n_rejected": store.n_rejected,
        "n_merges": store.n_merges,
        "daily": _table_doc(store.daily),
        "buckets": _table_doc(store.buckets),
    })


def loads_store(data: bytes) -> MeasurementStore:
    """Deserialize a cached store — the v2 columnar layout, or the v1
    row layout still found in caches written before the migration.
    Either way the round-trip is exact."""
    doc = json.loads(data.decode("utf-8"))
    found = doc.get("schema")
    if found not in (_STORE_SCHEMA, _STORE_SCHEMA_V1):
        raise ValueError(f"artifact schema mismatch: expected "
                         f"{_STORE_SCHEMA!r}, found {found!r}")
    store = MeasurementStore()
    store.n_measurements = doc["n_measurements"]
    store.n_rejected = doc["n_rejected"]
    store.n_merges = doc["n_merges"]
    if found == _STORE_SCHEMA_V1:
        for row in doc["daily"]:
            store.daily[(row[0], row[1])] = _agg_from_row(row)
        for row in doc["buckets"]:
            store.buckets[(row[0], row[1])] = _agg_from_row(row)
        return store
    _table_load(doc["daily"], store.daily)
    _table_load(doc["buckets"], store.buckets)
    return store


# -- join: DatasetJoin --------------------------------------------------------


def dumps_join(join: DatasetJoin) -> bytes:
    """Serialize a clean join result.

    Joins with rejected records are refused: rejects hold arbitrary
    damaged objects with no stable representation, and degraded results
    must never enter the cache anyway (they only arise under chaos,
    which bypasses it entirely).
    """
    if join.rejected:
        raise ValueError(
            "refusing to serialize a degraded join "
            f"({len(join.rejected)} rejected records)")
    return _dumps({
        "schema": _JOIN_SCHEMA,
        "attack_fields": _ATTACK_FIELDS,
        "classified": [
            {"attack": _row(c.attack, _ATTACK_FIELDS),
             "klass": c.klass.value,
             "affected_domains": c.affected_domains,
             "nsset_ids": list(c.nsset_ids)}
            for c in join.classified
        ],
    })


def loads_join(data: bytes) -> DatasetJoin:
    """Deserialize :func:`dumps_join` output (exact round-trip)."""
    doc = _loads(data, _JOIN_SCHEMA)
    join = DatasetJoin()
    for item in doc["classified"]:
        join.classified.append(ClassifiedAttack(
            attack=_attack_from_row(item["attack"]),
            klass=AttackClass(item["klass"]),
            affected_domains=item["affected_domains"],
            nsset_ids=tuple(item["nsset_ids"])))
    return join


# -- events: List[AttackEvent] ------------------------------------------------


def _info_doc(info: NSSetInfo) -> Dict:
    return {"nsset_id": info.nsset_id, "ips": list(info.ips),
            "n_domains": info.n_domains, "slash24s": list(info.slash24s),
            "asns": list(info.asns), "anycast_label": info.anycast_label,
            "company": info.company}


def _info_from(doc: Dict) -> NSSetInfo:
    return NSSetInfo(
        nsset_id=doc["nsset_id"], ips=tuple(doc["ips"]),
        n_domains=doc["n_domains"], slash24s=tuple(doc["slash24s"]),
        asns=tuple(doc["asns"]), anycast_label=doc["anycast_label"],
        company=doc["company"])


def _series_doc(series: ImpactSeries) -> Dict:
    return {
        "nsset_id": series.nsset_id,
        "window": [series.window.start, series.window.end],
        "baseline_rtt": series.baseline_rtt,
        "min_bucket_n": series.min_bucket_n,
        "degraded": series.degraded,
        "n_corrupt": series.n_corrupt,
        "points": [
            [p.ts, p.n, p.ok, p.timeouts, p.servfails, p.avg_rtt, p.impact]
            for p in series.points
        ],
    }


def _series_from(doc: Dict) -> ImpactSeries:
    return ImpactSeries(
        nsset_id=doc["nsset_id"],
        window=Window(doc["window"][0], doc["window"][1]),
        baseline_rtt=doc["baseline_rtt"],
        min_bucket_n=doc["min_bucket_n"],
        degraded=doc["degraded"],
        n_corrupt=doc["n_corrupt"],
        points=[ImpactPoint(ts=row[0], n=row[1], ok=row[2], timeouts=row[3],
                            servfails=row[4], avg_rtt=row[5], impact=row[6])
                for row in doc["points"]])


def dumps_events(events: List[AttackEvent]) -> bytes:
    """Serialize extracted attack events (attack + NSSet + series)."""
    return _dumps({
        "schema": _EVENTS_SCHEMA,
        "attack_fields": _ATTACK_FIELDS,
        "events": [
            {"attack": _row(e.attack, _ATTACK_FIELDS),
             "info": _info_doc(e.info),
             "series": _series_doc(e.series)}
            for e in events
        ],
    })


def loads_events(data: bytes) -> List[AttackEvent]:
    """Deserialize :func:`dumps_events` output (exact round-trip)."""
    doc = _loads(data, _EVENTS_SCHEMA)
    return [AttackEvent(attack=_attack_from_row(item["attack"]),
                        info=_info_from(item["info"]),
                        series=_series_from(item["series"]))
            for item in doc["events"]]


# -- serve layer: the domain->NSSet catalog -----------------------------------

_CATALOG_SCHEMA = "repro.artifacts.catalog/v1"


def dumps_catalog(catalog: Dict) -> bytes:
    """Serialize the serve layer's catalog (a plain JSON-able dict).

    Deliberately *not* registered in :data:`PHASE_SERIALIZERS`: the
    catalog is not a pipeline phase artifact — the serve store reads
    and writes it against the :class:`ArtifactStore` directly.
    """
    return _dumps({"schema": _CATALOG_SCHEMA, "catalog": catalog})


def loads_catalog(data: bytes) -> Dict:
    """Deserialize :func:`dumps_catalog` output."""
    return _loads(data, _CATALOG_SCHEMA)["catalog"]


#: phase name -> (dumps, loads), for the pipeline's cache boundary.
PHASE_SERIALIZERS = {
    "telescope": (dumps_feed, loads_feed),
    "crawl": (dumps_store, loads_store),
    "join": (dumps_join, loads_join),
    "events": (dumps_events, loads_events),
}
