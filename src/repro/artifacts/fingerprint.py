"""Deterministic phase fingerprints: what makes a cache entry valid.

A phase's cache key is a sha256 over everything its output can depend
on, and *nothing* else:

- the canonicalized :class:`~repro.world.config.WorldConfig` — every
  knob, including the nested :class:`~repro.dns.resolver.ResolverConfig`
  and :class:`~repro.attacks.generator.AttackScheduleConfig` (the
  world and both measurement systems are pure functions of it plus the
  seed it carries);
- whether scripted scenarios were installed into the world;
- the phase name and its serializer's schema version (bumping a
  version in :data:`SCHEMA_VERSIONS` invalidates exactly that phase's
  entries — and, through chaining, every phase downstream of it);
- the keys of its upstream phases (``join`` chains ``telescope``;
  ``events`` chains ``join`` and ``crawl``).

Worker count, telemetry, and progress callbacks are deliberately
absent: the crawl is bit-for-bit worker-count-invariant (PR 2) and
telemetry observes without perturbing (PR 3), so neither can change a
phase's output. Chaos runs never consult the cache at all (see
:mod:`repro.artifacts.cache`), so fault schedules need no key.

Keys are pure functions of their inputs — no clocks, no RNG, no
environment — so the same config produces the same keys in any
process on any machine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Sequence

from repro.util.timeutil import DAY, FIVE_MINUTES, day_start
from repro.world.config import WorldConfig

__all__ = ["SCHEMA_VERSIONS", "PHASES", "canonical_config",
           "config_fingerprint", "phase_key", "study_keys",
           "canonical_attack", "attacks_starting_on",
           "telescope_relevant", "crawl_relevant", "events_crawl_cover",
           "day_keys", "catalog_key"]

#: Serializer schema version per cacheable phase. Bump a version when
#: its artifact format (or the semantics of the phase itself) changes;
#: chaining invalidates everything downstream automatically.
SCHEMA_VERSIONS: Dict[str, int] = {
    # v2: max_ppm jitter moved off the shared rng onto per-(victim,
    # window) derived streams — same artifact format, different bytes.
    "telescope": 2,
    # v2: columnar store layout (column arrays instead of row dicts).
    "crawl": 2,
    "join": 1,
    "events": 1,
    # serve-layer domain->NSSet catalog (attack-independent).
    "catalog": 1,
}

#: Cacheable phases in pipeline order.
PHASES = ("telescope", "crawl", "join", "events")


def _canonical(value: object) -> object:
    """Recursively reduce a config value to JSON-stable primitives.

    Dataclasses carry their class name so two structurally-identical
    but semantically-different configs can never collide.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _canonical(getattr(value, f.name))
        return out
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting")


def canonical_config(config: WorldConfig,
                     install_scenarios: bool = True) -> str:
    """The canonical JSON form of a world config (stable key order,
    exact floats — ``json`` emits ``repr``-round-trippable literals)."""
    doc = {
        "config": _canonical(config),
        "install_scenarios": bool(install_scenarios),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: WorldConfig,
                       install_scenarios: bool = True) -> str:
    """sha256 hex digest of the canonical config — the base every
    phase key chains from."""
    text = canonical_config(config, install_scenarios)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def phase_key(phase: str, base: str,
              upstream: Sequence[str] = ()) -> str:
    """The cache key of one phase: hash of (phase, schema version,
    base config fingerprint, upstream phase keys, in order)."""
    version = SCHEMA_VERSIONS[phase]
    h = hashlib.sha256()
    h.update(f"repro.artifacts/{phase}/v{version}\n".encode("utf-8"))
    h.update(f"{base}\n".encode("utf-8"))
    for up in upstream:
        h.update(f"{up}\n".encode("utf-8"))
    return h.hexdigest()


def study_keys(config: WorldConfig,
               install_scenarios: bool = True) -> Dict[str, str]:
    """The full chained key set of one study configuration.

    ``telescope`` and ``crawl`` hang directly off the config (they are
    independent measurements of the same world); ``join`` consumes the
    telescope's feed, and ``events`` consumes the join and the crawl's
    measurement store — the chain mirrors the §4 dataflow, so
    invalidating an upstream phase invalidates its consumers and only
    its consumers.
    """
    base = config_fingerprint(config, install_scenarios)
    telescope = phase_key("telescope", base)
    crawl = phase_key("crawl", base)
    join = phase_key("join", base, upstream=(telescope,))
    events = phase_key("events", base, upstream=(join, crawl))
    return {"telescope": telescope, "crawl": crawl,
            "join": join, "events": events}


# -- per-day keys (the serve layer's sharded store) ---------------------------
#
# The monolithic ``study_keys`` invalidate *everything* when any attack
# changes. The serve layer partitions artifacts by day instead, and each
# day's key digests only the attacks that can influence that partition —
# so editing one day's schedule invalidates only that day's chain (plus
# the neighbours its measurements physically bleed into). Day keys can
# never collide with study keys: they chain through an extra
# ``day:<ts>`` upstream component.


def canonical_attack(attack) -> List:
    """The identity-free canonical row of one ground-truth attack.

    ``attack_id``/``campaign_id`` are excluded on purpose: they come
    from a process-global counter, so two identical schedules built in
    different processes (or orders) would otherwise fingerprint apart.
    """
    imp = attack.impairment
    amp = getattr(attack, "amplification", None)
    return [
        attack.victim_ip,
        attack.window.start,
        attack.window.end,
        attack.response_ratio,
        attack.spoof_pool_size,
        [imp.aftermath_s, imp.aftermath_load, imp.scrub_delay_s,
         imp.scrub_efficiency, imp.blackout_start, imp.blackout_s],
        [[v.proto, list(v.ports), v.pps, v.spoofing.value, v.packet_bytes]
         for v in attack.vectors],
        None if amp is None else
        [amp.n_amplifiers, amp.mean_baf, amp.query_pps,
         amp.list_darknet_share, amp.qtype],
    ]


def _attack_digest(attacks) -> str:
    """sha256 over the sorted canonical rows of ``attacks``."""
    rows = sorted(
        (json.dumps(canonical_attack(a), separators=(",", ":"))
         for a in attacks))
    h = hashlib.sha256()
    for row in rows:
        h.update(row.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def attacks_starting_on(attacks, day: int) -> List:
    """The day-``day`` telescope partition: attacks whose window starts
    within ``[day, day + DAY)`` — each attack belongs to exactly one
    partition."""
    return [a for a in attacks
            if day <= a.window.start < day + DAY]


def telescope_relevant(attacks, day: int) -> List:
    """Every attack that can influence the day-``day`` telescope
    partition: the partition itself, plus any attack whose impact
    window overlaps the partition's observation span (concurrent load
    on a victim's link suppresses backscatter, so neighbours matter)."""
    partition = attacks_starting_on(attacks, day)
    obs_end = day + DAY
    for a in partition:
        obs_end = max(obs_end, a.window.end)
    return [a for a in attacks
            if a.impact_window.start < obs_end
            and a.impact_window.end > day]


def crawl_relevant(attacks, day: int) -> List:
    """Every attack that can influence the day-``day`` crawl partition.

    Matches the world's dense-day padding exactly: an attack marks
    every day from ``day_start(impact.start)`` through
    ``day_start(impact.end) + DAY`` inclusive (5-minute recording plus
    the post-impact settling day), and its load shapes responses on any
    of them.
    """
    out = []
    for a in attacks:
        impact = a.impact_window
        if day_start(impact.start) <= day <= day_start(impact.end) + DAY:
            out.append(a)
    return out


def events_crawl_cover(day: int, partition, timeline) -> List[int]:
    """The crawl days the day-``day`` events partition reads: the day
    before (impact baselines), the day itself, and every later day any
    of the partition's attacks can still be observed on — clamped to
    the timeline."""
    last = day + DAY
    for a in partition:
        last = max(last, day_start(a.window.end + FIVE_MINUTES) + DAY)
    first = max(timeline.window.start, day - DAY)
    last = min(timeline.window.end, last)
    return [d for d in range(first, last, DAY)]


def day_keys(config: WorldConfig, attacks,
             install_scenarios: bool = True) -> Dict[int, Dict[str, str]]:
    """Chained per-day keys for every day of the config's timeline.

    Layout per day ``D`` (``telescope``/``crawl`` off the base config
    plus a day-scoped attack digest; downstream phases chain exactly
    the partitions they read)::

        telescope@D <- base + digest(telescope_relevant(D))
        crawl@D     <- base + digest(crawl_relevant(D))
        join@D      <- telescope@D
        events@D    <- join@D + crawl@d for d in events_crawl_cover(D)

    ``attacks`` is the *actual* schedule (possibly edited), not the
    config's — which is what lets a what-if edit to one day invalidate
    only that day's chain while the config fingerprint stays fixed.
    """
    base = config_fingerprint(config, install_scenarios)
    timeline = config.timeline
    days = list(timeline.days())
    telescope: Dict[int, str] = {}
    crawl: Dict[int, str] = {}
    for day in days:
        telescope[day] = phase_key(
            "telescope", base,
            upstream=(f"day:{day}",
                      _attack_digest(telescope_relevant(attacks, day))))
        crawl[day] = phase_key(
            "crawl", base,
            upstream=(f"day:{day}",
                      _attack_digest(crawl_relevant(attacks, day))))
    out: Dict[int, Dict[str, str]] = {}
    for day in days:
        join = phase_key("join", base, upstream=(f"day:{day}",
                                                 telescope[day]))
        cover = events_crawl_cover(
            day, attacks_starting_on(attacks, day), timeline)
        events = phase_key(
            "events", base,
            upstream=(f"day:{day}", join) + tuple(crawl[d] for d in cover))
        out[day] = {"telescope": telescope[day], "crawl": crawl[day],
                    "join": join, "events": events}
    return out


def catalog_key(config: WorldConfig, install_scenarios: bool = True) -> str:
    """Key of the serve layer's domain->NSSet catalog — a pure function
    of the config (the directory never depends on the attack schedule)."""
    return phase_key("catalog", config_fingerprint(config, install_scenarios))
