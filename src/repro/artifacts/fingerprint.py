"""Deterministic phase fingerprints: what makes a cache entry valid.

A phase's cache key is a sha256 over everything its output can depend
on, and *nothing* else:

- the canonicalized :class:`~repro.world.config.WorldConfig` — every
  knob, including the nested :class:`~repro.dns.resolver.ResolverConfig`
  and :class:`~repro.attacks.generator.AttackScheduleConfig` (the
  world and both measurement systems are pure functions of it plus the
  seed it carries);
- whether scripted scenarios were installed into the world;
- the phase name and its serializer's schema version (bumping a
  version in :data:`SCHEMA_VERSIONS` invalidates exactly that phase's
  entries — and, through chaining, every phase downstream of it);
- the keys of its upstream phases (``join`` chains ``telescope``;
  ``events`` chains ``join`` and ``crawl``).

Worker count, telemetry, and progress callbacks are deliberately
absent: the crawl is bit-for-bit worker-count-invariant (PR 2) and
telemetry observes without perturbing (PR 3), so neither can change a
phase's output. Chaos runs never consult the cache at all (see
:mod:`repro.artifacts.cache`), so fault schedules need no key.

Keys are pure functions of their inputs — no clocks, no RNG, no
environment — so the same config produces the same keys in any
process on any machine.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, Sequence

from repro.world.config import WorldConfig

__all__ = ["SCHEMA_VERSIONS", "PHASES", "canonical_config",
           "config_fingerprint", "phase_key", "study_keys"]

#: Serializer schema version per cacheable phase. Bump a version when
#: its artifact format (or the semantics of the phase itself) changes;
#: chaining invalidates everything downstream automatically.
SCHEMA_VERSIONS: Dict[str, int] = {
    # v2: max_ppm jitter moved off the shared rng onto per-(victim,
    # window) derived streams — same artifact format, different bytes.
    "telescope": 2,
    # v2: columnar store layout (column arrays instead of row dicts).
    "crawl": 2,
    "join": 1,
    "events": 1,
}

#: Cacheable phases in pipeline order.
PHASES = ("telescope", "crawl", "join", "events")


def _canonical(value: object) -> object:
    """Recursively reduce a config value to JSON-stable primitives.

    Dataclasses carry their class name so two structurally-identical
    but semantically-different configs can never collide.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__class__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _canonical(getattr(value, f.name))
        return out
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for fingerprinting")


def canonical_config(config: WorldConfig,
                     install_scenarios: bool = True) -> str:
    """The canonical JSON form of a world config (stable key order,
    exact floats — ``json`` emits ``repr``-round-trippable literals)."""
    doc = {
        "config": _canonical(config),
        "install_scenarios": bool(install_scenarios),
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def config_fingerprint(config: WorldConfig,
                       install_scenarios: bool = True) -> str:
    """sha256 hex digest of the canonical config — the base every
    phase key chains from."""
    text = canonical_config(config, install_scenarios)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def phase_key(phase: str, base: str,
              upstream: Sequence[str] = ()) -> str:
    """The cache key of one phase: hash of (phase, schema version,
    base config fingerprint, upstream phase keys, in order)."""
    version = SCHEMA_VERSIONS[phase]
    h = hashlib.sha256()
    h.update(f"repro.artifacts/{phase}/v{version}\n".encode("utf-8"))
    h.update(f"{base}\n".encode("utf-8"))
    for up in upstream:
        h.update(f"{up}\n".encode("utf-8"))
    return h.hexdigest()


def study_keys(config: WorldConfig,
               install_scenarios: bool = True) -> Dict[str, str]:
    """The full chained key set of one study configuration.

    ``telescope`` and ``crawl`` hang directly off the config (they are
    independent measurements of the same world); ``join`` consumes the
    telescope's feed, and ``events`` consumes the join and the crawl's
    measurement store — the chain mirrors the §4 dataflow, so
    invalidating an upstream phase invalidates its consumers and only
    its consumers.
    """
    base = config_fingerprint(config, install_scenarios)
    telescope = phase_key("telescope", base)
    crawl = phase_key("crawl", base)
    join = phase_key("join", base, upstream=(telescope,))
    events = phase_key("events", base, upstream=(join, crawl))
    return {"telescope": telescope, "crawl": crawl,
            "join": join, "events": events}
