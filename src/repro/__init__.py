"""repro — reproduction of "Investigating the impact of DDoS attacks on
DNS infrastructure" (Sommese et al., IMC 2022).

The public API is intentionally small:

>>> from repro import WorldConfig, run_study
>>> study = run_study(WorldConfig.small())
>>> print(study.report())

``run_study`` builds a seeded synthetic Internet, runs the two
measurement systems (darknet telescope -> RSDoS feed; OpenINTEL-style
daily DNS crawl), joins them with the paper's §4 pipeline, and exposes
every §5/§6 analysis on the returned :class:`repro.core.pipeline.Study`.

Subpackages (importable directly for finer-grained use):

- :mod:`repro.net` — IPv4 primitives, radix trie, AS/Org types
- :mod:`repro.dns` — names, records, wire codec, agnostic resolver
- :mod:`repro.topology` — synthetic AS topology, prefix2AS, AS2Org
- :mod:`repro.anycast` — anycast deployments and the quarterly census
- :mod:`repro.world` — ground truth: providers, domains, capacity model
- :mod:`repro.attacks` — attack model and schedule generation
- :mod:`repro.telescope` — darknet, backscatter, RSDoS inference, feed
- :mod:`repro.openintel` — daily crawl and aggregate storage
- :mod:`repro.streaming` — in-process topics + discrete-event scheduler
- :mod:`repro.chaos` — seeded fault injection over the pipeline surfaces
- :mod:`repro.obs` — run telemetry: metrics registry, phase spans, clocks
- :mod:`repro.artifacts` — content-addressed phase cache (warm re-runs)
- :mod:`repro.engine` — declarative phase graph + middleware executor
- :mod:`repro.core` — the paper's join pipeline and analyses
- :mod:`repro.reactive` — production-rate reactive platform (backpressure,
  admission control, exactly-once recovery)
- :mod:`repro.datasets` — open-resolver scan, dataset bundle I/O
"""

from repro.core.pipeline import Study, run_study
from repro.core.reactive import ReactivePlatform
from repro.reactive import ReactiveReport, ReactiveService
from repro.artifacts.cache import PhaseCache
from repro.artifacts.store import ArtifactStore
from repro.chaos.injector import FaultInjector
from repro.chaos.policy import ChaosConfig, FaultPolicy
from repro.obs import MetricsRegistry, RunTelemetry
from repro.world.config import WorldConfig
from repro.world.simulation import World, build_world

__version__ = "1.8.0"

__all__ = [
    "Study",
    "run_study",
    "ReactivePlatform",
    "ReactiveService",
    "ReactiveReport",
    "ArtifactStore",
    "PhaseCache",
    "ChaosConfig",
    "FaultPolicy",
    "FaultInjector",
    "MetricsRegistry",
    "RunTelemetry",
    "WorldConfig",
    "World",
    "build_world",
    "__version__",
]
