"""repro.engine — the declarative phase-graph engine.

The paper's §4 method is a dataflow: telescope feed and OpenINTEL
crawl join into per-NSSet buckets, then fan out into the analyses.
This package expresses that dataflow as data rather than procedure:

- :class:`Phase` declares one node: name, input slots, output slot,
  fingerprint key + serializer (cacheability), chaos/parallelism
  policy flags, span annotations;
- :class:`PhaseGraph` validates the declarations at build time — cycle
  detection (the cycle is named), unknown-input errors, duplicate
  outputs — and fixes a deterministic topological order;
- :class:`Executor` runs the graph through one middleware chain
  (:class:`SpanMiddleware`, :class:`JournalMiddleware`,
  :class:`ProfileMiddleware`, :class:`CacheMiddleware`,
  :class:`WorkerPolicy`), so telemetry spans, journal records,
  opt-in profiling, cache fetch/save, and worker policy are applied
  uniformly to every node instead of being copy-pasted per phase.

``run_study`` (:mod:`repro.core.pipeline`) is a thin facade over the
study graph built from these pieces, and the :class:`~repro.core
.pipeline.Study` analyses execute as single-node subgraphs of the same
engine. ``python -m repro graph`` prints the declared DAG.
"""

from repro.engine.analysis import analyses_of, analysis_graph, cached_analysis
from repro.engine.executor import (
    CacheMiddleware,
    Executor,
    JournalMiddleware,
    Middleware,
    ProfileMiddleware,
    RunContext,
    SpanMiddleware,
    WorkerPolicy,
)
from repro.engine.graph import (
    CycleError,
    DuplicateNodeError,
    PhaseGraph,
    PhaseGraphError,
    UnknownInputError,
)
from repro.engine.phase import Phase
from repro.engine.plan import PhasePlan, partial_plan

__all__ = [
    "Phase",
    "PhasePlan",
    "partial_plan",
    "PhaseGraph",
    "PhaseGraphError",
    "DuplicateNodeError",
    "UnknownInputError",
    "CycleError",
    "RunContext",
    "Middleware",
    "SpanMiddleware",
    "JournalMiddleware",
    "ProfileMiddleware",
    "CacheMiddleware",
    "WorkerPolicy",
    "Executor",
    "cached_analysis",
    "analyses_of",
    "analysis_graph",
]
