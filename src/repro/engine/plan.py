"""Partial plans: what a subset run will compute, fetch, reuse, skip.

The executor's ``targets=`` parameter restricts a run to a subset of
the graph (:meth:`PhaseGraph.subset`), and :class:`CacheMiddleware`
satisfies cached phases without computing them — but neither says *in
advance* which phases a run will actually execute. :func:`partial_plan`
answers that, deterministically and without side effects, by combining
the graph's dependency structure with a cache-membership predicate:

- ``reuse``  — a target already cached; nothing upstream of it runs;
- ``fetch``  — a cached phase a missing target depends on (the cache
  middleware will deserialize it instead of computing);
- ``compute`` — a missing (or uncacheable) phase that must run;
- ``skip``   — an ancestor no missing phase needs.

The serve layer (:mod:`repro.serve.store`) plans each day-partition
this way before dispatching the executor, so incremental rebuilds can
report — and tests can assert — exactly which partitions re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Tuple

from repro.engine.graph import PhaseGraph

__all__ = ["PhasePlan", "partial_plan"]


@dataclass(frozen=True)
class PhasePlan:
    """One phase's planned disposition in a subset run."""

    name: str
    action: str  # "compute" | "fetch" | "reuse" | "skip"
    key: Optional[str] = None


def partial_plan(graph: PhaseGraph, targets,
                 keys: Mapping[str, str],
                 has: Callable[[str], bool]) -> Tuple[PhasePlan, ...]:
    """Plan a ``targets`` subset run against a cache.

    ``keys`` maps ``Phase.cache_key`` names to concrete cache keys
    (phases absent from it are uncacheable and always compute when
    needed); ``has`` tests key membership. Returns one
    :class:`PhasePlan` per subset phase, in execution order.
    """
    order = graph.subset(targets)
    key_of = {}
    cached = {}
    for phase in order:
        key = keys.get(phase.cache_key) if phase.cache_key else None
        key_of[phase.name] = key
        cached[phase.name] = key is not None and has(key)
    # A missing target must run; walking the order backwards pulls in
    # the dependencies of everything that must run, stopping at cached
    # phases (the middleware fetches those instead of recursing).
    needed = {name for name in targets if not cached[name]}
    for phase in reversed(order):
        if phase.name in needed and not cached[phase.name]:
            needed.update(dep.name for dep in graph._dependencies(phase))
    plans = []
    for phase in order:
        if phase.name not in needed:
            action = "reuse" if phase.name in targets else "skip"
        elif cached[phase.name]:
            action = "fetch"
        else:
            action = "compute"
        plans.append(PhasePlan(name=phase.name, action=action,
                               key=key_of[phase.name]))
    return tuple(plans)
