"""Lazy memoized analyses as declared engine nodes.

:class:`cached_analysis` replaces the per-analysis "memoize + open the
``analysis.*`` span" blocks that used to be hand-rolled nine times on
:class:`~repro.core.pipeline.Study`. One descriptor declares the
analysis' dependencies (the owner attributes it reads — ``join``,
``events``, ...); access then runs the analysis as a single-node
subgraph of the owner class' :func:`analysis_graph` through the shared
:class:`~repro.engine.executor.Executor` with span middleware, and
memoizes the result in the instance ``__dict__`` (exactly like
``functools.cached_property``, so later accesses are plain attribute
lookups).

The span is named ``analysis.<attribute>`` — the same names the
pipeline has always emitted — and opens on the owner's
``telemetry.tracer``, which the owner class must expose.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.engine.executor import (Executor, JournalMiddleware, RunContext,
                                   SpanMiddleware)
from repro.engine.graph import PhaseGraph
from repro.engine.phase import Phase

__all__ = ["cached_analysis", "analyses_of", "analysis_graph"]


class cached_analysis:
    """Declare a lazily-computed, span-traced, memoized analysis.

    Usage::

        @cached_analysis(deps=("join",))
        def monthly(self):
            '''Table 3 / Table 1.'''
            return monthly_summary(self.join)

    ``deps`` name the owner attributes the analysis reads; they become
    the node's declared inputs, so ``repro graph`` shows the analysis
    fan-out and the graph validator rejects an undeclared dependency at
    build time.
    """

    def __init__(self, deps: Sequence[str] = ()):
        self.deps: Tuple[str, ...] = tuple(deps)
        self.fn: Optional[Callable] = None
        self.attr: Optional[str] = None
        self.phase_name: Optional[str] = None

    def __call__(self, fn: Callable) -> "cached_analysis":
        self.fn = fn
        self.__doc__ = fn.__doc__
        return self

    def __set_name__(self, owner: type, name: str) -> None:
        if self.fn is None:
            raise TypeError(
                f"cached_analysis {name!r} was never given a function; "
                f"use @cached_analysis(deps=...)")
        self.attr = name
        self.phase_name = f"analysis.{name}"

    def phase(self) -> Phase:
        """This analysis as a declared engine node."""
        fn = self.fn
        doc = (fn.__doc__ or "").strip().split("\n")[0]
        return Phase(
            self.phase_name,
            inputs=self.deps,
            compute=lambda ctx, **_inputs: fn(ctx.params["subject"]),
            doc=doc,
        )

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        if self.attr not in obj.__dict__:
            obj.__dict__[self.attr] = self._run(obj)
        return obj.__dict__[self.attr]

    def _run(self, obj):
        """Execute just this node (its deps are owner attributes)."""
        graph = analysis_graph(type(obj))
        ctx = RunContext(telemetry=obj.telemetry, params={"subject": obj})
        executor = Executor(graph, middleware=(SpanMiddleware(),
                                               JournalMiddleware()))
        values = executor.run(
            ctx, targets=[self.phase_name],
            sources={slot: getattr(obj, slot) for slot in self.deps})
        return values[self.phase_name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"cached_analysis({self.attr!r}, deps={list(self.deps)})"


def analyses_of(cls: type) -> List[cached_analysis]:
    """Every :class:`cached_analysis` declared on ``cls`` (MRO order,
    base classes first, declaration order within a class)."""
    out: List[cached_analysis] = []
    seen = set()
    for klass in reversed(cls.__mro__):
        for value in vars(klass).values():
            if isinstance(value, cached_analysis) and value.attr not in seen:
                seen.add(value.attr)
                out.append(value)
    return out


_GRAPHS: Dict[type, PhaseGraph] = {}


def analysis_graph(cls: type) -> PhaseGraph:
    """The validated single-layer DAG of a class' declared analyses
    (memoized per class). Dependencies are graph sources, seeded from
    the instance at run time."""
    graph = _GRAPHS.get(cls)
    if graph is None:
        descriptors = analyses_of(cls)
        sources = sorted({slot for d in descriptors for slot in d.deps})
        graph = PhaseGraph([d.phase() for d in descriptors],
                           sources=sources, name="analyses")
        _GRAPHS[cls] = graph
    return graph
