"""The engine's executor: one middleware chain, applied to every node.

The :class:`Executor` walks a :class:`~repro.engine.graph.PhaseGraph`
in its deterministic order and pushes each enabled phase through a
middleware onion::

    SpanMiddleware( JournalMiddleware( [ProfileMiddleware(]
        CacheMiddleware( WorkerPolicy( compute ) ) [)] ) )

so cross-cutting concerns — the telemetry span with its annotations,
the run-journal records, opt-in resource profiling (only present in
the chain when requested), cache fetch/save, the worker-count policy
— are written once here
instead of being re-interleaved inline at every phase the way the
pipeline used to. A disabled phase (``Phase.enabled`` false) skips the
chain entirely and fills its slot via ``Phase.fallback``, untraced and
uncached.

Middleware contract: ``run(phase, ctx, call_next) -> value`` where
``call_next(phase, ctx)`` invokes the rest of the chain. Innermost,
the executor resolves the phase's declared inputs from the context's
slot values and calls ``phase.compute(ctx, **inputs)``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence

from repro.engine.graph import PhaseGraph
from repro.engine.phase import Phase

__all__ = ["RunContext", "Middleware", "SpanMiddleware", "JournalMiddleware",
           "ProfileMiddleware", "CacheMiddleware", "WorkerPolicy", "Executor"]


class _NoSpan:
    """Annotation sink for untraced phases (and tracerless contexts)."""

    __slots__ = ()

    def annotate(self, **meta) -> None:
        pass


_NO_SPAN = _NoSpan()


class RunContext:
    """Everything one graph run threads through its phases.

    - ``values``: output slot -> produced value (sources pre-seeded);
    - ``params``: run knobs the computes and middleware read (config,
      worker count, the fault injector, progress callbacks, ...);
    - ``telemetry`` / ``tracer``: the run's :mod:`repro.obs` bundle;
    - ``span``: the innermost phase span while one is open (a no-op
      sink otherwise), so computes can annotate without branching;
    - ``root``: the run's root span when the executor opened one.
    """

    def __init__(self, telemetry=None, params: Optional[Mapping] = None):
        from repro.obs import NULL_TELEMETRY

        self.telemetry = telemetry or NULL_TELEMETRY
        self.tracer = self.telemetry.tracer
        self.params: Dict[str, object] = dict(params or {})
        self.values: Dict[str, object] = {}
        self.span = _NO_SPAN
        self.root = _NO_SPAN
        #: names of phases satisfied from the cache this run.
        self.cached_phases: set = set()

    def __getitem__(self, slot: str):
        return self.values[slot]

    def __contains__(self, slot: str) -> bool:
        return slot in self.values


class Middleware:
    """Base middleware: pass-through."""

    def run(self, phase: Phase, ctx: RunContext, call_next: Callable):
        return call_next(phase, ctx)


class SpanMiddleware(Middleware):
    """Opens the phase's span and applies its result annotations.

    Untraced phases pass straight through. The span is exposed as
    ``ctx.span`` for the inner chain (the cache middleware stamps
    ``cached=True`` on it; computes may annotate freely).
    """

    def run(self, phase: Phase, ctx: RunContext, call_next: Callable):
        if not phase.traced:
            return call_next(phase, ctx)
        with ctx.tracer.span(phase.name) as span:
            previous, ctx.span = ctx.span, span
            try:
                result = call_next(phase, ctx)
                span.annotate(**phase.annotations(result, ctx))
            finally:
                ctx.span = previous
        return result


class JournalMiddleware(Middleware):
    """Emits ``phase.start`` / ``phase.finish`` journal records.

    Reads the journal off ``ctx.telemetry.journal`` (the default
    :data:`~repro.obs.journal.NULL_JOURNAL` short-circuits to a
    pass-through), so the same middleware instance serves journaled and
    unjournaled runs. ``phase.finish`` carries the wall duration (from
    the telemetry clock) and whether the phase was satisfied from the
    cache; a raising phase gets ``phase.error`` instead, with the
    exception type, so the journal's last record names what killed the
    run. Untraced phases are skipped, keeping the journal's phase set
    identical to the span tree's.
    """

    def run(self, phase: Phase, ctx: RunContext, call_next: Callable):
        journal = ctx.telemetry.journal
        if not journal.enabled or not phase.traced:
            return call_next(phase, ctx)
        clock = ctx.telemetry.clock
        journal.emit("phase.start", phase=phase.name)
        started = clock.now()
        try:
            result = call_next(phase, ctx)
        except BaseException as exc:
            journal.emit("phase.error", phase=phase.name,
                         duration_s=round(clock.now() - started, 6),
                         error=type(exc).__name__)
            raise
        journal.emit("phase.finish", phase=phase.name,
                     duration_s=round(clock.now() - started, 6),
                     cached=phase.name in ctx.cached_phases)
        return result


class ProfileMiddleware(Middleware):
    """Wraps traced phases in a
    :class:`~repro.obs.profile.PhaseProfiler` measurement.

    Only ever inserted into a chain when profiling was requested —
    ``run_study`` builds the chain without it otherwise, which is what
    makes the disabled cost exactly zero rather than merely small.
    """

    def __init__(self, profiler):
        self.profiler = profiler

    def run(self, phase: Phase, ctx: RunContext, call_next: Callable):
        if not phase.traced:
            return call_next(phase, ctx)
        with self.profiler.measure(phase.name):
            return call_next(phase, ctx)


class CacheMiddleware(Middleware):
    """Fetch/save cacheable phases against a
    :class:`~repro.artifacts.cache.PhaseCache`.

    A hit skips the inner chain (the compute never runs) and stamps the
    phase span ``cached=True``; a miss computes and saves best-effort.
    Phases without a ``cache_key``, and runs without a cache, pass
    through untouched.
    """

    def __init__(self, cache=None, keys: Optional[Mapping[str, str]] = None):
        self.cache = cache
        self.keys = dict(keys or {})

    def run(self, phase: Phase, ctx: RunContext, call_next: Callable):
        key = (self.keys.get(phase.cache_key)
               if self.cache is not None and phase.cache_key else None)
        if key is None:
            return call_next(phase, ctx)
        dumps = loads = None
        if phase.serializer is not None:
            dumps, loads = phase.serializer
        hit = self.cache.fetch(phase.cache_key, key, loads=loads)
        if hit is not None:
            ctx.span.annotate(cached=True)
            ctx.cached_phases.add(phase.name)
            return hit
        result = call_next(phase, ctx)
        self.cache.save(phase.cache_key, key, result, dumps=dumps)
        return result


class WorkerPolicy(Middleware):
    """The worker-count policy, applied to ``parallel`` phases.

    When ``serial`` is set (a chaos run: the fault injector's burst
    state, fault log, and RNG streams live in one process), a parallel
    phase asked for more than one worker is forced serial and ``warn``
    is called once with no arguments.
    """

    def __init__(self, serial: bool = False,
                 warn: Optional[Callable[[], None]] = None):
        self.serial = serial
        self.warn = warn

    def run(self, phase: Phase, ctx: RunContext, call_next: Callable):
        if (phase.parallel and self.serial
                and ctx.params.get("n_workers", 1) != 1):
            if self.warn is not None:
                self.warn()
            ctx.params["n_workers"] = 1
        return call_next(phase, ctx)


class Executor:
    """Runs a :class:`PhaseGraph` through one middleware chain."""

    def __init__(self, graph: PhaseGraph,
                 middleware: Sequence[Middleware] = ()):
        self.graph = graph
        self.middleware = tuple(middleware)

    # -- the chain ------------------------------------------------------------

    def _compute(self, phase: Phase, ctx: RunContext):
        """Innermost link: resolve inputs, compute, fresh-annotate."""
        inputs = {slot: ctx.values[slot] for slot in phase.inputs}
        result = phase.compute(ctx, **inputs)
        ctx.span.annotate(**phase.fresh_annotations(result, ctx))
        return result

    def _chain(self) -> Callable[[Phase, RunContext], object]:
        call = self._compute
        for mw in reversed(self.middleware):
            def call(phase, ctx, _mw=mw, _next=call):
                return _mw.run(phase, ctx, _next)
        return call

    # -- running --------------------------------------------------------------

    def run(self, ctx: RunContext,
            targets: Optional[Sequence[str]] = None,
            sources: Optional[Mapping[str, object]] = None,
            root_span: Optional[str] = None,
            root_meta: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Execute the graph (or the ancestors of ``targets`` only).

        ``sources`` seeds declared source slots with values. With
        ``root_span`` set, the whole run nests under one span of that
        name (annotated with ``root_meta``), exposed as ``ctx.root``
        for run-level annotations. Returns ``ctx.values`` — every slot
        produced, keyed by name.
        """
        for slot, value in (sources or {}).items():
            if slot not in self.graph.sources:
                raise KeyError(
                    f"{slot!r} is not a declared source of graph "
                    f"{self.graph.name!r}")
            ctx.values[slot] = value
        order = (self.graph.order if targets is None
                 else self.graph.subset(targets))
        chain = self._chain()
        if root_span is not None:
            with ctx.tracer.span(root_span, **(root_meta or {})) as root:
                ctx.root = root
                try:
                    self._run_order(order, ctx, chain)
                finally:
                    ctx.root = _NO_SPAN
        else:
            self._run_order(order, ctx, chain)
        return ctx.values

    def _run_order(self, order: Iterable[Phase], ctx: RunContext,
                   chain: Callable) -> None:
        for phase in order:
            missing = [s for s in phase.inputs if s not in ctx.values]
            if missing:
                raise KeyError(
                    f"phase {phase.name!r} is missing input value(s) "
                    f"{missing}; seed them via run(sources=...)")
            if phase.is_enabled(ctx):
                value = chain(phase, ctx)
            else:
                inputs = {slot: ctx.values[slot] for slot in phase.inputs}
                value = phase.substitute(ctx, **inputs)
            ctx.values[phase.provides] = value
