"""Phase graphs: validated, deterministically-ordered DAGs of phases.

A :class:`PhaseGraph` is built from declared :class:`.Phase` nodes plus
the names of *source* slots the caller will provide at run time. Every
structural error is raised at graph-build time, not mid-run:

- two nodes with the same name or the same output slot
  (:class:`DuplicateNodeError`);
- a node consuming a slot no node provides and no source declares
  (:class:`UnknownInputError`);
- a dependency cycle (:class:`CycleError`, naming the cycle's members
  in order).

The execution order is a *deterministic* topological sort: among ready
nodes, declaration order wins. Declaring the same graph twice therefore
yields the same order in any process on any machine — which is what
keeps span trees, cache traffic, and chaos fault logs reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.phase import Phase

__all__ = ["PhaseGraph", "PhaseGraphError", "DuplicateNodeError",
           "UnknownInputError", "CycleError"]


class PhaseGraphError(ValueError):
    """Base class for graph-construction failures."""


class DuplicateNodeError(PhaseGraphError):
    """Two phases share a name or an output slot."""


class UnknownInputError(PhaseGraphError):
    """A phase consumes a slot nothing provides."""


class CycleError(PhaseGraphError):
    """The declared dependencies contain a cycle."""

    def __init__(self, cycle: Sequence[str]):
        self.cycle = tuple(cycle)
        loop = " -> ".join(self.cycle + (self.cycle[0],))
        super().__init__(f"phase dependency cycle: {loop}")


class PhaseGraph:
    """An immutable, validated DAG of :class:`.Phase` nodes."""

    def __init__(self, phases: Iterable[Phase], sources: Sequence[str] = (),
                 name: str = "graph"):
        self.name = name
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.sources: Tuple[str, ...] = tuple(sources)
        self.by_name: Dict[str, Phase] = {}
        self.by_slot: Dict[str, Phase] = {}
        for phase in self.phases:
            if phase.name in self.by_name:
                raise DuplicateNodeError(
                    f"duplicate phase name {phase.name!r}")
            if phase.provides in self.by_slot:
                raise DuplicateNodeError(
                    f"slot {phase.provides!r} is provided by both "
                    f"{self.by_slot[phase.provides].name!r} and "
                    f"{phase.name!r}")
            if phase.provides in self.sources:
                raise DuplicateNodeError(
                    f"slot {phase.provides!r} of phase {phase.name!r} "
                    f"shadows a declared source")
            self.by_name[phase.name] = phase
            self.by_slot[phase.provides] = phase
        self._check_inputs()
        self.order: Tuple[Phase, ...] = self._toposort()

    # -- validation -----------------------------------------------------------

    def _check_inputs(self) -> None:
        known = set(self.by_slot) | set(self.sources)
        for phase in self.phases:
            for slot in phase.inputs:
                if slot not in known:
                    raise UnknownInputError(
                        f"phase {phase.name!r} consumes {slot!r}, which no "
                        f"phase provides and no source declares")

    def _dependencies(self, phase: Phase) -> List[Phase]:
        """Upstream phases of ``phase`` (source inputs have none)."""
        return [self.by_slot[slot] for slot in phase.inputs
                if slot in self.by_slot]

    def _toposort(self) -> Tuple[Phase, ...]:
        """Kahn's algorithm with a declaration-ordered ready list."""
        pending = {p.name: len(self._dependencies(p)) for p in self.phases}
        dependants: Dict[str, List[Phase]] = {p.name: [] for p in self.phases}
        for phase in self.phases:
            for dep in self._dependencies(phase):
                dependants[dep.name].append(phase)
        order: List[Phase] = []
        done = set()
        while len(order) < len(self.phases):
            progressed = False
            for phase in self.phases:  # declaration order breaks ties
                if phase.name in done or pending[phase.name]:
                    continue
                order.append(phase)
                done.add(phase.name)
                for dependant in dependants[phase.name]:
                    pending[dependant.name] -= 1
                progressed = True
            if not progressed:
                raise CycleError(self._find_cycle(done))
        return tuple(order)

    def _find_cycle(self, done: set) -> List[str]:
        """Name one cycle among the nodes the sort could not place."""
        stuck = [p for p in self.phases if p.name not in done]
        start = stuck[0]
        trail: List[str] = []
        seen: Dict[str, int] = {}
        node = start
        while node.name not in seen:
            seen[node.name] = len(trail)
            trail.append(node.name)
            node = next(dep for dep in self._dependencies(node)
                        if dep.name not in done)
        return trail[seen[node.name]:]

    # -- queries --------------------------------------------------------------

    def subset(self, targets: Sequence[str]) -> Tuple[Phase, ...]:
        """The execution order restricted to ``targets`` and their
        ancestors — the engine's selective-recomputation primitive."""
        needed = set()
        stack = []
        for name in targets:
            if name not in self.by_name:
                raise KeyError(f"unknown phase {name!r}")
            stack.append(self.by_name[name])
        while stack:
            phase = stack.pop()
            if phase.name in needed:
                continue
            needed.add(phase.name)
            stack.extend(self._dependencies(phase))
        return tuple(p for p in self.order if p.name in needed)

    def edges(self) -> List[Tuple[str, str, str]]:
        """Every dependency as ``(producer, consumer, slot)``; edges
        from graph sources use the source name as producer."""
        out: List[Tuple[str, str, str]] = []
        for phase in self.order:
            for slot in phase.inputs:
                producer = (self.by_slot[slot].name
                            if slot in self.by_slot else slot)
                out.append((producer, phase.name, slot))
        return out

    # -- rendering ------------------------------------------------------------

    def render_text(self) -> str:
        """The DAG as an indented text listing, one phase per line."""
        lines = [f"{self.name}: {len(self.phases)} phases"]
        if self.sources:
            lines.append(f"  sources: {', '.join(self.sources)}")
        for phase in self.order:
            flags = []
            if phase.cache_key:
                flags.append("cached")
            if phase.parallel:
                flags.append("parallel")
            if not phase.traced:
                flags.append("untraced")
            if phase.enabled is not None:
                flags.append("conditional")
            deps = ", ".join(phase.inputs) if phase.inputs else "-"
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {phase.name:<24} <- {deps}{suffix}")
            if phase.doc:
                lines.append(f"  {'':<24}    {phase.doc}")
        return "\n".join(lines)

    def to_dot(self, durations: Optional[Mapping[str, float]] = None) -> str:
        """The DAG in Graphviz DOT form (one node per phase; dashed
        edges come from declared sources).

        ``durations`` maps phase names to last-run wall seconds (from a
        run journal's ``phase.finish`` records — see
        :func:`repro.obs.journal.phase_durations`); annotated nodes get
        the duration as a second label line, turning the DAG render
        into a poor-man's trace view (``repro graph --dot
        --from-journal run.jsonl``).
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for source in self.sources:
            lines.append(f'  "{source}" [shape=plaintext];')
        for phase in self.order:
            shape = "box" if phase.cache_key else "ellipse"
            if durations is not None and phase.name in durations:
                label = f'{phase.name}\\n{durations[phase.name]:.3f}s'
                lines.append(
                    f'  "{phase.name}" [shape={shape} label="{label}"];')
                continue
            lines.append(f'  "{phase.name}" [shape={shape}];')
        for producer, consumer, slot in self.edges():
            style = (" [style=dashed]" if producer not in self.by_name
                     else f' [label="{slot}"]' if slot != producer else "")
            lines.append(f'  "{producer}" -> "{consumer}"{style};')
        lines.append("}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self):
        return iter(self.order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PhaseGraph({self.name!r}, {len(self.phases)} phases, "
                f"sources={list(self.sources)})")
