"""The declarative unit of the engine: one named pipeline phase.

A :class:`Phase` declares *what* a stage is — its name, the output slot
it provides, the slots it consumes, whether it is traced, cacheable, or
parallel — while the :class:`~repro.engine.executor.Executor` decides
*how* every stage runs (spans, cache traffic, worker policy) through
one shared middleware chain. The pipeline itself never repeats that
plumbing per phase; it only declares nodes.

A phase's ``compute`` receives the run context followed by its declared
inputs as keyword arguments::

    Phase("join", inputs=("feed_attacks", "open_resolvers"),
          compute=lambda ctx, feed_attacks, open_resolvers: ...)

Optional knobs:

- ``enabled`` gates the phase on the run context (e.g. ``feed_harden``
  only runs under chaos). A disabled phase still *provides* its slot via
  ``fallback`` — executed untraced and uncached, so clean runs carry no
  trace of the disabled stage.
- ``cache_key`` names the entry in the executor's fingerprint-key map;
  a phase with no ``cache_key`` is never cached. ``serializer``
  optionally overrides the phase-registry ``(dumps, loads)`` pair.
- ``annotations`` / ``fresh_annotations`` produce span metadata from
  the result; ``fresh_annotations`` is skipped on a cache hit (a cached
  crawl reports its row count, not a worker count it never used).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

__all__ = ["Phase"]


def _no_annotations(result, ctx) -> Dict[str, object]:
    return {}


@dataclass(frozen=True)
class Phase:
    """One declared node of a :class:`~repro.engine.graph.PhaseGraph`."""

    #: unique node name; also the span name when the phase is traced.
    name: str
    #: ``compute(ctx, **inputs) -> value`` producing the phase's output.
    compute: Callable = None
    #: output slots of other phases (or graph sources) this node consumes.
    inputs: Tuple[str, ...] = ()
    #: the output slot this node fills; defaults to the node name.
    provides: Optional[str] = None
    #: open a span named after the node around its execution.
    traced: bool = True
    #: name of this phase's entry in the executor's fingerprint-key map;
    #: ``None`` means the phase is never cached.
    cache_key: Optional[str] = None
    #: optional ``(dumps, loads)`` override for the cache middleware.
    serializer: Optional[Tuple[Callable, Callable]] = None
    #: the phase shards across workers, so the worker-count policy
    #: (e.g. "chaos forces serial") applies to it.
    parallel: bool = False
    #: gate on the run context; a disabled phase runs ``fallback``.
    enabled: Optional[Callable] = None
    #: untraced/uncached substitute used when ``enabled(ctx)`` is false.
    fallback: Optional[Callable] = None
    #: span metadata derived from the result (applied on hit and miss).
    annotations: Callable = field(default=_no_annotations)
    #: span metadata applied only when the phase actually computed.
    fresh_annotations: Callable = field(default=_no_annotations)
    #: one-line description, shown by ``repro graph``.
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a phase needs a non-empty name")
        if self.compute is None:
            raise ValueError(f"phase {self.name!r} declares no compute")
        if self.provides is None:
            object.__setattr__(self, "provides", self.name)
        object.__setattr__(self, "inputs", tuple(self.inputs))

    def is_enabled(self, ctx) -> bool:
        """Whether the phase's real compute runs for this context."""
        return True if self.enabled is None else bool(self.enabled(ctx))

    def substitute(self, ctx, **inputs):
        """The disabled-phase value: ``fallback`` or ``None``."""
        if self.fallback is None:
            return None
        return self.fallback(ctx, **inputs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.cache_key:
            flags.append("cached")
        if self.parallel:
            flags.append("parallel")
        if not self.traced:
            flags.append("untraced")
        suffix = f" [{','.join(flags)}]" if flags else ""
        return (f"Phase({self.name!r}, inputs={list(self.inputs)}, "
                f"provides={self.provides!r}{suffix})")
