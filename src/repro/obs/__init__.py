"""repro.obs — run telemetry: metrics, phase spans, journal, profiling.

The observability layer of the pipeline, dependency-free and seeded-RNG
free. One :class:`RunTelemetry` bundle per run carries a
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms),
a :class:`Tracer` (nested phase spans) against an injectable
:class:`Clock`, and optionally a :class:`RunJournal` (append-only JSONL
event log). The default, :data:`NULL_TELEMETRY`, is a no-op — see
:mod:`repro.obs.telemetry` for the determinism contract and the
``repro.obs/v2`` snapshot schema, and ``docs/observability.md`` for the
metric namespace (``repro.crawl.*``, ``repro.stream.*``,
``repro.chaos.*``, ``repro.store.*``, ``repro.profile.*``).

Second-layer tooling: :mod:`repro.obs.journal` (the run journal),
:mod:`repro.obs.merge` (cross-process span/metric capture + stitch),
:mod:`repro.obs.profile` (per-phase CPU/RSS/allocation gauges), and
:mod:`repro.obs.cli` (the ``repro obs`` subcommand).
"""

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.journal import (
    JOURNAL_SCHEMA,
    NULL_JOURNAL,
    NullJournal,
    RunJournal,
    new_run_id,
    phase_durations,
    read_journal,
)
from repro.obs.merge import (
    CAPTURE_SCHEMA,
    capture_telemetry,
    merge_capture,
    span_from_dict,
)
from repro.obs.profile import PhaseProfiler
from repro.obs.registry import (
    DEFAULT_BUCKETS_MS,
    NULL_REGISTRY,
    QUERY_BUCKETS_MS,
    BufferedRegistry,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    buffered,
)
from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    SNAPSHOT_SCHEMA,
    SNAPSHOT_SCHEMAS,
    RunTelemetry,
)

__all__ = [
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BufferedRegistry",
    "buffered",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS_MS",
    "QUERY_BUCKETS_MS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunTelemetry",
    "NULL_TELEMETRY",
    "SNAPSHOT_SCHEMA",
    "SNAPSHOT_SCHEMAS",
    "RunJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "JOURNAL_SCHEMA",
    "new_run_id",
    "read_journal",
    "phase_durations",
    "PhaseProfiler",
    "CAPTURE_SCHEMA",
    "capture_telemetry",
    "merge_capture",
    "span_from_dict",
]
