"""repro.obs — run telemetry: metrics, phase spans, injectable clocks.

The observability layer of the pipeline, dependency-free and seeded-RNG
free. One :class:`RunTelemetry` bundle per run carries a
:class:`MetricsRegistry` (counters, gauges, fixed-bucket histograms)
and a :class:`Tracer` (nested phase spans) against an injectable
:class:`Clock`. The default, :data:`NULL_TELEMETRY`, is a no-op — see
:mod:`repro.obs.telemetry` for the determinism contract and the
``repro.obs/v1`` snapshot schema, and ``docs/observability.md`` for the
metric namespace (``repro.crawl.*``, ``repro.stream.*``,
``repro.chaos.*``, ``repro.store.*``).
"""

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.registry import (
    DEFAULT_BUCKETS_MS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.spans import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.telemetry import NULL_TELEMETRY, SNAPSHOT_SCHEMA, RunTelemetry

__all__ = [
    "Clock",
    "MonotonicClock",
    "FakeClock",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS_MS",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunTelemetry",
    "NULL_TELEMETRY",
    "SNAPSHOT_SCHEMA",
]
