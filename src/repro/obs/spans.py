"""Span-based phase tracing: the timing half of :mod:`repro.obs`.

A :class:`Tracer` records a tree of named :class:`Span` s — "this phase
ran from t0 to t1, inside that phase" — against an injectable
:class:`~repro.obs.clock.Clock`, so tests drive it with a
:class:`~repro.obs.clock.FakeClock` and assert exact durations.

Spans opened while another span is open nest under it; spans opened on
an empty stack become new roots (a :class:`Study`'s lazy analyses, for
example, run after the ``study`` span closed and appear as their own
roots). :meth:`Tracer.render_tree` prints the phase-timing tree the CLI
shows under ``--trace``; :meth:`Tracer.snapshot` is the JSON form.

The default tracer in the pipeline is :data:`NULL_TRACER`, whose spans
are a shared no-op — instrumented code never branches on enablement.

Pipeline phase spans (``study``'s children, ``analysis.*`` roots) are
opened by :class:`repro.engine.SpanMiddleware` rather than inline
``tracer.span(...)`` calls — one code path annotates every node of the
study graph.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.obs.clock import Clock, MonotonicClock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One timed phase: name, start/end, nested children, annotations."""

    __slots__ = ("name", "start", "end", "children", "meta")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.children: List["Span"] = []
        self.meta: Dict[str, object] = {}

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end; ``None`` while the span is open."""
        return None if self.end is None else self.end - self.start

    def annotate(self, **meta) -> None:
        """Attach key/value facts to the span (counts, worker numbers)."""
        self.meta.update(meta)

    def to_dict(self) -> Dict[str, object]:
        """The span subtree as a JSON-serializable dict.

        ``start`` is the raw monotonic clock reading — translate it to
        wall time via the snapshot's ``anchor_monotonic`` /
        ``started_at_utc`` pair (``repro.obs/v2``).
        """
        out: Dict[str, object] = {"name": self.name,
                                  "start": self.start,
                                  "duration_s": self.duration}
        if self.meta:
            out["meta"] = dict(self.meta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        dur = "open" if self.end is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {dur}, {len(self.children)} children)"


class Tracer:
    """Records a forest of phase spans against one clock."""

    enabled = True

    def __init__(self, clock: Optional[Clock] = None):
        self.clock = clock or MonotonicClock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """Open a span for the duration of the ``with`` block.

        Nested calls nest the spans; the span closes (its end time is
        stamped) even when the block raises.
        """
        span = Span(name, self.clock.now())
        if meta:
            span.meta.update(meta)
        (self._stack[-1].children if self._stack else self.roots).append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self.clock.now()
            self._stack.pop()

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def graft(self, span: Span) -> None:
        """Attach an already-closed span subtree to the current position.

        Used by :mod:`repro.obs.merge` to stitch a worker process's
        captured span tree under the parent's open phase span (or as a
        new root when no span is open). The subtree is adopted as-is —
        its timestamps are expected to come from the same monotonic
        domain (forked workers share the parent's clock).
        """
        (self._stack[-1].children if self._stack else self.roots).append(span)

    def snapshot(self) -> List[Dict[str, object]]:
        """Every root span subtree as JSON-serializable dicts."""
        return [root.to_dict() for root in self.roots]

    def render_tree(self) -> str:
        """The indented phase-timing tree (the CLI's ``--trace`` output)."""
        lines: List[str] = []

        def walk(span: Span, depth: int) -> None:
            label = "  " * depth + span.name
            dur = "   (open)" if span.end is None else f"{span.duration:8.3f}s"
            extra = ""
            if span.meta:
                extra = "  (" + ", ".join(
                    f"{k}={v}" for k, v in sorted(span.meta.items())) + ")"
            lines.append(f"{label:<42s} {dur}{extra}")
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines)


class _NullSpan(Span):
    __slots__ = ()

    def annotate(self, **meta) -> None:
        pass


class NullTracer(Tracer):
    """The default, disabled tracer: spans are a shared no-op."""

    enabled = False

    _SPAN = _NullSpan("null", 0.0)

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span]:
        """A no-op span (nothing is recorded)."""
        yield self._SPAN

    def graft(self, span: Span) -> None:
        """Nothing is recorded."""

    def snapshot(self) -> List[Dict[str, object]]:
        """Always empty."""
        return []

    def render_tree(self) -> str:
        """Always empty."""
        return ""


#: The process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()
