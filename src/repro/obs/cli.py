"""The ``repro obs`` toolbox: inspect journals, snapshots, baselines.

Four subcommands over the observability artifacts a run leaves behind:

``repro obs summary FILE``
    One-screen digest of a run journal (JSONL) or a telemetry snapshot
    (JSON) — run identity, per-phase durations, record/metric counts,
    degradations and faults. The file kind is auto-detected.
``repro obs tail FILE [-n N]``
    The last N journal records, one per line (envelope + fields) —
    ``tail -f``-style triage for what a run did right before it ended.
``repro obs diff A B``
    Compare two telemetry snapshots metric by metric; exits 1 when
    they differ (``diff``-style), 0 when identical.
``repro obs bench-diff FRESH BASELINE``
    Compare fresh ``BENCH_*.json`` benchmark snapshots against the
    committed baselines, flagging regressions with direction-aware
    heuristics: wall-clock style gauges (``*wall*``, ``*_s``,
    ``*_ms``) must not grow, rate style gauges (``*speedup*``,
    ``*throughput*``) must not shrink, anything else is reported but
    never fails. ``--report-only`` keeps the exit code 0 for CI runs
    on shared hardware where timings are advisory.

Everything here is read-only over files produced elsewhere
(``--journal``, ``--metrics-out``, the benchmark harness); nothing
imports the world or pipeline machinery.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.journal import phase_durations, read_journal
from repro.obs.telemetry import SNAPSHOT_SCHEMAS

__all__ = [
    "add_obs_parser",
    "cmd_bench_diff",
    "cmd_diff",
    "cmd_summary",
    "cmd_tail",
    "load_observations",
]

#: Envelope keys every journal record carries (not event payload).
_ENVELOPE = ("seq", "t", "utc", "type")


def load_observations(path: str) -> Tuple[str, object]:
    """Classify and load ``path``: ``("snapshot", dict)`` for a
    telemetry snapshot, ``("journal", records)`` for a run journal.

    A snapshot is one JSON document with a known schema; anything that
    parses line-by-line (including a crashed run's readable prefix) is
    a journal.
    """
    with open(path) as fp:
        text = fp.read()
    try:
        doc = json.loads(text)
    except ValueError:
        return "journal", read_journal(path)
    if isinstance(doc, dict) and doc.get("schema") in SNAPSHOT_SCHEMAS:
        return "snapshot", doc
    if isinstance(doc, dict) and doc.get("type") == "journal.open":
        return "journal", [doc]  # a run that died right after opening
    raise ValueError(
        f"{path}: neither a telemetry snapshot ({'/'.join(SNAPSHOT_SCHEMAS)})"
        f" nor a run journal")


def _fields(record: Dict[str, object]) -> str:
    return " ".join(f"{k}={record[k]}" for k in sorted(record)
                    if k not in _ENVELOPE)


def _format_record(record: Dict[str, object]) -> str:
    return (f"{record.get('t', 0):>10.3f}  {record.get('type', '?'):<18} "
            f"{_fields(record)}").rstrip()


# -- summary ------------------------------------------------------------------


def _phase_lines(durations: Dict[str, float],
                 cached: Dict[str, bool]) -> List[str]:
    if not durations:
        return []
    width = max(len(name) for name in durations)
    lines = ["phases:"]
    for name, dur in durations.items():
        flag = "  (cached)" if cached.get(name) else ""
        lines.append(f"  {name:<{width}}  {dur:>10.3f}s{flag}")
    return lines


def _summarize_journal(records: List[Dict[str, object]]) -> str:
    head = records[0] if records else {}
    lines = []
    if head.get("type") == "journal.open":
        lines.append(f"run {head.get('run_id')}  "
                     f"started {head.get('started_at_utc')}  "
                     f"schema {head.get('schema')}")
    closed = any(r.get("type") == "journal.close" for r in records)
    lines.append(f"{len(records)} records"
                 + ("" if closed else "  (no footer: run died mid-write)"))
    by_type: Dict[str, int] = {}
    for r in records:
        by_type[str(r.get("type"))] = by_type.get(str(r.get("type")), 0) + 1
    lines.append("record types: " + ", ".join(
        f"{t}={n}" for t, n in sorted(by_type.items())))
    cached = {str(r["phase"]): bool(r.get("cached"))
              for r in records if r.get("type") == "phase.finish"}
    lines.extend(_phase_lines(phase_durations(records), cached))
    faults = [r for r in records if r.get("type") == "chaos.fault"]
    if faults:
        lines.append(f"chaos faults: {len(faults)}")
    for r in records:
        if r.get("type") == "degraded":
            lines.append("degraded: " + _fields(r))
        if r.get("type") == "phase.error":
            lines.append(f"phase error: {r.get('phase')} "
                         f"({r.get('error')})")
    return "\n".join(lines)


def _span_durations(spans: Iterable[Dict[str, object]]) -> Dict[str, float]:
    """Top-level phase durations from a snapshot's root span children."""
    out: Dict[str, float] = {}
    for root in spans:
        for child in root.get("children", ()):  # type: ignore[union-attr]
            out[str(child["name"])] = float(child["duration_s"])
    return out


def _summarize_snapshot(snap: Dict[str, object]) -> str:
    lines = [f"snapshot schema {snap.get('schema')}"]
    if snap.get("run_id"):
        lines[0] = (f"run {snap.get('run_id')}  "
                    f"started {snap.get('started_at_utc')}  "
                    f"schema {snap.get('schema')}")
    metrics = snap.get("metrics", {})
    lines.append(", ".join(
        f"{len(metrics.get(kind, {}))} {kind}"  # type: ignore[union-attr]
        for kind in ("counters", "gauges", "histograms")))
    lines.extend(_phase_lines(
        _span_durations(snap.get("spans", ())), {}))  # type: ignore[arg-type]
    return "\n".join(lines)


def cmd_summary(args: argparse.Namespace) -> int:
    kind, doc = load_observations(args.file)
    print(_summarize_journal(doc) if kind == "journal"
          else _summarize_snapshot(doc))
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    kind, doc = load_observations(args.file)
    if kind != "journal":
        print(f"{args.file} is a telemetry snapshot, not a journal",
              file=sys.stderr)
        return 2
    for record in doc[-args.n:]:
        print(_format_record(record))
    return 0


# -- diff ---------------------------------------------------------------------


def _flat_metrics(snap: Dict[str, object]) -> Dict[str, object]:
    """One comparable value per series: counters/gauges as-is,
    histograms reduced to their (count, sum, nan) identity."""
    metrics = snap.get("metrics", {})
    out: Dict[str, object] = {}
    for name, value in metrics.get("counters", {}).items():  # type: ignore[union-attr]
        out[name] = value
    for name, value in metrics.get("gauges", {}).items():  # type: ignore[union-attr]
        out[name] = value
    for name, h in metrics.get("histograms", {}).items():  # type: ignore[union-attr]
        out[name] = (f"count={h['count']} sum={h['sum']:.6g}"
                     + (f" nan={h['nan']}" if h.get("nan") else ""))
    return out


def _load_snapshot(path: str) -> Dict[str, object]:
    kind, doc = load_observations(path)
    if kind != "snapshot":
        raise ValueError(f"{path} is a run journal; diff wants "
                         f"--metrics-out snapshots")
    return doc  # type: ignore[return-value]


def cmd_diff(args: argparse.Namespace) -> int:
    try:
        a = _flat_metrics(_load_snapshot(args.a))
        b = _flat_metrics(_load_snapshot(args.b))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    n_diff = 0
    for name in sorted(set(a) | set(b)):
        if name not in a:
            print(f"+ {name} = {b[name]}")
        elif name not in b:
            print(f"- {name} = {a[name]}")
        elif a[name] != b[name]:
            print(f"~ {name}: {a[name]} -> {b[name]}")
        else:
            continue
        n_diff += 1
    if n_diff:
        print(f"{n_diff} series differ", file=sys.stderr)
        return 1
    print("snapshots carry identical metrics", file=sys.stderr)
    return 0


# -- bench-diff ---------------------------------------------------------------


def _direction(name: str) -> Optional[str]:
    """Which way a ``repro.bench.*`` gauge is allowed to move.

    ``lower``: wall-clock style, growth is a regression. ``higher``:
    rate style, shrinkage is a regression. ``None``: shape/config
    values (row counts, repeats, cpus) — reported, never failed on.
    """
    leaf = name.rsplit(".", 1)[-1]
    if "speedup" in leaf or "throughput" in leaf or leaf.endswith("per_s"):
        return "higher"
    if "wall" in leaf or leaf.endswith("_s") or leaf.endswith("_ms"):
        return "lower"
    return None


def _bench_files(path: str) -> Dict[str, str]:
    """``{BENCH_name.json: full path}`` for a directory or single file."""
    if os.path.isfile(path):
        return {os.path.basename(path): path}
    return {name: os.path.join(path, name)
            for name in sorted(os.listdir(path))
            if name.startswith("BENCH_") and name.endswith(".json")}


def cmd_bench_diff(args: argparse.Namespace) -> int:
    fresh = _bench_files(args.fresh)
    base = _bench_files(args.baseline)
    common = sorted(set(fresh) & set(base))
    if not common:
        print(f"no BENCH_*.json names in common between {args.fresh} "
              f"and {args.baseline}", file=sys.stderr)
        return 2
    for name in sorted(set(fresh) - set(base)):
        print(f"{name}: no committed baseline (new benchmark?)",
              file=sys.stderr)
    regressions = []
    for name in common:
        a = _flat_metrics(_load_snapshot(base[name]))
        b = _flat_metrics(_load_snapshot(fresh[name]))
        print(f"== {name}")
        for metric in sorted(set(a) & set(b)):
            old, new = a[metric], b[metric]
            if not (isinstance(old, (int, float))
                    and isinstance(new, (int, float))):
                continue
            direction = _direction(metric)
            rel = (new - old) / old if old else 0.0
            verdict = ""
            if direction == "lower" and rel > args.threshold:
                verdict = "REGRESSED"
            elif direction == "higher" and rel < -args.threshold:
                verdict = "REGRESSED"
            elif direction and abs(rel) > args.threshold:
                verdict = "improved"
            if verdict == "REGRESSED":
                regressions.append((name, metric, rel))
            if direction or verdict:
                print(f"  {metric}: {old:.6g} -> {new:.6g} "
                      f"({rel:+.1%}){'  ' + verdict if verdict else ''}")
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, metric, rel in regressions:
            print(f"  {name}: {metric} ({rel:+.1%})", file=sys.stderr)
        return 0 if args.report_only else 1
    print("no regressions", file=sys.stderr)
    return 0


# -- parser wiring ------------------------------------------------------------


def add_obs_parser(sub) -> None:
    """Register the ``obs`` subcommand tree on a subparsers object."""
    p_obs = sub.add_parser(
        "obs", help="inspect run journals, snapshots, and baselines")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_sum = obs_sub.add_parser(
        "summary", help="digest a run journal or telemetry snapshot")
    p_sum.add_argument("file", help="journal (JSONL) or snapshot (JSON)")
    p_sum.set_defaults(func=cmd_summary)

    p_tail = obs_sub.add_parser(
        "tail", help="print the last records of a run journal")
    p_tail.add_argument("file")
    p_tail.add_argument("-n", type=int, default=10, metavar="N",
                        help="records to show (default 10)")
    p_tail.set_defaults(func=cmd_tail)

    p_diff = obs_sub.add_parser(
        "diff", help="compare two telemetry snapshots (exit 1 on change)")
    p_diff.add_argument("a")
    p_diff.add_argument("b")
    p_diff.set_defaults(func=cmd_diff)

    p_bench = obs_sub.add_parser(
        "bench-diff",
        help="compare fresh BENCH_*.json against committed baselines")
    p_bench.add_argument("fresh", help="directory (or file) of fresh "
                                       "benchmark snapshots")
    p_bench.add_argument("baseline", help="directory (or file) of "
                                          "committed baselines")
    p_bench.add_argument("--threshold", type=float, default=0.25,
                         metavar="FRAC",
                         help="relative change that counts as a "
                              "regression (default 0.25)")
    p_bench.add_argument("--report-only", action="store_true",
                         help="never fail the exit code on regressions "
                              "(CI on shared hardware)")
    p_bench.set_defaults(func=cmd_bench_diff)
