"""Cross-process telemetry capture and deterministic merge.

``run_parallel`` forks crawl workers; the reactive service restores
killed workers. Before this module, those child/incarnation contexts
were telemetry black holes — the parent trace showed one ``crawl`` span
covering N invisible shards. Now each worker context serializes its
span tree and registry into a **capture** (a plain JSON-serializable
dict that survives a ``multiprocessing`` pipe), and the parent stitches
every capture under its own trace:

* child span trees are grafted under the parent's currently-open span
  (the ``crawl`` phase span, when merging shard results) with the
  caller's labels — ``shard=2`` — added to the subtree root's meta;
* child metrics are folded into the parent registry with the same
  labels added to every series, so a shard's ``repro.crawl.rows``
  becomes ``repro.crawl.rows{shard=2}`` — *alongside*, never replacing,
  the unlabeled merged totals the parent publishes from its
  worker-count-invariant :class:`~repro.openintel.stats.CrawlStats`.

The merge is deterministic: captures are folded in the order the caller
presents them (``run_parallel`` iterates shards in index order), and a
capture's own spans/metrics are already deterministically ordered.
Forked workers inherit the parent's ``CLOCK_MONOTONIC`` domain on every
platform we fork on, so grafted span ``start`` offsets line up with the
parent's without rebasing; each capture still carries its own
``started_at_utc`` / ``anchor_monotonic`` pair for consumers that want
to check.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span

__all__ = [
    "CAPTURE_SCHEMA",
    "capture_telemetry",
    "merge_capture",
    "dump_metrics",
    "load_metrics",
    "span_from_dict",
]

#: Version tag stamped into every capture dict.
CAPTURE_SCHEMA = "repro.obs.capture/v1"


def capture_telemetry(telemetry) -> Dict[str, object]:
    """Serialize a telemetry bundle for shipping across a process pipe.

    Unlike :meth:`RunTelemetry.snapshot` (a flat exposition format),
    a capture keeps metrics structured — name, label pairs, and raw
    histogram state — so :func:`merge_capture` can fold them into
    another registry with extra labels attached.
    """
    return {
        "schema": CAPTURE_SCHEMA,
        "run_id": telemetry.run_id,
        "started_at_utc": telemetry.started_at_utc,
        "anchor_monotonic": telemetry.anchor_monotonic,
        "spans": telemetry.tracer.snapshot(),
        "metrics": dump_metrics(telemetry.registry),
    }


def merge_capture(telemetry, capture: Dict[str, object], **labels) -> None:
    """Stitch a worker's capture into the parent telemetry.

    ``labels`` (e.g. ``shard=2`` or ``incarnation=1``) are annotated on
    each grafted root span and added to every merged metric series.
    Spans attach under the parent tracer's currently-open span, or as
    new roots when none is open.
    """
    for span_dict in capture.get("spans", ()):  # type: ignore[union-attr]
        span = span_from_dict(span_dict, extra_meta=labels)
        telemetry.tracer.graft(span)
    load_metrics(telemetry.registry,
                 capture.get("metrics", {}), **labels)


def span_from_dict(data: Dict[str, object],
                   extra_meta: Optional[Dict[str, object]] = None) -> Span:
    """Rebuild a :class:`Span` subtree from its ``to_dict`` form.

    ``extra_meta`` is applied to the subtree root only — a shard label
    on the root is enough to attribute the whole subtree.
    """
    start = float(data.get("start", 0.0))  # type: ignore[arg-type]
    span = Span(str(data["name"]), start)
    duration = data.get("duration_s")
    if duration is not None:
        span.end = start + float(duration)  # type: ignore[arg-type]
    meta = data.get("meta")
    if meta:
        span.meta.update(meta)  # type: ignore[arg-type]
    if extra_meta:
        span.meta.update(extra_meta)
    for child in data.get("children", ()):  # type: ignore[union-attr]
        span.children.append(span_from_dict(child))
    return span


def dump_metrics(registry: MetricsRegistry) -> Dict[str, List[Dict[str, object]]]:
    """A registry's full state as structured, JSON-serializable rows."""
    return {
        "counters": [
            {"name": c.name, "labels": [list(kv) for kv in c.labels],
             "value": c.value}
            for _, c in sorted(registry._counters.items())],
        "gauges": [
            {"name": g.name, "labels": [list(kv) for kv in g.labels],
             "value": g.value}
            for _, g in sorted(registry._gauges.items())],
        "histograms": [
            {"name": h.name, "labels": [list(kv) for kv in h.labels],
             "bounds": list(h.bounds), "counts": list(h.bucket_counts),
             "sum": h.sum, "nan": h.nan}
            for _, h in sorted(registry._histograms.items())],
    }


def load_metrics(registry: MetricsRegistry,
                 dump: Dict[str, List[Dict[str, object]]], **extra) -> None:
    """Fold a :func:`dump_metrics` dict into ``registry``.

    ``extra`` labels are added to every series (overriding a same-named
    label from the dump — the merger's attribution wins).
    """
    def _labels(row: Dict[str, object]) -> Dict[str, object]:
        labels = {k: v for k, v in row.get("labels", ())}  # type: ignore[misc]
        labels.update(extra)
        return labels

    for row in dump.get("counters", ()):
        value = int(row["value"])  # type: ignore[arg-type]
        if value:
            registry.counter(str(row["name"]), **_labels(row)).inc(value)
    for row in dump.get("gauges", ()):
        registry.gauge(str(row["name"]),
                       **_labels(row)).set(row["value"])  # type: ignore[arg-type]
    for row in dump.get("histograms", ()):
        hist = registry.histogram(str(row["name"]),
                                  buckets=row["bounds"],  # type: ignore[arg-type]
                                  **_labels(row))
        hist.add_counts(row["counts"], row["sum"],  # type: ignore[arg-type]
                        nan=int(row.get("nan", 0)))  # type: ignore[arg-type]
