"""A dependency-free metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
timing half). Metrics are identified by a dotted name plus optional
labels (``registry.counter("repro.chaos.faults", surface="feed",
kind="drop")``); histograms use fixed, explicit bucket bounds with
``value <= bound`` (Prometheus ``le``) semantics.

Two exposition formats:

- :meth:`MetricsRegistry.snapshot` — a JSON-serializable dict (the
  ``metrics`` half of the ``repro.obs/v2`` snapshot schema);
- :meth:`MetricsRegistry.render_prometheus` — Prometheus text format
  (``# TYPE`` lines, cumulative ``_bucket{le=...}`` series).

The default registry in the pipeline is :data:`NULL_REGISTRY`: every
metric object it hands out is a shared no-op, so instrumented code pays
one no-op method call when telemetry is off and the study's outputs are
byte-identical either way. Nothing here touches a random stream.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BufferedRegistry",
    "buffered",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS_MS",
    "QUERY_BUCKETS_MS",
]

#: Default histogram bounds (milliseconds): spans DNS RTTs from LAN-fast
#: to multi-second timeouts.
DEFAULT_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0)

#: Histogram bounds (milliseconds) for serve-layer query latencies:
#: finer at the sub-millisecond end, where warm cache-backed queries
#: live, than the DNS-RTT default.
QUERY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0)

#: (sorted label items) — the second half of a metric's identity key.
Labels = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: Labels) -> str:
    """The flat string identity used in snapshots: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) to the counter."""
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` to the gauge."""
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        """Subtract ``n`` from the gauge."""
        self.value -= n


class Histogram:
    """A fixed-bucket histogram with ``value <= bound`` bucket edges.

    ``bucket_counts`` has one slot per bound plus a final overflow slot
    (the Prometheus ``+Inf`` bucket); counts are per-bucket internally
    and cumulated only at exposition time.

    NaN observations land nowhere sensible in a ``<=``-edged bucket
    scheme (``bisect`` would silently file them in the first bucket and
    poison ``sum``), so they are tallied on their own ``nan`` counter —
    same policy as :class:`repro.util.stats.Histogram` — and excluded
    from ``count`` / ``sum`` / the buckets.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum",
                 "nan")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS_MS,
                 labels: Labels = ()):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.nan = 0

    def observe(self, value: float) -> None:
        """Record one observation (NaN goes to the ``nan`` tally)."""
        if value != value:
            self.nan += 1
            return
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def add_counts(self, bucket_counts: Sequence[int], total_sum: float,
                   nan: int = 0) -> None:
        """Bulk-merge pre-bucketed counts (e.g. a crawl shard's stats).

        ``bucket_counts`` must match this histogram's layout (one slot
        per bound plus overflow).
        """
        if len(bucket_counts) != len(self.bucket_counts):
            raise ValueError(
                f"bucket layout mismatch: {len(bucket_counts)} != "
                f"{len(self.bucket_counts)}")
        if nan < 0:
            raise ValueError("nan count must be non-negative")
        for i, n in enumerate(bucket_counts):
            if n < 0:
                raise ValueError("bucket counts must be non-negative")
            self.bucket_counts[i] += n
        self.count += sum(bucket_counts)
        self.sum += total_sum
        self.nan += nan


class MetricsRegistry:
    """Get-or-create home of every metric in a run."""

    #: Null registries flip this off; instrumented code may branch on it
    #: to skip whole collection blocks (e.g. the crawl hot loop).
    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        #: name -> kind, so one name never spans metric types.
        self._kinds: Dict[str, str] = {}

    # -- get-or-create --------------------------------------------------------

    def _check_kind(self, name: str, kind: str) -> None:
        seen = self._kinds.setdefault(name, kind)
        if seen != kind:
            raise ValueError(f"metric {name!r} already registered as {seen}")

    def counter(self, name: str, **labels) -> Counter:
        """The counter named ``name`` with ``labels`` (created on first use)."""
        self._check_kind(name, "counter")
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge named ``name`` with ``labels`` (created on first use)."""
        self._check_kind(name, "gauge")
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        """The histogram named ``name`` (created with ``buckets`` bounds).

        Re-requesting an existing histogram with different bounds is an
        error — bucket layouts are part of the metric's contract.
        """
        self._check_kind(name, "histogram")
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS_MS,
                key[1])
        elif buckets is not None and tuple(float(b) for b in buckets) \
                != metric.bounds:
            raise ValueError(f"histogram {name!r} already registered with "
                             f"bounds {metric.bounds}")
        return metric

    # -- exposition -----------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """All metrics as a JSON-serializable dict (stable key order)."""
        return {
            "counters": {metric_key(c.name, c.labels): c.value
                         for _, c in sorted(self._counters.items())},
            "gauges": {metric_key(g.name, g.labels): g.value
                       for _, g in sorted(self._gauges.items())},
            "histograms": {
                metric_key(h.name, h.labels): {
                    "bounds": list(h.bounds),
                    "counts": list(h.bucket_counts),
                    "count": h.count,
                    "sum": h.sum,
                    "nan": h.nan,
                }
                for _, h in sorted(self._histograms.items())
            },
        }

    def flush(self) -> None:
        """No-op on a plain registry: writes are applied immediately.

        :class:`BufferedRegistry` overrides this to fold its staged
        increments into the target, so code holding either kind can
        call ``flush()`` unconditionally at its commit points.
        """

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every metric."""
        lines: List[str] = []
        emitted_type = set()

        def emit_type(name: str, kind: str) -> str:
            sane = _sanitize(name)
            if sane not in emitted_type:
                emitted_type.add(sane)
                lines.append(f"# TYPE {sane} {kind}")
            return sane

        for _, c in sorted(self._counters.items()):
            sane = emit_type(c.name, "counter")
            lines.append(f"{sane}{_render_labels(c.labels)} {c.value}")
        for _, g in sorted(self._gauges.items()):
            sane = emit_type(g.name, "gauge")
            lines.append(f"{sane}{_render_labels(g.labels)} {_fmt(g.value)}")
        for _, h in sorted(self._histograms.items()):
            sane = emit_type(h.name, "histogram")
            cumulative = 0
            for bound, n in zip(h.bounds, h.bucket_counts):
                cumulative += n
                labels = h.labels + (("le", _fmt(bound)),)
                lines.append(
                    f"{sane}_bucket{_render_labels(labels)} {cumulative}")
            labels = h.labels + (("le", "+Inf"),)
            lines.append(f"{sane}_bucket{_render_labels(labels)} {h.count}")
            lines.append(f"{sane}_sum{_render_labels(h.labels)} {_fmt(h.sum)}")
            lines.append(f"{sane}_count{_render_labels(h.labels)} {h.count}")
            if h.nan:
                lines.append(
                    f"{sane}_nan{_render_labels(h.labels)} {h.nan}")
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch in "_:" else "_" for ch in name)


def _sanitize_label(name: str) -> str:
    # Prometheus label names allow [a-zA-Z_][a-zA-Z0-9_]* — no colons,
    # unlike metric names.
    sane = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if sane[:1].isdigit():
        sane = "_" + sane
    return sane


def _fmt(value: float) -> str:
    return repr(value) if isinstance(value, float) else str(value)


def _render_labels(labels: Iterable[Tuple[str, str]]) -> str:
    # Sanitizing label names can collide (`a.b` and `a-b` both become
    # `a_b`); duplicates get a deterministic positional suffix rather
    # than silently overwriting one another's series.
    seen: Dict[str, int] = {}
    items = []
    for k, v in labels:
        sane = _sanitize_label(k)
        n = seen.get(sane, 0) + 1
        seen[sane] = n
        if n > 1:
            sane = f"{sane}_{n}"
        items.append(f'{sane}="{_escape(v)}"')
    return "{" + ",".join(items) + "}" if items else ""


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


# ---------------------------------------------------------------------------
# Buffered (checkpoint-deduplicated) variant
# ---------------------------------------------------------------------------


class _BufferedGauge(Gauge):
    __slots__ = ("touched",)

    def __init__(self, name: str, labels: Labels = ()):
        super().__init__(name, labels)
        self.touched = False

    def set(self, value: float) -> None:
        self.value = value
        self.touched = True

    def inc(self, n: float = 1.0) -> None:
        self.value += n
        self.touched = True

    def dec(self, n: float = 1.0) -> None:
        self.value -= n
        self.touched = True


class BufferedRegistry(MetricsRegistry):
    """A staging registry whose updates only land on ``flush()``.

    The reactive platform's exactly-once metric dedupe: a
    :class:`~repro.reactive.service.CampaignWorker` records its live
    counters/gauges/histograms into one of these, and folds the staged
    increments into the service registry at its tick-checkpoint
    boundary — the same instant its stream offsets and scheduler state
    commit. A chaos kill between checkpoints drops the worker object
    and its unflushed increments with it, so the restored worker's
    replay re-records the rolled-back work exactly once instead of
    double-counting it.

    ``flush()`` resets the staged metrics *in place* (values zeroed,
    objects kept) because callers hold bound references to them — the
    scheduler binds its counters once at construction.
    """

    def __init__(self, target: MetricsRegistry):
        super().__init__()
        self.target = target

    def gauge(self, name: str, **labels) -> Gauge:
        """The staged gauge named ``name`` (created on first use)."""
        self._check_kind(name, "gauge")
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = _BufferedGauge(name, key[1])
        return metric

    def flush(self) -> None:
        """Fold every staged update into the target, then reset staging."""
        for (name, labels), c in sorted(self._counters.items()):
            if c.value:
                self.target.counter(name, **dict(labels)).inc(c.value)
                c.value = 0
        for (name, labels), g in sorted(self._gauges.items()):
            if g.touched:  # type: ignore[attr-defined]
                self.target.gauge(name, **dict(labels)).set(g.value)
                g.touched = False  # type: ignore[attr-defined]
        for (name, labels), h in sorted(self._histograms.items()):
            if h.count or h.nan:
                self.target.histogram(
                    name, buckets=h.bounds,
                    **dict(labels)).add_counts(h.bucket_counts, h.sum,
                                               nan=h.nan)
                for i in range(len(h.bucket_counts)):
                    h.bucket_counts[i] = 0
                h.count = 0
                h.sum = 0.0
                h.nan = 0

    def discard(self) -> None:
        """Drop every staged update without applying it."""
        for _, c in self._counters.items():
            c.value = 0
        for _, g in self._gauges.items():
            g.value = 0.0
            g.touched = False  # type: ignore[attr-defined]
        for _, h in self._histograms.items():
            for i in range(len(h.bucket_counts)):
                h.bucket_counts[i] = 0
            h.count = 0
            h.sum = 0.0
            h.nan = 0


def buffered(target: MetricsRegistry) -> MetricsRegistry:
    """A :class:`BufferedRegistry` over ``target``, or ``target`` itself
    when disabled (buffering no-ops costs more than it saves)."""
    return BufferedRegistry(target) if target.enabled else target


# ---------------------------------------------------------------------------
# Null (disabled) variants
# ---------------------------------------------------------------------------


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def add_counts(self, bucket_counts: Sequence[int], total_sum: float,
                   nan: int = 0) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The default, disabled registry: hands out shared no-op metrics.

    Every accessor returns the same inert object, so instrumentation
    points cost one no-op call and allocate nothing when telemetry is
    off; :meth:`snapshot` is empty and exposition renders nothing.
    """

    enabled = False

    _COUNTER = _NullCounter("null")
    _GAUGE = _NullGauge("null")
    _HISTOGRAM = _NullHistogram("null")

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, **labels) -> Counter:
        """The shared no-op counter."""
        return self._COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        """The shared no-op gauge."""
        return self._GAUGE

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        """The shared no-op histogram."""
        return self._HISTOGRAM


#: The process-wide disabled registry (stateless, safe to share).
NULL_REGISTRY = NullRegistry()
