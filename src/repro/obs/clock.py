"""Injectable monotonic clocks.

Telemetry measures wall time with a :class:`Clock` it is handed, never
with module-level ``time.time()`` calls: production code gets a
:class:`MonotonicClock`, tests get a :class:`FakeClock` they advance by
hand, and every span/duration in a trace is then exactly predictable.

Clocks are the *only* source of nondeterminism in :mod:`repro.obs`, and
they feed timings alone — never a random stream, never a study output.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "MonotonicClock", "FakeClock"]


class Clock:
    """A source of monotonic timestamps in (fractional) seconds."""

    def now(self) -> float:
        """The current monotonic time, in seconds."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real thing: ``time.monotonic`` (immune to wall-clock steps)."""

    def now(self) -> float:
        """The current ``time.monotonic()`` reading."""
        return time.monotonic()


class FakeClock(Clock):
    """A hand-advanced clock for deterministic timing tests."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        """The fake clock's current reading."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward; going backwards is forbidden."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
