"""The run journal: an append-only JSONL event log for one run.

Where the :class:`~repro.obs.registry.MetricsRegistry` answers "how
much" and the :class:`~repro.obs.spans.Tracer` answers "how long", the
journal answers "what happened, in what order": every record is one
JSON object on its own line, written and flushed as the event occurs,
so a crash leaves a readable prefix instead of nothing (deliberately
*not* the atomic temp-file write the snapshot uses — a journal's value
is precisely that it survives the run dying halfway).

Record envelope
---------------

Every record carries the same four envelope keys plus event fields::

    {"seq": 17, "t": 0.1042, "utc": "2021-03-01T12:00:00.104200+00:00",
     "type": "phase.finish", "phase": "crawl", "duration_s": 7.85,
     "cached": false}

``seq`` is a per-journal monotonic sequence number, ``t`` the monotonic
offset (seconds) since the journal opened, and ``utc`` the wall-clock
anchor translated by that offset — so records correlate with span
``start`` offsets in the ``repro.obs/v2`` snapshot through the shared
``anchor_monotonic`` / ``started_at_utc`` pair. The first record is
always ``type="journal.open"`` and names the schema, the run id, and
both anchors.

Event types
-----------

``run.start`` / ``run.finish``
    emitted by ``run_study`` around the whole pipeline (config summary
    on start; degradation flags on finish).
``phase.start`` / ``phase.finish`` / ``phase.error``
    emitted by :class:`repro.engine.JournalMiddleware` for every traced
    node of the study graph and every lazy ``analysis.*`` descriptor;
    ``phase.finish`` carries ``duration_s`` and ``cached``.
``cache.hit`` / ``cache.miss`` / ``cache.save``
    emitted by :class:`repro.artifacts.PhaseCache`.
``chaos.fault``
    one record per injected fault, mirroring the injector's event log.
``degraded``
    emitted once before ``run.finish`` when the study is degraded.
``worker.start`` / ``worker.finish``
    crawl shard lifecycle (parent-side, one pair per shard).
``worker.kill`` / ``worker.restore`` / ``worker.checkpoint``
    reactive worker lifecycle; ``incarnation`` counts restores.
``reactive.admit`` / ``reactive.shed``
    per-campaign admission decisions (with ``late`` / ``throttled``
    degradation flags on admit).

Journal records are **at-least-once** under chaos replay: a reactive
tick that a crash rolls back has already journaled its admission
decisions, and the restored worker journals them again — records carry
the worker ``incarnation`` so replays are attributable, unlike metrics,
which are deduplicated at the checkpoint boundary (see
:class:`~repro.obs.registry.BufferedRegistry`).

The determinism contract holds: the journal observes, never perturbs —
it draws nothing from any seeded RNG and study outputs are
byte-identical with or without it (asserted in tests and CI).
"""

from __future__ import annotations

import json
import os
import uuid
from datetime import datetime, timedelta, timezone
from typing import Dict, IO, Iterable, List, Optional, Union

from repro.obs.clock import Clock, MonotonicClock

__all__ = [
    "JOURNAL_SCHEMA",
    "RunJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "new_run_id",
    "read_journal",
    "phase_durations",
]

#: Version tag stamped into every journal's ``journal.open`` record.
JOURNAL_SCHEMA = "repro.journal/v1"


def new_run_id() -> str:
    """A fresh 12-hex-digit run id (not drawn from any seeded RNG)."""
    return uuid.uuid4().hex[:12]


def _utc_now() -> datetime:
    return datetime.now(timezone.utc)


class RunJournal:
    """An open, writable journal: one JSONL file, flushed per record."""

    enabled = True

    def __init__(self, path: Union[str, "os.PathLike[str]"], *,
                 run_id: Optional[str] = None,
                 clock: Optional[Clock] = None,
                 started_at_utc: Optional[str] = None):
        self.path = os.fspath(path)
        self.clock = clock or MonotonicClock()
        self.run_id = run_id or new_run_id()
        if started_at_utc is not None:
            self._started_at = datetime.fromisoformat(started_at_utc)
        else:
            self._started_at = _utc_now()
        self.started_at_utc = self._started_at.isoformat()
        self._anchor = self.clock.now()
        self._seq = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fp: Optional[IO[str]] = open(self.path, "w")
        self.emit("journal.open", schema=JOURNAL_SCHEMA, run_id=self.run_id,
                  started_at_utc=self.started_at_utc,
                  anchor_monotonic=self._anchor)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called (emits become no-ops)."""
        return self._fp is None

    def emit(self, type: str, **fields) -> None:
        """Append one record (envelope + ``fields``) and flush it.

        Emitting on a closed journal is a silent no-op, so late lazy
        analyses never crash a run that already wrote its footer.
        """
        if self._fp is None:
            return
        offset = self.clock.now() - self._anchor
        record: Dict[str, object] = {
            "seq": self._seq,
            "t": round(offset, 6),
            "utc": (self._started_at
                    + timedelta(seconds=offset)).isoformat(),
            "type": type,
        }
        record.update(fields)
        self._fp.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":"), default=str))
        self._fp.write("\n")
        self._fp.flush()
        self._seq += 1

    def bind(self, **extra) -> "_BoundJournal":
        """A view of this journal that adds ``extra`` to every record.

        Used to stamp a reactive worker's ``incarnation`` onto every
        admission record its scheduler emits without threading the
        number through every call site.
        """
        return _BoundJournal(self, extra)

    def close(self) -> None:
        """Write the ``journal.close`` footer and close the file."""
        if self._fp is None:
            return
        self.emit("journal.close", records=self._seq)
        fp, self._fp = self._fp, None
        fp.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _BoundJournal:
    """A journal view stamping fixed fields onto every record."""

    __slots__ = ("_journal", "_extra")

    def __init__(self, journal: "RunJournal", extra: Dict[str, object]):
        self._journal = journal
        self._extra = extra

    @property
    def enabled(self) -> bool:
        return self._journal.enabled

    def emit(self, type: str, **fields) -> None:
        merged = dict(self._extra)
        merged.update(fields)
        self._journal.emit(type, **merged)

    def bind(self, **extra) -> "_BoundJournal":
        merged = dict(self._extra)
        merged.update(extra)
        return _BoundJournal(self._journal, merged)


class NullJournal:
    """The default, disabled journal: every method is a no-op."""

    enabled = False
    closed = True
    run_id = ""
    path = ""

    def emit(self, type: str, **fields) -> None:
        """Nothing is recorded."""

    def bind(self, **extra) -> "NullJournal":
        """Binding a null journal is still the null journal."""
        return self

    def close(self) -> None:
        """Nothing to close."""


#: The process-wide disabled journal (stateless, safe to share).
NULL_JOURNAL = NullJournal()


# ---------------------------------------------------------------------------
# Readers
# ---------------------------------------------------------------------------


def read_journal(path: Union[str, "os.PathLike[str]"]) -> List[Dict[str, object]]:
    """Parse a journal file into its records, in order.

    A trailing partial line (the run died mid-write) is ignored rather
    than raised on — reading the surviving prefix is the whole point.
    """
    records: List[Dict[str, object]] = []
    with open(os.fspath(path)) as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                break
    return records


def phase_durations(
        records: Union[str, "os.PathLike[str]", Iterable[Dict[str, object]]],
) -> Dict[str, float]:
    """``{phase: duration_s}`` from a journal's ``phase.finish`` records.

    Accepts a path or pre-parsed records; when a phase finished more
    than once (warm analyses, replays) the last record wins — these are
    "last-run" durations, which is what ``repro graph --from-journal``
    annotates the DAG with.
    """
    if isinstance(records, (str, os.PathLike)):
        records = read_journal(records)
    durations: Dict[str, float] = {}
    for record in records:
        if record.get("type") == "phase.finish":
            durations[str(record["phase"])] = float(record["duration_s"])  # type: ignore[arg-type]
    return durations
