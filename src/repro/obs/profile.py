"""Opt-in per-phase resource profiling: CPU, peak RSS, allocations.

A :class:`PhaseProfiler` wraps each traced phase (via
:class:`repro.engine.ProfileMiddleware`) and publishes what it cost as
``repro.profile.*`` gauges, labeled ``{phase=...}``:

================================  =============================================
``repro.profile.cpu_s``           process CPU seconds (user+system, *including
                                  reaped children* — a forked 4-worker crawl's
                                  CPU lands on the parent's ``crawl`` phase)
``repro.profile.peak_rss_kb``     peak resident set size, in KiB, as of the
                                  phase's end (``ru_maxrss`` is a high-water
                                  mark, so this is monotone across phases —
                                  the first phase to touch the peak names it)
``repro.profile.net_alloc_kb``    net tracemalloc-tracked Python allocation
                                  delta across the phase, in KiB
``repro.profile.peak_alloc_kb``   peak tracked allocation above the phase's
                                  starting point, in KiB
================================  =============================================

The zero-overhead contract
--------------------------

Profiling is **off by default** and its cost when off is exactly zero:
``run_study`` only inserts the middleware (and only starts
``tracemalloc``) when asked to profile, so an unprofiled run executes
not one extra instruction in the phase path — no disabled-check per
phase, no tracing hooks, nothing. Tests assert that an unprofiled run
records no ``repro.profile.*`` series and leaves ``tracemalloc``
untracing.

When profiling *is* on, outputs still don't move: the profiler draws
nothing from any seeded RNG and publishes only into the telemetry
registry, so stdout and every study artifact stay byte-identical
(asserted in tests and byte-diffed in CI).

``tracemalloc`` costs real time (every allocation is traced); CPU and
RSS cost almost nothing. ``PhaseProfiler(..., trace_allocations=False)``
keeps the cheap collectors only. RSS collection degrades gracefully to
absent when the platform lacks the ``resource`` module (non-POSIX).
"""

from __future__ import annotations

import os
import tracemalloc
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.registry import MetricsRegistry

try:
    import resource
except ImportError:  # pragma: no cover - POSIX-only module
    resource = None  # type: ignore[assignment]

__all__ = ["PhaseProfiler", "cpu_seconds", "peak_rss_kb"]


def cpu_seconds() -> float:
    """Total CPU seconds consumed: user+system, self and reaped children."""
    t = os.times()
    return t.user + t.system + t.children_user + t.children_system


def peak_rss_kb() -> Optional[float]:
    """Peak resident set size in KiB (self + children), if measurable.

    Linux reports ``ru_maxrss`` in KiB already; macOS reports bytes.
    Returns ``None`` where the ``resource`` module is unavailable.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    scale = 1024.0 if os.uname().sysname == "Darwin" else 1.0
    peak = max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
               resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return peak / scale


class PhaseProfiler:
    """Measures phases and publishes ``repro.profile.*`` gauges.

    One profiler serves a whole run; re-measuring a phase name (a lazy
    analysis accessed twice) overwrites its gauges — they are "last
    run" figures, like the journal's durations. The profiler owns the
    ``tracemalloc`` lifecycle when it started tracing: call
    :meth:`close` (``run_study`` does, in a ``finally``) to stop it.
    """

    def __init__(self, registry: MetricsRegistry,
                 trace_allocations: bool = True):
        self.registry = registry
        self.trace_allocations = trace_allocations
        self._started_tracing = False
        if trace_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True

    @contextmanager
    def measure(self, phase: str) -> Iterator[None]:
        """Profile the ``with`` block as phase ``phase``."""
        tracing = self.trace_allocations and tracemalloc.is_tracing()
        if tracing:
            alloc0 = tracemalloc.get_traced_memory()[0]
            tracemalloc.reset_peak()
        cpu0 = cpu_seconds()
        try:
            yield
        finally:
            gauge = self.registry.gauge
            gauge("repro.profile.cpu_s",
                  phase=phase).set(cpu_seconds() - cpu0)
            rss = peak_rss_kb()
            if rss is not None:
                gauge("repro.profile.peak_rss_kb", phase=phase).set(rss)
            if tracing:
                current, peak = tracemalloc.get_traced_memory()
                gauge("repro.profile.net_alloc_kb",
                      phase=phase).set((current - alloc0) / 1024.0)
                gauge("repro.profile.peak_alloc_kb",
                      phase=phase).set(max(0, peak - alloc0) / 1024.0)

    def close(self) -> None:
        """Stop ``tracemalloc`` if this profiler started it."""
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracing = False

    def __enter__(self) -> "PhaseProfiler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
