"""The per-run telemetry bundle: one registry + one tracer + one clock.

A :class:`RunTelemetry` travels with a study run: ``run_study`` threads
it through the pipeline (crawl, streaming, chaos, store), the finished
:class:`~repro.core.pipeline.Study` carries it, and the CLI writes it
out (``--metrics-out``) or prints its phase tree (``--trace``).

The determinism contract
------------------------

Telemetry **observes, never perturbs**: it draws nothing from any
seeded RNG, and instrumented code takes no data-dependent branch on it,
so a study's outputs are bit-identical whether telemetry is enabled or
disabled (a test asserts this). The default is :data:`NULL_TELEMETRY`
— a no-op registry and tracer around a real monotonic clock — so
uninstrumented callers pay only inert method calls.

The snapshot schema (``repro.obs/v2``)::

    {"schema": "repro.obs/v2",
     "run_id": "9f2c41aa03de",
     "started_at_utc": "2021-03-01T12:00:00+00:00",
     "anchor_monotonic": 81234.117,
     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
     "spans": [{"name": ..., "start": ..., "duration_s": ...,
                "children": [...]}, ...]}

v2 adds the three identity/anchor keys (plus per-span ``start``
offsets) on top of v1: span ``start`` values are raw monotonic clock
readings, and ``started_at_utc + (start - anchor_monotonic)`` places
any span on the wall clock — the same anchor pair a
:class:`~repro.obs.journal.RunJournal` stamps into its header, so
spans and journal records from one run correlate across processes.
Readers accept both versions; v1 files simply lack the anchors.

Benchmarks reuse the same schema for their ``BENCH_*.json`` trajectory
files (see ``benchmarks/conftest.py``).
"""

from __future__ import annotations

import json
from datetime import datetime, timezone
from typing import Dict, Optional

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.journal import NULL_JOURNAL, new_run_id
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.spans import NULL_TRACER, Tracer

__all__ = ["RunTelemetry", "NULL_TELEMETRY", "SNAPSHOT_SCHEMA",
           "SNAPSHOT_SCHEMAS"]

#: Version tag stamped into every snapshot.
SNAPSHOT_SCHEMA = "repro.obs/v2"

#: Every schema version a reader should accept (v1 lacks the anchors).
SNAPSHOT_SCHEMAS = ("repro.obs/v1", "repro.obs/v2")


class RunTelemetry:
    """Everything one run records: metrics, spans, and their clock."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 clock: Optional[Clock] = None,
                 run_id: Optional[str] = None,
                 started_at_utc: Optional[str] = None):
        self.clock = clock or MonotonicClock()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(self.clock)
        #: 12-hex-digit run identity, shared with the run's journal.
        self.run_id = run_id or new_run_id()
        #: Wall-clock anchor: the UTC instant `anchor_monotonic` was read.
        self.started_at_utc = started_at_utc or \
            datetime.now(timezone.utc).isoformat()
        #: Monotonic anchor: span ``start`` offsets are readings of the
        #: same clock, so `started_at_utc + (start - anchor_monotonic)`
        #: places a span on the wall clock.
        self.anchor_monotonic = self.clock.now()
        #: The run journal, if one is attached (see ``attach_journal``).
        self.journal = NULL_JOURNAL

    @classmethod
    def create(cls, clock: Optional[Clock] = None) -> "RunTelemetry":
        """An enabled telemetry bundle (fresh registry + tracer)."""
        return cls(clock=clock)

    @classmethod
    def disabled(cls) -> "RunTelemetry":
        """The shared no-op bundle (see :data:`NULL_TELEMETRY`)."""
        return NULL_TELEMETRY

    @property
    def enabled(self) -> bool:
        """Whether anything is actually recorded."""
        return self.registry.enabled or self.tracer.enabled

    def attach_journal(self, journal) -> None:
        """Attach a :class:`~repro.obs.journal.RunJournal` to this run.

        The shared :data:`NULL_TELEMETRY` refuses an enabled journal —
        it is a process-wide singleton and must stay inert.
        """
        if journal.enabled and self is NULL_TELEMETRY:
            raise ValueError(
                "cannot attach a journal to the shared NULL_TELEMETRY; "
                "use RunTelemetry.create()")
        self.journal = journal

    # -- exposition -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The full ``repro.obs/v2`` snapshot (JSON-serializable)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "run_id": self.run_id,
            "started_at_utc": self.started_at_utc,
            "anchor_monotonic": self.anchor_monotonic,
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.snapshot(),
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`snapshot` to ``path`` as pretty-printed JSON.

        The write is atomic (temp file + ``os.replace``) and missing
        parent directories are created, so ``--metrics-out`` can point
        into a fresh results tree and a crash mid-write can never leave
        a truncated snapshot behind.
        """
        from repro.util.fileio import atomic_write

        with atomic_write(path) as fp:
            json.dump(self.snapshot(), fp, indent=2, sort_keys=True)
            fp.write("\n")

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the run's metrics."""
        return self.registry.render_prometheus()

    def render_trace(self) -> str:
        """The phase-timing tree (``--trace`` output)."""
        return self.tracer.render_tree()


#: The process-wide disabled bundle: no-op registry and tracer around a
#: real monotonic clock (so callers can still time against it).
NULL_TELEMETRY = RunTelemetry(NULL_REGISTRY, NULL_TRACER)
