"""Aggregated measurement storage.

The paper aggregates OpenINTEL per NSSet in 5-minute intervals (the
RSDoS granularity): domain count, average/min/max RTT, and error counts
(§4.1). Keeping raw per-query rows for 17 months x the namespace is what
the authors used Spark for; this store instead aggregates on ingest —
daily everywhere (for the day-before baselines) and at 5-minute
granularity on *dense* days (days on which an attack touches the NSSet),
which is provably sufficient for every metric in the paper's analysis.

RTT sums are kept as exact Shewchuk expansions (``math.fsum``'s
algorithm), so an aggregate's sum is a function of the *multiset* of
ingested values only — never of their arrival order. That property is
what lets the sharded multi-process crawl merge per-worker stores into
a result bit-for-bit identical to the serial crawl for any worker
count: every other column (counts, min, max) is trivially
order-invariant, and the sum column would otherwise drift by an ulp
whenever shards interleave differently.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dns.rcode import ResponseStatus
from repro.openintel.records import Measurement
from repro.util.timeutil import DAY, FIVE_MINUTES, day_start, window_start


def _exact_add(partials: List[float], x: float) -> None:
    """Fold ``x`` into a Shewchuk partials expansion, in place.

    The expansion represents its sum exactly (each partial carries
    rounding error the ones before it could not), so the represented
    value is invariant to insertion order; ``math.fsum`` over the
    partials yields the correctly-rounded total. In the common case the
    expansion holds a single element and this costs one two-sum.
    """
    i = 0
    for j in range(len(partials)):
        y = partials[j]
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    del partials[i:]
    partials.append(x)


class Aggregate:
    """Per-(NSSet, interval) statistics: the §4.1 tuple."""

    __slots__ = ("n", "ok_n", "_rtt_partials", "rtt_min", "rtt_max",
                 "timeout_n", "servfail_n", "other_err_n")

    def __init__(self) -> None:
        self.n = 0
        self.ok_n = 0
        #: exact expansion of the OK-RTT sum (see module docstring).
        self._rtt_partials: List[float] = []
        self.rtt_min = float("inf")
        self.rtt_max = 0.0
        self.timeout_n = 0
        self.servfail_n = 0
        self.other_err_n = 0

    def add(self, status: ResponseStatus, rtt_ms: float) -> None:
        self.n += 1
        if status is ResponseStatus.OK:
            self.ok_n += 1
            _exact_add(self._rtt_partials, rtt_ms)
            if rtt_ms < self.rtt_min:
                self.rtt_min = rtt_ms
            if rtt_ms > self.rtt_max:
                self.rtt_max = rtt_ms
        elif status is ResponseStatus.TIMEOUT:
            self.timeout_n += 1
        elif status is ResponseStatus.SERVFAIL:
            self.servfail_n += 1
        else:
            self.other_err_n += 1

    def merge(self, other: "Aggregate") -> None:
        self.n += other.n
        self.ok_n += other.ok_n
        for p in other._rtt_partials:
            _exact_add(self._rtt_partials, p)
        self.rtt_min = min(self.rtt_min, other.rtt_min)
        self.rtt_max = max(self.rtt_max, other.rtt_max)
        self.timeout_n += other.timeout_n
        self.servfail_n += other.servfail_n
        self.other_err_n += other.other_err_n

    def copy(self) -> "Aggregate":
        """An independent deep copy (no shared partials list)."""
        dup = Aggregate()
        dup.n = self.n
        dup.ok_n = self.ok_n
        dup._rtt_partials = list(self._rtt_partials)
        dup.rtt_min = self.rtt_min
        dup.rtt_max = self.rtt_max
        dup.timeout_n = self.timeout_n
        dup.servfail_n = self.servfail_n
        dup.other_err_n = self.other_err_n
        return dup

    @property
    def rtt_sum(self) -> float:
        """Correctly-rounded sum of OK RTTs — order-invariant."""
        try:
            return math.fsum(self._rtt_partials)
        except (OverflowError, ValueError):  # inf - inf in a damaged sum
            return float("nan")

    @property
    def errors(self) -> int:
        return self.timeout_n + self.servfail_n + self.other_err_n

    @property
    def failure_rate(self) -> float:
        return self.errors / self.n if self.n else 0.0

    @property
    def timeout_rate(self) -> float:
        return self.timeout_n / self.n if self.n else 0.0

    @property
    def avg_rtt(self) -> Optional[float]:
        """Mean RTT over answered (OK) queries; None when all failed."""
        return self.rtt_sum / self.ok_n if self.ok_n else None

    @property
    def is_valid(self) -> bool:
        """Internal consistency check consumed by the degradation paths.

        A corrupt bucket (chaos-injected or genuinely damaged telemetry)
        fails one of these invariants; analyses must skip it and mark
        their output degraded rather than divide by its columns.
        """
        if self.n < 0 or self.ok_n < 0 or self.timeout_n < 0 \
                or self.servfail_n < 0 or self.other_err_n < 0:
            return False
        if self.ok_n + self.timeout_n + self.servfail_n + self.other_err_n \
                != self.n:
            return False
        if not math.isfinite(self.rtt_sum):
            return False
        if self.ok_n and (not math.isfinite(self.rtt_min)
                          or not math.isfinite(self.rtt_max)
                          or self.rtt_min > self.rtt_max):
            return False
        return True

    def state(self) -> Tuple:
        """The aggregate's observable columns, for exact comparison."""
        return (self.n, self.ok_n, self.rtt_sum, self.rtt_min,
                self.rtt_max, self.timeout_n, self.servfail_n,
                self.other_err_n)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Aggregate):
            return NotImplemented
        # NaN columns (chaos-corrupted sums) compare equal to themselves
        # so two identically-damaged stores are still equal.
        return all(a == b or (a != a and b != b)
                   for a, b in zip(self.state(), other.state()))

    __hash__ = None  # mutable; equality is by value

    def __repr__(self) -> str:
        avg = f"{self.avg_rtt:.1f}ms" if self.ok_n else "n/a"
        return (f"Aggregate(n={self.n}, ok={self.ok_n}, avg={avg}, "
                f"to={self.timeout_n}, sf={self.servfail_n})")


class MeasurementStore:
    """Daily + dense 5-minute aggregates per NSSet."""

    #: rtt sanity ceiling for ingest: far above any real deadline, low
    #: enough to reject inf/NaN and garbage (comparison-only, hot path).
    MAX_RTT_MS = 1e9

    def __init__(self) -> None:
        self.daily: Dict[Tuple[int, int], Aggregate] = {}
        self.buckets: Dict[Tuple[int, int], Aggregate] = {}
        self.n_measurements = 0
        #: malformed rows rejected at ingest (negative/NaN/inf RTTs).
        self.n_rejected = 0
        #: donor stores folded in via :meth:`merge` (sharded crawls).
        self.n_merges = 0

    # -- ingest --------------------------------------------------------------

    def add(self, m: Measurement, dense: bool) -> None:
        self.add_fast(m.nsset_id, m.ts, m.status, m.rtt_ms, dense)

    def add_fast(self, nsset_id: int, ts: int, status: ResponseStatus,
                 rtt_ms: float, dense: bool) -> None:
        """Allocation-light ingest used by the measurement hot loop.

        Malformed rows are counted and dropped, never aggregated: a NaN
        entering a sum column would silently poison every downstream
        average (the chained comparison below is False for NaN, so NaN,
        inf, and negative RTTs all fail it).
        """
        if not 0.0 <= rtt_ms <= self.MAX_RTT_MS:
            self.n_rejected += 1
            return
        self.n_measurements += 1
        day_key = (nsset_id, ts - ts % DAY)
        agg = self.daily.get(day_key)
        if agg is None:
            agg = Aggregate()
            self.daily[day_key] = agg
        agg.add(status, rtt_ms)
        if dense:
            bucket_key = (nsset_id, ts - ts % FIVE_MINUTES)
            bagg = self.buckets.get(bucket_key)
            if bagg is None:
                bagg = Aggregate()
                self.buckets[bucket_key] = bagg
            bagg.add(status, rtt_ms)

    # -- queries ---------------------------------------------------------------

    def day_aggregate(self, nsset_id: int, day: int) -> Optional[Aggregate]:
        return self.daily.get((nsset_id, day_start(day)))

    def day_avg_rtt(self, nsset_id: int, day: int) -> Optional[float]:
        agg = self.day_aggregate(nsset_id, day)
        return agg.avg_rtt if agg else None

    def baseline_rtt(self, nsset_id: int, ts: int) -> Optional[float]:
        """The §4.1 baseline: average RTT on the *day before* ``ts``."""
        return self.day_avg_rtt(nsset_id, day_start(ts) - DAY)

    def bucket_aggregate(self, nsset_id: int, ts: int) -> Optional[Aggregate]:
        return self.buckets.get((nsset_id, window_start(ts)))

    def buckets_in(self, nsset_id: int, start: int, end: int
                   ) -> Iterator[Tuple[int, Aggregate]]:
        """(bucket_ts, aggregate) pairs for a NSSet within [start, end)."""
        ts = window_start(start)
        while ts < end:
            agg = self.buckets.get((nsset_id, ts))
            if agg is not None:
                yield ts, agg
            ts += FIVE_MINUTES

    def domains_measured(self, nsset_id: int, start: int, end: int) -> int:
        """Total measurements of a NSSet's domains within a window."""
        return sum(agg.n for _, agg in self.buckets_in(nsset_id, start, end))

    def daily_series(self, nsset_id: int, start: int, end: int
                     ) -> List[Tuple[int, Aggregate]]:
        out = []
        day = day_start(start)
        while day < end:
            agg = self.daily.get((nsset_id, day))
            if agg is not None:
                out.append((day, agg))
            day += DAY
        return out

    def days_present(self, nsset_id: int, start: int, end: int) -> List[int]:
        """Days in [start, end) for which this NSSet has a daily aggregate."""
        out = []
        day = day_start(start)
        while day < end:
            if (nsset_id, day) in self.daily:
                out.append(day)
            day += DAY
        return out

    # -- maintenance -----------------------------------------------------------

    def remove_day(self, nsset_id: int, day: int) -> bool:
        """Drop one NSSet-day aggregate (chaos: a lost OpenINTEL day);
        returns whether it existed."""
        return self.daily.pop((nsset_id, day_start(day)), None) is not None

    def merge(self, other: "MeasurementStore") -> None:
        """Fold another store's aggregates into this one (sharded runs).

        Newly-adopted aggregates are *copied*: adopting by reference
        would alias the donor's objects, so a later ``add``/``merge``
        into the combined store would silently mutate the donor too.
        """
        for key, agg in other.daily.items():
            mine = self.daily.get(key)
            if mine is None:
                self.daily[key] = agg.copy()
            else:
                mine.merge(agg)
        for key, agg in other.buckets.items():
            mine = self.buckets.get(key)
            if mine is None:
                self.buckets[key] = agg.copy()
            else:
                mine.merge(agg)
        self.n_measurements += other.n_measurements
        self.n_rejected += other.n_rejected
        self.n_merges += 1 + other.n_merges

    def publish_metrics(self, registry) -> None:
        """Emit ingest/reject/merge totals as ``repro.store.*`` metrics.

        ``registry`` is a :class:`repro.obs.MetricsRegistry` (kept
        untyped here so storage stays import-light). Counters carry the
        lifetime totals; gauges carry the current aggregate population.
        """
        registry.counter("repro.store.ingested").inc(self.n_measurements)
        registry.counter("repro.store.rejected").inc(self.n_rejected)
        registry.counter("repro.store.merges").inc(self.n_merges)
        registry.gauge("repro.store.daily_aggregates").set(len(self.daily))
        registry.gauge("repro.store.bucket_aggregates").set(len(self.buckets))

    def __eq__(self, other: object) -> bool:
        """Exact (bit-for-bit observable) store equality.

        Compares every aggregate's columns with exact float equality —
        the contract the worker-count-invariance tests assert.
        """
        if not isinstance(other, MeasurementStore):
            return NotImplemented
        return (self.n_measurements == other.n_measurements
                and self.n_rejected == other.n_rejected
                and self.daily == other.daily
                and self.buckets == other.buckets)

    __hash__ = None  # mutable; equality is by value
