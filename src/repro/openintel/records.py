"""Measurement record schema and serialization.

A :class:`Measurement` is one resolution of one domain's NS RRset: the
timestamp the worker issued it, the domain and its NSSet, the outcome
status, and the round-trip time to *complete* the query — including
retransmission timeouts burned on unresponsive servers, which is what
makes RTT the paper's impact signal.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterable, Iterator, TextIO

from repro.dns.rcode import ResponseStatus


@dataclass(frozen=True)
class Measurement:
    """One domain resolution outcome."""

    ts: int
    domain_id: int
    nsset_id: int
    status: ResponseStatus
    rtt_ms: float
    n_attempts: int = 1

    def __post_init__(self) -> None:
        if self.rtt_ms < 0:
            raise ValueError("rtt must be non-negative")
        if self.n_attempts < 1:
            raise ValueError("n_attempts must be >= 1")

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK


_FIELDS = ("ts", "domain_id", "nsset_id", "status", "rtt_ms", "n_attempts")


def dump_measurements(measurements: Iterable[Measurement], fp: TextIO) -> None:
    writer = csv.writer(fp)
    writer.writerow(_FIELDS)
    for m in measurements:
        writer.writerow([m.ts, m.domain_id, m.nsset_id, m.status.value,
                         f"{m.rtt_ms:.3f}", m.n_attempts])


def load_measurements(fp: TextIO) -> Iterator[Measurement]:
    reader = csv.reader(fp)
    header = next(reader, None)
    if tuple(header or ()) != _FIELDS:
        raise ValueError("unexpected measurement header")
    for lineno, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(_FIELDS):
            raise ValueError(f"line {lineno}: wrong field count")
        yield Measurement(ts=int(row[0]), domain_id=int(row[1]),
                          nsset_id=int(row[2]),
                          status=ResponseStatus(row[3]),
                          rtt_ms=float(row[4]), n_attempts=int(row[5]))
