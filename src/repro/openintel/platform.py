"""The daily measurement crawl (serial and multi-process).

Each registered domain is measured once per UTC day at a stable
per-domain time-of-day (OpenINTEL spreads its crawl over the day), by
resolving its NS RRset through the agnostic resolver against the world.

The hot loop fast-paths quiet days — days on which no attack touches any
of the domain's nameserver addresses or their /24s — by sampling the
baseline reply directly instead of running the resolver state machine;
the two paths are statistically identical in quiet conditions (a test
asserts this) because an unloaded server always answers its first query.

Determinism and sharding
------------------------

Every random draw a domain-day needs (nameserver choice, reply
sampling, jitter) comes from a private stream seeded by
``derive_seed(crawl_seed, domain_id, day)``. A domain-day is therefore
a closed unit of work whose samples depend on nothing but its key —
not on how many domains were crawled before it, nor in which process.
Combined with the store's order-invariant exact RTT sums, this makes
the crawl's output *bit-for-bit identical for any worker count*: the
serial crawl and an N-worker sharded crawl produce equal stores (a
test asserts it), so parallelising the dominant pipeline cost changes
no downstream number.

:meth:`OpenIntelPlatform.run_parallel` shards the domain population
across processes forked from the parent — workers inherit the
pre-built world and the fully-configured platform (resolver config,
``keep_raw``, oversampling, transport) by memory, so nothing is
rebuilt per worker and nothing is dropped on the way in.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.config import WorldConfig

from repro.dns.rcode import ResponseStatus
from repro.dns.resolver import AgnosticResolver, ResolverConfig
from repro.dns.rr import RRType
from repro.obs import NULL_TELEMETRY, RunTelemetry
from repro.obs.merge import capture_telemetry, merge_capture
from repro.openintel.records import Measurement
from repro.openintel.stats import CrawlStats
from repro.openintel.storage import MeasurementStore
from repro.util.rng import derive_seed
from repro.util.timeutil import DAY, day_start, iter_days
from repro.world.simulation import World

# Per-NSSet quiet-day behaviour classes.
_NORMAL = 0          # all members are live authoritatives
_ANSWERING_TARGET = 1  # all members are misconfig targets that answer
_DEAD = 2            # no member ever answers (private IPs, NAS, lame)
_MIXED = 3           # anything else: always take the slow path


class OpenIntelPlatform:
    """Drives the daily crawl and fills a :class:`MeasurementStore`."""

    def __init__(self, world: World, config: Optional[ResolverConfig] = None,
                 keep_raw: bool = False, dense_oversampling: int = 6,
                 transport=None,
                 telemetry: Optional[RunTelemetry] = None,
                 columnar: bool = False):
        if dense_oversampling < 1:
            raise ValueError("dense_oversampling must be >= 1")
        self.telemetry = telemetry or NULL_TELEMETRY
        #: shard counters collected when telemetry is enabled (``None``
        #: otherwise, so the hot loop pays a single identity check).
        #: Telemetry only observes — with it on or off the crawl draws
        #: the same random streams and fills an identical store.
        self.stats: Optional[CrawlStats] = (
            CrawlStats() if self.telemetry.enabled else None)
        self.world = world
        self.config = config or world.config.resolver
        self.rng = world.rngs.stream("openintel")
        #: the datagram path queries travel; fault injection wraps it
        #: here without the world's ground truth noticing.
        self.transport = transport or world.transport
        self.resolver = AgnosticResolver(self.transport, self.rng, self.config)
        self.store = MeasurementStore()
        self.keep_raw = keep_raw
        #: OpenINTEL sends many query types per domain per day (NS, SOA,
        #: A, AAAA, MX, ...), all of which exercise the same NSSet and
        #: feed the paper's RTT aggregates. We replay that multiplicity
        #: only on *dense* (attack-window) days, where it matters for
        #: the >=5-measured-domains event threshold; on quiet days one
        #: query per day is statistically sufficient for the baselines.
        self.dense_oversampling = dense_oversampling
        #: (index, count): crawl only every count-th domain starting at
        #: index — the unit of work for the multi-process crawl.
        self.shard: Tuple[int, int] = (0, 1)
        #: columnar ingest: the hot loop appends measurement rows to a
        #: :class:`repro.columnar.MeasurementBatch` instead of calling
        #: ``add_fast`` per row, and the batch is folded into the store
        #: in one group-by flush. Bit-identical output either way.
        self.columnar = columnar
        #: sharded columnar crawls defer the flush: each worker returns
        #: its raw batch and the parent flushes the concatenation once,
        #: so every (NSSet, interval) group is summed in a single
        #: ``fsum`` — the exactness contract of :mod:`repro.columnar`.
        self._defer_flush = False
        self._pending_batch = None
        self.raw: List[Measurement] = []
        self._offsets: List[int] = []
        self._domain_seeds: List[int] = []
        self._classes: Dict[int, int] = {}
        self._quiet_rtts: Dict[int, Tuple[float, ...]] = {}
        self._prepare()

    def _prepare(self) -> None:
        directory = self.world.directory
        seed = self.world.rngs.spawn_seed("openintel-offsets")
        self._offsets = [
            derive_seed(seed, str(d.domain_id)) % DAY
            for d in directory.domains
        ]
        # Root of the per-(domain, day) streams; the per-domain prefix
        # is hashed once here so the hot loop derives one level only.
        crawl_seed = self.world.rngs.spawn_seed("openintel-crawl")
        self._domain_seeds = [
            derive_seed(crawl_seed, str(d.domain_id))
            for d in directory.domains
        ]
        for nsset_id, ips in directory.nssets.items():
            members = [self.world.nameservers_by_ip.get(ip) for ip in ips]
            if any(ns is None for ns in members):
                self._classes[nsset_id] = _MIXED
                continue
            if all(ns.is_misconfig_target for ns in members):
                if all(ns.answers_queries for ns in members):
                    self._classes[nsset_id] = _ANSWERING_TARGET
                    self._quiet_rtts[nsset_id] = tuple(
                        ns.base_rtt_ms for ns in members)
                elif not any(ns.answers_queries for ns in members):
                    self._classes[nsset_id] = _DEAD
                else:
                    self._classes[nsset_id] = _MIXED
                continue
            if any(ns.is_misconfig_target for ns in members):
                self._classes[nsset_id] = _MIXED
                continue
            self._classes[nsset_id] = _NORMAL
            self._quiet_rtts[nsset_id] = tuple(ns.base_rtt_ms for ns in members)

    # -- single measurement -------------------------------------------------------

    def measure_domain(self, domain_id: int, ts: int) -> Measurement:
        """Resolve one domain at one instant (always the full resolver)."""
        record = self.world.directory[domain_id]
        result = self.resolver.resolve(
            record.name, RRType.NS, record.delegation.nameserver_ips, ts)
        return Measurement(ts=ts, domain_id=domain_id,
                           nsset_id=record.nsset_id, status=result.status,
                           rtt_ms=result.rtt_ms, n_attempts=result.n_attempts)

    # -- the crawl ---------------------------------------------------------------

    def run(self, start: Optional[int] = None, end: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> MeasurementStore:
        """Measure every domain daily over [start, end); returns the store."""
        timeline = self.world.timeline
        start = day_start(start if start is not None else timeline.start)
        end = end if end is not None else timeline.end
        directory = self.world.directory
        domains = directory.domains
        offsets = self._offsets
        domain_seeds = self._domain_seeds
        classes = self._classes
        quiet_rtts = self._quiet_rtts
        store = self.store
        if self.columnar:
            from repro.columnar import MeasurementBatch

            batch = MeasurementBatch()
            add = batch.append
        else:
            batch = None
            add = store.add_fast
        dense_days_of = self.world.dense_days_of
        deadline = self.config.deadline_ms
        keep_raw = self.keep_raw
        raw = self.raw
        span = end - start
        # Count exactly the windows iter_days yields: a partial final
        # day is still a crawled window, so round up, not down.
        n_days = (span + DAY - 1) // DAY if span > 0 else 0

        # One private stream, reseeded per (domain, day): samples depend
        # only on the work unit's key, never on crawl order or sharding.
        day_rng = random.Random()
        rng_random = day_rng.random
        rng_expo = day_rng.expovariate
        reseed = day_rng.seed
        resolver = AgnosticResolver(self.transport, day_rng, self.config)
        restore = self.world.set_transport_rng(day_rng)
        stats = self.stats
        try:
            shard, n_shards = self.shard
            for day_idx, day in enumerate(iter_days(start, end)):
                if progress is not None:
                    progress(day_idx, n_days)
                day_name = str(day)
                for record in (domains if n_shards == 1
                               else domains[shard::n_shards]):
                    domain_id = record.domain_id
                    nsset_id = record.nsset_id
                    reseed(derive_seed(domain_seeds[domain_id], day_name))
                    dense = day in dense_days_of(nsset_id)
                    if not dense:
                        klass = classes[nsset_id]
                        ts = day + offsets[domain_id]
                        if klass <= _ANSWERING_TARGET:  # _NORMAL or answering
                            rtts = quiet_rtts[nsset_id]
                            base = rtts[int(rng_random() * len(rtts))]
                            rtt = base + rng_expo(0.5)
                            add(nsset_id, ts, ResponseStatus.OK, rtt, False)
                            if stats is not None:
                                stats.domain_days += 1
                                stats.fast_path_days += 1
                                stats.add_ok(rtt)
                            continue
                        if klass == _DEAD:
                            add(nsset_id, ts, ResponseStatus.TIMEOUT,
                                deadline, False)
                            if stats is not None:
                                stats.domain_days += 1
                                stats.dead_days += 1
                                stats.timeout += 1
                            continue
                    n_queries = self.dense_oversampling if dense else 1
                    stride = DAY // n_queries
                    ns_ips = record.delegation.nameserver_ips
                    if stats is not None:
                        stats.domain_days += 1
                        stats.resolver_days += 1
                        stats.queries += n_queries
                    for j in range(n_queries):
                        ts_j = day + (offsets[domain_id] + j * stride) % DAY
                        result = resolver.resolve(record.name, RRType.NS,
                                                  ns_ips, ts_j)
                        add(nsset_id, ts_j, result.status,
                            result.rtt_ms, dense)
                        if stats is not None:
                            stats.add_result(result.status, result.rtt_ms)
                        if keep_raw:
                            raw.append(Measurement(
                                ts=ts_j, domain_id=domain_id,
                                nsset_id=nsset_id, status=result.status,
                                rtt_ms=result.rtt_ms,
                                n_attempts=result.n_attempts))
        finally:
            self.world.set_transport_rng(restore)
        if batch is not None:
            if self._defer_flush:
                self._pending_batch = batch
            else:
                batch.flush_into(store, registry=self.telemetry.registry)
        return store

    # -- the multi-process crawl ----------------------------------------------

    def run_parallel(self, n_workers: int = 4, start: Optional[int] = None,
                     end: Optional[int] = None,
                     progress: Optional[Callable[[int, int], None]] = None
                     ) -> MeasurementStore:
        """Crawl with ``n_workers`` processes forked from this platform.

        Workers inherit the pre-built world and this platform's full
        configuration (resolver config, ``keep_raw``, oversampling,
        transport) through ``fork`` — nothing is rebuilt per worker —
        and each crawls an interleaved shard of the domain population.
        The parent folds the per-shard stores into :attr:`store`.

        The result is **bit-for-bit identical for any** ``n_workers``
        (including the serial ``run``): per-(domain, day) derived RNG
        streams make each shard's samples order-independent, and the
        store's exact sums make the merge order-independent.

        ``progress`` is reported at shard granularity —
        ``progress(shards_done, n_workers)`` after each worker finishes
        (the serial path reports per day). With ``keep_raw``, the merged
        :attr:`raw` rows are sorted by ``(ts, domain_id)``, which is
        likewise invariant to the worker count.

        Stateful transports (e.g. the chaos injector's wrapper) must use
        the serial crawl: their draws and fault logs live in the parent
        and cannot be meaningfully merged across forked workers —
        :func:`repro.core.pipeline.run_study` enforces this.

        Platforms without the ``fork`` start method fall back to the
        serial crawl.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if n_workers == 1:
            return self.run(start, end, progress)
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():  # pragma: no cover
            return self.run(start, end, progress)
        global _FORK_PARENT
        jobs = [(shard, n_workers, start, end) for shard in range(n_workers)]
        merged_batch = None
        if self.columnar:
            # Shard batches are concatenated and flushed ONCE, so each
            # (NSSet, interval) group is a single fsum over all of its
            # values — per-shard flushes would round each shard's
            # partial sum separately and break bit-identity.
            from repro.columnar import MeasurementBatch

            merged_batch = MeasurementBatch()
        journal = self.telemetry.journal
        for shard in range(n_workers):
            journal.emit("worker.start", surface="crawl", shard=shard,
                         n_shards=n_workers)
        _FORK_PARENT = self
        try:
            with multiprocessing.get_context("fork").Pool(n_workers) as pool:
                for done, (payload, raw, stats, capture) in enumerate(
                        pool.imap(_crawl_shard, jobs), start=1):
                    if merged_batch is not None:
                        merged_batch.extend(payload)
                    else:
                        self.store.merge(payload)
                    self.raw.extend(raw)
                    if self.stats is not None and stats is not None:
                        self.stats.merge(stats)
                    if capture is not None:
                        # imap yields in job order, so shard == done-1;
                        # folding here keeps the merge deterministic.
                        merge_capture(self.telemetry, capture,
                                      shard=done - 1)
                    journal.emit("worker.finish", surface="crawl",
                                 shard=done - 1,
                                 rows=stats.rows if stats is not None
                                 else None)
                    if progress is not None:
                        progress(done, n_workers)
        finally:
            _FORK_PARENT = None
        if merged_batch is not None:
            merged_batch.flush_into(self.store,
                                    registry=self.telemetry.registry)
        if self.keep_raw:
            self.raw.sort(key=lambda m: (m.ts, m.domain_id))
        return self.store


# ---------------------------------------------------------------------------
# Multi-process crawl plumbing
# ---------------------------------------------------------------------------

#: The platform being sharded; set by :meth:`run_parallel` immediately
#: before forking so workers find it in their inherited memory.
_FORK_PARENT: Optional[OpenIntelPlatform] = None


def _crawl_shard(args) -> Tuple[object, List[Measurement],
                                Optional[CrawlStats], Optional[dict]]:
    """Worker entry point: crawl one shard of the domain population.

    Returns the shard's filled :class:`MeasurementStore` — or, on a
    columnar platform, its unflushed
    :class:`repro.columnar.MeasurementBatch` — as the first element.

    Runs in a child forked from the parent, so ``_FORK_PARENT`` *is*
    the parent's fully-configured platform (same world, resolver
    config, ``keep_raw``, oversampling, transport) — only the shard
    assignment and fresh output store/stats are local to this process.
    The shard's :class:`CrawlStats` (``None`` when telemetry is off)
    rides back with the store for the parent to merge.

    When the parent's telemetry is enabled, the shard also runs under
    its own fresh telemetry bundle — a ``crawl.shard`` span plus its
    stats published to a shard-local registry — and ships the capture
    back as the fourth element for the parent to stitch under its
    ``crawl`` span with a ``shard`` label (:mod:`repro.obs.merge`).
    Forked children share the parent's monotonic clock domain, so the
    grafted span offsets line up without rebasing. The shard's journal
    stays the null journal: only the parent writes the journal file
    (the forked file descriptor is not safely shareable).
    """
    shard, n_shards, start, end = args
    platform = _FORK_PARENT
    assert platform is not None, "_crawl_shard outside run_parallel"
    platform.shard = (shard, n_shards)
    platform.store = MeasurementStore()
    platform.raw = []
    platform.stats = CrawlStats() if platform.stats is not None else None
    shard_telemetry = None
    if platform.telemetry.enabled:
        shard_telemetry = RunTelemetry.create(clock=platform.telemetry.clock)
        platform.telemetry = shard_telemetry
    if platform.columnar:
        # Return the shard's raw batch, unflushed: the parent folds the
        # concatenation of all shards into its store in one flush.
        platform._defer_flush = True
    if shard_telemetry is None:
        payload = platform.run(start, end)
    else:
        with shard_telemetry.tracer.span("crawl.shard", shard=shard,
                                         n_shards=n_shards) as span:
            payload = platform.run(start, end)
            if platform.stats is not None:
                span.annotate(rows=platform.stats.rows)
    if platform.columnar:
        payload = platform._pending_batch
    capture = None
    if shard_telemetry is not None:
        if platform.stats is not None:
            platform.stats.publish(shard_telemetry.registry)
        capture = capture_telemetry(shard_telemetry)
    return payload, platform.raw, platform.stats, capture


def run_parallel(config_or_world: Union[World, "WorldConfig"],
                 n_workers: int = 4,
                 config: Optional[ResolverConfig] = None,
                 keep_raw: bool = False,
                 dense_oversampling: int = 6,
                 transport=None, columnar: bool = False) -> MeasurementStore:
    """Build (or accept) a world, then crawl it with ``n_workers``.

    Convenience wrapper over :meth:`OpenIntelPlatform.run_parallel`:
    the world is built **once** in the parent and shared with workers
    via ``fork``, and the platform surface matches the serial
    constructor exactly (``config``/``keep_raw``/``dense_oversampling``/
    ``transport``). Output is bit-for-bit identical for any
    ``n_workers``.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if isinstance(config_or_world, World):
        world = config_or_world
    else:
        from repro.world.simulation import build_world

        world = build_world(config_or_world)
    platform = OpenIntelPlatform(world, config=config, keep_raw=keep_raw,
                                 dense_oversampling=dense_oversampling,
                                 transport=transport, columnar=columnar)
    return platform.run_parallel(n_workers)
