"""The daily measurement crawl (serial and multi-process).

Each registered domain is measured once per UTC day at a stable
per-domain time-of-day (OpenINTEL spreads its crawl over the day), by
resolving its NS RRset through the agnostic resolver against the world.

The hot loop fast-paths quiet days — days on which no attack touches any
of the domain's nameserver addresses or their /24s — by sampling the
baseline reply directly instead of running the resolver state machine;
the two paths are statistically identical in quiet conditions (a test
asserts this) because an unloaded server always answers its first query.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dns.rcode import ResponseStatus
from repro.dns.resolver import AgnosticResolver, ResolverConfig
from repro.dns.rr import RRType
from repro.openintel.records import Measurement
from repro.openintel.storage import MeasurementStore
from repro.util.rng import derive_seed
from repro.util.timeutil import DAY, day_start, iter_days
from repro.world.simulation import World

# Per-NSSet quiet-day behaviour classes.
_NORMAL = 0          # all members are live authoritatives
_ANSWERING_TARGET = 1  # all members are misconfig targets that answer
_DEAD = 2            # no member ever answers (private IPs, NAS, lame)
_MIXED = 3           # anything else: always take the slow path


class OpenIntelPlatform:
    """Drives the daily crawl and fills a :class:`MeasurementStore`."""

    def __init__(self, world: World, config: Optional[ResolverConfig] = None,
                 keep_raw: bool = False, dense_oversampling: int = 6,
                 transport=None):
        if dense_oversampling < 1:
            raise ValueError("dense_oversampling must be >= 1")
        self.world = world
        self.config = config or world.config.resolver
        self.rng = world.rngs.stream("openintel")
        #: the datagram path queries travel; fault injection wraps it
        #: here without the world's ground truth noticing.
        self.transport = transport or world.transport
        self.resolver = AgnosticResolver(self.transport, self.rng, self.config)
        self.store = MeasurementStore()
        self.keep_raw = keep_raw
        #: OpenINTEL sends many query types per domain per day (NS, SOA,
        #: A, AAAA, MX, ...), all of which exercise the same NSSet and
        #: feed the paper's RTT aggregates. We replay that multiplicity
        #: only on *dense* (attack-window) days, where it matters for
        #: the >=5-measured-domains event threshold; on quiet days one
        #: query per day is statistically sufficient for the baselines.
        self.dense_oversampling = dense_oversampling
        #: (index, count): crawl only every count-th domain starting at
        #: index — the unit of work for the multi-process crawl.
        self.shard: Tuple[int, int] = (0, 1)
        self.raw: List[Measurement] = []
        self._offsets: List[int] = []
        self._classes: Dict[int, int] = {}
        self._quiet_rtts: Dict[int, Tuple[float, ...]] = {}
        self._prepare()

    def _prepare(self) -> None:
        directory = self.world.directory
        seed = self.world.rngs.spawn_seed("openintel-offsets")
        self._offsets = [
            derive_seed(seed, str(d.domain_id)) % DAY
            for d in directory.domains
        ]
        for nsset_id, ips in directory.nssets.items():
            members = [self.world.nameservers_by_ip.get(ip) for ip in ips]
            if any(ns is None for ns in members):
                self._classes[nsset_id] = _MIXED
                continue
            if all(ns.is_misconfig_target for ns in members):
                if all(ns.answers_queries for ns in members):
                    self._classes[nsset_id] = _ANSWERING_TARGET
                    self._quiet_rtts[nsset_id] = tuple(
                        ns.base_rtt_ms for ns in members)
                elif not any(ns.answers_queries for ns in members):
                    self._classes[nsset_id] = _DEAD
                else:
                    self._classes[nsset_id] = _MIXED
                continue
            if any(ns.is_misconfig_target for ns in members):
                self._classes[nsset_id] = _MIXED
                continue
            self._classes[nsset_id] = _NORMAL
            self._quiet_rtts[nsset_id] = tuple(ns.base_rtt_ms for ns in members)

    # -- single measurement -------------------------------------------------------

    def measure_domain(self, domain_id: int, ts: int) -> Measurement:
        """Resolve one domain at one instant (always the full resolver)."""
        record = self.world.directory[domain_id]
        result = self.resolver.resolve(
            record.name, RRType.NS, record.delegation.nameserver_ips, ts)
        return Measurement(ts=ts, domain_id=domain_id,
                           nsset_id=record.nsset_id, status=result.status,
                           rtt_ms=result.rtt_ms, n_attempts=result.n_attempts)

    # -- the crawl ---------------------------------------------------------------

    def run(self, start: Optional[int] = None, end: Optional[int] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> MeasurementStore:
        """Measure every domain daily over [start, end); returns the store."""
        timeline = self.world.timeline
        start = day_start(start if start is not None else timeline.start)
        end = end if end is not None else timeline.end
        directory = self.world.directory
        domains = directory.domains
        offsets = self._offsets
        classes = self._classes
        quiet_rtts = self._quiet_rtts
        store = self.store
        rng_random = self.rng.random
        rng_expo = self.rng.expovariate
        dense_days_of = self.world.dense_days_of
        deadline = self.config.deadline_ms
        n_days = max(1, (end - start) // DAY)

        shard, n_shards = self.shard
        for day_idx, day in enumerate(iter_days(start, end)):
            if progress is not None:
                progress(day_idx, n_days)
            for record in (domains if n_shards == 1
                           else domains[shard::n_shards]):
                domain_id = record.domain_id
                nsset_id = record.nsset_id
                ts = day + offsets[domain_id]
                dense = day in dense_days_of(nsset_id)
                if not dense:
                    klass = classes[nsset_id]
                    if klass <= _ANSWERING_TARGET:  # _NORMAL or answering
                        rtts = quiet_rtts[nsset_id]
                        base = rtts[int(rng_random() * len(rtts))]
                        store.add_fast(nsset_id, ts, ResponseStatus.OK,
                                       base + rng_expo(0.5), False)
                        continue
                    if klass == _DEAD:
                        store.add_fast(nsset_id, ts, ResponseStatus.TIMEOUT,
                                       deadline, False)
                        continue
                n_queries = self.dense_oversampling if dense else 1
                stride = DAY // n_queries
                for j in range(n_queries):
                    ts_j = day + (offsets[domain_id] + j * stride) % DAY
                    m = self.measure_domain(domain_id, ts_j)
                    store.add_fast(nsset_id, ts_j, m.status, m.rtt_ms, dense)
                    if self.keep_raw:
                        self.raw.append(m)
        return store


# ---------------------------------------------------------------------------
# Multi-process crawl
# ---------------------------------------------------------------------------


def _crawl_shard(args) -> MeasurementStore:
    """Worker entry point: rebuild the (deterministic) world and crawl
    one shard of the domain population."""
    from repro.world.simulation import build_world

    config, shard, n_shards, dense_oversampling = args
    world = build_world(config)
    platform = OpenIntelPlatform(world,
                                 dense_oversampling=dense_oversampling)
    platform.shard = (shard, n_shards)
    return platform.run()


def run_parallel(config, n_workers: int = 4,
                 dense_oversampling: int = 6) -> MeasurementStore:
    """Run the daily crawl across ``n_workers`` processes.

    Each worker rebuilds the seeded world (worlds are deterministic, so
    every process sees identical ground truth) and crawls an interleaved
    shard of the domain population; the parent merges the aggregate
    stores. Deterministic for a fixed ``n_workers``; statistically —
    but not bit-for-bit — equivalent to the serial crawl, because RNG
    draw order differs per shard.
    """
    import multiprocessing

    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if n_workers == 1:
        return _crawl_shard((config, 0, 1, dense_oversampling))
    jobs = [(config, shard, n_workers, dense_oversampling)
            for shard in range(n_workers)]
    combined = MeasurementStore()
    with multiprocessing.get_context("fork").Pool(n_workers) as pool:
        for store in pool.map(_crawl_shard, jobs):
            combined.merge(store)
    return combined
