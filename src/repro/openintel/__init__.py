"""OpenINTEL analog: daily active DNS measurement of the namespace.

One explicit NS query per registered domain per day, resolved through
the unbound-like agnostic resolver (random authoritative selection,
empty cache), with RTT-to-complete and response status recorded. Storage
aggregates per NSSet at daily granularity everywhere and at 5-minute
granularity around attacks — the exact inputs of the paper's analysis.
"""

from repro.openintel.records import Measurement
from repro.openintel.stats import CrawlStats
from repro.openintel.storage import Aggregate, MeasurementStore
from repro.openintel.platform import OpenIntelPlatform

__all__ = [
    "Measurement",
    "Aggregate",
    "MeasurementStore",
    "OpenIntelPlatform",
    "CrawlStats",
]
