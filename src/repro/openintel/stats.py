"""Per-shard crawl statistics, mergeable across worker processes.

The multi-process crawl forks workers that each crawl one shard of the
domain population; a :class:`CrawlStats` is the picklable bag of
counters a worker collects alongside its :class:`MeasurementStore` and
returns to the parent, which folds the shards together and publishes
the totals into the run's metrics registry (``repro.crawl.*``).

Worker-count invariance carries over from the store: every field is
either an integer count (sums commute) or the crawl-RTT sum kept as an
exact Shewchuk expansion (order-invariant, same technique as
``Aggregate``), so the merged stats are identical for any worker count
— a test asserts equality at 1/2/4 workers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Tuple

from repro.dns.rcode import ResponseStatus
from repro.obs.registry import DEFAULT_BUCKETS_MS, MetricsRegistry
from repro.openintel.storage import _exact_add

import math

__all__ = ["CrawlStats", "RTT_BUCKETS_MS"]

#: Fixed bucket bounds (ms) of the crawl RTT histogram.
RTT_BUCKETS_MS: Tuple[float, ...] = DEFAULT_BUCKETS_MS


class CrawlStats:
    """Counters one crawl (or one shard of it) accumulates."""

    __slots__ = ("domain_days", "fast_path_days", "dead_days",
                 "resolver_days", "queries", "ok", "timeout", "servfail",
                 "other", "rtt_bucket_counts", "_rtt_partials")

    def __init__(self) -> None:
        self.domain_days = 0
        #: quiet days answered from the closed-form fast path.
        self.fast_path_days = 0
        #: quiet days of never-answering NSSets (synthesized timeouts).
        self.dead_days = 0
        #: days that ran the full resolver state machine.
        self.resolver_days = 0
        #: resolver invocations (dense days send several per domain).
        self.queries = 0
        self.ok = 0
        self.timeout = 0
        self.servfail = 0
        self.other = 0
        self.rtt_bucket_counts: List[int] = [0] * (len(RTT_BUCKETS_MS) + 1)
        #: exact expansion of the OK-RTT sum (order-invariant).
        self._rtt_partials: List[float] = []

    # -- collection (crawl hot loop) -----------------------------------------

    def add_ok(self, rtt_ms: float) -> None:
        """Record one answered measurement and its RTT."""
        self.ok += 1
        self.rtt_bucket_counts[bisect_left(RTT_BUCKETS_MS, rtt_ms)] += 1
        _exact_add(self._rtt_partials, rtt_ms)

    def add_result(self, status: ResponseStatus, rtt_ms: float) -> None:
        """Record one resolver result."""
        if status is ResponseStatus.OK:
            self.add_ok(rtt_ms)
        elif status is ResponseStatus.TIMEOUT:
            self.timeout += 1
        elif status is ResponseStatus.SERVFAIL:
            self.servfail += 1
        else:
            self.other += 1

    # -- merge / publish ------------------------------------------------------

    @property
    def rtt_sum(self) -> float:
        """Correctly-rounded sum of OK RTTs — order-invariant."""
        return math.fsum(self._rtt_partials)

    @property
    def rows(self) -> int:
        """Measurement rows produced (one per status recorded)."""
        return self.ok + self.timeout + self.servfail + self.other

    def merge(self, other: "CrawlStats") -> None:
        """Fold another shard's stats into this one (commutative)."""
        self.domain_days += other.domain_days
        self.fast_path_days += other.fast_path_days
        self.dead_days += other.dead_days
        self.resolver_days += other.resolver_days
        self.queries += other.queries
        self.ok += other.ok
        self.timeout += other.timeout
        self.servfail += other.servfail
        self.other += other.other
        for i, n in enumerate(other.rtt_bucket_counts):
            self.rtt_bucket_counts[i] += n
        for p in other._rtt_partials:
            _exact_add(self._rtt_partials, p)

    def publish(self, registry: MetricsRegistry) -> None:
        """Emit the totals as ``repro.crawl.*`` metrics."""
        counter = registry.counter
        counter("repro.crawl.domain_days").inc(self.domain_days)
        counter("repro.crawl.fast_path_days").inc(self.fast_path_days)
        counter("repro.crawl.dead_days").inc(self.dead_days)
        counter("repro.crawl.resolver_days").inc(self.resolver_days)
        counter("repro.crawl.queries").inc(self.queries)
        counter("repro.crawl.rows").inc(self.rows)
        for status, n in (("ok", self.ok), ("timeout", self.timeout),
                          ("servfail", self.servfail), ("other", self.other)):
            counter("repro.crawl.responses", status=status).inc(n)
        registry.histogram("repro.crawl.rtt_ms", buckets=RTT_BUCKETS_MS) \
            .add_counts(self.rtt_bucket_counts, self.rtt_sum)

    # -- comparison -----------------------------------------------------------

    def state(self) -> Tuple:
        """Every observable column, for exact comparison in tests."""
        return (self.domain_days, self.fast_path_days, self.dead_days,
                self.resolver_days, self.queries, self.ok, self.timeout,
                self.servfail, self.other, tuple(self.rtt_bucket_counts),
                self.rtt_sum)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CrawlStats):
            return NotImplemented
        return self.state() == other.state()

    __hash__ = None  # mutable; equality is by value

    def __repr__(self) -> str:
        return (f"CrawlStats(domain_days={self.domain_days}, "
                f"rows={self.rows}, ok={self.ok}, timeout={self.timeout}, "
                f"queries={self.queries})")
