"""Columnar crawl ingest: measurement rows as flat columns.

The object crawl calls :meth:`MeasurementStore.add_fast` once per
measurement — two dict probes, an :class:`Aggregate` method call, and a
Shewchuk fold per row. :class:`MeasurementBatch` instead appends each
row to five stdlib ``array`` columns (integers and doubles, no object
per row) and folds the whole batch into the store with **one group-by**:
per (NSSet, interval) group, counts and min/max are accumulated
directly and the RTT sum is a single ``math.fsum`` over the group's
values.

``fsum`` returns the correctly-rounded sum of its input multiset in
any order — the exact value the object path's per-row Shewchuk
expansion represents — so a flushed store is bit-identical to one
filled by ``add_fast``, *provided each group sees all of its values in
one flush*. Sharded crawls must therefore concatenate their shard
batches and flush once (see
:meth:`repro.openintel.platform.OpenIntelPlatform.run_parallel`);
flushing into a store that already holds a group's aggregate falls
back to per-value exact folds, which is equally exact but loses the
batch speedup.
"""

from __future__ import annotations

import gc
import math
from array import array
from typing import Dict, List, Optional, Tuple

from repro.columnar import batchlib
from repro.dns.rcode import ResponseStatus
from repro.openintel.storage import Aggregate, MeasurementStore, _exact_add
from repro.util.timeutil import DAY, FIVE_MINUTES

__all__ = ["MeasurementBatch", "STATUS_CODES", "STATUS_BY_CODE"]

#: Stable small-int code per :class:`ResponseStatus`, in declaration
#: order — the ``status`` column's value domain.
STATUS_CODES: Dict[ResponseStatus, int] = {
    status: code for code, status in enumerate(ResponseStatus)}
STATUS_BY_CODE: Tuple[ResponseStatus, ...] = tuple(ResponseStatus)

_OK = STATUS_CODES[ResponseStatus.OK]
_TIMEOUT = STATUS_CODES[ResponseStatus.TIMEOUT]
_SERVFAIL = STATUS_CODES[ResponseStatus.SERVFAIL]


class MeasurementBatch:
    """SoA buffer of crawl measurement rows awaiting one flush."""

    __slots__ = ("nsset_id", "ts", "status", "rtt_ms", "dense")

    def __init__(self) -> None:
        self.nsset_id = array("q")
        self.ts = array("q")
        self.status = array("b")
        self.rtt_ms = array("d")
        self.dense = array("b")

    def __len__(self) -> int:
        return len(self.ts)

    def append(self, nsset_id: int, ts: int, status: ResponseStatus,
               rtt_ms: float, dense: bool) -> None:
        """Buffer one measurement row (``add_fast``'s exact signature)."""
        self.nsset_id.append(nsset_id)
        self.ts.append(ts)
        self.status.append(STATUS_CODES[status])
        self.rtt_ms.append(rtt_ms)
        self.dense.append(1 if dense else 0)

    def extend(self, other: "MeasurementBatch") -> None:
        """Concatenate another batch's rows (shard merge, in the parent)."""
        self.nsset_id.extend(other.nsset_id)
        self.ts.extend(other.ts)
        self.status.extend(other.status)
        self.rtt_ms.extend(other.rtt_ms)
        self.dense.extend(other.dense)

    # -- the flush ---------------------------------------------------------------

    def flush_into(self, store: MeasurementStore,
                   registry=None) -> None:
        """Fold every buffered row into ``store``, bit-identically to
        the equivalent sequence of ``add_fast`` calls.

        ``registry`` (a :class:`repro.obs.MetricsRegistry`, optional)
        receives the ``repro.columnar.*`` batch counters.
        """
        np = batchlib.numpy_or_none()
        # The fold mass-allocates acyclic, immediately-retained objects
        # (aggregates, partials lists) — every generational GC pass it
        # triggers scans the heap and frees nothing, so pause cyclic
        # collection for the duration of the flush.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if np is not None:
                groups, rejected = self._flush_numpy(np, store)
            else:
                groups, rejected = self._flush_stdlib(store)
        finally:
            if gc_was_enabled:
                gc.enable()
        if registry is not None and registry.enabled:
            registry.counter("repro.columnar.batches",
                             kind="measurement").inc()
            registry.counter("repro.columnar.rows",
                             kind="measurement").inc(len(self))
            registry.counter("repro.columnar.rejected_rows").inc(rejected)
            registry.counter("repro.columnar.groups").inc(groups)
            registry.gauge("repro.columnar.numpy").set(
                1.0 if np is not None else 0.0)

    def _flush_stdlib(self, store: MeasurementStore) -> Tuple[int, int]:
        max_rtt = MeasurementStore.MAX_RTT_MS
        daily: Dict[Tuple[int, int], List] = {}
        buckets: Dict[Tuple[int, int], List] = {}
        rejected = 0
        accepted = 0
        rows = zip(self.nsset_id, self.ts, self.status, self.rtt_ms,
                   self.dense)
        for nsset_id, ts, code, rtt, dense in rows:
            if not 0.0 <= rtt <= max_rtt:  # False for NaN too
                rejected += 1
                continue
            accepted += 1
            _group_add(daily, (nsset_id, ts - ts % DAY), code, rtt)
            if dense:
                _group_add(buckets, (nsset_id, ts - ts % FIVE_MINUTES),
                           code, rtt)
        store.n_measurements += accepted
        store.n_rejected += rejected
        for key, acc in daily.items():
            _fold_group(store.daily, key, acc[0], acc[1], acc[2], acc[3])
        for key, acc in buckets.items():
            _fold_group(store.buckets, key, acc[0], acc[1], acc[2], acc[3])
        return len(daily) + len(buckets), rejected

    def _flush_numpy(self, np, store: MeasurementStore) -> Tuple[int, int]:
        ns = np.frombuffer(self.nsset_id, dtype=np.int64)
        ts = np.frombuffer(self.ts, dtype=np.int64)
        st = np.frombuffer(self.status, dtype=np.int8)
        rt = np.frombuffer(self.rtt_ms, dtype=np.float64)
        dn = np.frombuffer(self.dense, dtype=np.int8)
        accept = (rt >= 0.0) & (rt <= MeasurementStore.MAX_RTT_MS)
        n_accepted = int(np.count_nonzero(accept))
        rejected = ns.size - n_accepted
        store.n_measurements += n_accepted
        store.n_rejected += rejected
        if not n_accepted:
            return 0, rejected
        # One stable sort by (nsset, ts) makes the groups of *both*
        # folds contiguous (a day and a 5-minute window are each a ts
        # range). The single combined-key argsort is the common fast
        # case: rejected rows get key -1, sort to the front, and are
        # sliced off the permutation — no separate filter pass.
        # Out-of-range ids/timestamps fall back to filter + lexsort.
        if (int(ts.min()) >= 0 and int(ts.max()) < 2 ** 32
                and int(ns.min()) >= 0 and int(ns.max()) < 2 ** 31):
            key = ns * np.int64(2 ** 32) + ts
            if rejected:
                key = np.where(accept, key, np.int64(-1))
            order = np.argsort(key, kind="stable")[rejected:]
        else:
            if rejected:
                ns, ts, st, rt, dn = (ns[accept], ts[accept], st[accept],
                                      rt[accept], dn[accept])
            order = np.lexsort((ts, ns))
        ns_s = ns[order]
        ts_s = ts[order]
        st_s = st[order]
        rt_s = rt[order]
        dn_s = dn[order]
        groups = _fold_numpy(np, store.daily, ns_s, ts_s - ts_s % DAY,
                             st_s, rt_s)
        dense_mask = dn_s != 0
        if dense_mask.any():
            ts_d = ts_s[dense_mask]
            groups += _fold_numpy(np, store.buckets, ns_s[dense_mask],
                                  ts_d - ts_d % FIVE_MINUTES,
                                  st_s[dense_mask], rt_s[dense_mask])
        return groups, rejected


def _group_add(groups: Dict[Tuple[int, int], List],
               key: Tuple[int, int], code: int, rtt: float) -> None:
    """Accumulate one accepted row into a group: ``[ok_rtts, timeout,
    servfail, other]``."""
    acc = groups.get(key)
    if acc is None:
        acc = groups[key] = [[], 0, 0, 0]
    if code == _OK:
        acc[0].append(rtt)
    elif code == _TIMEOUT:
        acc[1] += 1
    elif code == _SERVFAIL:
        acc[2] += 1
    else:
        acc[3] += 1


def _fold_group(target: Dict[Tuple[int, int], Aggregate],
                key: Tuple[int, int], ok_rtts: List[float],
                timeout_n: int, servfail_n: int, other_n: int,
                rtt_min: Optional[float] = None,
                rtt_max: Optional[float] = None) -> None:
    """Fold one group's accumulated columns into a store dict.

    A fresh aggregate is filled directly — its sum expansion is the
    single ``fsum`` of the group, which represents the same exact value
    as a per-row Shewchuk expansion would. An *existing* aggregate
    (flush into a pre-populated store) is extended per value with
    ``_exact_add``, keeping exactness at object-path speed.
    """
    agg = target.get(key)
    if agg is None:
        agg = Aggregate()
        target[key] = agg
        n_ok = len(ok_rtts)
        agg.n = n_ok + timeout_n + servfail_n + other_n
        agg.ok_n = n_ok
        if n_ok:
            total = math.fsum(ok_rtts)
            agg._rtt_partials = [total] if total else []
            agg.rtt_min = rtt_min if rtt_min is not None else min(ok_rtts)
            agg.rtt_max = rtt_max if rtt_max is not None else max(ok_rtts)
        agg.timeout_n = timeout_n
        agg.servfail_n = servfail_n
        agg.other_err_n = other_n
        return
    agg.n += len(ok_rtts) + timeout_n + servfail_n + other_n
    agg.ok_n += len(ok_rtts)
    for rtt in ok_rtts:
        _exact_add(agg._rtt_partials, rtt)
        if rtt < agg.rtt_min:
            agg.rtt_min = rtt
        if rtt > agg.rtt_max:
            agg.rtt_max = rtt
    agg.timeout_n += timeout_n
    agg.servfail_n += servfail_n
    agg.other_err_n += other_n


def _fold_numpy(np, target: Dict[Tuple[int, int], Aggregate],
                ns_s, ts_s, st_s, rt_s) -> int:
    """Fold each contiguous ``(ns, key_ts)`` group into ``target``.

    The caller hands columns already sorted by (nsset, ts), so every
    group is a contiguous run. NumPy performs only bit-exact work
    here: boundary detection, integer count reductions, and float
    min/max. The per-group RTT sum is ``math.fsum`` over the group's
    slice.
    """
    n = ns_s.size
    if n == 0:
        return 0
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.logical_or(ns_s[1:] != ns_s[:-1], ts_s[1:] != ts_s[:-1],
                  out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, n))
    ok = st_s == _OK
    # dtype= accumulates the bool masks in int64 without materializing
    # an astype copy per mask.
    ok_per = np.add.reduceat(ok, starts, dtype=np.int64)
    timeout_per = np.add.reduceat(st_s == _TIMEOUT, starts, dtype=np.int64)
    servfail_per = np.add.reduceat(st_s == _SERVFAIL, starts,
                                   dtype=np.int64)
    other_per = counts - ok_per - timeout_per - servfail_per
    # min over OK values (inf fill -> Aggregate's empty default); max
    # with 0.0 fill matches the object path's 0.0 floor (RTTs are >= 0).
    min_per = np.minimum.reduceat(np.where(ok, rt_s, np.inf), starts)
    max_per = np.maximum.reduceat(np.where(ok, rt_s, 0.0), starts)
    rt_ok = rt_s[ok].tolist()
    if target:
        # Pre-populated store: some groups may already hold an
        # aggregate, so take the careful per-group fold.
        pos = 0
        for key_ns, key_ts_v, n_ok, t_n, s_n, o_n, mn, mx in zip(
                ns_s[starts].tolist(), ts_s[starts].tolist(),
                ok_per.tolist(), timeout_per.tolist(),
                servfail_per.tolist(), other_per.tolist(),
                min_per.tolist(), max_per.tolist()):
            nxt = pos + n_ok
            _fold_group(target, (key_ns, key_ts_v), rt_ok[pos:nxt],
                        t_n, s_n, o_n,
                        rtt_min=mn if n_ok else None,
                        rtt_max=mx if n_ok else None)
            pos = nxt
        return len(starts)
    # Empty store (the standard crawl flush): every group is new, the
    # min/max fill values equal a fresh aggregate's defaults, and the
    # sorted keys are distinct. Keep the per-group Python down to one
    # `_new_aggregate` call by driving everything else from C: group
    # slices and their exact sums come from mapped ``slice``/``fsum``,
    # keys from a zipped pair of columns, and insertion is one
    # ``dict.update`` over the zipped (key, aggregate) stream.
    ends = np.cumsum(ok_per).tolist()
    totals = map(math.fsum,
                 map(rt_ok.__getitem__, map(slice, [0] + ends[:-1], ends)))
    target.update(zip(
        zip(ns_s[starts].tolist(), ts_s[starts].tolist()),
        map(_new_aggregate, counts.tolist(), ok_per.tolist(),
            timeout_per.tolist(), servfail_per.tolist(),
            other_per.tolist(), min_per.tolist(), max_per.tolist(),
            totals)))
    return len(starts)


def _new_aggregate(n, ok_n, timeout_n, servfail_n, other_n, rtt_min,
                   rtt_max, total,
                   _new=Aggregate.__new__, _cls=Aggregate) -> Aggregate:
    """Build one fresh aggregate from its group's folded columns.

    Hot path (called once per group of a full-crawl flush): the bound
    ``_new``/``_cls`` defaults skip the global lookups per call.
    """
    agg = _new(_cls)
    agg.n = n
    agg.ok_n = ok_n
    agg._rtt_partials = [total] if total else []
    agg.rtt_min = rtt_min
    agg.rtt_max = rtt_max
    agg.timeout_n = timeout_n
    agg.servfail_n = servfail_n
    agg.other_err_n = other_n
    return agg
