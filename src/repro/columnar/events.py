"""Per-event scalar columns for the §6.3 impact analyses.

``analyze_impact`` (Figure 8) reads ``event.impact`` and
``event.mean_impact`` per event — each of which walks the event's full
5-minute point list again (the ``ImpactSeries`` statistics are
properties, not cached). An :class:`EventFrame` makes **one** pass over
every event's points, using the very same accumulation order as the
object properties, and keeps the resulting scalars in flat columns.
:func:`analyze_impact_frame` then runs the Figure-8 binning over those
columns — bit-identical output (the same floats flow through the same
comparisons in the same event order) at a fraction of the point walks.

A frame is built once per study and serves every repeated analysis
(the figure benches re-run them dozens of times).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.events import AttackEvent
from repro.core.impact import ImpactAnalysis

__all__ = ["EventFrame", "analyze_impact_frame"]


class EventFrame:
    """Scalar impact columns over an extracted event list."""

    __slots__ = ("events", "impact", "mean_impact", "n_domains_hosted")

    def __init__(self, events: Sequence[AttackEvent], registry=None):
        self.events = list(events)
        self.impact: List[Optional[float]] = []
        self.mean_impact: List[Optional[float]] = []
        self.n_domains_hosted: List[int] = []
        for event in self.events:
            series = event.series
            # One pass replicating ImpactSeries.mean_impact (ordered
            # left-to-right sum) and .max_impact (first-wins maximum).
            weighted = 0.0
            total = 0
            peak: Optional[float] = None
            min_bucket_n = series.min_bucket_n
            for p in series.points:
                impact = p.impact
                if impact is None:
                    continue
                weighted += impact * p.n
                total += p.n
                if p.n >= min_bucket_n and (peak is None or impact > peak):
                    peak = impact
            mean = weighted / total if total else None
            candidates = [x for x in (mean, peak) if x is not None]
            self.mean_impact.append(mean)
            self.impact.append(max(candidates) if candidates else None)
            self.n_domains_hosted.append(event.info.n_domains)
        if registry is not None and registry.enabled:
            registry.counter("repro.columnar.frame_builds").inc()
            registry.gauge("repro.columnar.event_rows").set(len(self.events))

    def __len__(self) -> int:
        return len(self.events)


def analyze_impact_frame(frame: EventFrame) -> ImpactAnalysis:
    """:func:`repro.core.impact.analyze_impact` over a frame."""
    out = ImpactAnalysis()
    out.n_events = len(frame)
    impacts = frame.impact
    means = frame.mean_impact
    sizes = frame.n_domains_hosted
    grid = out.grid
    peak_by_size = out.peak_by_size
    mean_by_size = out.mean_by_size
    floor = math.floor
    log10 = math.log10
    for i in range(out.n_events):
        impact = impacts[i]
        if impact is None:
            continue
        out.n_with_impact += 1
        if impact >= 10.0:
            out.over_10x += 1
        if impact >= 100.0:
            out.over_100x += 1
        size = sizes[i]
        if size < 1:
            size = 1
        size_decade = int(floor(log10(size)))
        impact_decade = int(floor(log10(impact if impact > 1e-3 else 1e-3)))
        key = (size_decade, impact_decade)
        grid[key] = grid.get(key, 0) + 1
        if impact > peak_by_size.get(size_decade, 0.0):
            peak_by_size[size_decade] = impact
        mean = means[i]
        if mean is not None and mean > mean_by_size.get(size_decade, 0.0):
            mean_by_size[size_decade] = mean
    return out
