"""The optional-NumPy gate shared by every columnar module.

Lives in its own module (rather than the package ``__init__``) so the
batch implementations can import it without a circular import through
the package's re-exports.
"""

from __future__ import annotations

try:  # the container ships numpy; bare CI runners may not.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on bare runners
    _np = None

#: Whether NumPy is importable; columnar routines fall back to
#: bit-identical stdlib implementations when it is not.
HAVE_NUMPY = _np is not None


def numpy_or_none():
    """The ``numpy`` module when importable, else ``None``."""
    return _np
