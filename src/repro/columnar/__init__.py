"""Structure-of-arrays batches for the pipeline's hottest paths.

The object pipeline moves one Python object per backscatter window,
per crawl measurement, and per 5-minute bucket through its inner
loops. At paper scale (~3 B telescope packets, 17 months of daily
crawls) that per-record overhead caps the world sizes the figure
benches can reach. This package keeps the *numbers* in flat columns
(stdlib ``array`` buffers, viewed through NumPy when it is available)
and crosses back into objects only at group boundaries.

Three batch families, one per hot path:

- :class:`~repro.columnar.crawl.MeasurementBatch` — crawl ingest rows,
  flushed into a :class:`~repro.openintel.storage.MeasurementStore`
  with one group-by instead of one ``add_fast`` per row;
- :class:`~repro.columnar.telescope.ObservationBatch` — telescope
  window observations, with batched RSDoS inference and feed curation;
- :class:`~repro.columnar.frame.StoreFrame` /
  :class:`~repro.columnar.events.EventFrame` — read-side columns over
  the filled store and the extracted events, for the 5-minute
  join/aggregation and the Figure-8 impact analysis.

Exactness contract
------------------

Every columnar routine is **bit-identical** to its object counterpart
(the PR 5 goldens assert it end to end). The load-bearing fact: the
object store keeps RTT sums as Shewchuk exact expansions, so its
``rtt_sum`` is the *correctly-rounded* sum of the ingested multiset —
and ``math.fsum`` over a group's raw values yields exactly that same
correctly-rounded sum, in any order. Columnar flushes therefore
compute one ``fsum`` per (NSSet, interval) group over *all* of the
group's values (sharded crawls concatenate shard batches before the
single flush — per-shard partial sums would round twice). Counts,
minima, and maxima are order-invariant by construction. NumPy is used
only where it cannot perturb a bit: integer reductions, comparisons,
min/max, sorting, and searching — never for float sums.

NumPy is optional: every routine has a stdlib fallback with the same
output (the CI test matrix runs without NumPy installed), so
:data:`HAVE_NUMPY` only selects the faster implementation.
"""

from __future__ import annotations

from repro.columnar.batchlib import HAVE_NUMPY, numpy_or_none
from repro.columnar.crawl import MeasurementBatch
from repro.columnar.telescope import (
    ObservationBatch,
    curate_records,
    infer_attacks,
)
from repro.columnar.frame import StoreFrame, impact_series_frame
from repro.columnar.events import EventFrame, analyze_impact_frame

__all__ = [
    "HAVE_NUMPY",
    "numpy_or_none",
    "MeasurementBatch",
    "ObservationBatch",
    "infer_attacks",
    "curate_records",
    "StoreFrame",
    "impact_series_frame",
    "EventFrame",
    "analyze_impact_frame",
]
