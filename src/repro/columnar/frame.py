"""Read-side columns over a filled measurement store.

The events phase asks the store for every (NSSet, 5-minute) bucket in
every attack window — :meth:`MeasurementStore.buckets_in` probes the
bucket dict once per 5-minute step, present or not, and touches one
:class:`Aggregate` object per hit (whose ``rtt_sum`` re-runs ``fsum``
over its partials on every read). A :class:`StoreFrame` is built once
per store: bucket keys sorted by (NSSet, ts) with every aggregate
column — including the *precomputed* correctly-rounded ``rtt_sum`` and
validity flag — flattened into plain lists. Window queries become two
binary searches over a contiguous per-NSSet slice.

Pure stdlib (``bisect`` over flat lists); identical with or without
NumPy. :func:`impact_series_frame` and :func:`extract_events_frame`
are bit-identical to :func:`repro.core.metrics.impact_series` and
:func:`repro.core.events.extract_events`: the same aggregates qualify,
the same divisions run on the same floats, and points arrive in the
same order.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Tuple

from repro.core.events import EVENT_MIN_BUCKET_N, AttackEvent
from repro.core.join import DatasetJoin
from repro.core.metrics import (
    BASELINE_FALLBACK_DAYS,
    ImpactPoint,
    ImpactSeries,
    compute_baseline_degraded,
    impact_on_rtt,
)
from repro.core.nsset import NSSetMetadata
from repro.openintel.storage import MeasurementStore
from repro.util.timeutil import Window, window_start

__all__ = ["StoreFrame", "impact_series_frame", "extract_events_frame"]


class StoreFrame:
    """Sorted (NSSet, ts) bucket columns over one measurement store."""

    __slots__ = ("store", "ts", "n", "ok", "rtt_sum", "timeout_n",
                 "servfail_n", "valid", "_ranges")

    def __init__(self, store: MeasurementStore, registry=None):
        self.store = store
        items = sorted(store.buckets.items())
        self.ts: List[int] = []
        self.n: List[int] = []
        self.ok: List[int] = []
        self.rtt_sum: List[float] = []
        self.timeout_n: List[int] = []
        self.servfail_n: List[int] = []
        self.valid: List[bool] = []
        #: nsset_id -> contiguous [lo, hi) slice of the sorted columns.
        self._ranges: Dict[int, Tuple[int, int]] = {}
        current = None
        lo = 0
        for i, ((nsset_id, ts), agg) in enumerate(items):
            if nsset_id != current:
                if current is not None:
                    self._ranges[current] = (lo, i)
                current = nsset_id
                lo = i
            self.ts.append(ts)
            self.n.append(agg.n)
            self.ok.append(agg.ok_n)
            self.rtt_sum.append(agg.rtt_sum)
            self.timeout_n.append(agg.timeout_n)
            self.servfail_n.append(agg.servfail_n)
            self.valid.append(agg.is_valid)
        if current is not None:
            self._ranges[current] = (lo, len(items))
        if registry is not None and registry.enabled:
            registry.counter("repro.columnar.frame_builds").inc()
            registry.gauge("repro.columnar.frame_buckets").set(len(items))

    def __len__(self) -> int:
        return len(self.ts)

    def window_slice(self, nsset_id: int, start: int, end: int
                     ) -> Tuple[int, int]:
        """The [lo, hi) column slice of a NSSet's buckets in a window.

        Matches ``buckets_in`` exactly: bucket keys are always 5-minute
        aligned, so "every aligned step with a present bucket" equals
        "every stored ts in [window_start(start), end)".
        """
        lo, hi = self._ranges.get(nsset_id, (0, 0))
        if lo == hi:
            return 0, 0
        left = bisect_left(self.ts, window_start(start), lo, hi)
        right = bisect_left(self.ts, end, lo, hi)
        return left, right


def impact_series_frame(frame: StoreFrame, nsset_id: int, window: Window,
                        baseline_kind: str = "day",
                        min_bucket_n: int = 1,
                        baseline_fallback_days: int = BASELINE_FALLBACK_DAYS
                        ) -> ImpactSeries:
    """:func:`repro.core.metrics.impact_series` over a frame.

    The baseline still reads the store's daily dict (one lookup per
    horizon day); only the 5-minute bucket walk is columnar.
    """
    baseline, fell_back = compute_baseline_degraded(
        frame.store, nsset_id, window.start, baseline_kind,
        baseline_fallback_days)
    series = ImpactSeries(nsset_id=nsset_id, window=window,
                          baseline_rtt=baseline, min_bucket_n=min_bucket_n,
                          degraded=fell_back)
    lo, hi = frame.window_slice(nsset_id, window.start, window.end)
    ts = frame.ts
    n = frame.n
    ok = frame.ok
    rtt_sum = frame.rtt_sum
    timeout_n = frame.timeout_n
    servfail_n = frame.servfail_n
    valid = frame.valid
    points = series.points
    for i in range(lo, hi):
        if not valid[i]:
            series.n_corrupt += 1
            series.degraded = True
            continue
        ok_i = ok[i]
        avg = rtt_sum[i] / ok_i if ok_i else None
        points.append(ImpactPoint(
            ts=ts[i], n=n[i], ok=ok_i, timeouts=timeout_n[i],
            servfails=servfail_n[i], avg_rtt=avg,
            impact=impact_on_rtt(avg, baseline)))
    return series


def extract_events_frame(join: DatasetJoin, frame: StoreFrame,
                         metadata: NSSetMetadata, min_domains: int = 5,
                         baseline_kind: str = "day") -> List[AttackEvent]:
    """:func:`repro.core.events.extract_events` over a frame —
    identical events in identical order."""
    events: List[AttackEvent] = []
    for classified in join.dns_direct_attacks:
        attack = classified.attack
        window = Window(attack.start, attack.end)
        for nsset_id in classified.nsset_ids:
            info = metadata.info(nsset_id, attack.start)
            if info.n_domains < min_domains:
                continue
            series = impact_series_frame(
                frame, nsset_id, window, baseline_kind,
                min_bucket_n=EVENT_MIN_BUCKET_N)
            if series.n_measured < min_domains:
                continue
            events.append(AttackEvent(attack=attack, info=info,
                                      series=series))
    return events
