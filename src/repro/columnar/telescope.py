"""Batched RSDoS inference: telescope windows as flat columns.

The object classifier (:class:`repro.telescope.rsdos.RSDoSClassifier`)
builds a per-victim dict of observation objects, sorts each victim's
list, and walks it group by group. At paper scale the telescope emits
millions of 5-minute windows; this module runs the same inference over
an :class:`ObservationBatch` — nine parallel columns — with one global
stable sort, vectorized gap-splitting, and per-group integer/min/max
reductions (all bit-exact operations; the inference involves no float
sums). Feed curation — keeping only window records that fall inside an
inferred attack — becomes a per-victim binary search over the victim's
disjoint attack intervals instead of an ``any()`` scan per record.

Both functions are bit-identical to the object pipeline; without NumPy
they delegate to it outright.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple

from repro.columnar import batchlib
from repro.telescope.backscatter import WindowObservation
from repro.telescope.feed import FeedRecord
from repro.telescope.rsdos import (
    InferredAttack,
    RSDoSClassifier,
    RSDoSThresholds,
)
from repro.util.timeutil import FIVE_MINUTES

__all__ = ["ObservationBatch", "infer_attacks", "curate_records"]


class ObservationBatch:
    """SoA mirror of a list of :class:`WindowObservation` rows."""

    __slots__ = ("window_ts", "victim_ip", "n_packets", "max_ppm",
                 "n_slash16", "n_unique_sources", "proto", "first_port",
                 "n_ports")

    def __init__(self) -> None:
        self.window_ts = array("q")
        self.victim_ip = array("q")
        self.n_packets = array("q")
        self.max_ppm = array("d")
        self.n_slash16 = array("q")
        self.n_unique_sources = array("q")
        self.proto = array("q")
        self.first_port = array("q")
        self.n_ports = array("q")

    def __len__(self) -> int:
        return len(self.window_ts)

    def append(self, obs: WindowObservation) -> None:
        self.window_ts.append(obs.window_ts)
        self.victim_ip.append(obs.victim_ip)
        self.n_packets.append(obs.n_packets)
        self.max_ppm.append(obs.max_ppm)
        self.n_slash16.append(obs.n_slash16)
        self.n_unique_sources.append(obs.n_unique_sources)
        self.proto.append(obs.proto)
        self.first_port.append(obs.first_port)
        self.n_ports.append(obs.n_ports)

    @classmethod
    def from_observations(cls, observations: Iterable[WindowObservation]
                          ) -> "ObservationBatch":
        batch = cls()
        for obs in observations:
            batch.append(obs)
        return batch

    def to_observations(self) -> List[WindowObservation]:
        """Materialize the rows back into objects (stdlib fallback)."""
        return [WindowObservation(
            window_ts=self.window_ts[i], victim_ip=self.victim_ip[i],
            n_packets=self.n_packets[i], max_ppm=self.max_ppm[i],
            n_slash16=self.n_slash16[i],
            n_unique_sources=self.n_unique_sources[i],
            proto=self.proto[i], first_port=self.first_port[i],
            n_ports=self.n_ports[i]) for i in range(len(self))]


def infer_attacks(batch: ObservationBatch,
                  thresholds: Optional[RSDoSThresholds] = None,
                  registry=None) -> List[InferredAttack]:
    """Batched :meth:`RSDoSClassifier.infer` — same attacks, same order.

    The classifier's per-victim walk maps onto columns directly: a
    stable sort by (victim, window_ts) preserves insertion order for
    duplicate keys exactly like the object path's stable per-victim
    sort, group boundaries are victim changes or silences longer than
    the gap, and every per-group statistic is an exact reduction
    (integer sums, maxima, first-row picks).
    """
    th = thresholds or RSDoSThresholds()
    np = batchlib.numpy_or_none()
    if registry is not None and registry.enabled:
        registry.counter("repro.columnar.batches",
                         kind="observation").inc()
        registry.counter("repro.columnar.rows",
                         kind="observation").inc(len(batch))
    if np is None:
        return RSDoSClassifier(th).infer(batch.to_observations())
    n = len(batch)
    if n == 0:
        return []
    vic = np.frombuffer(batch.victim_ip, dtype=np.int64)
    ts = np.frombuffer(batch.window_ts, dtype=np.int64)
    order = np.lexsort((ts, vic))  # stable: ties keep insertion order
    vic_s = vic[order]
    ts_s = ts[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.logical_or(vic_s[1:] != vic_s[:-1],
                  ts_s[1:] - ts_s[:-1] > th.gap_s, out=boundary[1:])
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], n)

    packets = np.frombuffer(batch.n_packets, dtype=np.int64)[order]
    packets_per = np.add.reduceat(packets, starts)
    slash16 = np.frombuffer(batch.n_slash16, dtype=np.int64)[order]
    slash16_per = np.maximum.reduceat(slash16, starts)
    group_start = ts_s[starts]
    group_end = ts_s[ends - 1] + FIVE_MINUTES
    keep = ((packets_per >= th.min_packets)
            & (slash16_per >= th.min_slash16)
            & (group_end - group_start >= th.min_duration_s))
    if not keep.any():
        return []
    kept = np.flatnonzero(keep)
    ppm_per = np.maximum.reduceat(
        np.frombuffer(batch.max_ppm, dtype=np.float64)[order], starts)
    sources_per = np.maximum.reduceat(
        np.frombuffer(batch.n_unique_sources, dtype=np.int64)[order], starts)
    ports_per = np.maximum.reduceat(
        np.frombuffer(batch.n_ports, dtype=np.int64)[order], starts)
    first_rows = order[starts]  # earliest window of each group
    proto = np.frombuffer(batch.proto, dtype=np.int64)[first_rows]
    first_port = np.frombuffer(batch.first_port, dtype=np.int64)[first_rows]
    n_windows = ends - starts

    attacks = [InferredAttack(
        victim_ip=int(vic_s[starts[g]]),
        start=int(group_start[g]),
        end=int(group_end[g]),
        n_packets=int(packets_per[g]),
        max_ppm=float(ppm_per[g]),
        max_slash16=int(slash16_per[g]),
        n_unique_sources=int(sources_per[g]),
        proto=int(proto[g]),
        first_port=int(first_port[g]),
        n_ports=int(ports_per[g]),
        n_windows=int(n_windows[g])) for g in kept.tolist()]
    attacks.sort(key=lambda a: (a.start, a.victim_ip))
    return attacks


def curate_records(batch: ObservationBatch,
                   attacks: List[InferredAttack]) -> List[FeedRecord]:
    """Keep only windows inside an inferred attack, in batch order.

    Per victim the inferred attacks are disjoint in time (the
    classifier's gap-split guarantees it), so membership is a binary
    search over the victim's interval starts instead of the object
    path's linear ``any()`` per record.
    """
    keep: Dict[int, Tuple[List[int], List[int]]] = {}
    for attack in attacks:  # sorted by start -> per-victim lists sorted
        intervals = keep.setdefault(attack.victim_ip, ([], []))
        intervals[0].append(attack.start)
        intervals[1].append(attack.end)

    n = len(batch)
    np = batchlib.numpy_or_none()
    if np is None:
        mask = bytearray(n)
        for i in range(n):
            intervals = keep.get(batch.victim_ip[i])
            if intervals is None:
                continue
            ts = batch.window_ts[i]
            pos = bisect_right(intervals[0], ts) - 1
            if pos >= 0 and ts < intervals[1][pos]:
                mask[i] = 1
        kept_rows = [i for i in range(n) if mask[i]]
    else:
        vic = np.frombuffer(batch.victim_ip, dtype=np.int64)
        ts = np.frombuffer(batch.window_ts, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        order = np.lexsort((ts, vic))
        vic_s = vic[order]
        boundary = np.empty(n, dtype=bool) if n else np.zeros(0, dtype=bool)
        if n:
            boundary[0] = True
            np.not_equal(vic_s[1:], vic_s[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], n)
        for g in range(starts.size):
            victim = int(vic_s[starts[g]])
            intervals = keep.get(victim)
            if intervals is None:
                continue
            rows = order[starts[g]:ends[g]]
            row_ts = ts[rows]
            astarts = np.asarray(intervals[0], dtype=np.int64)
            aends = np.asarray(intervals[1], dtype=np.int64)
            pos = np.searchsorted(astarts, row_ts, side="right") - 1
            inside = (pos >= 0) & (row_ts < aends[np.clip(pos, 0, None)])
            mask[rows[inside]] = True
        kept_rows = np.flatnonzero(mask).tolist()  # ascending = batch order

    window_ts = batch.window_ts
    victim_ip = batch.victim_ip
    proto = batch.proto
    first_port = batch.first_port
    n_ports = batch.n_ports
    n_packets = batch.n_packets
    max_ppm = batch.max_ppm
    n_slash16 = batch.n_slash16
    n_unique_sources = batch.n_unique_sources
    return [FeedRecord(
        window_ts=window_ts[i], victim_ip=victim_ip[i], proto=proto[i],
        first_port=first_port[i], n_ports=n_ports[i],
        n_packets=n_packets[i], max_ppm=max_ppm[i],
        n_slash16=n_slash16[i], n_unique_sources=n_unique_sources[i])
        for i in kept_rows]
