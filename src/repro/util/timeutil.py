"""Time axis for the study: epoch seconds, 5-minute windows, days, months.

The RSDoS feed aggregates in 5-minute *tumbling* windows and OpenINTEL
measures daily, so the whole reproduction shares this module's notion of
window boundaries. All timestamps are UTC epoch seconds (ints); the
analysis period of the paper runs 2020-11-01 .. 2022-03-31.
"""

from __future__ import annotations

import calendar
import time
from dataclasses import dataclass
from typing import Iterator, Tuple

MINUTE = 60
FIVE_MINUTES = 5 * MINUTE
HOUR = 60 * MINUTE
DAY = 24 * HOUR

_TS_FORMAT = "%Y-%m-%d %H:%M"


def parse_ts(text: str) -> int:
    """Parse ``YYYY-MM-DD[ HH:MM[:SS]]`` (UTC) into epoch seconds."""
    text = text.strip()
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
        try:
            return int(calendar.timegm(time.strptime(text, fmt)))
        except ValueError:
            continue
    raise ValueError(f"unrecognized timestamp: {text!r}")


def format_ts(ts: int) -> str:
    """Format epoch seconds as ``YYYY-MM-DD HH:MM`` (UTC)."""
    return time.strftime(_TS_FORMAT, time.gmtime(ts))


def window_start(ts: int, width: int = FIVE_MINUTES) -> int:
    """Start of the tumbling window of ``width`` seconds containing ``ts``."""
    if width <= 0:
        raise ValueError("window width must be positive")
    return (int(ts) // width) * width


def day_start(ts: int) -> int:
    """Midnight UTC of the day containing ``ts``."""
    return window_start(ts, DAY)


def month_key(ts: int) -> Tuple[int, int]:
    """(year, month) of the UTC timestamp — the paper's monthly buckets."""
    tm = time.gmtime(ts)
    return tm.tm_year, tm.tm_mon


def format_month(key: Tuple[int, int]) -> str:
    return f"{key[0]:04d}-{key[1]:02d}"


def iter_windows(start: int, end: int, width: int = FIVE_MINUTES) -> Iterator[int]:
    """Yield window start times covering ``[start, end)``."""
    ts = window_start(start, width)
    while ts < end:
        yield ts
        ts += width


def iter_days(start: int, end: int) -> Iterator[int]:
    """Yield day start times covering ``[start, end)``."""
    return iter_windows(start, end, DAY)


@dataclass(frozen=True)
class Window:
    """A half-open time interval ``[start, end)`` in epoch seconds."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window end precedes start")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def contains(self, ts: int) -> bool:
        return self.start <= ts < self.end

    def overlaps(self, other: "Window") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Window") -> "Window":
        """The overlap of two windows; zero-length at ``self.start`` if disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if end < start:
            return Window(self.start, self.start)
        return Window(start, end)

    def expand(self, before: int = 0, after: int = 0) -> "Window":
        return Window(self.start - before, self.end + after)

    def buckets(self, width: int = FIVE_MINUTES) -> Iterator[int]:
        """Tumbling-window starts that intersect this interval."""
        return iter_windows(self.start, max(self.end, self.start + 1), width)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{format_ts(self.start)} .. {format_ts(self.end)})"


class Timeline:
    """The study's analysis interval with convenience accessors.

    The paper analyses 2020-11-01 through 2022-03-31 (inclusive), i.e. a
    17-month window that lines up with the quarterly anycast censuses.
    """

    PAPER_START = "2020-11-01"
    PAPER_END_EXCLUSIVE = "2022-04-01"

    def __init__(self, start: str = PAPER_START, end_exclusive: str = PAPER_END_EXCLUSIVE):
        self.start = parse_ts(start)
        self.end = parse_ts(end_exclusive)
        if self.end <= self.start:
            raise ValueError("timeline end must follow start")

    @property
    def window(self) -> Window:
        return Window(self.start, self.end)

    @property
    def n_days(self) -> int:
        return (self.end - self.start) // DAY

    def days(self) -> Iterator[int]:
        return iter_days(self.start, self.end)

    def months(self) -> Iterator[Tuple[int, int]]:
        """Yield (year, month) keys covering the timeline in order."""
        seen = []
        for day in self.days():
            key = month_key(day)
            if not seen or seen[-1] != key:
                seen.append(key)
                yield key

    def clamp(self, ts: int) -> int:
        return min(max(ts, self.start), self.end)

    def __contains__(self, ts: int) -> bool:
        return self.start <= ts < self.end
