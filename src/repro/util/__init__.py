"""Shared utilities: deterministic RNG streams, time axis, statistics, tables.

These helpers are deliberately dependency-light; everything in
:mod:`repro` that needs randomness, time bucketing, or summary statistics
goes through this package so that simulations are reproducible from a
single seed and analyses share one notion of a "5-minute window".
"""

from repro.util.rng import RngStreams, derive_seed
from repro.util.timeutil import (
    DAY,
    FIVE_MINUTES,
    HOUR,
    MINUTE,
    Timeline,
    Window,
    day_start,
    format_ts,
    iter_days,
    iter_windows,
    month_key,
    parse_ts,
    window_start,
)
from repro.util.stats import (
    RunningStats,
    Histogram,
    LogHistogram,
    pearson,
    percentile,
    ratio,
)
from repro.util.tables import Table, format_count, format_pct

__all__ = [
    "RngStreams",
    "derive_seed",
    "DAY",
    "FIVE_MINUTES",
    "HOUR",
    "MINUTE",
    "Timeline",
    "Window",
    "day_start",
    "format_ts",
    "iter_days",
    "iter_windows",
    "month_key",
    "parse_ts",
    "window_start",
    "RunningStats",
    "Histogram",
    "LogHistogram",
    "pearson",
    "percentile",
    "ratio",
    "Table",
    "format_count",
    "format_pct",
]
