"""Summary statistics used across the analysis pipeline.

Implements exactly what the paper needs — running means per 5-minute
bucket, Pearson correlation for the intensity/duration analyses (§6.4,
§6.5), percentiles, and linear/logarithmic histograms for the figures —
without dragging numpy into the hot per-query paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple


class RunningStats:
    """Streaming count/mean/min/max/variance (Welford's algorithm)."""

    __slots__ = ("n", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford merge)."""
        if other.n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self._m2 = other.n, other.mean, other._m2
            self.min, self.max = other.min, other.max
            return
        delta = other.mean - self.mean
        total = self.n + other.n
        self.mean += delta * other.n / total
        self._m2 += other._m2 + delta * delta * self.n * other.n / total
        self.n = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n > 0 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __len__(self) -> int:
        return self.n


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs.

    The paper (§6.4) reports *low* Pearson correlation between telescope
    intensity and RTT impact; this is the statistic used there.
    """
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    n = len(xs)
    if n < 2:
        return 0.0
    mx = sum(xs) / n
    my = sum(ys) / n
    sxy = sxx = syy = 0.0
    for x, y in zip(xs, ys):
        dx = x - mx
        dy = y - my
        sxy += dx * dy
        sxx += dx * dx
        syy += dy * dy
    if sxx <= 0 or syy <= 0:
        return 0.0
    # sqrt each factor separately: sxx * syy can underflow to 0.0 for
    # near-constant inputs even when both factors are positive.
    denominator = math.sqrt(sxx) * math.sqrt(syy)
    if denominator == 0.0:
        return 0.0
    return max(-1.0, min(1.0, sxy / denominator))


def percentile(values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile ``p`` in [0, 100] of ``values``."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return float(ordered[lo])
    frac = rank - lo
    value = float(ordered[lo] * (1 - frac) + ordered[hi] * frac)
    # Interpolation can drift a few ULPs past the neighbours; clamp so
    # the result always lies within the sample range.
    return min(max(value, float(ordered[lo])), float(ordered[hi]))


def ratio(part: float, whole: float) -> float:
    """``part / whole`` that tolerates a zero denominator."""
    return part / whole if whole else 0.0


@dataclass
class Histogram:
    """Fixed-width linear histogram over ``[lo, hi)``."""

    lo: float
    hi: float
    bins: int
    counts: List[int] = field(default_factory=list)
    underflow: int = 0
    overflow: int = 0
    #: NaN inputs, counted deterministically instead of crashing the
    #: bin arithmetic (NaN fails every range comparison).
    nan: int = 0

    def __post_init__(self) -> None:
        if self.hi <= self.lo:
            raise ValueError("hi must exceed lo")
        if self.bins <= 0:
            raise ValueError("bins must be positive")
        if not self.counts:
            self.counts = [0] * self.bins

    def add(self, x: float, weight: int = 1) -> None:
        if x != x:  # NaN: outside every bin, tallied on its own
            self.nan += weight
            return
        if x < self.lo:  # -inf lands here
            self.underflow += weight
            return
        if x >= self.hi:  # +inf lands here
            self.overflow += weight
            return
        idx = int((x - self.lo) / (self.hi - self.lo) * self.bins)
        self.counts[min(idx, self.bins - 1)] += weight

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow + self.nan

    def bin_edges(self) -> List[Tuple[float, float]]:
        width = (self.hi - self.lo) / self.bins
        return [(self.lo + i * width, self.lo + (i + 1) * width) for i in range(self.bins)]

    def modes(self, top: int = 2) -> List[float]:
        """Centers of the ``top`` most populated bins (used for the
        bimodal intensity/duration findings)."""
        edges = self.bin_edges()
        ranked = sorted(range(self.bins), key=lambda i: self.counts[i], reverse=True)
        return [(edges[i][0] + edges[i][1]) / 2 for i in ranked[:top] if self.counts[i] > 0]


@dataclass
class LogHistogram:
    """Histogram over orders of magnitude (base-10 by default).

    The paper's figures bucket NSSets by hosted-domain magnitude
    (10^2..10^7) and RTT impact by decade; this mirrors that binning.
    """

    base: float = 10.0
    counts: Dict[int, int] = field(default_factory=dict)

    def add(self, x: float, weight: int = 1) -> None:
        if x <= 0:
            raise ValueError("log histogram requires positive values")
        decade = int(math.floor(math.log(x, self.base)))
        self.counts[decade] = self.counts.get(decade, 0) + weight

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self.counts.items())

    def share(self, decade: int) -> float:
        return ratio(self.counts.get(decade, 0), self.total)


def bimodal_modes(values: Iterable[float], bins: int = 40) -> List[float]:
    """Detect up to two separated modes of a positive-valued sample.

    Bins in log space (attack durations/intensities span decades) and
    returns the centers of the two best-separated local maxima.
    """
    data = [v for v in values if v > 0]
    if not data:
        return []
    lo = math.log10(min(data))
    hi = math.log10(max(data))
    if hi - lo < 1e-9:
        return [data[0]]
    hist = Histogram(lo, hi + 1e-9, bins)
    for v in data:
        hist.add(math.log10(v))
    # Local maxima in the smoothed histogram.
    smoothed = _smooth(hist.counts)
    maxima = [
        i
        for i in range(len(smoothed))
        if smoothed[i] > 0
        and (i == 0 or smoothed[i] >= smoothed[i - 1])
        and (i == len(smoothed) - 1 or smoothed[i] >= smoothed[i + 1])
    ]
    maxima.sort(key=lambda i: smoothed[i], reverse=True)
    picked: List[int] = []
    min_separation = max(3, bins // 5)
    for i in maxima:
        if all(abs(i - j) >= min_separation for j in picked):
            picked.append(i)
        if len(picked) == 2:
            break
    edges = hist.bin_edges()
    centers = [10 ** ((edges[i][0] + edges[i][1]) / 2) for i in sorted(picked)]
    return centers


def _smooth(counts: Sequence[int]) -> List[float]:
    out = []
    for i in range(len(counts)):
        window = counts[max(0, i - 1): i + 2]
        out.append(sum(window) / len(window))
    return out


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative sample (market concentration of
    hosting providers; used in world-generation sanity tests)."""
    data = sorted(v for v in values if v >= 0)
    n = len(data)
    total = sum(data)
    if n == 0 or total == 0:
        return 0.0
    cum = 0.0
    for i, v in enumerate(data, start=1):
        cum += i * v
    return (2 * cum) / (n * total) - (n + 1) / n


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Compact summary dict used by reports and tests."""
    if not values:
        return {"n": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
    return {
        "n": float(len(values)),
        "mean": sum(values) / len(values),
        "min": float(min(values)),
        "max": float(max(values)),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
    }


def median(values: Sequence[float]) -> float:
    return percentile(values, 50)


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (robustness companion to Pearson)."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    return pearson(_ranks(xs), _ranks(ys))


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = avg_rank
        i = j + 1
    return ranks
