"""Deterministic, named random-number streams.

Every stochastic component of the simulation (attack scheduling, spoofed
source sampling, resolver nameserver choice, ...) draws from its own
named stream derived from a single root seed. Components therefore stay
reproducible *independently*: adding draws to one stream never perturbs
another, which keeps scenario outputs stable as the library evolves.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")

_SEED_BYTES = 8


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a child seed from ``root_seed`` and a path of stream names.

    Uses BLAKE2b over the root seed and the name path, so the mapping is
    stable across Python versions and processes (unlike ``hash()``).
    """
    h = hashlib.blake2b(digest_size=_SEED_BYTES)
    h.update(str(int(root_seed)).encode("ascii"))
    for name in names:
        h.update(b"\x00")
        h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "big")


def derive_rng(root_seed: int, *names: str) -> random.Random:
    """A fresh ``random.Random`` seeded from ``derive_seed(root_seed, *names)``.

    The workhorse of worker-count-invariant parallelism: a unit of work
    keyed by, say, ``(seed, domain_id, day)`` draws from its own derived
    stream, so its samples are identical no matter which process runs it
    or how many units ran before it.
    """
    return random.Random(derive_seed(root_seed, *names))


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    >>> streams = RngStreams(42)
    >>> a = streams.stream("attacks")
    >>> b = streams.stream("resolver")
    >>> a is streams.stream("attacks")
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, *names: str) -> random.Random:
        """Return (creating if needed) the stream for the given name path."""
        key = "\x00".join(names)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, *names))
            self._streams[key] = rng
        return rng

    def fork(self, *names: str) -> "RngStreams":
        """Return a child family rooted at a seed derived from ``names``.

        Useful for handing a subsystem its own namespace of streams.
        """
        return RngStreams(derive_seed(self.root_seed, "fork", *names))

    def spawn_seed(self, *names: str) -> int:
        """Derive a raw integer seed (for APIs that take seeds, not RNGs)."""
        return derive_seed(self.root_seed, "seed", *names)


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    x = rng.random() * total
    acc = 0.0
    for item, w in zip(items, weights):
        acc += w
        if x < acc:
            return item
    return items[-1]


def zipf_weights(n: int, alpha: float = 1.0) -> List[float]:
    """Weights of a Zipf-like distribution over ranks ``1..n``.

    Used to size hosting providers: a few giants, a long tail, as in the
    real DNS hosting market.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    return [1.0 / ((rank + 1) ** alpha) for rank in range(n)]


def sample_unique(rng: random.Random, population: int, k: int) -> Iterable[int]:
    """Sample ``k`` distinct integers from ``range(population)``.

    Falls back to rejection sampling when ``k`` is small relative to the
    population, which is the common case when spoofing source addresses
    out of the 2^32 IPv4 space.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    if k > population:
        raise ValueError("cannot sample more unique values than the population")
    if population <= 0:
        return []
    if k * 20 < population:
        seen = set()
        while len(seen) < k:
            seen.add(rng.randrange(population))
        return seen
    return rng.sample(range(population), k)
