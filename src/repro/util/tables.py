"""Fixed-width text tables for benchmark output.

Every benchmark regenerates one of the paper's tables or figures and
prints it side-by-side with the paper's reported values; this module
renders those rows consistently.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_count(n: float) -> str:
    """Format a count with thousands separators (``4,039,485``)."""
    return f"{int(round(n)):,}"


def format_pct(fraction: float, digits: int = 2) -> str:
    """Format a fraction as a percentage string (``1.21%``)."""
    return f"{fraction * 100:.{digits}f}%"


def format_si(n: float) -> str:
    """Compact SI-style magnitude (``21.8K``, ``7M``) as in Table 2."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "K")):
        if abs(n) >= threshold:
            value = n / threshold
            if value >= 100:
                return f"{value:.0f}{suffix}"
            return f"{value:.3g}{suffix}"
    return f"{n:.3g}"


def format_bps(bits_per_second: float) -> str:
    """Format a traffic volume (``1.4 Gbps``, ``247 Mbps``)."""
    for threshold, suffix in ((1e9, "Gbps"), (1e6, "Mbps"), (1e3, "Kbps")):
        if abs(bits_per_second) >= threshold:
            return f"{bits_per_second / threshold:.3g} {suffix}"
    return f"{bits_per_second:.3g} bps"


class Table:
    """A minimal fixed-width table with a title and optional caption.

    >>> t = Table(["month", "#attacks"], title="Monthly")
    >>> t.add_row(["2020-11", 2550])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: Optional[str] = None,
                 caption: Optional[str] = None):
        self.headers = [str(h) for h in headers]
        self.title = title
        self.caption = caption
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Any]) -> None:
        row = [self._format(c) for c in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns")
        self.rows.append(row)

    def add_separator(self) -> None:
        self.rows.append(["---"] * len(self.headers))

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        if isinstance(cell, int) and not isinstance(cell, bool):
            return format_count(cell)
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        rule = "-+-".join("-" * w for w in widths)
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(rule)
        for row in self.rows:
            if row[0] == "---":
                lines.append(rule)
                continue
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.caption:
            lines.append(self.caption)
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console convenience
        print()
        print(self.render())
        print()


def paper_vs_measured(title: str, rows: Sequence[Sequence[Any]],
                      caption: Optional[str] = None) -> str:
    """Render the standard three-column paper-vs-measured comparison."""
    table = Table(["metric", "paper", "measured"], title=title, caption=caption)
    for row in rows:
        table.add_row(row)
    return table.render()
