"""Crash-safe file writes.

Every artifact the library persists — dataset bundles, telemetry
snapshots, cache blobs and manifests — goes through
:func:`atomic_write`: the content lands in a temporary file in the
destination directory, is fsynced, and is moved into place with
``os.replace``. A reader therefore sees either the previous complete
file or the new complete file, never a truncated one, even if the
writer crashes mid-write.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from typing import IO, Iterator, Optional


@contextmanager
def atomic_write(path: str, mode: str = "w",
                 encoding: Optional[str] = None) -> Iterator[IO]:
    """Write ``path`` atomically: yield a temp-file handle, then
    ``os.replace`` it over the destination on clean exit.

    Missing parent directories are created. On any exception the temp
    file is removed and the destination is left untouched. ``mode``
    must be a write mode (``"w"`` or ``"wb"``).
    """
    if "w" not in mode:
        raise ValueError(f"atomic_write needs a write mode, got {mode!r}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fp:
            yield fp
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
