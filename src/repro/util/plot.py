"""ASCII plotting for figure regeneration in a terminal.

The paper's figures are scatter plots, time series, and histograms; the
benchmarks print their numeric content, and these helpers additionally
*draw* the shapes so a reader can eyeball who-wins/crossover structure
without leaving the terminal. Log axes are supported because nearly
every figure in the paper spans decades.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple


def _scale(value: float, lo: float, hi: float, steps: int,
           log: bool) -> int:
    if log:
        value, lo, hi = (math.log10(max(value, 1e-12)),
                         math.log10(max(lo, 1e-12)),
                         math.log10(max(hi, 1e-12)))
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(steps - 1, max(0, int(frac * steps)))


def _axis_label(value: float, log: bool) -> str:
    if log:
        return f"1e{math.log10(max(value, 1e-12)):+.0f}"
    if abs(value) >= 1000:
        return f"{value:.2g}"
    return f"{value:g}"


def ascii_scatter(xs: Sequence[float], ys: Sequence[float],
                  width: int = 60, height: int = 16,
                  log_x: bool = False, log_y: bool = False,
                  marker: str = "o",
                  x_label: str = "x", y_label: str = "y",
                  title: Optional[str] = None) -> str:
    """Render a scatter plot; overlapping points escalate o -> O -> @."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if not xs:
        return (title or "") + "\n(no data)"
    lo_x, hi_x = min(xs), max(xs)
    lo_y, hi_y = min(ys), max(ys)
    grid = [[0] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = _scale(x, lo_x, hi_x, width, log_x)
        row = _scale(y, lo_y, hi_y, height, log_y)
        grid[height - 1 - row][col] += 1
    density_chars = {1: marker, 2: "O"}
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = 8
    for i, row in enumerate(grid):
        if i == 0:
            prefix = _axis_label(hi_y, log_y).rjust(label_width)
        elif i == height - 1:
            prefix = _axis_label(lo_y, log_y).rjust(label_width)
        elif i == height // 2:
            prefix = y_label[:label_width].rjust(label_width)
        else:
            prefix = " " * label_width
        body = "".join(
            " " if c == 0 else density_chars.get(c, "@") for c in row)
        lines.append(f"{prefix} |{body}")
    lines.append(" " * label_width + " +" + "-" * width)
    left = _axis_label(lo_x, log_x)
    right = _axis_label(hi_x, log_x)
    middle = x_label
    pad = width - len(left) - len(right) - len(middle)
    lines.append(" " * (label_width + 2) + left
                 + " " * max(1, pad // 2) + middle
                 + " " * max(1, pad - pad // 2) + right)
    return "\n".join(lines)


def ascii_series(points: Sequence[Tuple[float, float]],
                 width: int = 60, height: int = 12,
                 log_y: bool = False, title: Optional[str] = None,
                 y_label: str = "y") -> str:
    """Render a time series as a column chart of bucket means."""
    if not points:
        return (title or "") + "\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    lo_x, hi_x = min(xs), max(xs)
    lo_y = min(ys)
    hi_y = max(ys)
    columns: List[List[float]] = [[] for _ in range(width)]
    for x, y in zip(xs, ys):
        columns[_scale(x, lo_x, hi_x, width, False)].append(y)
    heights = []
    for bucket in columns:
        if not bucket:
            heights.append(None)
            continue
        mean = sum(bucket) / len(bucket)
        heights.append(_scale(mean, lo_y, hi_y, height, log_y) + 1)
    lines: List[str] = []
    if title:
        lines.append(title)
    for level in range(height, 0, -1):
        label = ""
        if level == height:
            label = _axis_label(hi_y, log_y)
        elif level == 1:
            label = _axis_label(lo_y, log_y)
        row = "".join(
            "#" if h is not None and h >= level else
            ("." if h is not None and level == 1 else " ")
            for h in heights)
        lines.append(f"{label.rjust(8)} |{row}")
    lines.append(" " * 8 + " +" + "-" * width)
    return "\n".join(lines)


def ascii_histogram(labels: Sequence[str], counts: Sequence[int],
                    width: int = 40, title: Optional[str] = None) -> str:
    """Horizontal bar chart (one bar per label)."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must have equal length")
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(counts, default=0)
    label_width = max((len(l) for l in labels), default=1)
    for label, count in zip(labels, counts):
        bar = "#" * (0 if peak == 0 else max(1 if count else 0,
                                             int(width * count / peak)))
        lines.append(f"{label.rjust(label_width)} |{bar} {count}")
    return "\n".join(lines)
