"""The §4.2 dataset join: RSDoS victims x OpenINTEL nameservers.

Joins the feed's inferred victim addresses against the set of
authoritative nameserver addresses OpenINTEL observed (the paper uses
the previous day's view to avoid losing nameservers knocked out by the
attack — an ablation bench quantifies that choice), classifies every
attack (direct nameserver hit, same-/24 co-tenant, open resolver, or
unrelated), and maps DNS attacks to the domains that delegate to the
victim.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.datasets.openresolvers import OpenResolverScan
from repro.net.ip import slash24_of
from repro.telescope.rsdos import InferredAttack, attack_problem
from repro.world.domains import DomainDirectory


class AttackClass(enum.Enum):
    """How an inferred attack relates to DNS infrastructure."""

    DNS_DIRECT = "dns_direct"          # victim IP is a nameserver
    DNS_OPEN_RESOLVER = "open_resolver"  # victim is a public resolver in NS records
    DNS_SAME_S24 = "dns_same_s24"      # victim shares a /24 with nameservers
    OTHER = "other"

    @property
    def is_dns(self) -> bool:
        """Counted as a DNS-infrastructure attack (Table 3).

        The paper counts attacks whose victim appears in NS delegations,
        including the open-resolver misconfigurations it then filters
        for the impact analyses; same-/24 co-tenant attacks are tracked
        but the paper "focuses on attacks directly targeting nameserver
        IPs" (§6.1).
        """
        return self in (AttackClass.DNS_DIRECT, AttackClass.DNS_OPEN_RESOLVER)


@dataclass
class ClassifiedAttack:
    """One inferred attack with its join outcome."""

    attack: InferredAttack
    klass: AttackClass
    #: domains delegating to the victim (DNS classes only).
    affected_domains: int = 0
    #: NSSets containing the victim address.
    nsset_ids: Tuple[int, ...] = ()

    @property
    def victim_ip(self) -> int:
        return self.attack.victim_ip


@dataclass(frozen=True)
class RejectedRecord:
    """A feed record the join refused, with the reason.

    Damaged feed rows (truncated, corrupt, wrong type) are recorded
    here instead of crashing the join — the classification analog of a
    dead-letter topic."""

    record: object
    reason: str


@dataclass
class DatasetJoin:
    """The full join result over a feed."""

    classified: List[ClassifiedAttack] = field(default_factory=list)
    rejected: List[RejectedRecord] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any input record had to be rejected: downstream
        counts are lower bounds, not exact."""
        return bool(self.rejected)

    def by_class(self, klass: AttackClass) -> List[ClassifiedAttack]:
        return [c for c in self.classified if c.klass is klass]

    @property
    def dns_attacks(self) -> List[ClassifiedAttack]:
        """Attacks counted against DNS infrastructure (incl. open
        resolvers, as in Table 3 before the Table 4/5 filtering)."""
        return [c for c in self.classified if c.klass.is_dns]

    @property
    def dns_direct_attacks(self) -> List[ClassifiedAttack]:
        """Attacks on true authoritative nameserver addresses — the
        population every impact analysis (§6.2-§6.6) runs on."""
        return self.by_class(AttackClass.DNS_DIRECT)

    @property
    def other_attacks(self) -> List[ClassifiedAttack]:
        return [c for c in self.classified
                if c.klass in (AttackClass.OTHER, AttackClass.DNS_SAME_S24)]

    def __len__(self) -> int:
        return len(self.classified)


def join_datasets(attacks: Sequence[InferredAttack],
                  directory: DomainDirectory,
                  open_resolvers: Optional[OpenResolverScan] = None
                  ) -> DatasetJoin:
    """Classify every inferred attack against the nameserver view.

    ``directory`` provides the measurement platform's delegation view
    (the previous-day nameserver list in the paper's streaming pipeline;
    delegations are effectively day-stable in both worlds).

    Malformed feed records (attack-time telemetry is lossy and corrupt)
    never crash the join: each is appended to ``join.rejected`` with a
    reason and skipped, and ``join.degraded`` reports that downstream
    counts are lower bounds.
    """
    ns_ips = directory.nameserver_ips()
    ns_slash24s = {slash24_of(ip) for ip in ns_ips}
    join = DatasetJoin()
    for attack in attacks:
        problem = attack_problem(attack)
        if problem is not None:
            join.rejected.append(RejectedRecord(attack, problem))
            continue
        victim = attack.victim_ip
        if victim in ns_ips:
            if open_resolvers is not None and victim in open_resolvers:
                klass = AttackClass.DNS_OPEN_RESOLVER
            else:
                klass = AttackClass.DNS_DIRECT
            domains = directory.domains_of_ip(victim)
            join.classified.append(ClassifiedAttack(
                attack=attack, klass=klass,
                affected_domains=len(domains),
                nsset_ids=tuple(sorted(directory.nssets_of_ip(victim)))))
        elif slash24_of(victim) in ns_slash24s:
            join.classified.append(ClassifiedAttack(
                attack=attack, klass=AttackClass.DNS_SAME_S24))
        else:
            join.classified.append(ClassifiedAttack(
                attack=attack, klass=AttackClass.OTHER))
    return join
