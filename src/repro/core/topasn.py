"""Top attacked ASNs and IPs (Tables 4-5) with open-resolver filtering.

Attributes every DNS-classified attack to an origin AS (prefix2AS) and
company (AS2Org). The top-IP view exposes the misconfiguration
phenomenon: public resolvers (8.8.8.8, 8.8.4.4, 1.1.1.1) rank high
because misconfigured domains point NS records at them; the paper
filters those out of the authoritative analysis using open-resolver
scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.join import DatasetJoin
from repro.core.nsset import NSSetMetadata
from repro.datasets.openresolvers import OpenResolverScan
from repro.net.ip import ip_to_str


@dataclass(frozen=True)
class RankedASN:
    asn: int
    n_attacks: int
    company: str


@dataclass(frozen=True)
class RankedIP:
    ip: int
    n_attacks: int
    label: str
    is_open_resolver: bool

    @property
    def ip_text(self) -> str:
        return ip_to_str(self.ip)


def top_attacked_asns(join: DatasetJoin, metadata: NSSetMetadata,
                      n: int = 10) -> List[RankedASN]:
    """Table 4: ASNs by DNS-classified attack count (pre-filtering)."""
    counts: Dict[int, int] = {}
    for classified in join.dns_attacks:
        asn = metadata.prefix2as.lookup(classified.victim_ip)
        if asn is None:
            continue
        counts[asn] = counts.get(asn, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    return [RankedASN(asn=asn, n_attacks=count,
                      company=metadata.as2org.name_of(asn))
            for asn, count in ranked[:n]]


def top_attacked_ips(join: DatasetJoin, metadata: NSSetMetadata,
                     open_resolvers: Optional[OpenResolverScan] = None,
                     n: int = 10, filtered: bool = False) -> List[RankedIP]:
    """Table 5: victim IPs by DNS-classified attack count.

    With ``filtered=True``, open resolvers are removed — the paper's
    cleaning step before the authoritative impact analyses.
    """
    counts: Dict[int, int] = {}
    for classified in join.dns_attacks:
        ip = classified.victim_ip
        if filtered and open_resolvers is not None and ip in open_resolvers:
            continue
        counts[ip] = counts.get(ip, 0) + 1
    ranked = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
    out = []
    for ip, count in ranked[:n]:
        is_open = bool(open_resolvers and ip in open_resolvers)
        out.append(RankedIP(ip=ip, n_attacks=count,
                            label=metadata.company_of_ip(ip),
                            is_open_resolver=is_open))
    return out
