"""Layered-defense counterfactuals: what-if mitigation over a schedule.

"Defending Root DNS Servers Against DDoS Using Layered Defenses"
(PAPERS.md) evaluates a mitigation stack — upstream filtering, capacity
surge, anycast scale-out — against real attack traces. This module
replays the *unmodified* impact machinery of this repository under each
mitigation layer: the same capacity-cost weighting
(:meth:`~repro.world.capacity.CapacityModel.server_cost_pps`), the same
overload curve (:func:`~repro.world.capacity.overload_drop`), and the
same retry-burn ladder the Table 6 calibration inverts
(:func:`~repro.world.scenarios.expected_retry_burn_s`), so a layer's
number answers "what Equation-1 impact would this attack have produced
had the victim deployed the layer" — a per-attack impact delta, not a
new pipeline.

A mitigation layer composes three orthogonal levers:

* ``filter_efficiency`` — fraction of attack traffic scrubbed upstream
  (BGP blackholing / flowspec / scrubbing service);
* ``capacity_factor`` — server-capacity multiplier (surge provisioning,
  the "scale up" lever);
* ``anycast_sites`` — extra anycast sites spreading the load (the
  "scale out" lever; per-site load divides by ``1 + sites``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.world.capacity import overload_drop
from repro.world.scenarios import expected_retry_burn_s

__all__ = ["MitigationLayer", "DEFAULT_LAYERS", "AttackDelta",
           "DefenseReport", "evaluate_defenses"]

#: per-attempt drop probabilities above this saturate the retry ladder.
_MAX_DROP = 0.95
#: an attack is "neutralized" when its mitigated impact falls below this.
NEUTRALIZED_IMPACT = 1.05


@dataclass(frozen=True)
class MitigationLayer:
    """One defense configuration (levers compose multiplicatively)."""

    name: str
    filter_efficiency: float = 0.0
    capacity_factor: float = 1.0
    anycast_sites: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a mitigation layer needs a name")
        if not 0 <= self.filter_efficiency <= 1:
            raise ValueError("filter_efficiency must be within [0, 1]")
        if self.capacity_factor <= 0:
            raise ValueError("capacity_factor must be positive")
        if self.anycast_sites < 0:
            raise ValueError("anycast_sites must be non-negative")

    @property
    def effective_capacity_factor(self) -> float:
        """Combined capacity multiplier of surge + scale-out."""
        return self.capacity_factor * (1 + self.anycast_sites)


#: The evaluated stack: each single lever, then the layered combination.
DEFAULT_LAYERS: Tuple[MitigationLayer, ...] = (
    MitigationLayer("filtering", filter_efficiency=0.6),
    MitigationLayer("capacity-surge", capacity_factor=3.0),
    MitigationLayer("anycast-scaleout", anycast_sites=6),
    MitigationLayer("layered", filter_efficiency=0.6,
                    capacity_factor=3.0, anycast_sites=6),
)


@dataclass
class AttackDelta:
    """One attack's baseline vs per-layer counterfactual impact."""

    attack_id: int
    victim_ip: int
    provider: Optional[str]
    baseline_impact: float
    #: layer name -> counterfactual Equation-1 impact.
    impacts: Dict[str, float] = field(default_factory=dict)

    def delta(self, layer: str) -> float:
        """Impact reduction of ``layer`` (positive = improvement)."""
        return self.baseline_impact - self.impacts[layer]

    def neutralized(self, layer: str) -> bool:
        return self.impacts[layer] <= NEUTRALIZED_IMPACT


@dataclass
class DefenseReport:
    """Per-attack impact deltas under every mitigation layer."""

    layers: Tuple[MitigationLayer, ...]
    rows: List[AttackDelta]

    @property
    def n_attacks(self) -> int:
        return len(self.rows)

    def harmful_rows(self) -> List[AttackDelta]:
        """Rows whose baseline impact is above the neutral band."""
        return [r for r in self.rows
                if r.baseline_impact > NEUTRALIZED_IMPACT]

    def mean_impact(self, layer: Optional[str] = None) -> float:
        """Mean impact across harmful attacks (baseline when ``layer``
        is None)."""
        rows = self.harmful_rows()
        if not rows:
            return 1.0
        if layer is None:
            return sum(r.baseline_impact for r in rows) / len(rows)
        return sum(r.impacts[layer] for r in rows) / len(rows)

    def mean_delta(self, layer: str) -> float:
        rows = self.harmful_rows()
        if not rows:
            return 0.0
        return sum(r.delta(layer) for r in rows) / len(rows)

    def neutralized_share(self, layer: str) -> float:
        """Fraction of harmful attacks the layer neutralizes."""
        rows = self.harmful_rows()
        if not rows:
            return 0.0
        return sum(1 for r in rows if r.neutralized(layer)) / len(rows)

    def best_layer(self) -> Optional[str]:
        if not self.layers:
            return None
        return max(self.layers, key=lambda l: self.mean_delta(l.name)).name


def _impact_of(world, ns, attack, layer: Optional[MitigationLayer]) -> float:
    """The attack's Equation-1 impact on ``ns`` under ``layer``.

    Uses the pipeline's own cost/overload/retry machinery at the
    attack's peak rate; ``layer=None`` is the baseline (no mitigation).
    """
    model = world.capacity_model
    cost = sum(model.server_cost_pps(v.pps, v.ports, v.proto)
               for v in attack.vectors)
    capacity = ns.capacity_pps
    if layer is not None:
        cost *= 1.0 - layer.filter_efficiency
        capacity *= layer.effective_capacity_factor
    drop = min(_MAX_DROP, overload_drop(cost / capacity, model.headroom))
    burn_s = expected_retry_burn_s(drop)
    return 1.0 + burn_s * 1000.0 / ns.base_rtt_ms


def evaluate_defenses(world, events=None,
                      layers: Sequence[MitigationLayer] = DEFAULT_LAYERS
                      ) -> DefenseReport:
    """Evaluate the mitigation stack against the world's schedule.

    With ``events`` the evaluation restricts to attacks the pipeline
    actually surfaced as events (the measured population); without, it
    covers every ground-truth attack on a modelled nameserver.
    """
    layers = tuple(layers)
    victim_ids = None
    if events is not None:
        victim_ids = {e.attack.victim_ip for e in events}
    rows: List[AttackDelta] = []
    for attack in world.attacks:
        ns = world.nameservers_by_ip.get(attack.victim_ip)
        if ns is None or ns.is_misconfig_target or ns.anycast is not None:
            continue
        if victim_ids is not None and attack.victim_ip not in victim_ids:
            continue
        row = AttackDelta(
            attack_id=attack.attack_id,
            victim_ip=attack.victim_ip,
            provider=ns.provider_name,
            baseline_impact=_impact_of(world, ns, attack, None))
        for layer in layers:
            row.impacts[layer.name] = _impact_of(world, ns, attack, layer)
        rows.append(row)
    return DefenseReport(layers=layers, rows=rows)
