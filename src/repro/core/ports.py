"""Targeted-service analysis: protocols and ports (§6.2, Figure 6).

Distribution of IP protocol and first destination port over attacks
against DNS authoritative infrastructure, plus the contrasting port
distribution of *successful* attacks (§6.3.1: successful attacks target
port 53 far more often — 49% vs 30%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import AttackEvent
from repro.core.join import DatasetJoin
from repro.net.ports import port_name, proto_name
from repro.telescope.rsdos import InferredAttack
from repro.util.stats import ratio


@dataclass
class PortAnalysis:
    """Figure 6's distributions."""

    n_attacks: int = 0
    single_port: int = 0
    by_proto: Dict[int, int] = field(default_factory=dict)
    #: (proto, first_port) -> count
    by_proto_port: Dict[Tuple[int, int], int] = field(default_factory=dict)

    @property
    def single_port_share(self) -> float:
        return ratio(self.single_port, self.n_attacks)

    def proto_share(self, proto: int) -> float:
        return ratio(self.by_proto.get(proto, 0), self.n_attacks)

    def port_share_within_proto(self, proto: int, port: int) -> float:
        proto_total = self.by_proto.get(proto, 0)
        return ratio(self.by_proto_port.get((proto, port), 0), proto_total)

    def port_share(self, port: int) -> float:
        count = sum(n for (p, prt), n in self.by_proto_port.items()
                    if prt == port)
        return ratio(count, self.n_attacks)

    def top_ports(self, proto: Optional[int] = None, n: int = 5
                  ) -> List[Tuple[str, str, int, float]]:
        """(proto name, port name, count, share-within-proto) rows."""
        rows = []
        for (p, port), count in self.by_proto_port.items():
            if proto is not None and p != proto:
                continue
            denominator = self.by_proto.get(p, 0) if proto is not None \
                else self.n_attacks
            rows.append((proto_name(p), port_name(port), count,
                         ratio(count, denominator)))
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:n]

    def add(self, attack: InferredAttack) -> None:
        self.n_attacks += 1
        if attack.n_ports <= 1:
            self.single_port += 1
        self.by_proto[attack.proto] = self.by_proto.get(attack.proto, 0) + 1
        key = (attack.proto, attack.first_port)
        self.by_proto_port[key] = self.by_proto_port.get(key, 0) + 1


def analyze_ports(join: DatasetJoin) -> PortAnalysis:
    """Port/protocol mix of all direct DNS-infrastructure attacks."""
    analysis = PortAnalysis()
    for classified in join.dns_direct_attacks:
        analysis.add(classified.attack)
    return analysis


def analyze_successful_ports(events: Sequence[AttackEvent]) -> PortAnalysis:
    """Port mix of *successful* attacks (events with resolution
    failures) — §6.3.1's contrast."""
    analysis = PortAnalysis()
    seen = set()
    for event in events:
        if not event.has_failures:
            continue
        attack = event.attack
        key = (attack.victim_ip, attack.start)
        if key in seen:
            continue  # one attack may span several NSSets; count once
        seen.add(key)
        analysis.add(attack)
    return analysis
