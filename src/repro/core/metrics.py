"""The paper's impact metric (Equation 1) and per-window impact series.

``Impact_on_RTT = avgRTT(5 min) / avgRTT(day before)``. The day-before
baseline minimizes error from infrastructure changes (§4.1; the paper
evaluated week/month baselines and found similar results — the ablation
bench reproduces that comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.openintel.storage import MeasurementStore
from repro.util.timeutil import DAY, Window, day_start


def impact_on_rtt(avg_rtt_5min: Optional[float],
                  baseline_rtt: Optional[float]) -> Optional[float]:
    """Equation 1; None when either side is unmeasurable."""
    if avg_rtt_5min is None or baseline_rtt is None or baseline_rtt <= 0:
        return None
    if not (math.isfinite(avg_rtt_5min) and math.isfinite(baseline_rtt)):
        return None
    return avg_rtt_5min / baseline_rtt


@dataclass
class ImpactPoint:
    """One 5-minute bucket of one NSSet during an analysis window."""

    ts: int
    n: int
    ok: int
    timeouts: int
    servfails: int
    avg_rtt: Optional[float]
    impact: Optional[float]

    @property
    def failure_rate(self) -> float:
        return (self.n - self.ok) / self.n if self.n else 0.0


@dataclass
class ImpactSeries:
    """The 5-minute impact series of one NSSet over a window.

    ``min_bucket_n`` guards the impact statistics against tiny-bucket
    noise: a bucket whose average is computed from one or two queries
    can spike to a 1000x "impact" on a single unlucky retransmission,
    which is measurement noise, not infrastructure impairment. Buckets
    below the floor still contribute to the failure counts.
    """

    nsset_id: int
    window: Window
    baseline_rtt: Optional[float]
    points: List[ImpactPoint] = field(default_factory=list)
    min_bucket_n: int = 1
    #: True when this series was built on impaired data: the baseline
    #: day was missing (a prior clean day substituted) and/or corrupt
    #: 5-minute buckets were skipped. Consumers must surface the flag.
    degraded: bool = False
    #: corrupt buckets skipped while building the series.
    n_corrupt: int = 0

    @property
    def n_measured(self) -> int:
        return sum(p.n for p in self.points)

    @property
    def n_failed(self) -> int:
        return sum(p.n - p.ok for p in self.points)

    @property
    def n_timeouts(self) -> int:
        return sum(p.timeouts for p in self.points)

    @property
    def n_servfails(self) -> int:
        return sum(p.servfails for p in self.points)

    @property
    def failure_rate(self) -> float:
        n = self.n_measured
        return self.n_failed / n if n else 0.0

    def _qualified(self) -> List[ImpactPoint]:
        return [p for p in self.points
                if p.impact is not None and p.n >= self.min_bucket_n]

    @property
    def max_impact(self) -> Optional[float]:
        """Peak Equation-1 impact over qualified buckets (None when no
        bucket clears the sample floor)."""
        impacts = [p.impact for p in self._qualified()]
        return max(impacts) if impacts else None

    @property
    def mean_impact(self) -> Optional[float]:
        """Measurement-weighted mean impact over *all* buckets.

        The weighting makes this the overall-window average, which stays
        stable even when individual 5-minute buckets hold one or two
        samples (the situation for small NSSets at reduced scale).
        """
        points = [p for p in self.points if p.impact is not None]
        total = sum(p.n for p in points)
        if not total:
            return None
        return sum(p.impact * p.n for p in points) / total

    @property
    def impact(self) -> Optional[float]:
        """The event-level impact statistic: the qualified-bucket peak
        when the NSSet is measured densely enough to have one, otherwise
        the weighted window mean."""
        candidates = [x for x in (self.mean_impact, self.max_impact)
                      if x is not None]
        return max(candidates) if candidates else None

    def max_failure_rate(self) -> float:
        return max((p.failure_rate for p in self.points if p.n), default=0.0)


#: How far past the nominal horizon the degraded-baseline search walks
#: when every in-horizon day is missing (lost OpenINTEL days).
BASELINE_FALLBACK_DAYS = 7


def impact_series(store: MeasurementStore, nsset_id: int, window: Window,
                  baseline_kind: str = "day",
                  min_bucket_n: int = 1,
                  baseline_fallback_days: int = BASELINE_FALLBACK_DAYS
                  ) -> ImpactSeries:
    """Build the impact series of a NSSet over ``window``.

    ``baseline_kind`` selects the §4.1 baseline: ``day`` (default),
    ``week`` or ``month`` — the average of the daily averages over that
    many preceding days (used by the ablation bench).

    Degrades instead of failing on impaired data: a missing baseline
    day falls back to the nearest prior clean day (up to
    ``baseline_fallback_days`` further back) and corrupt 5-minute
    buckets are skipped; either path sets ``series.degraded``.
    """
    baseline, fell_back = compute_baseline_degraded(
        store, nsset_id, window.start, baseline_kind, baseline_fallback_days)
    series = ImpactSeries(nsset_id=nsset_id, window=window,
                          baseline_rtt=baseline, min_bucket_n=min_bucket_n,
                          degraded=fell_back)
    for ts, agg in store.buckets_in(nsset_id, window.start, window.end):
        if not agg.is_valid:
            series.n_corrupt += 1
            series.degraded = True
            continue
        series.points.append(ImpactPoint(
            ts=ts, n=agg.n, ok=agg.ok_n, timeouts=agg.timeout_n,
            servfails=agg.servfail_n, avg_rtt=agg.avg_rtt,
            impact=impact_on_rtt(agg.avg_rtt, baseline)))
    return series


def compute_baseline(store: MeasurementStore, nsset_id: int, ts: int,
                     kind: str = "day") -> Optional[float]:
    """Baseline average RTT before ``ts`` over a day/week/month horizon.

    Non-finite daily averages (corrupt aggregates) count as missing."""
    horizons = {"day": 1, "week": 7, "month": 30}
    try:
        n_days = horizons[kind]
    except KeyError:
        raise ValueError(f"unknown baseline kind: {kind!r}") from None
    day0 = day_start(ts)
    values = []
    for back in range(1, n_days + 1):
        avg = _clean_day_avg(store, nsset_id, day0 - back * DAY)
        if avg is not None:
            values.append(avg)
    if not values:
        return None
    return sum(values) / len(values)


def compute_baseline_degraded(store: MeasurementStore, nsset_id: int, ts: int,
                              kind: str = "day",
                              max_fallback_days: int = BASELINE_FALLBACK_DAYS
                              ) -> Tuple[Optional[float], bool]:
    """The baseline plus a degradation flag.

    When the nominal horizon holds no clean day (the day before
    vanished — precisely the attack scenarios the paper worries about,
    or a chaos-injected lost day), walks further back, one day at a
    time, to the *nearest prior clean day*. Returns ``(baseline,
    degraded)``; degraded marks a *substituted* baseline. When even the
    fallback finds nothing the result is ``(None, False)``: no data was
    substituted — the series is simply unmeasurable (impacts all None),
    which is also what a clean run produces at the timeline edge.
    """
    baseline = compute_baseline(store, nsset_id, ts, kind)
    if baseline is not None:
        return baseline, False
    horizon = {"day": 1, "week": 7, "month": 30}[kind]
    day0 = day_start(ts)
    for back in range(horizon + 1, horizon + max_fallback_days + 1):
        avg = _clean_day_avg(store, nsset_id, day0 - back * DAY)
        if avg is not None:
            return avg, True
    return None, False


def _clean_day_avg(store: MeasurementStore, nsset_id: int,
                   day: int) -> Optional[float]:
    """A day's average RTT, treating corrupt aggregates as absent."""
    agg = store.day_aggregate(nsset_id, day)
    if agg is None or not agg.is_valid:
        return None
    avg = agg.avg_rtt
    if avg is None or not math.isfinite(avg):
        return None
    return avg
