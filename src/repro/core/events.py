"""Attack events: the (inferred attack, NSSet) analysis unit of §6.3.

The paper considers, for each RSDoS-inferred attack on a nameserver
address, every NSSet containing that address with at least five domains
measured during the attack window — 12,691 such events in their data.
Each event carries the measured impact (failure counts, Equation-1
impact) plus the NSSet's structural metadata, which is everything
Figures 7-13 and Table 6 stratify on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.join import ClassifiedAttack, DatasetJoin
from repro.core.metrics import ImpactSeries, impact_series
from repro.core.nsset import NSSetInfo, NSSetMetadata
from repro.openintel.storage import MeasurementStore
from repro.telescope.rsdos import InferredAttack
from repro.util.timeutil import Window


@dataclass
class AttackEvent:
    """One attack observed against one NSSet with enough measurements."""

    attack: InferredAttack
    info: NSSetInfo
    series: ImpactSeries

    @property
    def nsset_id(self) -> int:
        return self.info.nsset_id

    @property
    def n_measured(self) -> int:
        return self.series.n_measured

    @property
    def failure_rate(self) -> float:
        return self.series.failure_rate

    @property
    def has_failures(self) -> bool:
        return self.series.n_failed > 0

    @property
    def degraded(self) -> bool:
        """True when the event's series was built on impaired data (a
        substituted baseline day or skipped corrupt buckets). Impact
        figures for degraded events are estimates, never NaN."""
        return self.series.degraded

    @property
    def max_impact(self) -> Optional[float]:
        return self.series.max_impact

    @property
    def mean_impact(self) -> Optional[float]:
        return self.series.mean_impact

    @property
    def impact(self) -> Optional[float]:
        """The Equation-1 impact of this event (peak when densely
        measured, weighted window mean otherwise)."""
        return self.series.impact

    @property
    def duration_s(self) -> int:
        return self.attack.duration_s

    @property
    def intensity_ppm(self) -> float:
        return self.attack.max_ppm

    @property
    def n_domains_hosted(self) -> int:
        return self.info.n_domains

    @property
    def company(self) -> str:
        return self.info.company

    def __repr__(self) -> str:
        impact = f"{self.max_impact:.1f}x" if self.max_impact else "n/a"
        return (f"AttackEvent(nsset={self.nsset_id}, measured={self.n_measured}, "
                f"fail={self.failure_rate:.1%}, impact={impact})")


def extract_events(join: DatasetJoin, store: MeasurementStore,
                   metadata: NSSetMetadata, min_domains: int = 5,
                   baseline_kind: str = "day") -> List[AttackEvent]:
    """Extract all qualifying attack events from a join result.

    Only direct nameserver attacks qualify (§6.1 focuses on those), and
    only NSSets with at least ``min_domains`` measurements during the
    attack window (§6.3's noise threshold).
    """
    events: List[AttackEvent] = []
    for classified in join.dns_direct_attacks:
        events.extend(events_for_attack(
            classified, store, metadata, min_domains, baseline_kind))
    return events


#: Impact per 5-minute bucket is only meaningful with a few samples;
#: event-level impact statistics use this floor (see ImpactSeries).
EVENT_MIN_BUCKET_N = 3


def events_for_attack(classified: ClassifiedAttack, store: MeasurementStore,
                      metadata: NSSetMetadata, min_domains: int = 5,
                      baseline_kind: str = "day") -> List[AttackEvent]:
    """Events of a single classified attack across its NSSets.

    The ``min_domains`` threshold applies both to the NSSet's hosted
    domains and to the measurements inside the attack window — the
    paper's mil.ru NSSet (3 domains) is a §5 case study but not a §6
    event, exactly as here.
    """
    attack = classified.attack
    window = Window(attack.start, attack.end)
    out: List[AttackEvent] = []
    for nsset_id in classified.nsset_ids:
        info = metadata.info(nsset_id, attack.start)
        if info.n_domains < min_domains:
            continue
        series = impact_series(store, nsset_id, window, baseline_kind,
                               min_bucket_n=EVENT_MIN_BUCKET_N)
        if series.n_measured < min_domains:
            continue
        out.append(AttackEvent(attack=attack, info=info, series=series))
    return out


def failing_events(events: Sequence[AttackEvent]) -> List[AttackEvent]:
    """Events with at least one resolution failure (the §6.3.1 ~1%)."""
    return [e for e in events if e.has_failures]


def high_impact_events(events: Sequence[AttackEvent],
                       threshold: float = 10.0) -> List[AttackEvent]:
    """Events whose Equation-1 impact reaches ``threshold`` (the §6.3.2
    10-fold population)."""
    return [e for e in events
            if e.impact is not None and e.impact >= threshold]
