"""The reactive measurement platform (§4.3.1).

When the RSDoS feed reports an attack on an address that appears in NS
delegations, the platform triggers probes of up to 50 related domains
every 5 minutes — spread evenly over the window (~one query every 6
seconds, the paper's ethics bound) — during the attack and for 24 hours
after, probing *every* nameserver of each domain individually (unlike
OpenINTEL's agnostic single query). Trigger delay is at most 10 minutes
after the feed reports the attack.

Built on the streaming substrate: the feed flows through a topic, a
filter job joins it against the nameserver view, and the discrete-event
scheduler fires the probes in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dns.rcode import ResponseStatus
from repro.dns.rr import RRType
from repro.core.metrics import (
    BASELINE_FALLBACK_DAYS,
    ImpactPoint,
    ImpactSeries,
    compute_baseline_degraded,
    impact_on_rtt,
)
from repro.openintel.storage import MeasurementStore
from repro.streaming.scheduler import EventScheduler
from repro.streaming.topic import Broker
from repro.streaming.processors import FilterProcessor, StreamJob
from repro.telescope.feed import RSDoSFeed
from repro.telescope.rsdos import InferredAttack
from repro.util.timeutil import DAY, FIVE_MINUTES, MINUTE, Window, window_start
from repro.world.simulation import World


@dataclass(frozen=True)
class ReactiveProbe:
    """One probe of one nameserver of one domain."""

    ts: int
    domain_id: int
    ns_ip: int
    answered: bool
    rtt_ms: Optional[float]


class ReactiveStore:
    """Probe results with per-domain availability queries."""

    def __init__(self) -> None:
        self.probes: List[ReactiveProbe] = []
        self._by_domain: Dict[int, List[ReactiveProbe]] = {}

    def add(self, probe: ReactiveProbe) -> None:
        self.probes.append(probe)
        self._by_domain.setdefault(probe.domain_id, []).append(probe)

    def __len__(self) -> int:
        return len(self.probes)

    def domain_probes(self, domain_id: int) -> List[ReactiveProbe]:
        return self._by_domain.get(domain_id, [])

    def availability_series(self, domain_id: int
                            ) -> List[Tuple[int, float, int]]:
        """(bucket_ts, share of probes answered, n probes) per 5-minute
        bucket, in time order."""
        buckets: Dict[int, Tuple[int, int]] = {}
        for probe in self._by_domain.get(domain_id, ()):
            key = window_start(probe.ts)
            answered, total = buckets.get(key, (0, 0))
            buckets[key] = (answered + (1 if probe.answered else 0), total + 1)
        return [(ts, answered / total, total)
                for ts, (answered, total) in sorted(buckets.items())]

    def unresponsive_share(self, domain_id: int, window: Window) -> float:
        """Share of buckets in ``window`` where NO nameserver answered."""
        series = [row for row in self.availability_series(domain_id)
                  if window.contains(row[0])]
        if not series:
            return 0.0
        return sum(1 for _, share, _ in series if share == 0.0) / len(series)

    def first_responsive_after(self, domain_id: int, ts: int) -> Optional[int]:
        """First bucket at/after ``ts`` with any nameserver answering."""
        for bucket_ts, share, _ in self.availability_series(domain_id):
            if bucket_ts >= ts and share > 0.0:
                return bucket_ts
        return None


@dataclass
class ProbeCampaign:
    """The probing plan for one triggered attack."""

    attack: InferredAttack
    domain_ids: Tuple[int, ...]
    triggered_at: int
    ends_at: int

    @property
    def victim_ip(self) -> int:
        return self.attack.victim_ip


class ReactivePlatform:
    """Feed-triggered probing of nameservers under attack."""

    def __init__(self, world: World, probes_per_window: int = 50,
                 trigger_delay_s: int = 10 * MINUTE,
                 post_attack_s: int = DAY,
                 transport=None):
        if probes_per_window < 1:
            raise ValueError("probes_per_window must be >= 1")
        if trigger_delay_s < 0 or post_attack_s < 0:
            raise ValueError("delays must be non-negative")
        self.world = world
        #: probe datagram path (fault injection wraps it here).
        self.transport = transport or world.transport
        self.probes_per_window = probes_per_window
        self.trigger_delay_s = trigger_delay_s
        self.post_attack_s = post_attack_s
        self.rng = world.rngs.stream("reactive")
        self.store = ReactiveStore()
        self.campaigns: List[ProbeCampaign] = []
        self.broker = Broker()

    # -- pipeline ------------------------------------------------------------

    def run(self, feed: RSDoSFeed, window: Optional[Window] = None,
            max_campaigns: Optional[int] = None) -> ReactiveStore:
        """Replay the feed through the streaming join and execute all
        triggered probe campaigns in virtual time.

        ``window`` restricts which attacks trigger (the platform went
        operational in January 2022 in the paper); ``max_campaigns``
        bounds the run for exploratory use.
        """
        ns_ips = self.world.directory.nameserver_ips()
        feed_topic = self.broker.topic("rsdos-attacks")
        job = StreamJob(
            self.broker, "rsdos-attacks", "dns-attacks",
            [FilterProcessor(lambda a: a.victim_ip in ns_ips)],
            name="dns-join")
        for attack in feed.attacks:
            if window is not None and not (
                    attack.start < window.end and window.start < attack.end):
                continue
            feed_topic.produce(attack.start, attack)
        job.drain()

        consumer = self.broker.consumer("dns-attacks")
        triggered = [record.value for record in consumer.poll()]
        if max_campaigns is not None:
            triggered = triggered[:max_campaigns]
        if not triggered:
            return self.store

        scheduler = EventScheduler(start_ts=min(a.start for a in triggered))
        horizon = 0
        for attack in triggered:
            campaign = self._plan_campaign(attack)
            if campaign is None:
                continue
            self.campaigns.append(campaign)
            horizon = max(horizon, campaign.ends_at)
            self._schedule_campaign(scheduler, campaign)
        scheduler.run_until(horizon + 1)
        return self.store

    def _plan_campaign(self, attack: InferredAttack) -> Optional[ProbeCampaign]:
        domains = sorted(self.world.directory.domains_of_ip(attack.victim_ip))
        if not domains:
            return None
        if len(domains) > self.probes_per_window:
            domains = self.rng.sample(domains, self.probes_per_window)
            domains.sort()
        return ProbeCampaign(
            attack=attack,
            domain_ids=tuple(domains),
            triggered_at=attack.start + self.trigger_delay_s,
            ends_at=attack.end + self.post_attack_s)

    def _schedule_campaign(self, scheduler: EventScheduler,
                           campaign: ProbeCampaign) -> None:
        n = len(campaign.domain_ids)
        per_window = min(self.probes_per_window, max(n, 1))
        spacing = FIVE_MINUTES // per_window
        window_ts = window_start(campaign.triggered_at) + FIVE_MINUTES
        cursor = 0
        while window_ts < campaign.ends_at:
            for i in range(per_window):
                domain_id = campaign.domain_ids[cursor % n]
                cursor += 1
                probe_ts = window_ts + i * spacing
                scheduler.at(probe_ts, self._probe_action(domain_id))
            window_ts += FIVE_MINUTES

    def _probe_action(self, domain_id: int):
        def action(ts: int) -> None:
            self.probe_domain(domain_id, ts)
        return action

    # -- probing ------------------------------------------------------------------

    def probe_domain(self, domain_id: int, ts: int) -> List[ReactiveProbe]:
        """Probe every nameserver of a domain once (the NS-exhaustive
        measurement OpenINTEL cannot do, §4.3/§9)."""
        record = self.world.directory[domain_id]
        probes = []
        for ns_ip in record.delegation.nameserver_ips:
            reply = self.transport(ns_ip, record.name, RRType.NS, ts)
            probe = ReactiveProbe(
                ts=ts, domain_id=domain_id, ns_ip=ns_ip,
                answered=reply.answered,
                rtt_ms=reply.rtt_ms if reply.answered else None)
            self.store.add(probe)
            probes.append(probe)
        return probes


# -- §5/§6 impact-path adapter ------------------------------------------------

#: RTT recorded for an unanswered probe. The value itself never reaches
#: an analysis (non-OK rows only count toward timeout shares) — it just
#: has to pass the store's ingest validity gate.
REACTIVE_TIMEOUT_RTT_MS = 5_000.0


def measurement_store_from_reactive(store: ReactiveStore, directory,
                                    timeout_rtt_ms: float =
                                    REACTIVE_TIMEOUT_RTT_MS
                                    ) -> MeasurementStore:
    """Fold reactive probes into a :class:`MeasurementStore`.

    Each probe becomes one dense measurement row of the probed domain's
    NSSet: answered probes as ``OK`` with their RTT, unanswered ones as
    ``TIMEOUT``. The result speaks the same aggregate language as the
    OpenINTEL crawl store, so the §5/§6 impact machinery (5-minute
    buckets, timeout shares, ``Impact_on_RTT``) applies to reactive
    data unchanged.
    """
    out = MeasurementStore()
    for probe in store.probes:
        nsset_id = directory[probe.domain_id].nsset_id
        if probe.answered:
            out.add_fast(nsset_id, probe.ts, ResponseStatus.OK,
                         probe.rtt_ms, True)
        else:
            out.add_fast(nsset_id, probe.ts, ResponseStatus.TIMEOUT,
                         timeout_rtt_ms, True)
    return out


def reactive_impact_series(store: ReactiveStore, directory, nsset_id: int,
                           window: Window,
                           baseline_store: MeasurementStore,
                           baseline_kind: str = "day",
                           min_bucket_n: int = 1,
                           baseline_fallback_days: int =
                           BASELINE_FALLBACK_DAYS) -> ImpactSeries:
    """The §5 RTT-impact series of a NSSet, measured by reactive probes.

    The reactive platform only probes *during* attacks, so it holds no
    quiet-day history of its own — the §4.1 baseline comes from
    ``baseline_store`` (normally the OpenINTEL crawl store of the same
    study) while the in-window 5-minute buckets come from the probes.
    Everything downstream of :class:`ImpactSeries` (mean/peak impact,
    event statistics, Figure 8) then works on reactive data as-is.
    """
    probes = measurement_store_from_reactive(store, directory)
    baseline, fell_back = compute_baseline_degraded(
        baseline_store, nsset_id, window.start, baseline_kind,
        baseline_fallback_days)
    series = ImpactSeries(nsset_id=nsset_id, window=window,
                          baseline_rtt=baseline, min_bucket_n=min_bucket_n,
                          degraded=fell_back)
    for ts, agg in probes.buckets_in(nsset_id, window.start, window.end):
        if not agg.is_valid:
            series.n_corrupt += 1
            series.degraded = True
            continue
        series.points.append(ImpactPoint(
            ts=ts, n=agg.n, ok=agg.ok_n, timeouts=agg.timeout_n,
            servfails=agg.servfail_n, avg_rtt=agg.avg_rtt,
            impact=impact_on_rtt(agg.avg_rtt, baseline)))
    return series
