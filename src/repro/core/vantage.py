"""Multi-vantage measurement (the paper's §9 future direction).

OpenINTEL and the reactive platform probe from a single vantage point in
the Netherlands, which §4.3 lists as a limitation: anycast catchment can
mask an ongoing attack in other regions ("catchment can mask ongoing
attacks in specific geographic regions"). This module implements the
proposed extension — probing the same nameservers from several regions —
and the analysis that quantifies how much a single vantage misses.

A :class:`VantagePoint` is a region-bound transport over the same world:
for unicast servers only the propagation RTT differs, but for anycast
servers each vantage lands in its *own catchment site*, with that site's
attack share and capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dns.name import DomainName
from repro.dns.rr import RRType
from repro.dns.server import ServerReply
from repro.world.capacity import LoadBreakdown
from repro.world.simulation import World

#: Extra propagation RTT (ms) from each probing region to a server whose
#: base RTT was calibrated for the Netherlands vantage. Rough great-
#: circle surrogates; precision is irrelevant to the catchment effect.
REGION_RTT_OFFSET_MS: Dict[str, float] = {
    "eu-west": 0.0,
    "eu-east": 12.0,
    "us-east": 75.0,
    "us-west": 130.0,
    "ap-south": 140.0,
    "ap-east": 190.0,
    "sa": 180.0,
    "af": 120.0,
    "oceania": 250.0,
    "me": 90.0,
}


class VantagePoint:
    """A measurement location: transport bound to a probing region."""

    def __init__(self, world: World, region: str):
        if region not in REGION_RTT_OFFSET_MS:
            raise ValueError(f"unknown region: {region}")
        self.world = world
        self.region = region
        self._rtt_offset = REGION_RTT_OFFSET_MS[region]
        self._rng = world.rngs.stream("vantage", region)

    def load_at(self, ns, ts: float) -> LoadBreakdown:
        """Like :meth:`World.load_at` but routed by this vantage's
        catchment for anycast servers."""
        if ns.anycast is None:
            return self.world.load_at(ns, ts)
        site = ns.anycast.site_for_region(self.region)
        # Recompute the per-site load with this vantage's site.
        index = self.world._index
        assert index is not None
        attacks = index.active_on_ip(ns.ip, ts)
        blackout = any(
            (bw := a.blackout_window()) is not None and bw.contains(int(ts))
            for a in attacks)
        server_cost = 0.0
        app_pps = 0.0
        for attack in attacks:
            pps = attack.effective_pps(int(ts))
            if pps <= 0.0:
                continue
            server_frac, app_frac, _ = self.world._attack_weights[attack.attack_id]
            server_cost += pps * server_frac
            app_pps += pps * app_frac
        share = site.catchment_weight
        return LoadBreakdown(
            server_util=server_cost * share / site.capacity_pps,
            link_util=0.0,
            app_util=app_pps * share / site.capacity_pps,
            blackout=blackout)

    def transport(self, ns_ip: int, qname: DomainName, qtype: RRType,
                  ts: float) -> ServerReply:
        """Region-bound transport, usable wherever World.transport is."""
        ns = self.world.nameservers_by_ip.get(ns_ip)
        if ns is None:
            return ServerReply.dropped()
        if ns.is_misconfig_target:
            if not ns.answers_queries:
                return ServerReply.dropped()
            return ServerReply.ok(ns.base_rtt_ms + self._rtt_offset
                                  + self._rng.expovariate(0.5))
        load = self.load_at(ns, ts)
        reply = self.world.capacity_model.sample_reply(
            self._rng, ns.base_rtt_ms + self._rtt_offset, load)
        return reply


@dataclass
class VantageObservation:
    """One vantage's view of a nameserver at one instant."""

    region: str
    answered_share: float
    mean_rtt_ms: Optional[float]
    n_probes: int


@dataclass
class CatchmentDisagreement:
    """How differently the vantages saw one (nameserver, instant)."""

    ns_ip: int
    ts: int
    observations: List[VantageObservation] = field(default_factory=list)

    @property
    def shares(self) -> List[float]:
        return [o.answered_share for o in self.observations]

    @property
    def max_disagreement(self) -> float:
        """Largest gap in availability across vantages — nonzero means a
        single vantage would have mis-estimated the attack's reach."""
        shares = self.shares
        if not shares:
            return 0.0
        return max(shares) - min(shares)

    @property
    def masked_from(self) -> List[str]:
        """Regions that saw the server as (mostly) healthy while another
        vantage saw it (mostly) dead — the §4.3 masking effect."""
        if self.max_disagreement < 0.5:
            return []
        return [o.region for o in self.observations
                if o.answered_share > 0.8]


class MultiVantageProber:
    """Probes nameservers from several vantage points simultaneously."""

    def __init__(self, world: World, regions: Sequence[str] = (
            "eu-west", "us-east", "ap-east")):
        if not regions:
            raise ValueError("at least one region required")
        self.world = world
        self.vantages = [VantagePoint(world, region) for region in regions]

    def probe(self, ns_ip: int, ts: int, n_probes: int = 20
              ) -> CatchmentDisagreement:
        """Probe one nameserver ``n_probes`` times from every vantage."""
        if n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        qname = DomainName("probe.invalid")
        result = CatchmentDisagreement(ns_ip=ns_ip, ts=ts)
        for vantage in self.vantages:
            answered = 0
            rtts: List[float] = []
            for _ in range(n_probes):
                reply = vantage.transport(ns_ip, qname, RRType.NS, ts)
                if reply.answered:
                    answered += 1
                    rtts.append(reply.rtt_ms)
            result.observations.append(VantageObservation(
                region=vantage.region,
                answered_share=answered / n_probes,
                mean_rtt_ms=sum(rtts) / len(rtts) if rtts else None,
                n_probes=n_probes))
        return result

    def survey_attack(self, attack, n_probes: int = 20
                      ) -> CatchmentDisagreement:
        """Probe an attack's victim at the attack midpoint."""
        mid = (attack.start + attack.end) // 2 if hasattr(attack, "start") \
            else (attack.window.start + attack.window.end) // 2
        victim = attack.victim_ip
        return self.probe(victim, mid, n_probes)


def masking_analysis(world: World, feed, regions: Sequence[str] = (
        "eu-west", "us-east", "ap-east"), n_probes: int = 20,
        max_attacks: Optional[int] = 200) -> List[CatchmentDisagreement]:
    """§9's promised insight: for every DNS attack in the feed, compare
    what the vantages saw; disagreements are attacks a single vantage
    would have mis-characterized."""
    ns_ips = world.directory.nameserver_ips()
    prober = MultiVantageProber(world, regions)
    out = []
    count = 0
    for attack in feed.attacks:
        if attack.victim_ip not in ns_ips:
            continue
        out.append(prober.survey_attack(attack, n_probes))
        count += 1
        if max_attacks is not None and count >= max_attacks:
            break
    return out
