"""The paper's method: joining RSDoS with OpenINTEL and analyzing impact.

This package is the reproduction's primary contribution — the §4
pipeline (aggregate, map, join, measure impact) and every §5/§6
analysis built on it. It consumes only the *datasets* (RSDoS feed,
measurement store, domain directory, ancillary data), never the world's
ground truth, exactly like the paper's vantage.
"""

from repro.core.nsset import NSSetMetadata, NSSetInfo
from repro.core.metrics import impact_on_rtt, ImpactSeries
from repro.core.join import AttackClass, ClassifiedAttack, DatasetJoin
from repro.core.events import AttackEvent, extract_events
from repro.core.longitudinal import MonthlySummary, monthly_summary, affected_domains_by_month
from repro.core.ports import PortAnalysis, analyze_ports
from repro.core.impact import FailureAnalysis, ImpactAnalysis, analyze_failures, analyze_impact, top_companies_by_impact
from repro.core.correlation import CorrelationAnalysis, analyze_correlation
from repro.core.resilience import ResilienceAnalysis, analyze_resilience
from repro.core.topasn import top_attacked_asns, top_attacked_ips
from repro.core.reactive import ReactivePlatform, ReactiveProbe, ReactiveStore
from repro.core.vantage import (
    CatchmentDisagreement,
    MultiVantageProber,
    VantagePoint,
    masking_analysis,
)
from repro.core.enduser import (
    CacheScenario,
    EndUserImpact,
    analytic_failure_share,
    caching_grid,
    simulate_enduser_impact,
)
from repro.core.visibility import VisibilityReport, analyze_visibility, match_attacks
from repro.core.pipeline import Study, run_study

__all__ = [
    "NSSetMetadata",
    "NSSetInfo",
    "impact_on_rtt",
    "ImpactSeries",
    "AttackClass",
    "ClassifiedAttack",
    "DatasetJoin",
    "AttackEvent",
    "extract_events",
    "MonthlySummary",
    "monthly_summary",
    "affected_domains_by_month",
    "PortAnalysis",
    "analyze_ports",
    "FailureAnalysis",
    "ImpactAnalysis",
    "analyze_failures",
    "analyze_impact",
    "top_companies_by_impact",
    "CorrelationAnalysis",
    "analyze_correlation",
    "ResilienceAnalysis",
    "analyze_resilience",
    "top_attacked_asns",
    "top_attacked_ips",
    "ReactivePlatform",
    "ReactiveProbe",
    "ReactiveStore",
    "CatchmentDisagreement",
    "MultiVantageProber",
    "VantagePoint",
    "masking_analysis",
    "CacheScenario",
    "EndUserImpact",
    "analytic_failure_share",
    "caching_grid",
    "simulate_enduser_impact",
    "VisibilityReport",
    "analyze_visibility",
    "match_attacks",
    "Study",
    "run_study",
]
