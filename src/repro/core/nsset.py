"""NSSet structural metadata.

The paper aggregates performance per *NSSet* — the set of IPv4
nameserver addresses a group of domains shares (§4.1) — and stratifies
impact by the NSSet's structure: number of /24 prefixes, number of
origin ASNs, and the census anycast label (§6.6). This module derives
that structure from the measurement-side datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.anycast.census import AnycastCensus
from repro.net.ip import slash24_of
from repro.topology.as2org import AS2Org
from repro.topology.prefix2as import Prefix2AS
from repro.world.domains import DomainDirectory


@dataclass(frozen=True)
class NSSetInfo:
    """Structure of one NSSet at one point in time."""

    nsset_id: int
    ips: Tuple[int, ...]
    n_domains: int
    slash24s: Tuple[int, ...]
    asns: Tuple[int, ...]
    anycast_label: str          # "anycast" | "partial" | "unicast"
    company: str                # org name of the plurality ASN

    @property
    def n_slash24(self) -> int:
        return len(self.slash24s)

    @property
    def n_asns(self) -> int:
        return len(self.asns)

    @property
    def is_unicast(self) -> bool:
        return self.anycast_label == "unicast"

    @property
    def single_prefix(self) -> bool:
        return self.n_slash24 == 1

    @property
    def single_asn(self) -> bool:
        return self.n_asns == 1


class NSSetMetadata:
    """Builds and caches :class:`NSSetInfo` from the datasets.

    Anycast labels are census-snapshot dependent; the cache key includes
    the snapshot, so labels stay correct across census boundaries.
    """

    def __init__(self, directory: DomainDirectory, prefix2as: Prefix2AS,
                 as2org: AS2Org, census: AnycastCensus):
        self.directory = directory
        self.prefix2as = prefix2as
        self.as2org = as2org
        self.census = census
        self._cache: Dict[Tuple[int, int], NSSetInfo] = {}

    def info(self, nsset_id: int, ts: int) -> NSSetInfo:
        snap = self.census.snapshot_for(ts)
        snap_key = snap.taken_at if snap else 0
        key = (nsset_id, snap_key)
        info = self._cache.get(key)
        if info is None:
            info = self._build(nsset_id, ts)
            self._cache[key] = info
        return info

    def _build(self, nsset_id: int, ts: int) -> NSSetInfo:
        ips = self.directory.nssets.ips_of(nsset_id)
        slash24s = tuple(sorted({slash24_of(ip) for ip in ips}))
        asns = []
        for ip in ips:
            asn = self.prefix2as.lookup(ip)
            if asn is not None and asn not in asns:
                asns.append(asn)
        label = self.census.label_nsset(ips, ts)
        company = self._company_of(asns)
        return NSSetInfo(
            nsset_id=nsset_id, ips=ips,
            n_domains=len(self.directory.domains_of_nsset(nsset_id)),
            slash24s=slash24s, asns=tuple(sorted(asns)),
            anycast_label=label, company=company)

    def _company_of(self, asns) -> str:
        if not asns:
            return "(unknown)"
        return self.as2org.name_of(asns[0])

    def company_of_ip(self, ip: int) -> str:
        """Company attribution for a single address (Tables 4/5)."""
        asn = self.prefix2as.lookup(ip)
        if asn is None:
            return "Private IP"
        return self.as2org.name_of(asn)
