"""Telescope visibility oracle: quantifying the §4.3 limitations.

The paper can only *discuss* what the telescope misses — reflected and
unspoofed attacks are invisible, multi-vector attacks appear smaller,
and backscatter suppression truncates attack windows. In the simulation
we hold the ground truth, so we can quantify each limitation exactly:
detection rate by spoofing class, rate under-estimation of multi-vector
attacks, and duration truncation. (Jonker et al. 2017, cited in §4.3,
found ~60% of attacks randomly spoofed vs 40% reflected — the invisible
share is real and substantial.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.model import Attack
from repro.telescope.feed import RSDoSFeed
from repro.telescope.rsdos import InferredAttack
from repro.util.stats import median, ratio


@dataclass
class AttackMatch:
    """Ground-truth attack paired with its inferred counterpart."""

    truth: Attack
    inferred: Optional[InferredAttack]

    @property
    def detected(self) -> bool:
        return self.inferred is not None

    @property
    def rate_underestimate(self) -> Optional[float]:
        """inferred rate / true rate: < 1 when the telescope misses
        invisible vectors or suppressed backscatter."""
        if self.inferred is None or self.truth.total_pps <= 0:
            return None
        return self.inferred.inferred_victim_pps() / self.truth.total_pps

    @property
    def duration_coverage(self) -> Optional[float]:
        """inferred duration / true duration."""
        if self.inferred is None or self.truth.duration_s <= 0:
            return None
        return self.inferred.duration_s / self.truth.duration_s


@dataclass
class VisibilityReport:
    """The oracle's aggregate view of the telescope's blind spots."""

    n_truth: int = 0
    n_detected: int = 0
    #: detection rate per category.
    by_class: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: median inferred/true rate for multi-vector attacks.
    multivector_underestimate: Optional[float] = None
    #: median inferred/true rate for pure randomly-spoofed attacks.
    pure_spoofed_estimate: Optional[float] = None
    #: median duration coverage of detected attacks.
    duration_coverage: Optional[float] = None

    @property
    def detection_rate(self) -> float:
        return ratio(self.n_detected, self.n_truth)

    def class_rate(self, name: str) -> float:
        detected, total = self.by_class.get(name, (0, 0))
        return ratio(detected, total)


def _classify(attack: Attack) -> str:
    if not attack.telescope_visible:
        return "invisible (reflected/unspoofed)"
    if attack.is_multi_vector:
        return "multi-vector (partially visible)"
    return "randomly spoofed (visible)"


def match_attacks(ground_truth: Sequence[Attack],
                  feed: RSDoSFeed) -> List[AttackMatch]:
    """Pair each ground-truth attack with the overlapping inferred
    attack on the same victim (if any)."""
    by_victim: Dict[int, List[InferredAttack]] = {}
    for inferred in feed.attacks:
        by_victim.setdefault(inferred.victim_ip, []).append(inferred)
    matches = []
    for truth in ground_truth:
        candidates = by_victim.get(truth.victim_ip, ())
        hit = None
        for inferred in candidates:
            if (inferred.start < truth.window.end
                    and truth.window.start < inferred.end):
                hit = inferred
                break
        matches.append(AttackMatch(truth=truth, inferred=hit))
    return matches


def analyze_visibility(ground_truth: Sequence[Attack],
                       feed: RSDoSFeed) -> VisibilityReport:
    """Quantify every §4.3 limitation from the oracle's seat."""
    report = VisibilityReport()
    multivector_ratios: List[float] = []
    pure_ratios: List[float] = []
    coverages: List[float] = []
    for match in match_attacks(ground_truth, feed):
        report.n_truth += 1
        name = _classify(match.truth)
        detected, total = report.by_class.get(name, (0, 0))
        report.by_class[name] = (detected + (1 if match.detected else 0),
                                 total + 1)
        if match.detected:
            report.n_detected += 1
            under = match.rate_underestimate
            if under is not None:
                if match.truth.is_multi_vector:
                    multivector_ratios.append(under)
                elif match.truth.telescope_visible:
                    pure_ratios.append(under)
            coverage = match.duration_coverage
            if coverage is not None:
                coverages.append(min(coverage, 2.0))
    if multivector_ratios:
        report.multivector_underestimate = median(multivector_ratios)
    if pure_ratios:
        report.pure_spoofed_estimate = median(pure_ratios)
    if coverages:
        report.duration_coverage = median(coverages)
    return report
