"""Resilience-technique efficacy (§6.6, Figures 11-13).

Stratifies attack-event impact by the three structural variables the
paper analyzes: the census anycast label (full / partial / unicast),
AS diversity, and /24 prefix diversity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.events import AttackEvent
from repro.util.stats import percentile, ratio


@dataclass
class GroupStats:
    """Impact statistics of one stratum."""

    label: str
    n_events: int = 0
    impacts: List[float] = field(default_factory=list)
    n_failing: int = 0
    n_complete_failures: int = 0

    @property
    def median_impact(self) -> Optional[float]:
        return percentile(self.impacts, 50) if self.impacts else None

    @property
    def p95_impact(self) -> Optional[float]:
        return percentile(self.impacts, 95) if self.impacts else None

    @property
    def max_impact(self) -> Optional[float]:
        return max(self.impacts) if self.impacts else None

    @property
    def over_10x_share(self) -> float:
        return ratio(sum(1 for x in self.impacts if x >= 10.0),
                     len(self.impacts))

    @property
    def over_100x(self) -> int:
        return sum(1 for x in self.impacts if x >= 100.0)

    @property
    def failing_share(self) -> float:
        return ratio(self.n_failing, self.n_events)

    def add(self, event: AttackEvent) -> None:
        self.n_events += 1
        # Strata statistics use the measurement-weighted window mean:
        # at reduced population scale the per-bucket peak is dominated
        # by small-sample noise, which would smear every stratum.
        if event.mean_impact is not None:
            self.impacts.append(event.mean_impact)
        if event.has_failures:
            self.n_failing += 1
            if event.failure_rate >= 0.98:
                self.n_complete_failures += 1


@dataclass
class ResilienceAnalysis:
    """All three stratifications."""

    by_anycast: Dict[str, GroupStats] = field(default_factory=dict)
    by_asn_count: Dict[str, GroupStats] = field(default_factory=dict)
    by_prefix_count: Dict[str, GroupStats] = field(default_factory=dict)

    def anycast(self, label: str) -> GroupStats:
        return self.by_anycast.setdefault(label, GroupStats(label))

    def asn(self, label: str) -> GroupStats:
        return self.by_asn_count.setdefault(label, GroupStats(label))

    def prefix(self, label: str) -> GroupStats:
        return self.by_prefix_count.setdefault(label, GroupStats(label))

    # -- paper claims -----------------------------------------------------------

    def anycast_over_100x(self) -> int:
        """Paper: no anycast NSSet saw a 100-fold increase."""
        stats = self.by_anycast.get("anycast")
        return stats.over_100x if stats else 0

    def unicast_vs_anycast_median(self) -> Tuple[Optional[float], Optional[float]]:
        unicast = self.by_anycast.get("unicast")
        anycast = self.by_anycast.get("anycast")
        return (unicast.median_impact if unicast else None,
                anycast.median_impact if anycast else None)


_ASN_LABELS = {1: "1 ASN", 2: "2 ASNs"}
_PREFIX_LABELS = {1: "1 /24", 2: "2 /24s"}


def _asn_label(n: int) -> str:
    return _ASN_LABELS.get(n, "3+ ASNs")


def _prefix_label(n: int) -> str:
    return _PREFIX_LABELS.get(n, "3+ /24s")


def analyze_resilience(events: Sequence[AttackEvent]) -> ResilienceAnalysis:
    """Stratify event impact by anycast label, AS and prefix diversity
    (Figures 11-13)."""
    out = ResilienceAnalysis()
    for event in events:
        info = event.info
        out.anycast(info.anycast_label).add(event)
        out.asn(_asn_label(info.n_asns)).add(event)
        out.prefix(_prefix_label(info.n_slash24)).add(event)
    return out


def complete_failure_prefix_shares(events: Sequence[AttackEvent]
                                   ) -> Dict[str, float]:
    """§6.6.3: among complete-failure events, the share on 1 / 2 / 3+
    prefixes (paper: most on one, ~30% on two, ~10% on three+)."""
    counts: Dict[str, int] = {}
    total = 0
    for event in events:
        if event.failure_rate >= 0.98:
            label = _prefix_label(event.info.n_slash24)
            counts[label] = counts.get(label, 0) + 1
            total += 1
    return {label: ratio(count, total) for label, count in sorted(counts.items())}
