"""Intensity and duration correlations (§6.4-§6.5, Figures 9-10).

The paper's headline negative result: telescope-inferred intensity does
NOT predict DNS impact (low Pearson r), because handling capacity and
resilience deployment — not attack size — decide the outcome, and the
telescope misses invisible vectors. Durations are bimodal (15 min / 1 h)
and high impact concentrates there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.events import AttackEvent
from repro.util.stats import bimodal_modes, pearson, spearman
from repro.util.timeutil import HOUR, MINUTE


@dataclass
class CorrelationAnalysis:
    """Figures 9 and 10 in numbers."""

    n_events: int = 0
    #: Pearson/Spearman of log-intensity (max ppm) vs log-impact.
    intensity_pearson: float = 0.0
    intensity_spearman: float = 0.0
    #: Pearson of inferred attacker count vs impact (paper: none).
    attackers_pearson: float = 0.0
    #: intensity modes in telescope ppm (paper: ~50 and ~6000).
    ppm_modes: List[float] = field(default_factory=list)
    #: duration modes in seconds (paper: ~15 min and ~1 h).
    duration_modes: List[float] = field(default_factory=list)
    duration_pearson: float = 0.0
    #: mean duration of high-impact (>=10x) events.
    high_impact_mean_duration_s: float = 0.0
    #: the longest event with impact >= 10x (the Contabo outlier).
    longest_high_impact: Optional[Tuple[str, int, float]] = None

    def summary(self) -> str:
        return (f"r(intensity, impact)={self.intensity_pearson:+.3f}, "
                f"r(duration, impact)={self.duration_pearson:+.3f}, "
                f"ppm modes={[round(m, 1) for m in self.ppm_modes]}, "
                f"duration modes={[round(m / 60, 1) for m in self.duration_modes]} min")


def analyze_correlation(events: Sequence[AttackEvent]) -> CorrelationAnalysis:
    """Compute the §6.4/§6.5 intensity and duration statistics."""
    out = CorrelationAnalysis()
    intensities: List[float] = []
    impacts: List[float] = []
    attackers: List[float] = []
    durations: List[float] = []
    high_durations: List[float] = []
    longest: Optional[Tuple[str, int, float]] = None
    for event in events:
        # The window-mean is the stable per-event statistic at reduced
        # population scale (thin 5-minute buckets make peaks noisy).
        impact = event.mean_impact
        if impact is None or impact <= 0:
            continue
        out.n_events += 1
        intensities.append(math.log10(max(event.intensity_ppm, 1e-3)))
        impacts.append(math.log10(impact))
        attackers.append(math.log10(max(event.attack.n_unique_sources, 1)))
        durations.append(float(event.duration_s))
        if impact >= 10.0:
            high_durations.append(float(event.duration_s))
            if longest is None or event.duration_s > longest[1]:
                longest = (event.company, event.duration_s, impact)
    if len(impacts) >= 2:
        out.intensity_pearson = pearson(intensities, impacts)
        out.intensity_spearman = spearman(intensities, impacts)
        out.attackers_pearson = pearson(attackers, impacts)
        out.duration_pearson = pearson(
            [math.log10(max(d, 1.0)) for d in durations], impacts)
    out.ppm_modes = bimodal_modes(
        [event.intensity_ppm for event in events
         if event.intensity_ppm > 0])
    out.duration_modes = bimodal_modes(
        [float(e.duration_s) for e in events if e.duration_s > 0])
    if high_durations:
        out.high_impact_mean_duration_s = sum(high_durations) / len(high_durations)
    out.longest_high_impact = longest
    return out


def attack_duration_modes(attacks) -> List[float]:
    """Duration modes (seconds) over a full attack population — the
    Figure 10 bimodality is a property of the attack landscape, not just
    of the event subset."""
    return bimodal_modes([float(a.duration_s) for a in attacks
                          if a.duration_s > 0])


def attack_intensity_modes(attacks) -> List[float]:
    """Telescope ppm modes over a full attack population (§6.4's ~50 and
    ~6000 ppm bimodality)."""
    return bimodal_modes([a.max_ppm for a in attacks if a.max_ppm > 0])


def duration_impact_buckets(events: Sequence[AttackEvent]
                            ) -> List[Tuple[str, int, int]]:
    """Figure 10's view: (duration bucket, events, high-impact events)."""
    buckets = (
        ("<15 min", 0, 15 * MINUTE),
        ("15-45 min", 15 * MINUTE, 45 * MINUTE),
        ("45-90 min", 45 * MINUTE, 90 * MINUTE),
        ("1.5-4 h", 90 * MINUTE, 4 * HOUR),
        ("4-12 h", 4 * HOUR, 12 * HOUR),
        (">12 h", 12 * HOUR, 10 ** 9),
    )
    rows = []
    for label, lo, hi in buckets:
        selected = [e for e in events if lo <= e.duration_s < hi]
        high = [e for e in selected
                if e.mean_impact is not None and e.mean_impact >= 10.0]
        rows.append((label, len(selected), len(high)))
    return rows
