"""Longitudinal summaries: Table 1, Table 3, and Figure 5.

Monthly buckets of attack activity split into DNS-infrastructure vs
other, per-month victim-IP counts, and monthly counts of potentially
affected registered domains (an attack on a nameserver potentially
affects every domain delegating to it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.core.join import AttackClass, DatasetJoin
from repro.net.ip import slash24_of
from repro.telescope.rsdos import InferredAttack
from repro.util.timeutil import month_key
from repro.world.domains import DomainDirectory


@dataclass
class MonthlyRow:
    """One row of Table 3."""

    year: int
    month: int
    dns_attacks: int = 0
    other_attacks: int = 0
    dns_ips: Set[int] = field(default_factory=set)
    other_ips: Set[int] = field(default_factory=set)

    @property
    def total_attacks(self) -> int:
        return self.dns_attacks + self.other_attacks

    @property
    def total_ips(self) -> int:
        return len(self.dns_ips | self.other_ips)

    @property
    def dns_attack_share(self) -> float:
        total = self.total_attacks
        return self.dns_attacks / total if total else 0.0

    @property
    def dns_ip_share(self) -> float:
        total = self.total_ips
        return len(self.dns_ips) / total if total else 0.0

    @property
    def key(self) -> Tuple[int, int]:
        return (self.year, self.month)


@dataclass
class MonthlySummary:
    """Table 3 plus the Table 1 dataset totals."""

    rows: List[MonthlyRow] = field(default_factory=list)

    @property
    def total_attacks(self) -> int:
        return sum(r.total_attacks for r in self.rows)

    @property
    def total_dns_attacks(self) -> int:
        return sum(r.dns_attacks for r in self.rows)

    @property
    def dns_attack_share(self) -> float:
        total = self.total_attacks
        return self.total_dns_attacks / total if total else 0.0

    def unique_ips(self) -> int:
        ips: Set[int] = set()
        for row in self.rows:
            ips |= row.dns_ips
            ips |= row.other_ips
        return len(ips)

    def unique_dns_ips(self) -> int:
        ips: Set[int] = set()
        for row in self.rows:
            ips |= row.dns_ips
        return len(ips)

    def dns_share_range(self) -> Tuple[float, float]:
        """(min, max) monthly DNS attack share — the paper's 0.57-2.12%."""
        shares = [r.dns_attack_share for r in self.rows if r.total_attacks]
        if not shares:
            return (0.0, 0.0)
        return (min(shares), max(shares))


def monthly_summary(join: DatasetJoin) -> MonthlySummary:
    """Bucket the classified attacks by month (Table 3)."""
    by_month: Dict[Tuple[int, int], MonthlyRow] = {}
    for classified in join.classified:
        attack = classified.attack
        year, month = month_key(attack.start)
        row = by_month.get((year, month))
        if row is None:
            row = MonthlyRow(year=year, month=month)
            by_month[(year, month)] = row
        if classified.klass.is_dns:
            row.dns_attacks += 1
            row.dns_ips.add(attack.victim_ip)
        else:
            row.other_attacks += 1
            row.other_ips.add(attack.victim_ip)
    return MonthlySummary(rows=[by_month[k] for k in sorted(by_month)])


def dataset_totals(attacks: Sequence[InferredAttack]) -> Dict[str, int]:
    """Table 1: attacks, unique victim IPs, /24s, and origin-AS count is
    computed by the caller with a Prefix2AS (kept dataset-pure here)."""
    ips = {a.victim_ip for a in attacks}
    return {
        "attacks": len(attacks),
        "ips": len(ips),
        "slash24s": len({slash24_of(ip) for ip in ips}),
    }


def affected_domains_by_month(join: DatasetJoin, directory: DomainDirectory
                              ) -> List[Tuple[Tuple[int, int], int, int]]:
    """Figure 5: per month, unique domains potentially affected and the
    largest single-attack domain count (the 10M-domain peaks)."""
    per_month_domains: Dict[Tuple[int, int], Set[int]] = {}
    per_month_peak: Dict[Tuple[int, int], int] = {}
    for classified in join.classified:
        if classified.klass is not AttackClass.DNS_DIRECT:
            continue
        key = month_key(classified.attack.start)
        domains = directory.domains_of_ip(classified.attack.victim_ip)
        per_month_domains.setdefault(key, set()).update(domains)
        per_month_peak[key] = max(per_month_peak.get(key, 0), len(domains))
    return [(key, len(per_month_domains[key]), per_month_peak.get(key, 0))
            for key in sorted(per_month_domains)]
