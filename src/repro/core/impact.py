"""Performance-impact analyses: Figures 7-8 and Table 6 (§6.3).

Resolution failures (99% of events see none; failures split ~92%
timeout / 8% SERVFAIL), the failure-rate-vs-size scatter, the
Equation-1 impact distribution by NSSet size, and the most-affected
companies ranking.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.events import AttackEvent
from repro.util.stats import LogHistogram, ratio


@dataclass
class FailureScatterPoint:
    """One Figure 7 dot: an event with failures."""

    n_measured: int
    failure_rate: float
    n_domains_hosted: int
    company: str
    anycast_label: str
    single_prefix: bool
    single_asn: bool


@dataclass
class FailureAnalysis:
    """§6.3.1 aggregates."""

    n_events: int = 0
    n_failing_events: int = 0
    n_failed_queries: int = 0
    n_timeout_queries: int = 0
    n_servfail_queries: int = 0
    scatter: List[FailureScatterPoint] = field(default_factory=list)
    #: failing events with a unicast NSSet / single ASN / single /24.
    failing_unicast: int = 0
    failing_single_asn: int = 0
    failing_single_prefix: int = 0
    #: complete failures (>= ~100% of measured queries failing).
    complete_failures: int = 0
    complete_by_prefix_count: Dict[int, int] = field(default_factory=dict)

    @property
    def failing_share(self) -> float:
        """Share of events with any failure (paper: ~1%)."""
        return ratio(self.n_failing_events, self.n_events)

    @property
    def timeout_share_of_failures(self) -> float:
        return ratio(self.n_timeout_queries, self.n_failed_queries)

    @property
    def servfail_share_of_failures(self) -> float:
        return ratio(self.n_servfail_queries, self.n_failed_queries)

    @property
    def unicast_share_of_failing(self) -> float:
        return ratio(self.failing_unicast, self.n_failing_events)

    @property
    def single_asn_share_of_failing(self) -> float:
        return ratio(self.failing_single_asn, self.n_failing_events)

    @property
    def single_prefix_share_of_failing(self) -> float:
        return ratio(self.failing_single_prefix, self.n_failing_events)


def analyze_failures(events: Sequence[AttackEvent],
                     complete_threshold: float = 0.98) -> FailureAnalysis:
    """Aggregate the §6.3.1 failure statistics over the events; an event
    with failure rate >= ``complete_threshold`` counts as a complete
    resolution failure."""
    out = FailureAnalysis()
    for event in events:
        out.n_events += 1
        series = event.series
        if series.n_failed == 0:
            continue
        out.n_failing_events += 1
        out.n_failed_queries += series.n_failed
        out.n_timeout_queries += series.n_timeouts
        out.n_servfail_queries += series.n_servfails
        info = event.info
        if info.is_unicast:
            out.failing_unicast += 1
        if info.single_asn:
            out.failing_single_asn += 1
        if info.single_prefix:
            out.failing_single_prefix += 1
        out.scatter.append(FailureScatterPoint(
            n_measured=series.n_measured,
            failure_rate=series.failure_rate,
            n_domains_hosted=info.n_domains,
            company=info.company,
            anycast_label=info.anycast_label,
            single_prefix=info.single_prefix,
            single_asn=info.single_asn))
        if series.failure_rate >= complete_threshold:
            out.complete_failures += 1
            n_prefix = min(info.n_slash24, 3)
            out.complete_by_prefix_count[n_prefix] = \
                out.complete_by_prefix_count.get(n_prefix, 0) + 1
    return out


@dataclass
class ImpactAnalysis:
    """§6.3.2: the Equation-1 impact distribution (Figure 8)."""

    n_events: int = 0
    n_with_impact: int = 0       # events with a computable impact
    over_10x: int = 0
    over_100x: int = 0
    #: (hosted-domain decade, impact decade) -> count: Figure 8's plane.
    grid: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: peak impact per hosted-domain decade.
    peak_by_size: Dict[int, float] = field(default_factory=dict)
    #: worst *mean* (window-average) impact per hosted-domain decade —
    #: the stable statistic for the "very large deployments only saw
    #: 2-3x" comparison.
    mean_by_size: Dict[int, float] = field(default_factory=dict)

    @property
    def over_10x_share(self) -> float:
        return ratio(self.over_10x, self.n_with_impact)

    @property
    def over_100x_share_of_10x(self) -> float:
        return ratio(self.over_100x, self.over_10x)

    def size_histogram(self) -> LogHistogram:
        hist = LogHistogram()
        for (size_decade, _), count in self.grid.items():
            hist.counts[size_decade] = hist.counts.get(size_decade, 0) + count
        return hist


def analyze_impact(events: Sequence[AttackEvent]) -> ImpactAnalysis:
    """Build the Figure 8 impact distribution over the events."""
    out = ImpactAnalysis()
    for event in events:
        out.n_events += 1
        impact = event.impact
        if impact is None:
            continue
        out.n_with_impact += 1
        if impact >= 10.0:
            out.over_10x += 1
        if impact >= 100.0:
            out.over_100x += 1
        size = max(event.n_domains_hosted, 1)
        size_decade = int(math.floor(math.log10(size)))
        impact_decade = int(math.floor(math.log10(max(impact, 1e-3))))
        key = (size_decade, impact_decade)
        out.grid[key] = out.grid.get(key, 0) + 1
        if impact > out.peak_by_size.get(size_decade, 0.0):
            out.peak_by_size[size_decade] = impact
        mean = event.mean_impact
        if mean is not None and mean > out.mean_by_size.get(size_decade, 0.0):
            out.mean_by_size[size_decade] = mean
    return out


def top_companies_by_impact(events: Sequence[AttackEvent], n: int = 10
                            ) -> List[Tuple[str, float]]:
    """Table 6: companies ranked by their worst event's Impact_on_RTT.

    Uses the measurement-weighted window *mean* (the statistic the
    scenario calibration targets); the peak-based view is available via
    :func:`analyze_impact`'s per-event grid.
    """
    best: Dict[str, float] = {}
    for event in events:
        impact = event.mean_impact
        if impact is None:
            continue
        company = event.company
        if impact > best.get(company, 0.0):
            best[company] = impact
    ranked = sorted(best.items(), key=lambda kv: kv[1], reverse=True)
    return ranked[:n]
