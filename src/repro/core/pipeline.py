"""Study orchestration: the end-to-end Figure-1 pipeline.

``run_study`` builds (or accepts) a world, runs both measurement
systems over it, joins their outputs, and extracts attack events. The
resulting :class:`Study` lazily computes every analysis in the paper;
benchmarks and examples all start here.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Callable, List, Optional, Union

if TYPE_CHECKING:  # avoid a core <-> chaos/artifacts import cycle at runtime
    from repro.artifacts.cache import PhaseCache
    from repro.artifacts.store import ArtifactStore
    from repro.chaos.injector import FaultInjector
    from repro.chaos.policy import ChaosConfig

from repro.core.correlation import CorrelationAnalysis, analyze_correlation
from repro.core.events import AttackEvent, extract_events
from repro.core.impact import (
    FailureAnalysis,
    ImpactAnalysis,
    analyze_failures,
    analyze_impact,
    top_companies_by_impact,
)
from repro.core.join import DatasetJoin, join_datasets
from repro.core.longitudinal import MonthlySummary, monthly_summary
from repro.core.nsset import NSSetMetadata
from repro.core.ports import PortAnalysis, analyze_ports, analyze_successful_ports
from repro.core.resilience import ResilienceAnalysis, analyze_resilience
from repro.datasets.openresolvers import OpenResolverScan
from repro.obs import NULL_TELEMETRY, RunTelemetry
from repro.openintel.platform import OpenIntelPlatform
from repro.openintel.storage import MeasurementStore
from repro.telescope.backscatter import BackscatterSimulator
from repro.telescope.darknet import Darknet
from repro.telescope.feed import RSDoSFeed
from repro.world.config import WorldConfig
from repro.world.simulation import World, build_world


def _link_util_fn(world: World):
    """Inbound-link utilization of a victim, for backscatter suppression.

    Nameserver victims use the world's load model (without the geofence,
    which blocks queries but not TCP-level backscatter); other victims
    are assumed link-healthy.
    """
    def fn(ip: int, ts: int) -> float:
        ns = world.nameservers_by_ip.get(ip)
        if ns is None or ns.is_misconfig_target:
            return 0.0
        return world.load_at(ns, ts).link_util
    return fn


@dataclass
class Study:
    """All datasets and lazily-computed analyses of one run."""

    config: WorldConfig
    world: World
    feed: RSDoSFeed
    store: MeasurementStore
    open_resolvers: OpenResolverScan
    join: DatasetJoin
    metadata: NSSetMetadata
    events: List[AttackEvent]
    #: the fault injector of a chaos run (None on clean runs); carries
    #: the injected-fault log and the feed job's dead letters.
    chaos: Optional["FaultInjector"] = None
    #: the run's telemetry (metrics + phase spans); defaults to the
    #: shared no-op bundle, and is never ``None`` after construction.
    telemetry: RunTelemetry = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY

    @property
    def degraded_events(self) -> List[AttackEvent]:
        """Events whose impact series was built on impaired data."""
        return [e for e in self.events if e.degraded]

    @property
    def degraded(self) -> bool:
        """True when any pipeline stage ran on impaired inputs.

        Ingest-rejected measurement rows count: damaged RTT telemetry
        that the store refused to aggregate still means the crawl ran on
        impaired inputs, even when every surviving aggregate, join
        record, and event is clean.
        """
        return (self.join.degraded or self.store.n_rejected > 0
                or bool(self.degraded_events))

    @cached_property
    def monthly(self) -> MonthlySummary:
        """Table 3 / Table 1."""
        with self.telemetry.tracer.span("analysis.monthly"):
            return monthly_summary(self.join)

    @cached_property
    def ports(self) -> PortAnalysis:
        """Figure 6."""
        with self.telemetry.tracer.span("analysis.ports"):
            return analyze_ports(self.join)

    @cached_property
    def successful_ports(self) -> PortAnalysis:
        """§6.3.1's successful-attack port mix."""
        with self.telemetry.tracer.span("analysis.successful_ports"):
            return analyze_successful_ports(self.events)

    @cached_property
    def failures(self) -> FailureAnalysis:
        """Figure 7 / §6.3.1."""
        with self.telemetry.tracer.span("analysis.failures"):
            return analyze_failures(self.events)

    @cached_property
    def impact(self) -> ImpactAnalysis:
        """Figure 8 / §6.3.2."""
        with self.telemetry.tracer.span("analysis.impact"):
            return analyze_impact(self.events)

    @cached_property
    def correlation(self) -> CorrelationAnalysis:
        """Figures 9-10."""
        with self.telemetry.tracer.span("analysis.correlation"):
            return analyze_correlation(self.events)

    @cached_property
    def resilience(self) -> ResilienceAnalysis:
        """Figures 11-13."""
        with self.telemetry.tracer.span("analysis.resilience"):
            return analyze_resilience(self.events)

    def top_companies(self, n: int = 10):
        """Table 6."""
        return top_companies_by_impact(self.events, n)

    @cached_property
    def visibility(self):
        """§4.3 quantified: what the telescope missed (oracle view —
        uses the world's ground truth, so it is a simulation-only
        analysis, clearly separated from the dataset-pure ones)."""
        from repro.core.visibility import analyze_visibility

        with self.telemetry.tracer.span("analysis.visibility"):
            return analyze_visibility(self.world.attacks, self.feed)

    def report(self) -> str:
        """The full textual study report."""
        from repro.core.report import render_report

        return render_report(self)


def run_study(config: Optional[WorldConfig] = None,
              world: Optional[World] = None,
              progress: Optional[Callable[[int, int], None]] = None,
              install_scenarios: bool = True,
              chaos: Optional["ChaosConfig"] = None,
              n_workers: int = 1,
              telemetry: Optional[RunTelemetry] = None,
              cache: Optional[Union[str, "ArtifactStore",
                                    "PhaseCache"]] = None) -> Study:
    """Run the full pipeline: world -> telescope + OpenINTEL -> join ->
    events. Pass a pre-built ``world`` to reuse one across analyses.

    ``n_workers > 1`` runs the crawl — the dominant cost of every
    figure and table — sharded across processes forked from the
    pre-built world (:meth:`OpenIntelPlatform.run_parallel`). Results
    are bit-for-bit identical for any worker count, so every downstream
    analysis is unchanged; only the wall clock shrinks. Chaos runs
    force a serial crawl (with a warning): the fault injector is
    stateful — its burst state, fault log, and RNG streams live in the
    parent and cannot be meaningfully merged across forked workers.

    ``chaos`` enables seeded fault injection on the pipeline's
    measurement surfaces (see :mod:`repro.chaos`): the crawl's transport
    is wrapped, measurement rows may be damaged at store ingest, the
    feed is faulted and re-validated through a hardened streaming job
    (poison records dead-letter with metadata), and the measurement
    store is damaged post-crawl. Analyses then degrade — flagging
    affected events — rather than crash. With every fault probability
    at zero the run is byte-identical to a clean one.

    ``telemetry`` threads a :class:`repro.obs.RunTelemetry` through the
    run: per-phase spans (world build, telescope, crawl, join, events —
    the lazy analyses span as they are computed), ``repro.crawl.*``
    shard stats merged across workers, ``repro.stream.*`` /
    ``repro.chaos.*`` counters on a chaos run, and ``repro.store.*``
    ingest totals. Telemetry observes only — it draws from no seeded
    RNG, and every study output is bit-identical whether it is enabled
    or the default no-op bundle (a test asserts this).

    ``cache`` enables the :mod:`repro.artifacts` phase cache: a cache
    directory path (created if missing), an
    :class:`~repro.artifacts.store.ArtifactStore`, or a ready
    :class:`~repro.artifacts.cache.PhaseCache`. Each expensive phase
    (telescope, crawl, join, events) is keyed by a fingerprint chained
    from the canonical config; on a hit the phase is skipped — its span
    is annotated ``cached=True`` and ``repro.cache.*`` counters record
    the traffic — and on a miss the freshly-computed artifact is
    stored. Warm-cache output is bit-identical to cold, at any worker
    count (tests assert it). Chaos runs bypass the cache entirely
    (faults must never be cached), as do runs on a pre-built ``world``
    (its build flags cannot be fingerprinted); both warn.
    """
    telemetry = telemetry or NULL_TELEMETRY
    tracer = telemetry.tracer

    phase_cache: Optional["PhaseCache"] = None
    keys = {}
    if cache is not None:
        if chaos is not None:
            import warnings

            warnings.warn(
                "chaos runs bypass the artifact cache: injected faults "
                "must never be cached nor replayed from it",
                RuntimeWarning, stacklevel=2)
        elif world is not None:
            import warnings

            warnings.warn(
                "a pre-built world cannot be fingerprinted (its build "
                "flags are unknown); pass a config instead of a world "
                "to use the artifact cache",
                RuntimeWarning, stacklevel=2)
        else:
            from repro.artifacts.cache import PhaseCache
            from repro.artifacts.fingerprint import study_keys

            phase_cache = PhaseCache.open(cache, telemetry=telemetry)
            keys = study_keys(config or WorldConfig(), install_scenarios)
    with tracer.span("study") as study_span:
        if world is None:
            config = config or WorldConfig()
            with tracer.span("world"):
                world = build_world(config,
                                    install_scenarios=install_scenarios)
        else:
            config = world.config
        study_span.annotate(seed=config.seed, n_domains=config.n_domains)

        injector: Optional["FaultInjector"] = None
        if chaos is not None:
            from repro.chaos.injector import FaultInjector

            injector = FaultInjector(chaos, telemetry=telemetry)

        with tracer.span("telescope") as span:
            feed = (phase_cache.fetch("telescope", keys["telescope"])
                    if phase_cache is not None else None)
            if feed is None:
                darknet = Darknet()
                simulator = BackscatterSimulator(
                    darknet, world.rngs.stream("telescope"),
                    link_util_fn=_link_util_fn(world),
                    headroom=config.headroom)
                feed = RSDoSFeed.observe(world.attacks, simulator)
                if phase_cache is not None:
                    phase_cache.save("telescope", keys["telescope"], feed)
            else:
                span.annotate(cached=True)
            span.annotate(attacks_inferred=len(feed.attacks))

        store = (phase_cache.fetch("crawl", keys["crawl"])
                 if phase_cache is not None else None)
        if store is None:
            transport = (injector.wrap_transport(world.transport)
                         if injector is not None else None)
            platform = OpenIntelPlatform(world, transport=transport,
                                         telemetry=telemetry)
            if injector is not None:
                injector.wrap_store_ingest(platform.store)
                if n_workers != 1:
                    import warnings

                    warnings.warn(
                        "chaos runs force a serial crawl: the fault injector "
                        "is stateful (burst state, fault log, RNG streams), "
                        "so its schedule cannot be sharded across forked "
                        "workers",
                        RuntimeWarning, stacklevel=2)
                    n_workers = 1
            with tracer.span("crawl") as span:
                store = platform.run_parallel(n_workers, progress=progress)
                span.annotate(workers=n_workers, rows=store.n_measurements)
                if platform.stats is not None:
                    platform.stats.publish(telemetry.registry)
            if phase_cache is not None:
                phase_cache.save("crawl", keys["crawl"], store)
        else:
            with tracer.span("crawl") as span:
                span.annotate(cached=True, rows=store.n_measurements)
        if injector is not None:
            injector.corrupt_store(store)

        feed_attacks = feed.attacks
        if injector is not None:
            with tracer.span("feed_harden") as span:
                feed_attacks = injector.harden_feed(feed_attacks)
                span.annotate(survivors=len(feed_attacks),
                              dead_letters=len(injector.dead_letters))

        with tracer.span("join") as span:
            open_resolvers = OpenResolverScan.from_world(world)
            join = (phase_cache.fetch("join", keys["join"])
                    if phase_cache is not None else None)
            if join is None:
                join = join_datasets(feed_attacks, world.directory,
                                     open_resolvers)
                if phase_cache is not None:
                    phase_cache.save("join", keys["join"], join)
            else:
                span.annotate(cached=True)
            span.annotate(records=len(join.classified),
                          rejected=len(join.rejected))
        with tracer.span("events") as span:
            metadata = NSSetMetadata(world.directory, world.prefix2as,
                                     world.as2org, world.census)
            events = (phase_cache.fetch("events", keys["events"])
                      if phase_cache is not None else None)
            if events is None:
                events = extract_events(join, store, metadata,
                                        min_domains=config.event_min_domains)
                if phase_cache is not None:
                    phase_cache.save("events", keys["events"], events)
            else:
                span.annotate(cached=True)
            span.annotate(events=len(events))
        store.publish_metrics(telemetry.registry)
    return Study(config=config, world=world, feed=feed, store=store,
                 open_resolvers=open_resolvers, join=join,
                 metadata=metadata, events=events, chaos=injector,
                 telemetry=telemetry)
