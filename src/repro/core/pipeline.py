"""Study orchestration: the end-to-end Figure-1 pipeline.

The pipeline is *declared*, not hand-wired: every stage — world build,
telescope, crawl, chaos damage, feed hardening, join, event extraction
— is a :class:`repro.engine.Phase` node of :data:`STUDY_GRAPH`, and
``run_study`` is a thin facade that executes that graph through the
:class:`repro.engine.Executor`. Cross-cutting concerns (telemetry
spans, :class:`~repro.artifacts.cache.PhaseCache` fetch/save, the
chaos worker policy) are middleware applied uniformly to every node,
so no per-phase plumbing lives here.

The resulting :class:`Study` lazily computes every analysis in the
paper; each analysis is itself a declared engine node (see
:class:`repro.engine.cached_analysis`), traced as an ``analysis.*``
span and memoized on first access. Benchmarks and examples all start
here; ``python -m repro graph`` prints the full declared DAG.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Union

if TYPE_CHECKING:  # avoid a core <-> chaos/artifacts import cycle at runtime
    from repro.artifacts.cache import PhaseCache
    from repro.artifacts.store import ArtifactStore
    from repro.chaos.injector import FaultInjector
    from repro.chaos.policy import ChaosConfig

from repro.core.correlation import CorrelationAnalysis, analyze_correlation
from repro.core.events import AttackEvent, extract_events
from repro.core.impact import (
    FailureAnalysis,
    ImpactAnalysis,
    analyze_failures,
    analyze_impact,
    top_companies_by_impact,
)
from repro.core.join import DatasetJoin, join_datasets
from repro.core.longitudinal import MonthlySummary, monthly_summary
from repro.core.nsset import NSSetMetadata
from repro.core.ports import PortAnalysis, analyze_ports, analyze_successful_ports
from repro.core.resilience import ResilienceAnalysis, analyze_resilience
from repro.datasets.openresolvers import OpenResolverScan
from repro.engine import (
    CacheMiddleware,
    Executor,
    JournalMiddleware,
    Phase,
    PhaseGraph,
    ProfileMiddleware,
    RunContext,
    SpanMiddleware,
    WorkerPolicy,
    analysis_graph,
    cached_analysis,
)
from repro.obs import NULL_TELEMETRY, RunJournal, RunTelemetry
from repro.openintel.platform import OpenIntelPlatform
from repro.openintel.storage import MeasurementStore
from repro.telescope.backscatter import BackscatterSimulator
from repro.telescope.darknet import Darknet
from repro.telescope.feed import RSDoSFeed
from repro.world.config import WorldConfig
from repro.world.simulation import World, build_world


# -- bypass warnings ----------------------------------------------------------

#: why a chaos run cannot use the artifact cache.
CHAOS_CACHE_REASON = (
    "chaos runs bypass the artifact cache: injected faults "
    "must never be cached nor replayed from it")
#: why a pre-built world cannot use the artifact cache.
PREBUILT_WORLD_REASON = (
    "a pre-built world cannot be fingerprinted (its build "
    "flags are unknown); pass a config instead of a world "
    "to use the artifact cache")
#: why a chaos run cannot shard the crawl.
SERIAL_CRAWL_REASON = (
    "chaos runs force a serial crawl: the fault injector "
    "is stateful (burst state, fault log, RNG streams), "
    "so its schedule cannot be sharded across forked "
    "workers")
#: why a chaos run cannot use the columnar batch path.
COLUMNAR_CHAOS_REASON = (
    "chaos runs force the object ingest path: the fault "
    "injector hooks per-row store ingest "
    "(wrap_store_ingest), which the columnar batch flush "
    "would bypass")


def _warn_bypass(reason: str, stacklevel: int = 3) -> None:
    """Emit one of the pipeline's feature-bypass warnings.

    All bypasses are :class:`RuntimeWarning`: the run proceeds, with
    the named feature (cache, sharded crawl) disabled.
    """
    warnings.warn(reason, RuntimeWarning, stacklevel=stacklevel)


def _link_util_fn(world: World):
    """Inbound-link utilization of a victim, for backscatter suppression.

    Nameserver victims use the world's load model (without the geofence,
    which blocks queries but not TCP-level backscatter); other victims
    are assumed link-healthy.
    """
    def fn(ip: int, ts: int) -> float:
        ns = world.nameservers_by_ip.get(ip)
        if ns is None or ns.is_misconfig_target:
            return 0.0
        return world.load_at(ns, ts).link_util
    return fn


# -- phase computes -----------------------------------------------------------

def _chaos_enabled(ctx: RunContext) -> bool:
    return ctx.params.get("injector") is not None


def _pack_of(ctx: RunContext):
    """The run's scenario pack (see :mod:`repro.attacks.packs`).

    Prefers the pre-built world's installed pack; otherwise instantiates
    from the config — both routes are cheap and deterministic, so the
    ``enabled`` gates of the pack-conditional nodes can call this before
    the world phase has produced a value.
    """
    world = ctx.params.get("world")
    if world is not None:
        pack = getattr(world, "pack", None)
        if pack is not None:
            return pack
    config = ctx.params.get("config")
    if config is None:
        return None
    from repro.attacks.packs import get_pack

    return get_pack(config.scenario_pack, config.pack_params)


def _reflector_enabled(ctx: RunContext) -> bool:
    pack = _pack_of(ctx)
    return (pack is not None
            and pack.telescope_signature().reflector_queries)


def _counterfactual_enabled(ctx: RunContext) -> bool:
    pack = _pack_of(ctx)
    return pack is not None and pack.has_counterfactuals


def _build_configured_world(ctx: RunContext) -> World:
    return build_world(ctx.params["config"],
                       install_scenarios=ctx.params["install_scenarios"])


def _observe_telescope(ctx: RunContext, world: World) -> RSDoSFeed:
    darknet = Darknet()
    # Slice-ability hooks for the serve layer (repro.serve): observe a
    # subset of the schedule on a caller-derived RNG. Absent, the
    # defaults reproduce the monolithic study byte-for-byte.
    attacks = ctx.params.get("attacks")
    if attacks is None:
        attacks = world.attacks
    rng = ctx.params.get("telescope_rng")
    if rng is None:
        rng = world.rngs.stream("telescope")
    simulator = BackscatterSimulator(
        darknet, rng,
        link_util_fn=_link_util_fn(world),
        headroom=ctx.params["config"].headroom,
        jitter_seed=ctx.params.get("telescope_jitter_seed"))
    return RSDoSFeed.observe(attacks, simulator,
                             columnar=ctx.params.get("columnar", False),
                             registry=ctx.telemetry.registry)


def _run_crawl(ctx: RunContext, world: World) -> MeasurementStore:
    injector: Optional["FaultInjector"] = ctx.params.get("injector")
    transport = (injector.wrap_transport(world.transport)
                 if injector is not None else None)
    platform = OpenIntelPlatform(world, transport=transport,
                                 telemetry=ctx.telemetry,
                                 columnar=ctx.params.get("columnar", False))
    if injector is not None:
        injector.wrap_store_ingest(platform.store)
    # The serve layer crawls one day-partition at a time; a full-range
    # crawl (the default) is unchanged.
    start, end = ctx.params.get("crawl_window") or (None, None)
    store = platform.run_parallel(ctx.params.get("n_workers", 1),
                                  start=start, end=end,
                                  progress=ctx.params.get("progress"))
    if platform.stats is not None:
        platform.stats.publish(ctx.telemetry.registry)
    return store


def _corrupt_store(ctx: RunContext,
                   crawl_store: MeasurementStore) -> MeasurementStore:
    ctx.params["injector"].corrupt_store(crawl_store)
    return crawl_store


def _harden_feed(ctx: RunContext, feed: RSDoSFeed) -> List:
    return ctx.params["injector"].harden_feed(feed.attacks)


def _observe_reflectors(ctx: RunContext, world: World):
    """The pack's extra darknet branch (amplification reflector queries)."""
    pack = getattr(world, "pack", None) or _pack_of(ctx)
    return pack.observe_darknet(world)


def _merge_curated_feeds(ctx: RunContext, feed_attacks, reflector_feed):
    """Merge the backscatter feed with the reflector branch's inferred
    attacks into the one curated feed the join consumes."""
    if not reflector_feed:
        return feed_attacks
    merged = list(feed_attacks) + reflector_feed.inferred_attacks()
    merged.sort(key=lambda a: (a.start, a.victim_ip))
    return merged


def _scan_open_resolvers(ctx: RunContext, world: World) -> OpenResolverScan:
    return OpenResolverScan.from_world(world)


def _join_feed_and_crawl(ctx: RunContext, curated_feed, world: World,
                         open_resolvers: OpenResolverScan) -> DatasetJoin:
    return join_datasets(curated_feed, world.directory, open_resolvers)


def _build_metadata(ctx: RunContext, world: World) -> NSSetMetadata:
    return NSSetMetadata(world.directory, world.prefix2as,
                         world.as2org, world.census)


def _extract_events(ctx: RunContext, join: DatasetJoin,
                    store: MeasurementStore,
                    metadata: NSSetMetadata) -> List[AttackEvent]:
    min_domains = ctx.params["config"].event_min_domains
    if ctx.params.get("columnar"):
        from repro.columnar import StoreFrame
        from repro.columnar.frame import extract_events_frame

        frame = StoreFrame(store, registry=ctx.telemetry.registry)
        return extract_events_frame(join, frame, metadata,
                                    min_domains=min_domains)
    return extract_events(join, store, metadata, min_domains=min_domains)


def _run_counterfactuals(ctx: RunContext, world: World, events):
    """The pack's mitigation counterfactuals over the finished events."""
    pack = getattr(world, "pack", None) or _pack_of(ctx)
    return pack.counterfactuals(world, events)


def _publish_store_metrics(ctx: RunContext,
                           store: MeasurementStore) -> None:
    store.publish_metrics(ctx.telemetry.registry)


# -- the declared pipeline ----------------------------------------------------

STUDY_PHASES = (
    Phase("world",
          compute=_build_configured_world,
          enabled=lambda ctx: ctx.params.get("world") is None,
          fallback=lambda ctx: ctx.params["world"],
          doc="seeded ground truth: providers, domains, attack schedule"),
    Phase("telescope",
          compute=_observe_telescope,
          inputs=("world",),
          provides="feed",
          cache_key="telescope",
          annotations=lambda feed, ctx: {
              "attacks_inferred": len(feed.attacks)},
          doc="darknet backscatter -> inferred RSDoS attack feed"),
    Phase("crawl",
          compute=_run_crawl,
          inputs=("world",),
          provides="crawl_store",
          cache_key="crawl",
          parallel=True,
          annotations=lambda store, ctx: {"rows": store.n_measurements},
          fresh_annotations=lambda store, ctx: {
              "workers": ctx.params.get("n_workers", 1)},
          doc="OpenINTEL-style daily DNS crawl (sharded across workers)"),
    Phase("corrupt_store",
          compute=_corrupt_store,
          inputs=("crawl_store",),
          provides="store",
          traced=False,
          enabled=_chaos_enabled,
          fallback=lambda ctx, crawl_store: crawl_store,
          doc="chaos: damage the filled measurement store in place"),
    Phase("feed_harden",
          compute=_harden_feed,
          inputs=("feed",),
          provides="feed_attacks",
          enabled=_chaos_enabled,
          fallback=lambda ctx, feed: feed.attacks,
          annotations=lambda survivors, ctx: {
              "survivors": len(survivors),
              "dead_letters": len(ctx.params["injector"].dead_letters)},
          doc="chaos: re-validate the faulted feed (retries, dead letters)"),
    Phase("pack_telescope",
          compute=_observe_reflectors,
          inputs=("world",),
          provides="reflector_feed",
          enabled=_reflector_enabled,
          fallback=lambda ctx, world: None,
          annotations=lambda feed, ctx: {
              "reflections": len(feed) if feed else 0},
          doc="pack: reflector-query inference branch (amplification)"),
    Phase("pack_feed",
          compute=_merge_curated_feeds,
          inputs=("feed_attacks", "reflector_feed"),
          provides="curated_feed",
          enabled=_reflector_enabled,
          fallback=lambda ctx, feed_attacks, reflector_feed: feed_attacks,
          annotations=lambda merged, ctx: {"records": len(merged)},
          doc="pack: merge backscatter + reflector feeds for the join"),
    Phase("open_resolvers",
          compute=_scan_open_resolvers,
          inputs=("world",),
          traced=False,
          doc="open-resolver scan used to filter reflection targets"),
    Phase("join",
          compute=_join_feed_and_crawl,
          inputs=("curated_feed", "world", "open_resolvers"),
          cache_key="join",
          annotations=lambda join, ctx: {
              "records": len(join.classified),
              "rejected": len(join.rejected)},
          doc="§4 join: classify feed attacks against the domain directory"),
    Phase("metadata",
          compute=_build_metadata,
          inputs=("world",),
          traced=False,
          doc="NSSet metadata (prefix2AS, AS2Org, anycast census)"),
    Phase("events",
          compute=_extract_events,
          inputs=("join", "store", "metadata"),
          cache_key="events",
          annotations=lambda events, ctx: {"events": len(events)},
          doc="attack events with per-window impact series"),
    Phase("counterfactuals",
          compute=_run_counterfactuals,
          inputs=("world", "events"),
          enabled=_counterfactual_enabled,
          fallback=lambda ctx, world, events: None,
          annotations=lambda report, ctx: {
              "attacks": report.n_attacks if report else 0},
          doc="pack: layered-mitigation impact deltas (defense)"),
    Phase("store_metrics",
          compute=_publish_store_metrics,
          inputs=("store",),
          traced=False,
          doc="publish repro.store.* totals to the run's registry"),
)

#: The validated Figure-1 dataflow, in deterministic topological order.
STUDY_GRAPH = PhaseGraph(STUDY_PHASES, name="study")


def study_graph(analyses: bool = True) -> PhaseGraph:
    """The declared study DAG; with ``analyses`` the nine lazy
    :class:`Study` analyses are grafted on as consumer nodes (what
    ``python -m repro graph`` prints)."""
    if not analyses:
        return STUDY_GRAPH
    extra = tuple(analysis_graph(Study).phases)
    return PhaseGraph(STUDY_PHASES + extra, name="study")


class _CompanyRanking(list):
    """Table 6: the full company ranking; callable to take the top n
    (the historical ``study.top_companies(n)`` signature)."""

    def __call__(self, n: int = 10) -> List:
        return list(self[:n])


@dataclass
class Study:
    """All datasets and lazily-computed analyses of one run."""

    config: WorldConfig
    world: World
    feed: RSDoSFeed
    store: MeasurementStore
    open_resolvers: OpenResolverScan
    join: DatasetJoin
    metadata: NSSetMetadata
    events: List[AttackEvent]
    #: the reflector-query feed of the pack's extra telescope branch
    #: (None unless the pack declares ``reflector_queries``).
    reflector_feed: Optional[object] = None
    #: the pack's mitigation counterfactual report (None unless the
    #: pack declares ``has_counterfactuals``).
    counterfactuals: Optional[object] = None
    #: the fault injector of a chaos run (None on clean runs); carries
    #: the injected-fault log and the feed job's dead letters.
    chaos: Optional["FaultInjector"] = None
    #: the run's telemetry (metrics + phase spans); defaults to the
    #: shared no-op bundle, and is never ``None`` after construction.
    telemetry: RunTelemetry = None

    def __post_init__(self) -> None:
        if self.telemetry is None:
            self.telemetry = NULL_TELEMETRY

    @property
    def pack(self):
        """The run's scenario pack (see :mod:`repro.attacks.packs`)."""
        pack = getattr(self.world, "pack", None)
        if pack is not None:
            return pack
        from repro.attacks.packs import get_pack

        return get_pack(self.config.scenario_pack, self.config.pack_params)

    def pack_analysis(self):
        """The pack's own analysis of this study (``None`` for packs
        that add nothing, e.g. the default volumetric pack)."""
        pack = self.pack
        return pack.analyze(self) if pack is not None else None

    @property
    def degraded_events(self) -> List[AttackEvent]:
        """Events whose impact series was built on impaired data."""
        return [e for e in self.events if e.degraded]

    @property
    def degraded(self) -> bool:
        """True when any pipeline stage ran on impaired inputs.

        Ingest-rejected measurement rows count: damaged RTT telemetry
        that the store refused to aggregate still means the crawl ran on
        impaired inputs, even when every surviving aggregate, join
        record, and event is clean.
        """
        return (self.join.degraded or self.store.n_rejected > 0
                or bool(self.degraded_events))

    @cached_analysis(deps=("join",))
    def monthly(self) -> MonthlySummary:
        """Table 3 / Table 1."""
        return monthly_summary(self.join)

    @cached_analysis(deps=("join",))
    def ports(self) -> PortAnalysis:
        """Figure 6."""
        return analyze_ports(self.join)

    @cached_analysis(deps=("events",))
    def successful_ports(self) -> PortAnalysis:
        """§6.3.1's successful-attack port mix."""
        return analyze_successful_ports(self.events)

    @cached_analysis(deps=("events",))
    def failures(self) -> FailureAnalysis:
        """Figure 7 / §6.3.1."""
        return analyze_failures(self.events)

    @cached_analysis(deps=("events",))
    def impact(self) -> ImpactAnalysis:
        """Figure 8 / §6.3.2."""
        return analyze_impact(self.events)

    @cached_analysis(deps=("events",))
    def correlation(self) -> CorrelationAnalysis:
        """Figures 9-10."""
        return analyze_correlation(self.events)

    @cached_analysis(deps=("events",))
    def resilience(self) -> ResilienceAnalysis:
        """Figures 11-13."""
        return analyze_resilience(self.events)

    @cached_analysis(deps=("events",))
    def top_companies(self) -> "_CompanyRanking":
        """Table 6 (call with ``n`` for the top slice)."""
        return _CompanyRanking(
            top_companies_by_impact(self.events, n=len(self.events)))

    @cached_analysis(deps=("world", "feed"))
    def visibility(self):
        """§4.3 quantified: what the telescope missed (oracle view —
        uses the world's ground truth, so it is a simulation-only
        analysis, clearly separated from the dataset-pure ones)."""
        from repro.core.visibility import analyze_visibility

        return analyze_visibility(self.world.attacks, self.feed)

    @classmethod
    def analysis_graph(cls) -> PhaseGraph:
        """The validated DAG of the declared ``analysis.*`` nodes."""
        return analysis_graph(cls)

    def report(self) -> str:
        """The full textual study report."""
        from repro.core.report import render_report

        return render_report(self)


def _open_phase_cache(cache, config: WorldConfig, world: Optional[World],
                      chaos: Optional["ChaosConfig"],
                      install_scenarios: bool,
                      telemetry: RunTelemetry):
    """Gate and open the artifact cache for one run.

    Chaos runs and pre-built worlds bypass the cache with a
    :class:`RuntimeWarning`; otherwise returns the opened
    :class:`~repro.artifacts.cache.PhaseCache` and the run's chained
    fingerprint keys.
    """
    if cache is None:
        return None, {}
    if chaos is not None:
        _warn_bypass(CHAOS_CACHE_REASON, stacklevel=4)
        return None, {}
    if world is not None:
        _warn_bypass(PREBUILT_WORLD_REASON, stacklevel=4)
        return None, {}
    from repro.artifacts.cache import PhaseCache
    from repro.artifacts.fingerprint import study_keys

    return (PhaseCache.open(cache, telemetry=telemetry),
            study_keys(config, install_scenarios))


def run_study(config: Optional[WorldConfig] = None,
              world: Optional[World] = None,
              progress: Optional[Callable[[int, int], None]] = None,
              install_scenarios: bool = True,
              chaos: Optional["ChaosConfig"] = None,
              n_workers: int = 1,
              telemetry: Optional[RunTelemetry] = None,
              cache: Optional[Union[str, "ArtifactStore",
                                    "PhaseCache"]] = None,
              columnar: bool = False,
              journal: Optional[Union[str, RunJournal]] = None,
              profile: bool = False) -> Study:
    """Run the full pipeline: world -> telescope + OpenINTEL -> join ->
    events. Pass a pre-built ``world`` to reuse one across analyses.

    The run executes :data:`STUDY_GRAPH` — the declared §4 dataflow —
    through the :class:`repro.engine.Executor`; spans, cache traffic,
    and the chaos worker policy are engine middleware, applied
    identically to every phase.

    ``n_workers > 1`` runs the crawl — the dominant cost of every
    figure and table — sharded across processes forked from the
    pre-built world (:meth:`OpenIntelPlatform.run_parallel`). Results
    are bit-for-bit identical for any worker count, so every downstream
    analysis is unchanged; only the wall clock shrinks. Chaos runs
    force a serial crawl (with a warning): the fault injector is
    stateful — its burst state, fault log, and RNG streams live in the
    parent and cannot be meaningfully merged across forked workers.

    ``chaos`` enables seeded fault injection on the pipeline's
    measurement surfaces (see :mod:`repro.chaos`): the crawl's transport
    is wrapped, measurement rows may be damaged at store ingest, the
    feed is faulted and re-validated through a hardened streaming job
    (poison records dead-letter with metadata), and the measurement
    store is damaged post-crawl. Analyses then degrade — flagging
    affected events — rather than crash. With every fault probability
    at zero the run is byte-identical to a clean one.

    ``telemetry`` threads a :class:`repro.obs.RunTelemetry` through the
    run: per-phase spans (world build, telescope, crawl, join, events —
    the lazy analyses span as they are computed), ``repro.crawl.*``
    shard stats merged across workers, ``repro.stream.*`` /
    ``repro.chaos.*`` counters on a chaos run, and ``repro.store.*``
    ingest totals. Telemetry observes only — it draws from no seeded
    RNG, and every study output is bit-identical whether it is enabled
    or the default no-op bundle (a test asserts this).

    ``cache`` enables the :mod:`repro.artifacts` phase cache: a cache
    directory path (created if missing), an
    :class:`~repro.artifacts.store.ArtifactStore`, or a ready
    :class:`~repro.artifacts.cache.PhaseCache`. Each expensive phase
    (telescope, crawl, join, events) is keyed by a fingerprint chained
    from the canonical config; on a hit the phase is skipped — its span
    is annotated ``cached=True`` and ``repro.cache.*`` counters record
    the traffic — and on a miss the freshly-computed artifact is
    stored. Warm-cache output is bit-identical to cold, at any worker
    count (tests assert it). Chaos runs bypass the cache entirely
    (faults must never be cached), as do runs on a pre-built ``world``
    (its build flags cannot be fingerprinted); both warn.

    ``columnar`` routes the three hottest paths — telescope window
    inference, crawl measurement ingest, and the 5-minute bucket walk
    of event extraction — through :mod:`repro.columnar` batch columns
    instead of per-record objects. Output is **bit-identical** to the
    object path (the goldens assert it end to end, at any worker
    count, warm or cold cache), so the flag changes wall clock and the
    ``repro.columnar.*`` metrics, nothing else — it does not enter the
    cache fingerprint. Chaos runs force the object path (with a
    warning): the fault injector hooks per-row store ingest, which a
    batch flush would bypass.

    ``journal`` writes the run's append-only JSONL event log (see
    :mod:`repro.obs.journal`): a path opens (and closes) a fresh
    :class:`~repro.obs.RunJournal` for this run; an already-open
    journal is attached as-is and left open, so the caller's later
    lazy-analysis accesses keep journaling. ``profile`` turns on
    per-phase resource profiling (:mod:`repro.obs.profile`), published
    as ``repro.profile.*`` gauges. Either flag upgrades a default no-op
    telemetry to an enabled bundle; both observe only — stdout and
    every study output stay byte-identical (asserted in tests and CI).
    """
    telemetry = telemetry or NULL_TELEMETRY
    if (journal is not None or profile) and telemetry is NULL_TELEMETRY:
        telemetry = RunTelemetry.create()
    owns_journal = False
    if journal is not None:
        if isinstance(journal, str):
            journal = RunJournal(journal, run_id=telemetry.run_id,
                                 clock=telemetry.clock,
                                 started_at_utc=telemetry.started_at_utc)
            owns_journal = True
        telemetry.attach_journal(journal)
    config = world.config if world is not None else (config or WorldConfig())
    phase_cache, keys = _open_phase_cache(cache, config, world, chaos,
                                          install_scenarios, telemetry)
    injector: Optional["FaultInjector"] = None
    if chaos is not None:
        from repro.chaos.injector import FaultInjector

        injector = FaultInjector(chaos, telemetry=telemetry)
    if columnar and injector is not None:
        _warn_bypass(COLUMNAR_CHAOS_REASON, stacklevel=2)
        columnar = False

    ctx = RunContext(telemetry=telemetry, params={
        "config": config,
        "world": world,
        "injector": injector,
        "install_scenarios": install_scenarios,
        "n_workers": n_workers,
        "progress": progress,
        "columnar": columnar,
    })
    profiler = None
    if profile:
        from repro.obs.profile import PhaseProfiler

        profiler = PhaseProfiler(telemetry.registry)
    middleware = [SpanMiddleware(), JournalMiddleware()]
    if profiler is not None:
        middleware.append(ProfileMiddleware(profiler))
    middleware += [
        CacheMiddleware(phase_cache, keys),
        WorkerPolicy(
            serial=injector is not None and injector.forces_serial_crawl,
            warn=lambda: _warn_bypass(SERIAL_CRAWL_REASON, stacklevel=9)),
    ]
    executor = Executor(STUDY_GRAPH, middleware=middleware)
    jnl = telemetry.journal
    jnl.emit("run.start", run_id=telemetry.run_id, seed=config.seed,
             n_domains=config.n_domains, n_workers=n_workers,
             chaos=injector is not None, columnar=columnar,
             cached=phase_cache is not None, profiled=profile)
    try:
        values = executor.run(ctx, root_span="study",
                              root_meta={"seed": config.seed,
                                         "n_domains": config.n_domains})
        study = Study(config=config, world=values["world"],
                      feed=values["feed"], store=values["store"],
                      open_resolvers=values["open_resolvers"],
                      join=values["join"], metadata=values["metadata"],
                      events=values["events"],
                      reflector_feed=values.get("reflector_feed"),
                      counterfactuals=values.get("counterfactuals"),
                      chaos=injector, telemetry=telemetry)
        if jnl.enabled:
            if study.degraded:
                jnl.emit("degraded",
                         join_rejected=len(study.join.rejected),
                         store_rejected=study.store.n_rejected,
                         degraded_events=len(study.degraded_events))
            jnl.emit("run.finish", degraded=study.degraded,
                     faults=len(injector.events) if injector else 0)
        return study
    finally:
        if profiler is not None:
            profiler.close()
        if owns_journal:
            journal.close()
