"""End-user impact under caching (§6.3.1's discussion, Moura et al. 2018).

The paper notes that the end-user impact of a resolution failure depends
on caching policy: "a popular domain (i.e., queried frequently,
available in most caches) with a high TTL value may be less affected
than a less popular one" — and cites Moura et al.'s finding that caches
let almost all users tolerate attacks causing up to ~50% packet loss.

This module models a recursive resolver's cache during an attack: user
queries arrive at rate ``qph`` (queries per hour), cache entries live
``ttl`` seconds, and during the attack each cache-miss refresh fails
with probability ``failure_p``. A user-visible failure is a query that
misses the cache and whose refresh fails.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.util.rng import derive_seed
from repro.util.timeutil import HOUR, Window


@dataclass(frozen=True)
class CacheScenario:
    """One (popularity, TTL) configuration of a domain."""

    queries_per_hour: float
    ttl_s: int

    def __post_init__(self) -> None:
        if self.queries_per_hour <= 0:
            raise ValueError("query rate must be positive")
        if self.ttl_s < 0:
            raise ValueError("ttl must be non-negative")


@dataclass
class EndUserImpact:
    """User-visible outcome of one attack under one cache scenario."""

    scenario: CacheScenario
    n_queries: int
    n_failed: int
    #: seconds after attack start until the first user-visible failure
    #: (None if the cache carried users through the whole attack).
    first_failure_after_s: Optional[int]

    @property
    def failure_share(self) -> float:
        return self.n_failed / self.n_queries if self.n_queries else 0.0


def simulate_enduser_impact(rng: random.Random, scenario: CacheScenario,
                            attack: Window, failure_p: float,
                            lead_s: int = 24 * 3600) -> EndUserImpact:
    """Simulate one resolver cache through ``attack``.

    ``lead_s`` of pre-attack traffic warms the cache; during the attack
    a cache miss fails with probability ``failure_p`` (and the stale
    entry is NOT served — the pre-serve-stale behaviour of the study
    period). Deterministic given the rng.
    """
    if not 0 <= failure_p <= 1:
        raise ValueError("failure_p must be within [0, 1]")
    rate_s = scenario.queries_per_hour / HOUR
    # The warm-up must be long enough for the cache to reach steady
    # state, and its length randomized over one TTL: refresh instants
    # phase-lock to multiples of the TTL under high query rates, and a
    # deterministic lead would pin an expiry right at the attack start —
    # the steady-state expiry phase at attack onset is uniform in [0, TTL).
    lead_s = max(lead_s, int(scenario.ttl_s * (1.0 + rng.random())) + 1)
    ts = float(attack.start - lead_s)
    cache_expiry = -math.inf
    n_queries = 0
    n_failed = 0
    first_failure: Optional[int] = None
    while ts < attack.end:
        ts += rng.expovariate(rate_s)
        if ts >= attack.end:
            break
        in_attack = attack.contains(int(ts))
        if ts < cache_expiry:
            if in_attack:
                n_queries += 1  # served from cache: a success
            continue
        # Cache miss: refresh against the authoritatives.
        refresh_fails = in_attack and rng.random() < failure_p
        if in_attack:
            n_queries += 1
            if refresh_fails:
                n_failed += 1
                if first_failure is None:
                    first_failure = int(ts) - attack.start
        if not refresh_fails:
            cache_expiry = ts + scenario.ttl_s
    return EndUserImpact(scenario=scenario, n_queries=n_queries,
                         n_failed=n_failed,
                         first_failure_after_s=first_failure)


def analytic_failure_share(scenario: CacheScenario, attack_s: int,
                           failure_p: float) -> float:
    """Closed-form approximation of the user-visible failure share.

    With query inter-arrival 1/lambda and TTL T, the cache-miss share of
    queries is ``1 / (1 + lambda*T_eff)`` where ``T_eff`` accounts for
    retries extending outages; under failure probability f each miss
    fails f until a refresh succeeds. For f < 1 the expected outage run
    per expiry is geometric; this approximation is validated against the
    simulation in the test suite.
    """
    lam = scenario.queries_per_hour / HOUR
    if failure_p >= 1.0:
        # The cache carries users only until the first expiry.
        covered = min(scenario.ttl_s / 2.0, attack_s)
        return max(0.0, 1.0 - covered / attack_s) if attack_s else 0.0
    # Renewal argument: each successful refresh covers T seconds plus
    # the expected failed-miss run before the next success.
    expected_failures_per_cycle = failure_p / (1.0 - failure_p)
    expected_queries_per_cycle = lam * scenario.ttl_s + 1 \
        + expected_failures_per_cycle
    return expected_failures_per_cycle / expected_queries_per_cycle


def caching_grid(seed: int, attack: Window, failure_p: float,
                 popularities: Sequence[float] = (1.0, 10.0, 100.0, 1000.0),
                 ttls: Sequence[int] = (60, 300, 3600, 86400),
                 ) -> List[Tuple[CacheScenario, EndUserImpact]]:
    """The §6.3.1 claim as a grid: user-visible failure share by
    (popularity, TTL). Popular domains with high TTLs fail least."""
    out = []
    for qph in popularities:
        for ttl in ttls:
            scenario = CacheScenario(queries_per_hour=qph, ttl_s=ttl)
            rng = random.Random(derive_seed(seed, "enduser",
                                            f"{qph}:{ttl}"))
            out.append((scenario,
                        simulate_enduser_impact(rng, scenario, attack,
                                                failure_p)))
    return out
