"""Textual study report: every table and key takeaway in one document."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.correlation import duration_impact_buckets
from repro.core.resilience import complete_failure_prefix_shares
from repro.core.topasn import top_attacked_asns, top_attacked_ips
from repro.net.ports import PORT_DNS, PORT_HTTP, PORT_HTTPS, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.util.tables import Table, format_count, format_pct

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.pipeline import Study


def render_report(study: "Study") -> str:
    """Render the full study report as plain text."""
    sections = [
        _header(study),
        _monthly_table(study),
        _ports_section(study),
        _failure_section(study),
        _impact_section(study),
        _correlation_section(study),
        _resilience_section(study),
        _top_targets_section(study),
        _visibility_section(study),
    ]
    # The scenario pack's extra section appears only when the pack has
    # one (the default volumetric pack returns None), so default-path
    # reports stay byte-identical to the pre-pack pipeline.
    pack = study.pack
    if pack is not None:
        section = pack.report_section(study)
        if section:
            sections.append(section)
    return "\n\n".join(sections)


def _header(study: "Study") -> str:
    config = study.config
    lines = [
        "DDoS impact on DNS infrastructure - study report",
        "=" * 48,
        f"window     : {config.start} .. {config.end_exclusive} (exclusive)",
        f"domains    : {format_count(len(study.world.directory))}",
        f"attacks    : {format_count(len(study.feed.attacks))} inferred "
        f"(of {format_count(len(study.world.attacks))} ground truth)",
        f"events     : {format_count(len(study.events))} "
        f"(NSSets with >= {config.event_min_domains} measured domains)",
        f"measurements: {format_count(study.store.n_measurements)}",
    ]
    # Chaos/degradation flags appear only when they apply, so a clean
    # run's report is unchanged — and a zero-probability chaos run stays
    # byte-identical to a clean one — but a faulted run is visibly marked.
    if study.chaos is not None and (study.chaos.events
                                    or study.chaos.dead_letters):
        injector = study.chaos
        lines.append(
            f"chaos      : {len(injector.events)} faults injected "
            f"(seed {injector.config.seed}, "
            f"{len(injector.dead_letters)} feed records dead-lettered)")
    if study.degraded:
        lines.append(
            f"degraded   : YES - {len(study.degraded_events)}/"
            f"{len(study.events)} events degraded, "
            f"{len(study.join.rejected)} join rejects, "
            f"{study.store.n_rejected} store rejects")
    return "\n".join(lines)


def _monthly_table(study: "Study") -> str:
    table = Table(["month", "#DNS attacks", "#other", "total",
                   "DNS IPs", "other IPs", "unique IPs"],
                  title="Monthly attack activity (Table 3)")
    for row in study.monthly.rows:
        table.add_row([
            f"{row.year}-{row.month:02d}",
            f"{row.dns_attacks} ({format_pct(row.dns_attack_share)})",
            row.other_attacks, row.total_attacks,
            f"{len(row.dns_ips)} ({format_pct(row.dns_ip_share)})",
            len(row.other_ips), row.total_ips])
    summary = study.monthly
    lo, hi = summary.dns_share_range()
    table.caption = (f"total: {format_count(summary.total_attacks)} attacks, "
                     f"DNS share {format_pct(summary.dns_attack_share)} "
                     f"(monthly {format_pct(lo)}..{format_pct(hi)})")
    return table.render()


def _ports_section(study: "Study") -> str:
    ports = study.ports
    ok = study.successful_ports
    lines = [
        "Targeted services (Figure 6 / §6.2)",
        f"  single-port attacks : {format_pct(ports.single_port_share)} (paper 80.7%)",
        f"  TCP / UDP / ICMP    : {format_pct(ports.proto_share(PROTO_TCP))} / "
        f"{format_pct(ports.proto_share(PROTO_UDP))} / "
        f"{format_pct(ports.proto_share(PROTO_ICMP))} (paper 90.4/8.4/1.2%)",
        f"  TCP port 80 / 53    : "
        f"{format_pct(ports.port_share_within_proto(PROTO_TCP, PORT_HTTP))} / "
        f"{format_pct(ports.port_share_within_proto(PROTO_TCP, PORT_DNS))} "
        f"(paper 37/30%)",
        f"  UDP port 53         : "
        f"{format_pct(ports.port_share_within_proto(PROTO_UDP, PORT_DNS))} "
        f"(paper ~33%)",
    ]
    if ok.n_attacks:
        lines.append(
            f"  successful attacks  : port 53 {format_pct(ok.port_share(PORT_DNS))}, "
            f"port 80 {format_pct(ok.port_share(PORT_HTTP))}, "
            f"port 443 {format_pct(ok.port_share(PORT_HTTPS))} (paper 49/31/11%)")
    return "\n".join(lines)


def _failure_section(study: "Study") -> str:
    f = study.failures
    return "\n".join([
        "Resolution failures (Figure 7 / §6.3.1)",
        f"  events with failures : {f.n_failing_events}/{f.n_events} "
        f"({format_pct(f.failing_share)}; paper ~1%)",
        f"  failure split        : timeout {format_pct(f.timeout_share_of_failures)}, "
        f"servfail {format_pct(f.servfail_share_of_failures)} (paper 92/8%)",
        f"  failing on unicast   : {format_pct(f.unicast_share_of_failing)} (paper 99%)",
        f"  failing single-ASN   : {format_pct(f.single_asn_share_of_failing)} (paper 81%)",
        f"  failing single-/24   : {format_pct(f.single_prefix_share_of_failing)} (paper 60%)",
    ])


def _impact_section(study: "Study") -> str:
    imp = study.impact
    lines = [
        "RTT impact (Figure 8 / §6.3.2)",
        f"  events >=10x  : {imp.over_10x} "
        f"({format_pct(imp.over_10x_share)}; paper ~5%)",
        f"  of those >=100x: {imp.over_100x} "
        f"({format_pct(imp.over_100x_share_of_10x)}; paper ~1/3)",
    ]
    table = Table(["company", "impact"], title="Most affected companies (Table 6)")
    for company, impact in study.top_companies(10):
        table.add_row([company, f"{impact:.0f}x"])
    return "\n".join(lines) + "\n\n" + table.render()


def _correlation_section(study: "Study") -> str:
    corr = study.correlation
    lines = [
        "Correlations (Figures 9-10 / §6.4-6.5)",
        f"  {corr.summary()}",
    ]
    table = Table(["duration", "events", ">=10x impact"],
                  title="Impact by attack duration (Figure 10)")
    for label, n, high in duration_impact_buckets(study.events):
        table.add_row([label, n, high])
    if corr.longest_high_impact:
        company, duration, impact = corr.longest_high_impact
        lines.append(f"  longest high-impact event: {company}, "
                     f"{duration / 3600:.1f} h, {impact:.0f}x "
                     f"(paper: Contabo, 19 h, 30x)")
    return "\n".join(lines) + "\n\n" + table.render()


def _resilience_section(study: "Study") -> str:
    res = study.resilience
    table = Table(["stratum", "events", "median", ">=10x", ">=100x", "failing"],
                  title="Resilience efficacy (Figures 11-13)")

    def fmt(stats) -> List:
        median = f"{stats.median_impact:.2f}x" if stats.median_impact else "-"
        return [stats.label, stats.n_events, median,
                format_pct(stats.over_10x_share), stats.over_100x,
                format_pct(stats.failing_share)]

    for label in ("anycast", "partial", "unicast"):
        if label in res.by_anycast:
            table.add_row(fmt(res.by_anycast[label]))
    table.add_separator()
    for label in sorted(res.by_asn_count):
        table.add_row(fmt(res.by_asn_count[label]))
    table.add_separator()
    for label in sorted(res.by_prefix_count):
        table.add_row(fmt(res.by_prefix_count[label]))
    shares = complete_failure_prefix_shares(study.events)
    caption = ", ".join(f"{k}: {format_pct(v)}" for k, v in shares.items())
    table.caption = f"complete failures by prefix diversity: {caption or 'none'}"
    return table.render()


def _top_targets_section(study: "Study") -> str:
    asn_table = Table(["ASN", "#attacks", "company"],
                      title="Top attacked ASNs (Table 4)")
    for ranked in top_attacked_asns(study.join, study.metadata, 10):
        asn_table.add_row([ranked.asn, ranked.n_attacks, ranked.company])
    ip_table = Table(["IP", "#attacks", "type"],
                     title="Top attacked IPs (Table 5)")
    for ranked in top_attacked_ips(study.join, study.metadata,
                                   study.open_resolvers, 10):
        marker = " (open resolver)" if ranked.is_open_resolver else ""
        ip_table.add_row([ranked.ip_text, ranked.n_attacks,
                          ranked.label + marker])
    return asn_table.render() + "\n\n" + ip_table.render()


def _visibility_section(study: "Study") -> str:
    report = study.visibility
    lines = ["Telescope visibility (§4.3, ground-truth oracle)"]
    for name, (detected, total) in sorted(report.by_class.items()):
        share = detected / total if total else 0.0
        lines.append(f"  {name:38s}: {detected}/{total} "
                     f"({format_pct(share)})")
    if report.multivector_underestimate is not None:
        lines.append(f"  multi-vector rate seen: "
                     f"{format_pct(report.multivector_underestimate)} of truth")
    return "\n".join(lines)
