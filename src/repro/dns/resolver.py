"""The unbound-like *agnostic* stub resolver.

OpenINTEL resolves through unbound configured to pick a random
authoritative nameserver for the first query of each registered domain
(paper §3.2). That agnostic behaviour is what makes the paper's
measurements representative of an empty-cache end user: when a random
pick lands on a dead server the resolver eats a retransmission timeout
before trying another, inflating the observed resolution time — the very
signal Figures 2/8 are built on.

The resolver here reproduces that mechanism: uniform random server
selection without immediate repeats, a fixed retransmission schedule,
and accounting of the *total* elapsed resolution time across attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.dns.name import DomainName
from repro.dns.rcode import Rcode, ResponseStatus
from repro.dns.rr import RRType
from repro.dns.server import ServerReply

# A transport resolves (ns_ip, qname, qtype, epoch_seconds) -> ServerReply.
# The simulated world provides one that knows about attack load; tests
# provide scripted ones.
Transport = Callable[[int, DomainName, RRType, float], ServerReply]


@dataclass(frozen=True)
class ResolverConfig:
    """Retransmission policy.

    ``attempt_timeout_ms`` doubles after each timeout up to
    ``max_timeout_ms`` (unbound-style exponential backoff);
    ``max_attempts`` bounds the total datagrams sent before the client
    gives up and reports TIMEOUT. ``deadline_ms`` is the overall client
    budget (OpenINTEL's workers cap resolution time).
    """

    attempt_timeout_ms: float = 1500.0
    max_timeout_ms: float = 6000.0
    max_attempts: int = 6
    deadline_ms: float = 15000.0
    servfail_is_terminal: bool = False

    def __post_init__(self) -> None:
        if self.attempt_timeout_ms <= 0 or self.max_timeout_ms < self.attempt_timeout_ms:
            raise ValueError("invalid timeout configuration")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        # A single attempt may never overrun the overall client budget:
        # clamp the retransmission timers into the deadline, so the
        # first timer firing cannot blow past what the worker allows.
        if self.attempt_timeout_ms > self.deadline_ms:
            object.__setattr__(self, "attempt_timeout_ms", float(self.deadline_ms))
        if self.max_timeout_ms > self.deadline_ms:
            object.__setattr__(self, "max_timeout_ms", float(self.deadline_ms))


@dataclass(frozen=True)
class QueryOutcome:
    """One attempt: which server, what happened, how long it took."""

    ns_ip: int
    reply: ServerReply
    elapsed_ms: float


@dataclass
class ResolutionResult:
    """The end-to-end outcome of resolving one (qname, qtype).

    ``rtt_ms`` is the total wall-clock the client spent, including
    timeouts burned on unresponsive servers — this matches OpenINTEL's
    recorded round-trip-to-complete-the-query.
    """

    qname: DomainName
    qtype: RRType
    status: ResponseStatus
    rtt_ms: float
    attempts: List[QueryOutcome] = field(default_factory=list)

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def answering_ns(self) -> Optional[int]:
        """IP of the server that produced the terminal answer, if any."""
        for outcome in reversed(self.attempts):
            if outcome.reply.answered:
                return outcome.ns_ip
        return None

    @property
    def servers_tried(self) -> Tuple[int, ...]:
        seen: List[int] = []
        for outcome in self.attempts:
            if outcome.ns_ip not in seen:
                seen.append(outcome.ns_ip)
        return tuple(seen)


class AgnosticResolver:
    """Stub resolver with uniform random nameserver selection.

    Parameters
    ----------
    transport:
        Callable that delivers a single query datagram to a nameserver
        IP and reports the observed :class:`ServerReply`.
    rng:
        ``random.Random`` used for server selection (seeded per
        measurement platform for reproducibility).
    config:
        Retransmission policy.
    """

    def __init__(self, transport: Transport, rng, config: Optional[ResolverConfig] = None):
        self.transport = transport
        self.rng = rng
        self.config = config or ResolverConfig()

    def _pick(self, servers: Sequence[int], last: Optional[int]) -> int:
        """Uniform random pick, avoiding the immediately-previous server
        when an alternative exists (unbound demotes a timed-out server)."""
        if len(servers) == 1:
            return servers[0]
        while True:
            choice = self.rng.choice(servers)
            if choice != last:
                return choice

    def resolve(self, qname, qtype: RRType, servers: Sequence[int],
                when: float) -> ResolutionResult:
        """Resolve ``qname``/``qtype`` against an NSSet of server IPs.

        ``when`` is the epoch-seconds instant the first datagram leaves;
        subsequent attempts advance it by the elapsed timeouts so the
        world model sees queries at the correct instants during an
        evolving attack.
        """
        qname = DomainName(qname)
        if not servers:
            return ResolutionResult(qname, qtype, ResponseStatus.NETWORK_ERROR, 0.0)
        cfg = self.config
        elapsed = 0.0
        timeout = cfg.attempt_timeout_ms
        attempts: List[QueryOutcome] = []
        last: Optional[int] = None
        servfails = 0
        for _ in range(cfg.max_attempts):
            ns_ip = self._pick(servers, last)
            last = ns_ip
            reply = self.transport(ns_ip, qname, qtype, when + elapsed / 1000.0)
            if reply.answered and reply.rtt_ms <= timeout:
                cost = reply.rtt_ms
            else:
                # Dropped, or the response arrived after the timer fired:
                # the client burns the full timeout either way.
                reply = ServerReply.dropped() if not reply.answered else reply
                cost = timeout
            remaining = cfg.deadline_ms - elapsed
            if cost > remaining:
                # Deadline exhausted. If an authoritative answered with
                # SERVFAIL along the way, that is the resolver's verdict
                # (unbound reports SERVFAIL, not timeout, in this case).
                elapsed = cfg.deadline_ms
                attempts.append(QueryOutcome(ns_ip, ServerReply.dropped(), remaining))
                status = (ResponseStatus.SERVFAIL if servfails
                          else ResponseStatus.TIMEOUT)
                return ResolutionResult(qname, qtype, status, elapsed, attempts)
            elapsed += cost
            attempts.append(QueryOutcome(ns_ip, reply, cost))
            if reply.answered and reply.rtt_ms <= timeout:
                if reply.rcode == Rcode.NOERROR:
                    return ResolutionResult(qname, qtype, ResponseStatus.OK,
                                            elapsed, attempts)
                if reply.rcode == Rcode.NXDOMAIN:
                    return ResolutionResult(qname, qtype, ResponseStatus.NXDOMAIN,
                                            elapsed, attempts)
                if reply.rcode == Rcode.SERVFAIL:
                    servfails += 1
                    if cfg.servfail_is_terminal:
                        return ResolutionResult(qname, qtype, ResponseStatus.SERVFAIL,
                                                elapsed, attempts)
                    # Otherwise fall through and try another server.
                elif reply.rcode == Rcode.REFUSED:
                    servfails += 1
            else:
                timeout = min(timeout * 2, cfg.max_timeout_ms)
        status = ResponseStatus.SERVFAIL if servfails else ResponseStatus.TIMEOUT
        return ResolutionResult(qname, qtype, status, elapsed, attempts)
