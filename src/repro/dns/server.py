"""Nameserver identity and per-query reply types.

The behavioural model of an authoritative server under load lives in
:mod:`repro.world.capacity`; this module defines the identity tuple the
rest of the system keys on and the reply a transport hands back to the
resolver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dns.name import DomainName
from repro.dns.rcode import Rcode
from repro.net.ip import ip_to_str, slash24_of


@dataclass(frozen=True)
class NameserverId:
    """Identity of one authoritative nameserver: hostname + IPv4.

    The paper keys everything on the IPv4 address (the RSDoS feed sees
    victim IPs), so equality/hash include the address. One hostname can
    map to several addresses and vice versa; each pairing is a distinct
    NameserverId.
    """

    host: DomainName
    ip: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "host", DomainName(self.host))
        if not 0 <= self.ip < 2 ** 32:
            raise ValueError(f"invalid IPv4 int: {self.ip}")

    @property
    def slash24(self) -> int:
        return slash24_of(self.ip)

    def __str__(self) -> str:
        return f"{self.host}@{ip_to_str(self.ip)}"


@dataclass(frozen=True)
class ServerReply:
    """What a server did with one query datagram.

    ``rtt_ms`` is the round-trip as observed by the client when a
    response arrived; ``None`` means the datagram (or its response) was
    dropped and the client will hit its retransmission timer.
    """

    rtt_ms: Optional[float]
    rcode: Rcode = Rcode.NOERROR

    @property
    def answered(self) -> bool:
        return self.rtt_ms is not None

    @classmethod
    def dropped(cls) -> "ServerReply":
        return cls(rtt_ms=None)

    @classmethod
    def ok(cls, rtt_ms: float) -> "ServerReply":
        return cls(rtt_ms=float(rtt_ms), rcode=Rcode.NOERROR)

    @classmethod
    def servfail(cls, rtt_ms: float) -> "ServerReply":
        return cls(rtt_ms=float(rtt_ms), rcode=Rcode.SERVFAIL)
