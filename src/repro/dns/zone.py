"""Zones and delegations.

A :class:`Zone` holds the authoritative data for an apex (SOA, NS, and
arbitrary records below the apex). A :class:`Delegation` captures the
parent-side view — the NS set and glue a registrant publishes at the
registry — which is what OpenINTEL's explicit NS queries ultimately
exercise and what the join pipeline maps attacks onto.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dns.name import DomainName
from repro.dns.rr import DEFAULT_TTL, RRType, RRset, ResourceRecord, SoaData


@dataclass(frozen=True)
class Delegation:
    """A registered domain's delegation: NS hostnames and their IPv4 glue.

    ``ns_addrs`` maps each NS hostname to its IPv4 address ints. The set
    of all addresses across hostnames is the domain's *NSSet* key in the
    paper's aggregation (§4.1).
    """

    domain: DomainName
    ns_addrs: Tuple[Tuple[DomainName, Tuple[int, ...]], ...]

    @classmethod
    def build(cls, domain, ns_addrs: Dict) -> "Delegation":
        pairs = tuple(
            (DomainName(host), tuple(sorted(int(a) for a in addrs)))
            for host, addrs in sorted(ns_addrs.items(), key=lambda kv: str(kv[0]))
        )
        return cls(DomainName(domain), pairs)

    @property
    def nameserver_hosts(self) -> Tuple[DomainName, ...]:
        return tuple(host for host, _ in self.ns_addrs)

    @property
    def nameserver_ips(self) -> Tuple[int, ...]:
        """Sorted unique IPv4 ints across all NS hosts — the NSSet key."""
        out = set()
        for _, addrs in self.ns_addrs:
            out.update(addrs)
        return tuple(sorted(out))

    def addresses_of(self, host) -> Tuple[int, ...]:
        host = DomainName(host)
        for h, addrs in self.ns_addrs:
            if h == host:
                return addrs
        raise KeyError(f"{host} is not a nameserver of {self.domain}")

    def __len__(self) -> int:
        return len(self.ns_addrs)


class Zone:
    """Authoritative zone contents for one apex."""

    def __init__(self, apex, soa: Optional[SoaData] = None):
        self.apex = DomainName(apex)
        self._rrsets: Dict[Tuple[DomainName, RRType], RRset] = {}
        if soa is None:
            soa = SoaData(
                mname=self.apex.child("ns1"),
                rname=DomainName("hostmaster." + self.apex.to_text()),
                serial=1,
            )
        self.add_record(self.apex, RRType.SOA, soa)

    @property
    def soa(self) -> SoaData:
        rrset = self._rrsets[(self.apex, RRType.SOA)]
        return rrset.records[0].rdata  # type: ignore[return-value]

    def bump_serial(self) -> int:
        """Increment the SOA serial (infrastructure change marker)."""
        old = self.soa
        new = SoaData(old.mname, old.rname, old.serial + 1,
                      old.refresh, old.retry, old.expire, old.minimum)
        self._rrsets[(self.apex, RRType.SOA)] = RRset(
            self.apex, RRType.SOA, [ResourceRecord(self.apex, RRType.SOA, new)])
        return new.serial

    def add_record(self, name, rtype: RRType, rdata, ttl: int = DEFAULT_TTL) -> None:
        name = DomainName(name)
        if not name.is_subdomain_of(self.apex):
            raise ValueError(f"{name} is outside zone {self.apex}")
        key = (name, rtype)
        rrset = self._rrsets.get(key)
        if rrset is None:
            rrset = RRset(name, rtype)
            self._rrsets[key] = rrset
        rrset.add(rdata, ttl)

    def get_rrset(self, name, rtype: RRType) -> Optional[RRset]:
        return self._rrsets.get((DomainName(name), rtype))

    def has_name(self, name) -> bool:
        name = DomainName(name)
        return any(key[0] == name for key in self._rrsets)

    def names(self) -> List[DomainName]:
        return sorted({key[0] for key in self._rrsets})

    def rrsets(self) -> Iterable[RRset]:
        return self._rrsets.values()

    def set_ns(self, hosts: Sequence, ttl: int = DEFAULT_TTL) -> None:
        """Replace the apex NS RRset."""
        rrset = RRset(self.apex, RRType.NS)
        for host in hosts:
            rrset.add(DomainName(host), ttl)
        self._rrsets[(self.apex, RRType.NS)] = rrset

    @property
    def ns_hosts(self) -> Tuple[DomainName, ...]:
        rrset = self.get_rrset(self.apex, RRType.NS)
        if rrset is None:
            return ()
        return tuple(rr.rdata for rr in rrset)  # type: ignore[misc]

    def __len__(self) -> int:
        return len(self._rrsets)

    def __repr__(self) -> str:
        return f"Zone({self.apex.to_text()!r}, rrsets={len(self)})"
