"""DNS response codes and OpenINTEL-style response statuses.

The wire protocol carries an RCODE; OpenINTEL's stored records use a
coarser *status* that also covers network-level outcomes (a timeout has
no RCODE because no response arrived). Both appear in the paper: §6.3.1
reports failures split 92% TIMEOUT / 8% SERVFAIL.
"""

from __future__ import annotations

import enum


class Rcode(enum.IntEnum):
    """RFC 1035/2136 response codes (the subset we use)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5

    def __str__(self) -> str:
        return self.name


class ResponseStatus(enum.Enum):
    """Measurement-level outcome of a resolution attempt.

    ``OK`` and ``SERVFAIL`` map onto RCODEs; ``TIMEOUT`` means every
    retransmission went unanswered; ``NETWORK_ERROR`` covers ICMP
    unreachable and similar transport failures.
    """

    OK = "ok"
    SERVFAIL = "servfail"
    NXDOMAIN = "nxdomain"
    TIMEOUT = "timeout"
    REFUSED = "refused"
    NETWORK_ERROR = "network_error"

    @property
    def is_failure(self) -> bool:
        return self not in (ResponseStatus.OK, ResponseStatus.NXDOMAIN)

    @property
    def is_answer(self) -> bool:
        """True when an authoritative response (of any rcode) arrived."""
        return self in (ResponseStatus.OK, ResponseStatus.SERVFAIL,
                        ResponseStatus.NXDOMAIN, ResponseStatus.REFUSED)

    @classmethod
    def from_rcode(cls, rcode: Rcode) -> "ResponseStatus":
        mapping = {
            Rcode.NOERROR: cls.OK,
            Rcode.SERVFAIL: cls.SERVFAIL,
            Rcode.NXDOMAIN: cls.NXDOMAIN,
            Rcode.REFUSED: cls.REFUSED,
        }
        try:
            return mapping[rcode]
        except KeyError:
            raise ValueError(f"no measurement status for rcode {rcode!r}") from None

    def __str__(self) -> str:
        return self.name
