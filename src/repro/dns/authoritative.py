"""Authoritative server engine: zone data -> wire-level responses.

Implements the RFC 1034 §4.3.2 answering algorithm over :class:`Zone`
objects: authoritative answers, CNAME chasing, delegations (referrals
with glue), NODATA and NXDOMAIN with the SOA in the authority section —
plus the response-size machinery the paper's §6.2 background rests on:
signed zones attach RRSIGs when the query sets the DNSSEC-OK bit, and
responses that exceed the client's UDP budget are truncated (TC=1),
pushing the client to retry over TCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dns.message import Edns, Message, encode_message
from repro.dns.name import DomainName
from repro.dns.rcode import Rcode
from repro.dns.rr import (
    DnskeyData,
    RRType,
    RRset,
    ResourceRecord,
    RrsigData,
)
from repro.dns.zone import Zone

#: Classic pre-EDNS UDP response budget (RFC 1035).
CLASSIC_UDP_LIMIT = 512

# A deliberately fake, fixed-size "signature": the simulation needs the
# *size* behaviour of DNSSEC (RSA/2048 signatures are 256 bytes), not
# cryptographic validity.
_FAKE_SIGNATURE = bytes(256)
_FAKE_KEY = bytes(258)
_SIGNING_ALGORITHM = 8  # RSASHA256
_VALIDITY = (1_600_000_000, 2_000_000_000)  # inception, expiration


@dataclass
class ServedZone:
    """A zone plus its serving options."""

    zone: Zone
    signed: bool = False

    @property
    def apex(self) -> DomainName:
        return self.zone.apex


class AuthoritativeServer:
    """Serves one or more zones, answering query messages."""

    def __init__(self) -> None:
        self._zones: Dict[DomainName, ServedZone] = {}
        self.queries_served = 0

    def add_zone(self, zone: Zone, signed: bool = False) -> None:
        if zone.apex in self._zones:
            raise ValueError(f"zone {zone.apex} already served")
        self._zones[zone.apex] = ServedZone(zone=zone, signed=signed)

    def zone_for(self, qname: DomainName) -> Optional[ServedZone]:
        """The most specific served zone containing ``qname``."""
        best: Optional[ServedZone] = None
        for served in self._zones.values():
            if qname.is_subdomain_of(served.apex):
                if best is None or len(served.apex) > len(best.apex):
                    best = served
        return best

    # -- answering ------------------------------------------------------------

    def handle_query(self, query: Message, tcp: bool = False) -> Message:
        """Answer one query message (RFC 1034 §4.3.2 flavour).

        With ``tcp=False`` the response is truncated (emptied, TC=1)
        when its wire form exceeds the client's UDP budget.
        """
        self.queries_served += 1
        if not query.questions:
            return query.response(rcode=Rcode.FORMERR, aa=False)
        question = query.questions[0]
        served = self.zone_for(question.qname)
        if served is None:
            return query.response(rcode=Rcode.REFUSED, aa=False)

        response = query.response()
        if query.edns:
            response.edns = Edns(udp_payload_size=1232, do=query.edns.do)
        want_dnssec = bool(query.edns and query.edns.do and served.signed)

        self._resolve_in_zone(served, question.qname, question.qtype,
                              response, want_dnssec)
        if not tcp:
            self._truncate_if_needed(response, query.max_udp_payload)
        return response

    def _resolve_in_zone(self, served: ServedZone, qname: DomainName,
                         qtype: RRType, response: Message,
                         want_dnssec: bool, depth: int = 0) -> None:
        zone = served.zone
        if depth > 8:  # CNAME loop guard
            response.flags = response.flags.__class__(
                qr=True, aa=True, rd=response.flags.rd, rcode=Rcode.SERVFAIL)
            return

        # Delegation below the apex? (A zone cut between apex and qname.)
        cut = self._find_zone_cut(zone, qname)
        if cut is not None:
            cut_name, ns_rrset = cut
            response.flags = response.flags.__class__(
                qr=True, aa=False, rd=response.flags.rd, rcode=Rcode.NOERROR)
            response.authorities.extend(ns_rrset.records)
            self._add_glue(zone, ns_rrset, response)
            return

        if not zone.has_name(qname):
            self._negative(zone, response, Rcode.NXDOMAIN)
            return

        rrset = zone.get_rrset(qname, qtype)
        if rrset:
            response.answers.extend(rrset.records)
            if want_dnssec:
                response.answers.append(self._sign(served, rrset))
            return

        cname = zone.get_rrset(qname, RRType.CNAME)
        if cname and qtype != RRType.CNAME:
            response.answers.extend(cname.records)
            if want_dnssec:
                response.answers.append(self._sign(served, cname))
            target: DomainName = cname.records[0].rdata  # type: ignore
            if target.is_subdomain_of(zone.apex):
                self._resolve_in_zone(served, target, qtype, response,
                                      want_dnssec, depth + 1)
            return

        self._negative(zone, response, Rcode.NOERROR)  # NODATA

    @staticmethod
    def _find_zone_cut(zone: Zone, qname: DomainName
                       ) -> Optional[Tuple[DomainName, RRset]]:
        """The closest-to-apex NS RRset at or below ``qname`` but below
        the apex — a zone cut delegating the subtree away. The qname
        itself can be the cut (a parent zone answering for a delegated
        child, e.g. ``com`` asked about ``example.com``)."""
        labels = qname.labels
        apex_depth = len(zone.apex.labels)
        for i in range(len(labels) - apex_depth - 1, -1, -1):
            candidate = DomainName(labels[i:])
            if candidate == zone.apex:
                continue
            ns = zone.get_rrset(candidate, RRType.NS)
            if ns:
                return candidate, ns
        return None

    @staticmethod
    def _add_glue(zone: Zone, ns_rrset: RRset, response: Message) -> None:
        for rr in ns_rrset.records:
            host: DomainName = rr.rdata  # type: ignore[assignment]
            glue = zone.get_rrset(host, RRType.A)
            if glue:
                response.additionals.extend(glue.records)

    @staticmethod
    def _negative(zone: Zone, response: Message, rcode: Rcode) -> None:
        response.flags = response.flags.__class__(
            qr=True, aa=True, rd=response.flags.rd, rcode=rcode)
        soa = zone.get_rrset(zone.apex, RRType.SOA)
        if soa:
            response.authorities.extend(soa.records)

    def _sign(self, served: ServedZone, rrset: RRset) -> ResourceRecord:
        """Attach a size-faithful fake RRSIG covering ``rrset``."""
        data = RrsigData(
            type_covered=int(rrset.rtype),
            algorithm=_SIGNING_ALGORITHM,
            labels=len(rrset.name.labels),
            original_ttl=rrset.ttl,
            expiration=_VALIDITY[1],
            inception=_VALIDITY[0],
            key_tag=self._key_tag(served),
            signer=served.apex,
            signature=_FAKE_SIGNATURE)
        return ResourceRecord(rrset.name, RRType.RRSIG, data, rrset.ttl)

    @staticmethod
    def _key_tag(served: ServedZone) -> int:
        return sum(served.apex.to_text().encode()) % 0xFFFF

    def dnskey_rrset(self, apex) -> RRset:
        """The zone's (fake) DNSKEY RRset: one ZSK, one KSK."""
        served = self._zones[DomainName(apex)]
        if not served.signed:
            raise ValueError(f"{served.apex} is not signed")
        rrset = RRset(served.apex, RRType.DNSKEY)
        rrset.add(DnskeyData(DnskeyData.ZONE_KEY_FLAG, 3,
                             _SIGNING_ALGORITHM, _FAKE_KEY))
        rrset.add(DnskeyData(DnskeyData.ZONE_KEY_FLAG | DnskeyData.SEP_FLAG,
                             3, _SIGNING_ALGORITHM, _FAKE_KEY + b"\x01"))
        return rrset

    @staticmethod
    def _truncate_if_needed(response: Message, udp_limit: int) -> None:
        """RFC 2181 §9: oversized UDP responses are emptied and TC set."""
        wire = encode_message(response)
        if len(wire) <= udp_limit:
            return
        response.answers.clear()
        response.authorities.clear()
        response.additionals.clear()
        response.flags = response.flags.__class__(
            qr=True, aa=response.flags.aa, tc=True,
            rd=response.flags.rd, rcode=response.flags.rcode)


def response_size(response: Message) -> int:
    """Wire size of a response (for the §6.2 TCP-adoption analysis)."""
    return len(encode_message(response))
