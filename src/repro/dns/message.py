"""RFC 1035 wire-format codec with name compression.

Implements enough of the DNS message format to serialize the queries
and responses the measurement platforms exchange: header, question
section, and A/NS/CNAME/SOA/TXT/AAAA records in the three RR sections.
Compression pointers are emitted on encode and followed on decode
(with loop protection).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.name import DomainName, MAX_LABEL_OCTETS
from repro.dns.rcode import Rcode
from repro.dns.rr import DnskeyData, RRClass, RRType, ResourceRecord, RrsigData, SoaData

_HEADER = struct.Struct("!HHHHHH")
_POINTER_MASK = 0xC0
_MAX_POINTER_HOPS = 64


class Opcode(enum.IntEnum):
    """DNS header opcodes (the subset we use)."""

    QUERY = 0
    STATUS = 2


@dataclass(frozen=True)
class Flags:
    """The flag bits of the DNS header second word."""

    qr: bool = False       # response?
    opcode: Opcode = Opcode.QUERY
    aa: bool = False       # authoritative answer
    tc: bool = False       # truncated
    rd: bool = True        # recursion desired
    ra: bool = False       # recursion available
    rcode: Rcode = Rcode.NOERROR

    def to_int(self) -> int:
        value = 0
        if self.qr:
            value |= 1 << 15
        value |= (int(self.opcode) & 0xF) << 11
        if self.aa:
            value |= 1 << 10
        if self.tc:
            value |= 1 << 9
        if self.rd:
            value |= 1 << 8
        if self.ra:
            value |= 1 << 7
        value |= int(self.rcode) & 0xF
        return value

    @classmethod
    def from_int(cls, value: int) -> "Flags":
        return cls(
            qr=bool(value & (1 << 15)),
            opcode=Opcode((value >> 11) & 0xF),
            aa=bool(value & (1 << 10)),
            tc=bool(value & (1 << 9)),
            rd=bool(value & (1 << 8)),
            ra=bool(value & (1 << 7)),
            rcode=Rcode(value & 0xF),
        )


@dataclass(frozen=True)
class Header:
    msg_id: int
    flags: Flags
    qdcount: int = 0
    ancount: int = 0
    nscount: int = 0
    arcount: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.msg_id <= 0xFFFF:
            raise ValueError(f"invalid message id: {self.msg_id}")


@dataclass(frozen=True)
class Edns:
    """EDNS0 parameters (RFC 6891): carried in an OPT pseudo-record.

    The OPT record abuses the CLASS field for the requestor's UDP
    payload size and the TTL for extended flags, so it lives on the
    message (``Message.edns``) rather than in the additionals list.
    ``do`` is the DNSSEC-OK bit: set it and signed zones return RRSIGs,
    inflating responses past classic UDP limits (the §6.2 backdrop for
    DNS-over-TCP's rise).
    """

    udp_payload_size: int = 1232
    extended_rcode: int = 0
    version: int = 0
    do: bool = False
    options: bytes = b""

    def __post_init__(self) -> None:
        if not 512 <= self.udp_payload_size <= 0xFFFF:
            raise ValueError("udp_payload_size must be within [512, 65535]")
        if not 0 <= self.extended_rcode <= 0xFF or not 0 <= self.version <= 0xFF:
            raise ValueError("invalid EDNS header fields")

    def ttl_field(self) -> int:
        value = (self.extended_rcode << 24) | (self.version << 16)
        if self.do:
            value |= 1 << 15
        return value

    @classmethod
    def from_wire_fields(cls, udp_size: int, ttl: int,
                         options: bytes) -> "Edns":
        return cls(udp_payload_size=max(512, udp_size),
                   extended_rcode=(ttl >> 24) & 0xFF,
                   version=(ttl >> 16) & 0xFF,
                   do=bool(ttl & (1 << 15)),
                   options=options)


@dataclass(frozen=True)
class Question:
    qname: DomainName
    qtype: RRType
    qclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", DomainName(self.qname))


@dataclass
class Message:
    """A DNS message: header flags plus the four sections."""

    msg_id: int
    flags: Flags = field(default_factory=Flags)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authorities: List[ResourceRecord] = field(default_factory=list)
    additionals: List[ResourceRecord] = field(default_factory=list)
    #: EDNS0 parameters; encoded as an OPT pseudo-record when present.
    edns: Optional[Edns] = None

    def __post_init__(self) -> None:
        if not 0 <= self.msg_id <= 0xFFFF:
            raise ValueError(f"invalid message id: {self.msg_id}")

    @property
    def max_udp_payload(self) -> int:
        """Largest UDP response the sender can accept (512 pre-EDNS)."""
        return self.edns.udp_payload_size if self.edns else 512

    @classmethod
    def query(cls, qname, qtype: RRType, msg_id: int = 0, rd: bool = False) -> "Message":
        """An explicit (non-recursive by default) query, as OpenINTEL sends."""
        return cls(msg_id=msg_id, flags=Flags(rd=rd),
                   questions=[Question(DomainName(qname), qtype)])

    def response(self, rcode: Rcode = Rcode.NOERROR, aa: bool = True) -> "Message":
        """A response skeleton echoing this query's id and question."""
        return Message(msg_id=self.msg_id,
                       flags=Flags(qr=True, aa=aa, rd=self.flags.rd, rcode=rcode),
                       questions=list(self.questions))

    def to_wire(self) -> bytes:
        return encode_message(self)


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class _Encoder:
    def __init__(self) -> None:
        self.buf = bytearray()
        self._offsets: Dict[Tuple[str, ...], int] = {}

    def write_name(self, name: DomainName, compress: bool = True) -> None:
        labels = name.labels
        for i in range(len(labels)):
            suffix = labels[i:]
            offset = self._offsets.get(suffix) if compress else None
            if offset is not None and offset < 0x4000:
                self.buf += struct.pack("!H", 0xC000 | offset)
                return
            if len(self.buf) < 0x4000:
                self._offsets[suffix] = len(self.buf)
            label = labels[i].encode("ascii")
            if len(label) > MAX_LABEL_OCTETS:
                raise ValueError(f"label too long: {labels[i]!r}")
            self.buf.append(len(label))
            self.buf += label
        self.buf.append(0)

    def write_u16(self, value: int) -> None:
        self.buf += struct.pack("!H", value)

    def write_u32(self, value: int) -> None:
        self.buf += struct.pack("!I", value)

    def write_rdata(self, rr: ResourceRecord) -> None:
        """Write RDLENGTH + RDATA (patching the length afterwards so
        compressed names inside rdata are handled uniformly)."""
        length_at = len(self.buf)
        self.write_u16(0)
        start = len(self.buf)
        if rr.rtype == RRType.A:
            self.write_u32(rr.rdata)  # type: ignore[arg-type]
        elif rr.rtype in (RRType.NS, RRType.CNAME):
            self.write_name(rr.rdata)  # type: ignore[arg-type]
        elif rr.rtype == RRType.SOA:
            soa: SoaData = rr.rdata  # type: ignore[assignment]
            self.write_name(soa.mname)
            self.write_name(soa.rname)
            for word in (soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum):
                self.write_u32(word)
        elif rr.rtype == RRType.TXT:
            data: bytes = rr.rdata  # type: ignore[assignment]
            for i in range(0, max(len(data), 1), 255):
                chunk = data[i:i + 255]
                self.buf.append(len(chunk))
                self.buf += chunk
        elif rr.rtype == RRType.AAAA:
            self.buf += rr.rdata  # type: ignore[arg-type]
        elif rr.rtype == RRType.RRSIG:
            sig: RrsigData = rr.rdata  # type: ignore[assignment]
            self.buf += struct.pack("!HBBIIIH", sig.type_covered,
                                    sig.algorithm, sig.labels,
                                    sig.original_ttl, sig.expiration,
                                    sig.inception, sig.key_tag)
            # RFC 4034: the signer name is never compressed.
            self.write_name(sig.signer, compress=False)
            self.buf += sig.signature
        elif rr.rtype == RRType.DNSKEY:
            key: DnskeyData = rr.rdata  # type: ignore[assignment]
            self.buf += struct.pack("!HBB", key.flags, key.protocol,
                                    key.algorithm)
            self.buf += key.key
        else:
            raise ValueError(f"cannot encode rtype {rr.rtype}")
        rdlen = len(self.buf) - start
        struct.pack_into("!H", self.buf, length_at, rdlen)

    def write_rr(self, rr: ResourceRecord) -> None:
        self.write_name(rr.name)
        self.write_u16(int(rr.rtype))
        self.write_u16(int(rr.rclass))
        self.write_u32(rr.ttl)
        self.write_rdata(rr)

    def write_opt(self, edns: Edns) -> None:
        """The OPT pseudo-record: root owner, CLASS = UDP payload size,
        TTL = extended flags (RFC 6891)."""
        self.buf.append(0)  # root name
        self.write_u16(int(RRType.OPT))
        self.write_u16(edns.udp_payload_size)
        self.write_u32(edns.ttl_field())
        self.write_u16(len(edns.options))
        self.buf += edns.options


def encode_message(msg: Message) -> bytes:
    """Serialize a message to wire format."""
    enc = _Encoder()
    arcount = len(msg.additionals) + (1 if msg.edns else 0)
    enc.buf += _HEADER.pack(msg.msg_id, msg.flags.to_int(),
                            len(msg.questions), len(msg.answers),
                            len(msg.authorities), arcount)
    for q in msg.questions:
        enc.write_name(q.qname)
        enc.write_u16(int(q.qtype))
        enc.write_u16(int(q.qclass))
    for section in (msg.answers, msg.authorities, msg.additionals):
        for rr in section:
            enc.write_rr(rr)
    if msg.edns:
        enc.write_opt(msg.edns)
    return bytes(enc.buf)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class WireError(ValueError):
    """Malformed wire data."""


class _Decoder:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def need(self, n: int) -> None:
        if self.pos + n > len(self.data):
            raise WireError("truncated message")

    def read_u8(self) -> int:
        self.need(1)
        value = self.data[self.pos]
        self.pos += 1
        return value

    def read_u16(self) -> int:
        self.need(2)
        (value,) = struct.unpack_from("!H", self.data, self.pos)
        self.pos += 2
        return value

    def read_u32(self) -> int:
        self.need(4)
        (value,) = struct.unpack_from("!I", self.data, self.pos)
        self.pos += 4
        return value

    def read_bytes(self, n: int) -> bytes:
        self.need(n)
        chunk = self.data[self.pos:self.pos + n]
        self.pos += n
        return chunk

    def read_name(self) -> DomainName:
        labels: List[str] = []
        pos = self.pos
        jumped = False
        hops = 0
        while True:
            if pos >= len(self.data):
                raise WireError("truncated name")
            length = self.data[pos]
            if length & _POINTER_MASK == _POINTER_MASK:
                if pos + 1 >= len(self.data):
                    raise WireError("truncated compression pointer")
                target = ((length & 0x3F) << 8) | self.data[pos + 1]
                if not jumped:
                    self.pos = pos + 2
                    jumped = True
                if target >= pos:
                    raise WireError("forward compression pointer")
                pos = target
                hops += 1
                if hops > _MAX_POINTER_HOPS:
                    raise WireError("compression pointer loop")
                continue
            if length & _POINTER_MASK:
                raise WireError(f"bad label length byte: {length:#x}")
            pos += 1
            if length == 0:
                if not jumped:
                    self.pos = pos
                break
            if pos + length > len(self.data):
                raise WireError("truncated label")
            try:
                labels.append(self.data[pos:pos + length].decode("ascii"))
            except UnicodeDecodeError as exc:
                raise WireError("non-ASCII label bytes") from exc
            pos += length
        try:
            return DomainName(labels)
        except ValueError as exc:
            raise WireError(str(exc)) from exc

    def read_rr(self):
        """Read one RR; returns an :class:`Edns` for OPT pseudo-records
        (whose CLASS/TTL fields are not a class and a TTL)."""
        name = self.read_name()
        rtype_raw = self.read_u16()
        rclass_raw = self.read_u16()
        ttl = self.read_u32()
        rdlen = self.read_u16()
        end = self.pos + rdlen
        self.need(rdlen)
        if rtype_raw == int(RRType.OPT):
            if not name.is_root:
                raise WireError("OPT owner must be the root")
            options = self.read_bytes(rdlen)
            return Edns.from_wire_fields(rclass_raw, ttl, options)
        try:
            rtype = RRType(rtype_raw)
        except ValueError as exc:
            raise WireError(f"unsupported rtype {rtype_raw}") from exc
        try:
            rclass = RRClass(rclass_raw)
        except ValueError as exc:
            raise WireError(f"unsupported class {rclass_raw}") from exc
        rdata = self._read_rdata(rtype, rdlen)
        if self.pos != end:
            raise WireError("rdata length mismatch")
        return ResourceRecord(name, rtype, rdata, ttl, rclass)

    def _read_rdata(self, rtype: RRType, rdlen: int):
        if rtype == RRType.A:
            if rdlen != 4:
                raise WireError("A rdata must be 4 bytes")
            return self.read_u32()
        if rtype in (RRType.NS, RRType.CNAME):
            return self.read_name()
        if rtype == RRType.SOA:
            mname = self.read_name()
            rname = self.read_name()
            serial = self.read_u32()
            refresh = self.read_u32()
            retry = self.read_u32()
            expire = self.read_u32()
            minimum = self.read_u32()
            return SoaData(mname, rname, serial, refresh, retry, expire, minimum)
        if rtype == RRType.TXT:
            end = self.pos + rdlen
            chunks = []
            while self.pos < end:
                n = self.read_u8()
                chunks.append(self.read_bytes(n))
            return b"".join(chunks)
        if rtype == RRType.AAAA:
            if rdlen != 16:
                raise WireError("AAAA rdata must be 16 bytes")
            return self.read_bytes(16)
        if rtype == RRType.RRSIG:
            fixed = 18
            if rdlen < fixed + 1:
                raise WireError("RRSIG rdata too short")
            end = self.pos + rdlen
            (type_covered, algorithm, labels, original_ttl, expiration,
             inception, key_tag) = struct.unpack_from("!HBBIIIH", self.data,
                                                      self.pos)
            self.pos += fixed
            signer = self.read_name()
            if self.pos >= end:
                raise WireError("RRSIG missing signature bytes")
            signature = self.read_bytes(end - self.pos)
            return RrsigData(type_covered, algorithm, labels, original_ttl,
                             expiration, inception, key_tag, signer,
                             signature)
        if rtype == RRType.DNSKEY:
            if rdlen < 5:
                raise WireError("DNSKEY rdata too short")
            flags, protocol, algorithm = struct.unpack_from(
                "!HBB", self.data, self.pos)
            self.pos += 4
            key = self.read_bytes(rdlen - 4)
            return DnskeyData(flags, protocol, algorithm, key)
        raise WireError(f"unsupported rtype {rtype}")


def decode_message(data: bytes) -> Message:
    """Parse wire format back into a :class:`Message`."""
    dec = _Decoder(data)
    dec.need(_HEADER.size)
    msg_id, flags_raw, qd, an, ns, ar = _HEADER.unpack_from(data, 0)
    dec.pos = _HEADER.size
    try:
        flags = Flags.from_int(flags_raw)
    except ValueError as exc:  # unknown opcode/rcode bits
        raise WireError(str(exc)) from exc
    msg = Message(msg_id=msg_id, flags=flags)
    for _ in range(qd):
        qname = dec.read_name()
        qtype_raw = dec.read_u16()
        qclass_raw = dec.read_u16()
        try:
            qtype = RRType(qtype_raw)
            qclass = RRClass(qclass_raw)
        except ValueError as exc:
            raise WireError(str(exc)) from exc
        msg.questions.append(Question(qname, qtype, qclass))
    def read_section(count: int, section: List[ResourceRecord],
                     allow_opt: bool) -> None:
        for _ in range(count):
            record = dec.read_rr()
            if isinstance(record, Edns):
                if not allow_opt:
                    raise WireError("OPT record outside the additional section")
                if msg.edns is not None:
                    raise WireError("duplicate OPT record")
                msg.edns = record
            else:
                section.append(record)

    read_section(an, msg.answers, allow_opt=False)
    read_section(ns, msg.authorities, allow_opt=False)
    read_section(ar, msg.additionals, allow_opt=True)
    if dec.pos != len(data):
        raise WireError("trailing bytes after message")
    return msg
