"""RFC 1035 master-file (zone file) reader and writer.

Supports the subset the substrate uses: ``$ORIGIN`` and ``$TTL``
directives, relative and absolute owner names, the blank-owner
continuation convention, comments, quoted TXT strings, and the record
types the library models (SOA, NS, A, AAAA, CNAME, TXT). Parenthesized
multi-line SOA records are handled.

This gives :class:`repro.dns.zone.Zone` a standard interchange format so
users can load real zone snippets into the simulation or export
generated zones for inspection with standard tooling.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, TextIO, Tuple

from repro.dns.name import DomainName
from repro.dns.rr import DEFAULT_TTL, RRType, SoaData
from repro.dns.zone import Zone


class ZoneFileError(ValueError):
    """Malformed zone file input."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _strip_comment(line: str) -> str:
    """Remove a ; comment, honouring quoted strings."""
    out = []
    in_quotes = False
    for ch in line:
        if ch == '"':
            in_quotes = not in_quotes
        elif ch == ";" and not in_quotes:
            break
        out.append(ch)
    return "".join(out)


def _logical_lines(fp: TextIO) -> Iterator[Tuple[int, str]]:
    """Yield (lineno, text) with parentheses-continued lines joined."""
    buffer = ""
    start_line = 0
    depth = 0
    for lineno, raw in enumerate(fp, start=1):
        text = _strip_comment(raw.rstrip("\n"))
        if not buffer:
            start_line = lineno
        depth += text.count("(") - text.count(")")
        if depth < 0:
            raise ZoneFileError(lineno, "unbalanced ')'")
        buffer += (" " if buffer else "") + text
        if depth == 0:
            if buffer.strip():
                yield start_line, buffer.replace("(", " ").replace(")", " ")
            buffer = ""
    if depth != 0:
        raise ZoneFileError(start_line, "unbalanced '('")
    if buffer.strip():
        yield start_line, buffer


_TTL_RE = re.compile(r"^\d+$")
_CLASS_TOKENS = {"IN", "CH", "HS"}


def _tokenize(text: str) -> List[str]:
    """Split into tokens, keeping quoted strings intact."""
    tokens = []
    for match in re.finditer(r'"([^"]*)"|(\S+)', text):
        if match.group(1) is not None:
            tokens.append('"' + match.group(1) + '"')
        else:
            tokens.append(match.group(2))
    return tokens


def _resolve_name(token: str, origin: Optional[DomainName],
                  lineno: int) -> DomainName:
    if token == "@":
        if origin is None:
            raise ZoneFileError(lineno, "@ used without $ORIGIN")
        return origin
    if token.endswith("."):
        return DomainName(token)
    if origin is None:
        raise ZoneFileError(lineno, f"relative name {token!r} without $ORIGIN")
    return DomainName(token + "." + origin.to_text())


def parse_zone_file(fp: TextIO, origin: Optional[str] = None) -> Zone:
    """Parse a master file into a :class:`Zone`.

    The zone apex is the ``$ORIGIN`` (from the file or the argument);
    the SOA record must belong to the apex.
    """
    current_origin = DomainName(origin) if origin is not None else None
    default_ttl = DEFAULT_TTL
    zone: Optional[Zone] = None
    last_owner: Optional[DomainName] = None
    pending: List[Tuple[int, DomainName, int, RRType, List[str]]] = []

    for lineno, text in _logical_lines(fp):
        tokens = _tokenize(text)
        if not tokens:
            continue
        directive = tokens[0].upper()
        if directive == "$ORIGIN":
            if len(tokens) != 2 or not tokens[1].endswith("."):
                raise ZoneFileError(lineno, "$ORIGIN needs an absolute name")
            current_origin = DomainName(tokens[1])
            continue
        if directive == "$TTL":
            if len(tokens) != 2 or not _TTL_RE.match(tokens[1]):
                raise ZoneFileError(lineno, "$TTL needs an integer")
            default_ttl = int(tokens[1])
            continue
        if directive.startswith("$"):
            raise ZoneFileError(lineno, f"unsupported directive {tokens[0]}")

        # Owner: blank (leading whitespace) means "previous owner".
        if text[0] in " \t":
            if last_owner is None:
                raise ZoneFileError(lineno, "continuation without an owner")
            owner = last_owner
        else:
            owner = _resolve_name(tokens[0], current_origin, lineno)
            tokens = tokens[1:]
        last_owner = owner

        ttl = default_ttl
        while tokens and (_TTL_RE.match(tokens[0])
                          or tokens[0].upper() in _CLASS_TOKENS):
            if _TTL_RE.match(tokens[0]):
                ttl = int(tokens[0])
            tokens = tokens[1:]
        if not tokens:
            raise ZoneFileError(lineno, "missing record type")
        try:
            rtype = RRType[tokens[0].upper()]
        except KeyError:
            raise ZoneFileError(lineno, f"unsupported type {tokens[0]!r}")
        rdata_tokens = tokens[1:]

        if rtype == RRType.SOA and zone is None:
            soa = _parse_soa(rdata_tokens, current_origin, lineno)
            apex = current_origin or owner
            if owner != apex:
                raise ZoneFileError(lineno, "SOA owner must be the apex")
            zone = Zone(apex, soa)
            continue
        pending.append((lineno, owner, ttl, rtype, rdata_tokens))

    if zone is None:
        raise ZoneFileError(0, "zone file has no SOA record")
    for lineno, owner, ttl, rtype, rdata_tokens in pending:
        rdata = _parse_rdata(rtype, rdata_tokens, current_origin, lineno)
        try:
            zone.add_record(owner, rtype, rdata, ttl)
        except ValueError as exc:
            raise ZoneFileError(lineno, str(exc)) from exc
    return zone


def _parse_soa(tokens: List[str], origin: Optional[DomainName],
               lineno: int) -> SoaData:
    if len(tokens) != 7:
        raise ZoneFileError(lineno, "SOA needs mname rname and 5 integers")
    for value in tokens[2:]:
        if not _TTL_RE.match(value):
            raise ZoneFileError(lineno, f"SOA field {value!r} must be integer")
    return SoaData(
        mname=_resolve_name(tokens[0], origin, lineno),
        rname=_resolve_name(tokens[1], origin, lineno),
        serial=int(tokens[2]), refresh=int(tokens[3]), retry=int(tokens[4]),
        expire=int(tokens[5]), minimum=int(tokens[6]))


def _parse_rdata(rtype: RRType, tokens: List[str],
                 origin: Optional[DomainName], lineno: int):
    if rtype == RRType.A:
        if len(tokens) != 1:
            raise ZoneFileError(lineno, "A needs one address")
        return tokens[0]
    if rtype in (RRType.NS, RRType.CNAME):
        if len(tokens) != 1:
            raise ZoneFileError(lineno, f"{rtype} needs one name")
        return _resolve_name(tokens[0], origin, lineno)
    if rtype == RRType.TXT:
        if not tokens:
            raise ZoneFileError(lineno, "TXT needs at least one string")
        chunks = []
        for token in tokens:
            if token.startswith('"') and token.endswith('"'):
                chunks.append(token[1:-1])
            else:
                chunks.append(token)
        return "".join(chunks)
    if rtype == RRType.AAAA:
        if len(tokens) != 1:
            raise ZoneFileError(lineno, "AAAA needs one address")
        return _parse_ipv6(tokens[0], lineno)
    if rtype == RRType.SOA:
        raise ZoneFileError(lineno, "duplicate SOA record")
    raise ZoneFileError(lineno, f"unsupported type {rtype}")


def _parse_ipv6(text: str, lineno: int) -> bytes:
    """Minimal IPv6 text-to-bytes (:: compression supported)."""
    if "::" in text:
        head, _, tail = text.partition("::")
        head_parts = head.split(":") if head else []
        tail_parts = tail.split(":") if tail else []
        missing = 8 - len(head_parts) - len(tail_parts)
        if missing < 0:
            raise ZoneFileError(lineno, f"invalid IPv6 address {text!r}")
        parts = head_parts + ["0"] * missing + tail_parts
    else:
        parts = text.split(":")
    if len(parts) != 8:
        raise ZoneFileError(lineno, f"invalid IPv6 address {text!r}")
    try:
        return b"".join(int(p or "0", 16).to_bytes(2, "big") for p in parts)
    except (ValueError, OverflowError) as exc:
        raise ZoneFileError(lineno, f"invalid IPv6 address {text!r}") from exc


def _format_ipv6(data: bytes) -> str:
    groups = [f"{int.from_bytes(data[i:i + 2], 'big'):x}"
              for i in range(0, 16, 2)]
    return ":".join(groups)


def dump_zone_file(zone: Zone, fp: TextIO) -> None:
    """Write a zone back out in master-file format."""
    apex = zone.apex.to_text() + "."
    fp.write(f"$ORIGIN {apex}\n")
    fp.write(f"$TTL {DEFAULT_TTL}\n")
    soa = zone.soa
    fp.write(f"@ IN SOA {soa.mname}. {soa.rname}. "
             f"{soa.serial} {soa.refresh} {soa.retry} "
             f"{soa.expire} {soa.minimum}\n")
    for rrset in sorted(zone.rrsets(), key=lambda r: (str(r.name), int(r.rtype))):
        if rrset.rtype == RRType.SOA:
            continue
        for rr in rrset:
            owner = rr.name.to_text() + "."
            if rr.rtype == RRType.A:
                rdata = rr.rdata_text()
            elif rr.rtype in (RRType.NS, RRType.CNAME):
                rdata = rr.rdata_text() + "."
            elif rr.rtype == RRType.TXT:
                rdata = '"' + rr.rdata_text() + '"'
            elif rr.rtype == RRType.AAAA:
                rdata = _format_ipv6(rr.rdata)  # type: ignore[arg-type]
            else:
                continue  # DNSSEC material is generated, not serialized
            fp.write(f"{owner} {rr.ttl} IN {rr.rtype} {rdata}\n")
