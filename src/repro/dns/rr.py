"""Resource records and RRsets.

Record data (rdata) is kept in a small typed form per RRType: A records
hold an IPv4 int, NS/CNAME hold a DomainName, SOA holds its seven
fields. The wire codec in :mod:`repro.dns.message` serializes these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.dns.name import DomainName
from repro.net.ip import coerce_ip, ip_to_str

DEFAULT_TTL = 3600


class RRType(enum.IntEnum):
    """Resource record types the substrate models."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    TXT = 16
    AAAA = 28
    OPT = 41      # EDNS0 pseudo-record (RFC 6891)
    RRSIG = 46    # DNSSEC signature (RFC 4034)
    DNSKEY = 48   # DNSSEC key (RFC 4034)

    def __str__(self) -> str:
        return self.name


class RRClass(enum.IntEnum):
    IN = 1


@dataclass(frozen=True)
class SoaData:
    """SOA rdata fields (RFC 1035 §3.3.13)."""

    mname: DomainName
    rname: DomainName
    serial: int
    refresh: int = 7200
    retry: int = 900
    expire: int = 1209600
    minimum: int = 3600


@dataclass(frozen=True)
class RrsigData:
    """RRSIG rdata (RFC 4034 §3.1) — the signature bytes are opaque.

    DNSSEC matters to the paper indirectly: signature-bearing responses
    outgrow UDP limits, which drove DNS-over-TCP adoption and with it
    the prevalence of TCP SYN floods against port 53 (§6.2).
    """

    type_covered: int
    algorithm: int
    labels: int
    original_ttl: int
    expiration: int
    inception: int
    key_tag: int
    signer: DomainName
    signature: bytes

    def __post_init__(self) -> None:
        object.__setattr__(self, "signer", DomainName(self.signer))
        if not self.signature:
            raise ValueError("RRSIG requires signature bytes")


@dataclass(frozen=True)
class DnskeyData:
    """DNSKEY rdata (RFC 4034 §2.1) — the key bytes are opaque."""

    flags: int
    protocol: int
    algorithm: int
    key: bytes

    ZONE_KEY_FLAG = 0x0100
    SEP_FLAG = 0x0001

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("DNSKEY requires key bytes")

    @property
    def is_zone_key(self) -> bool:
        return bool(self.flags & self.ZONE_KEY_FLAG)

    @property
    def is_sep(self) -> bool:
        """Secure entry point (usually the KSK)."""
        return bool(self.flags & self.SEP_FLAG)


Rdata = Union[int, DomainName, SoaData, RrsigData, DnskeyData, bytes, str]


@dataclass(frozen=True)
class ResourceRecord:
    """A single DNS resource record."""

    name: DomainName
    rtype: RRType
    rdata: Rdata
    ttl: int = DEFAULT_TTL
    rclass: RRClass = RRClass.IN

    def __post_init__(self) -> None:
        if self.ttl < 0 or self.ttl > 2 ** 31 - 1:
            raise ValueError(f"invalid TTL: {self.ttl}")
        object.__setattr__(self, "name", DomainName(self.name))
        object.__setattr__(self, "rdata", self._normalize_rdata())

    def _normalize_rdata(self) -> Rdata:
        if self.rtype == RRType.A:
            return coerce_ip(self.rdata)  # type: ignore[arg-type]
        if self.rtype in (RRType.NS, RRType.CNAME):
            return DomainName(self.rdata)  # type: ignore[arg-type]
        if self.rtype == RRType.SOA:
            if not isinstance(self.rdata, SoaData):
                raise TypeError("SOA record requires SoaData rdata")
            return self.rdata
        if self.rtype == RRType.TXT:
            if isinstance(self.rdata, str):
                return self.rdata.encode("utf-8")
            if isinstance(self.rdata, bytes):
                return self.rdata
            raise TypeError("TXT record requires str or bytes rdata")
        if self.rtype == RRType.AAAA:
            if isinstance(self.rdata, bytes) and len(self.rdata) == 16:
                return self.rdata
            raise TypeError("AAAA record requires 16 rdata bytes")
        if self.rtype == RRType.RRSIG:
            if not isinstance(self.rdata, RrsigData):
                raise TypeError("RRSIG record requires RrsigData rdata")
            return self.rdata
        if self.rtype == RRType.DNSKEY:
            if not isinstance(self.rdata, DnskeyData):
                raise TypeError("DNSKEY record requires DnskeyData rdata")
            return self.rdata
        if self.rtype == RRType.OPT:
            if isinstance(self.rdata, bytes):
                return self.rdata
            raise TypeError("OPT record requires bytes rdata")
        raise ValueError(f"unsupported rtype: {self.rtype}")

    def rdata_text(self) -> str:
        if self.rtype == RRType.A:
            return ip_to_str(self.rdata)  # type: ignore[arg-type]
        if self.rtype in (RRType.NS, RRType.CNAME):
            return str(self.rdata)
        if self.rtype == RRType.SOA:
            soa = self.rdata
            return (f"{soa.mname} {soa.rname} {soa.serial} "
                    f"{soa.refresh} {soa.retry} {soa.expire} {soa.minimum}")
        if self.rtype == RRType.TXT:
            return self.rdata.decode("utf-8", "replace")  # type: ignore[union-attr]
        if self.rtype == RRType.RRSIG:
            sig = self.rdata
            return (f"{RRType(sig.type_covered).name} alg={sig.algorithm} "
                    f"tag={sig.key_tag} signer={sig.signer}")
        if self.rtype == RRType.DNSKEY:
            key = self.rdata
            kind = "KSK" if key.is_sep else "ZSK"
            return f"{kind} flags={key.flags} alg={key.algorithm}"
        return repr(self.rdata)

    def __str__(self) -> str:
        return f"{self.name} {self.ttl} IN {self.rtype} {self.rdata_text()}"


@dataclass
class RRset:
    """All records sharing (name, type); the unit of a DNS answer."""

    name: DomainName
    rtype: RRType
    records: List[ResourceRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.name = DomainName(self.name)
        for rr in self.records:
            self._check(rr)

    def _check(self, rr: ResourceRecord) -> None:
        if rr.name != self.name or rr.rtype != self.rtype:
            raise ValueError(f"record {rr} does not belong to rrset "
                             f"({self.name}, {self.rtype})")

    def add(self, rdata: Rdata, ttl: int = DEFAULT_TTL) -> ResourceRecord:
        rr = ResourceRecord(self.name, self.rtype, rdata, ttl)
        if rr not in self.records:
            self.records.append(rr)
        return rr

    @property
    def ttl(self) -> int:
        """An RRset shares one effective TTL; we use the minimum."""
        return min((rr.ttl for rr in self.records), default=DEFAULT_TTL)

    def rdatas(self) -> Tuple[Rdata, ...]:
        return tuple(rr.rdata for rr in self.records)

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)


def ns_rrset(owner, nameservers: Sequence, ttl: int = DEFAULT_TTL) -> RRset:
    """Convenience: build the NS RRset for ``owner``."""
    owner = DomainName(owner)
    rrset = RRset(owner, RRType.NS)
    for ns in nameservers:
        rrset.add(DomainName(ns), ttl)
    return rrset


def a_rrset(owner, addresses: Sequence, ttl: int = DEFAULT_TTL) -> RRset:
    """Convenience: build the A RRset for ``owner``."""
    owner = DomainName(owner)
    rrset = RRset(owner, RRType.A)
    for addr in addresses:
        rrset.add(coerce_ip(addr), ttl)
    return rrset
