"""A TTL-respecting DNS cache.

OpenINTEL's *first* NS query per domain bypasses the cache by design
(§3.2 of the paper) — the platform wants the live authoritative
behaviour — but the cache still matters for two things we model: the
reactive platform's repeated probes, and the end-user impact discussion
(cached domains tolerate attacks better, per Moura et al. 2018).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dns.name import DomainName
from repro.dns.rr import RRType, RRset


@dataclass
class CacheEntry:
    rrset: RRset
    stored_at: int
    ttl: int

    def expires_at(self) -> int:
        return self.stored_at + self.ttl

    def is_fresh(self, now: int) -> bool:
        return now < self.expires_at()

    def remaining_ttl(self, now: int) -> int:
        return max(0, self.expires_at() - now)


class DnsCache:
    """Positive-answer cache keyed by (qname, qtype).

    ``max_entries`` bounds memory with FIFO-ish eviction of the oldest
    insertion (good enough for simulation workloads).
    """

    def __init__(self, max_entries: int = 100_000):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: Dict[Tuple[DomainName, RRType], CacheEntry] = {}
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def put(self, rrset: RRset, now: int, ttl: Optional[int] = None) -> None:
        if not rrset:
            return
        if ttl is None:
            ttl = rrset.ttl
        if ttl <= 0:
            return
        key = (rrset.name, rrset.rtype)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            oldest = min(self._entries, key=lambda k: self._entries[k].stored_at)
            del self._entries[oldest]
        self._entries[key] = CacheEntry(rrset, now, ttl)

    def get(self, qname, qtype: RRType, now: int) -> Optional[RRset]:
        key = (DomainName(qname), qtype)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if not entry.is_fresh(now):
            del self._entries[key]
            self.expirations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry.rrset

    def remaining_ttl(self, qname, qtype: RRType, now: int) -> int:
        entry = self._entries.get((DomainName(qname), qtype))
        if entry is None or not entry.is_fresh(now):
            return 0
        return entry.remaining_ttl(now)

    def flush(self) -> None:
        self._entries.clear()

    def purge_expired(self, now: int) -> int:
        """Drop expired entries; returns the number removed."""
        stale = [k for k, e in self._entries.items() if not e.is_fresh(now)]
        for key in stale:
            del self._entries[key]
        self.expirations += len(stale)
        return len(stale)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
