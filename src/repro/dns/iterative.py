"""Iterative resolution over an in-memory DNS hierarchy.

Completes the wire-level DNS substrate: a :class:`DnsUniverse` maps
server addresses to :class:`AuthoritativeServer` instances (root, TLD,
and leaf zones), and :class:`IterativeResolver` walks referrals from the
root exactly as a recursive resolver would — sending EDNS0 queries,
following delegations via glue, chasing CNAMEs across zones, and
retrying over TCP when a response comes back truncated (the §6.2
DNS-over-TCP path).

The simulation hot path uses the abstract capacity-model transport for
speed; this module exists so the protocol machinery is demonstrably
complete and correct at the message level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dns.authoritative import AuthoritativeServer
from repro.dns.cache import DnsCache
from repro.dns.message import Edns, Message
from repro.dns.name import DomainName
from repro.dns.rcode import Rcode, ResponseStatus
from repro.dns.rr import RRType, RRset, ResourceRecord
from repro.net.ip import coerce_ip


class DnsUniverse:
    """Addressable authoritative servers, plus the root hints."""

    def __init__(self) -> None:
        self._servers: Dict[int, AuthoritativeServer] = {}
        self.root_hints: List[int] = []

    def place_server(self, ip, server: AuthoritativeServer,
                     is_root: bool = False) -> None:
        addr = coerce_ip(ip)
        self._servers[addr] = server
        if is_root and addr not in self.root_hints:
            self.root_hints.append(addr)

    def server_at(self, ip) -> Optional[AuthoritativeServer]:
        return self._servers.get(coerce_ip(ip))

    def __len__(self) -> int:
        return len(self._servers)


@dataclass
class IterationTrace:
    """What one resolution did: for tests and debugging."""

    queries_sent: int = 0
    tcp_retries: int = 0
    referrals_followed: int = 0
    servers_contacted: List[int] = field(default_factory=list)


@dataclass
class IterativeResult:
    status: ResponseStatus
    answers: List[ResourceRecord] = field(default_factory=list)
    trace: IterationTrace = field(default_factory=IterationTrace)

    def rdatas(self) -> Tuple:
        return tuple(rr.rdata for rr in self.answers)


class IterativeResolver:
    """Walks the delegation tree from the root hints."""

    def __init__(self, universe: DnsUniverse, use_edns: bool = True,
                 udp_payload_size: int = 1232, dnssec_ok: bool = False,
                 max_referrals: int = 16,
                 cache: Optional[DnsCache] = None):
        if not universe.root_hints:
            raise ValueError("universe has no root hints")
        self.universe = universe
        self.use_edns = use_edns
        self.udp_payload_size = udp_payload_size
        self.dnssec_ok = dnssec_ok
        self.max_referrals = max_referrals
        self.cache = cache
        self._msg_ids = itertools.count(1)

    # -- single server exchange -------------------------------------------------

    def _exchange(self, server_ip: int, qname: DomainName, qtype: RRType,
                  trace: IterationTrace) -> Optional[Message]:
        server = self.universe.server_at(server_ip)
        if server is None:
            return None
        query = Message.query(qname, qtype, msg_id=next(self._msg_ids) & 0xFFFF)
        if self.use_edns:
            query.edns = Edns(udp_payload_size=self.udp_payload_size,
                              do=self.dnssec_ok)
        trace.queries_sent += 1
        trace.servers_contacted.append(server_ip)
        response = server.handle_query(query, tcp=False)
        if response.flags.tc:
            # RFC 7766: retry the same question over TCP.
            trace.tcp_retries += 1
            trace.queries_sent += 1
            response = server.handle_query(query, tcp=True)
        return response

    # -- full resolution ----------------------------------------------------------

    def resolve(self, qname, qtype: RRType = RRType.A, now: int = 0
                ) -> IterativeResult:
        qname = DomainName(qname)
        trace = IterationTrace()
        if self.cache is not None:
            cached = self.cache.get(qname, qtype, now)
            if cached is not None:
                return IterativeResult(ResponseStatus.OK,
                                       list(cached.records), trace)
        candidates = list(self.universe.root_hints)
        current_name = qname
        answers: List[ResourceRecord] = []
        for _ in range(self.max_referrals):
            response = self._next_response(candidates, current_name, qtype,
                                           trace)
            if response is None:
                return IterativeResult(ResponseStatus.TIMEOUT, [], trace)
            if response.flags.rcode == Rcode.NXDOMAIN:
                return IterativeResult(ResponseStatus.NXDOMAIN, [], trace)
            if response.flags.rcode == Rcode.SERVFAIL:
                return IterativeResult(ResponseStatus.SERVFAIL, [], trace)
            if response.flags.rcode == Rcode.REFUSED:
                # A lame server; nothing else to try at this level.
                return IterativeResult(ResponseStatus.SERVFAIL, [], trace)

            direct = [rr for rr in response.answers
                      if rr.rtype == qtype and rr.name == current_name]
            cnames = [rr for rr in response.answers
                      if rr.rtype == RRType.CNAME]
            if direct or (response.flags.aa and not cnames):
                answers.extend(response.answers)
                result = IterativeResult(ResponseStatus.OK, answers, trace)
                self._maybe_cache(qname, qtype, direct, now)
                return result
            if cnames:
                answers.extend(response.answers)
                target: DomainName = cnames[-1].rdata  # type: ignore
                # An in-zone chase may already carry the final answer.
                final = [rr for rr in response.answers
                         if rr.rtype == qtype and rr.name == target]
                if final:
                    result = IterativeResult(ResponseStatus.OK, answers,
                                             trace)
                    self._maybe_cache(qname, qtype, final, now)
                    return result
                current_name = target
                candidates = list(self.universe.root_hints)
                trace.referrals_followed += 1
                continue
            referral_ips = self._referral_targets(response)
            if not referral_ips:
                return IterativeResult(ResponseStatus.SERVFAIL, answers, trace)
            candidates = referral_ips
            trace.referrals_followed += 1
        return IterativeResult(ResponseStatus.SERVFAIL, answers, trace)

    def _next_response(self, candidates: Sequence[int],
                       current_name: DomainName, qtype: RRType,
                       trace: IterationTrace) -> Optional[Message]:
        for server_ip in candidates:
            response = self._exchange(server_ip, current_name, qtype, trace)
            if response is not None:
                return response
        return None

    def _referral_targets(self, response: Message) -> List[int]:
        """Glue addresses for the delegation's nameservers."""
        glue: Dict[DomainName, List[int]] = {}
        for rr in response.additionals:
            if rr.rtype == RRType.A:
                glue.setdefault(rr.name, []).append(rr.rdata)  # type: ignore
        targets: List[int] = []
        for rr in response.authorities:
            if rr.rtype != RRType.NS:
                continue
            host: DomainName = rr.rdata  # type: ignore[assignment]
            targets.extend(glue.get(host, []))
        return targets

    def _maybe_cache(self, qname: DomainName, qtype: RRType,
                     direct: List[ResourceRecord], now: int) -> None:
        if self.cache is None or not direct:
            return
        rrset = RRset(qname, qtype, list(direct))
        self.cache.put(rrset, now)
