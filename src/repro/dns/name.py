"""Domain names: parsing, normalization, hierarchy, and IDN labels.

Names are stored as tuples of lowercase labels in wire order (TLD last
in presentation, but we keep presentation order and expose helpers).
``mil.ru`` and its Cyrillic IDN twin from the paper's §5.2 both flow
through here; IDN labels are carried in their ACE (``xn--``) form.
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Tuple

MAX_NAME_OCTETS = 253
MAX_LABEL_OCTETS = 63

_LABEL_RE = re.compile(r"^(?!-)[a-z0-9_-]{1,63}(?<!-)$")
_HOSTNAME_LABEL_RE = re.compile(r"^(?!-)[a-z0-9-]{1,63}(?<!-)$")


def _encode_label(label: str) -> str:
    """Lowercase a label, converting non-ASCII labels to ACE (xn--) form."""
    label = label.strip().lower()
    if not label:
        raise ValueError("empty label")
    if label.isascii():
        return label
    try:
        ace = label.encode("idna").decode("ascii")
    except UnicodeError as exc:
        raise ValueError(f"cannot IDNA-encode label {label!r}") from exc
    return ace


class DomainName:
    """An absolute DNS name (the trailing root dot is implicit).

    >>> DomainName("WWW.Example.COM").labels
    ('www', 'example', 'com')
    >>> DomainName("минобороны.рф").to_text().startswith("xn--")
    True
    """

    __slots__ = ("labels",)

    def __init__(self, name):
        if isinstance(name, DomainName):
            labels: Tuple[str, ...] = name.labels
        elif isinstance(name, (tuple, list)):
            labels = tuple(_encode_label(l) for l in name)
        elif isinstance(name, str):
            text = name.strip().rstrip(".")
            if not text:
                labels = ()
            else:
                labels = tuple(_encode_label(l) for l in text.split("."))
        else:
            raise TypeError(f"cannot build DomainName from {type(name).__name__}")
        total = sum(len(l) + 1 for l in labels)
        if total > MAX_NAME_OCTETS + 1:
            raise ValueError(f"name too long ({total} octets): {name!r}")
        for label in labels:
            if len(label) > MAX_LABEL_OCTETS:
                raise ValueError(f"label too long: {label!r}")
        object.__setattr__(self, "labels", labels)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("DomainName is immutable")

    # -- hierarchy ---------------------------------------------------------

    @property
    def is_root(self) -> bool:
        return not self.labels

    @property
    def tld(self) -> Optional[str]:
        return self.labels[-1] if self.labels else None

    @property
    def parent(self) -> "DomainName":
        if self.is_root:
            raise ValueError("the root has no parent")
        return DomainName(self.labels[1:])

    def is_subdomain_of(self, other: "DomainName") -> bool:
        """True when ``self`` equals or falls under ``other``."""
        other = DomainName(other)
        n = len(other.labels)
        if n == 0:
            return True
        return self.labels[-n:] == other.labels

    def registered_domain(self, n_public_labels: int = 1) -> "DomainName":
        """The registrable domain assuming the public suffix spans the
        last ``n_public_labels`` labels (1 for .com/.nl/.ru, 2 for .co.uk).

        The synthetic world uses single-label TLDs, so the default covers
        it; the parameter exists for callers with deeper suffixes.
        """
        need = n_public_labels + 1
        if len(self.labels) < need:
            raise ValueError(f"{self} has no registrable domain below suffix")
        return DomainName(self.labels[-need:])

    def relativize(self, origin: "DomainName") -> Tuple[str, ...]:
        """Labels of ``self`` below ``origin``."""
        origin = DomainName(origin)
        if not self.is_subdomain_of(origin):
            raise ValueError(f"{self} is not under {origin}")
        n = len(origin.labels)
        return self.labels[: len(self.labels) - n]

    def child(self, label: str) -> "DomainName":
        return DomainName((label,) + self.labels)

    # -- rendering / identity ---------------------------------------------

    def to_text(self) -> str:
        return ".".join(self.labels) if self.labels else "."

    def to_wire_labels(self) -> Tuple[bytes, ...]:
        return tuple(l.encode("ascii") for l in self.labels)

    @property
    def depth(self) -> int:
        return len(self.labels)

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"DomainName({self.to_text()!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, DomainName):
            return self.labels == other.labels
        if isinstance(other, str):
            try:
                return self.labels == DomainName(other).labels
            except ValueError:
                return False
        return NotImplemented

    def __lt__(self, other: "DomainName") -> bool:
        return tuple(reversed(self.labels)) < tuple(reversed(DomainName(other).labels))

    def __hash__(self) -> int:
        return hash(self.labels)

    def __len__(self) -> int:
        return len(self.labels)


def is_valid_hostname(text: str) -> bool:
    """RFC 952/1123 hostname check (letters/digits/hyphens per label)."""
    text = text.strip().rstrip(".").lower()
    if not text or len(text) > MAX_NAME_OCTETS:
        return False
    return all(_HOSTNAME_LABEL_RE.match(label) for label in text.split("."))


def sort_names(names: Iterable[DomainName]) -> list:
    """Canonical DNS ordering (by reversed label sequence)."""
    return sorted(names, key=lambda n: tuple(reversed(n.labels)))
