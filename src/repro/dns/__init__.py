"""DNS substrate: names, records, zones, wire codec, cache, and resolver.

This package implements the protocol-level machinery the reproduction
needs: an OpenINTEL-style measurement sends explicit NS queries through
an unbound-like *agnostic* stub resolver (random authoritative selection,
retry after timeout, empty cache), and the simulated world answers them.
"""

from repro.dns.name import DomainName, is_valid_hostname
from repro.dns.rcode import Rcode, ResponseStatus
from repro.dns.rr import DnskeyData, RRType, ResourceRecord, RRset, RrsigData
from repro.dns.zone import Zone, Delegation
from repro.dns.message import (
    Edns,
    Flags,
    Header,
    Message,
    Opcode,
    Question,
    decode_message,
    encode_message,
)
from repro.dns.authoritative import AuthoritativeServer, ServedZone, response_size
from repro.dns.zonefile import ZoneFileError, dump_zone_file, parse_zone_file
from repro.dns.iterative import DnsUniverse, IterativeResolver, IterativeResult
from repro.dns.cache import DnsCache
from repro.dns.resolver import (
    AgnosticResolver,
    QueryOutcome,
    ResolutionResult,
    ResolverConfig,
    Transport,
)
from repro.dns.server import NameserverId

__all__ = [
    "DomainName",
    "is_valid_hostname",
    "Rcode",
    "ResponseStatus",
    "RRType",
    "ResourceRecord",
    "RRset",
    "RrsigData",
    "DnskeyData",
    "Zone",
    "Delegation",
    "AuthoritativeServer",
    "ZoneFileError",
    "dump_zone_file",
    "parse_zone_file",
    "ServedZone",
    "response_size",
    "DnsUniverse",
    "IterativeResolver",
    "IterativeResult",
    "Edns",
    "Flags",
    "Header",
    "Message",
    "Opcode",
    "Question",
    "decode_message",
    "encode_message",
    "DnsCache",
    "AgnosticResolver",
    "QueryOutcome",
    "ResolutionResult",
    "ResolverConfig",
    "Transport",
    "NameserverId",
]
