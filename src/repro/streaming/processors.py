"""Small stream processors: the Spark-Structured-Streaming analog.

A :class:`StreamJob` consumes one topic, applies a chain of processors,
and produces to another topic. Jobs are pumped explicitly (``step()``),
keeping the whole pipeline deterministic and single-threaded.

Jobs can run *hardened* — the configuration a production pipeline needs
to survive faulted inputs and flaky workers:

- :class:`RetryPolicy`: per-record retries with exponential backoff and
  deterministic jitter, under a job-wide retry budget;
- a **dead-letter topic** receiving a :class:`DeadLetter` (value +
  structured failure metadata) for every poison record, instead of the
  job crashing mid-stream;
- a :class:`CircuitBreaker` that opens after N consecutive record
  failures and degrades the job to pass-through-with-flagging
  (:class:`FlaggedRecord`) until the breaker half-opens;
- ``checkpoint()`` / ``restore()``: consumer-offset checkpointing with
  sink/DLQ truncation on restore, so a job killed mid-stream resumes
  exactly-once (identical sink contents to an uninterrupted run).

A job constructed without any of these behaves exactly as before:
processor exceptions propagate to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.obs.registry import MetricsRegistry
from repro.streaming.topic import Broker, Consumer, Record, Topic
from repro.util.rng import derive_seed

T = TypeVar("T")
U = TypeVar("U")


class Processor(Generic[T, U]):
    """Transforms one record into zero or more output values."""

    def process(self, record: Record[T]) -> Iterable[U]:
        raise NotImplementedError


class MapProcessor(Processor[T, U]):
    """Applies a function to each record value."""

    def __init__(self, fn: Callable[[T], U]):
        self.fn = fn

    def process(self, record: Record[T]) -> Iterable[U]:
        yield self.fn(record.value)


class FilterProcessor(Processor[T, T]):
    """Drops records failing a predicate."""

    def __init__(self, predicate: Callable[[T], bool]):
        self.predicate = predicate

    def process(self, record: Record[T]) -> Iterable[T]:
        if self.predicate(record.value):
            yield record.value


class FlatMapProcessor(Processor[T, U]):
    """Expands each record into many values."""

    def __init__(self, fn: Callable[[T], Iterable[U]]):
        self.fn = fn

    def process(self, record: Record[T]) -> Iterable[U]:
        return self.fn(record.value)


# ---------------------------------------------------------------------------
# Hardening primitives
# ---------------------------------------------------------------------------


class PoisonRecord(Exception):
    """Marks the current record as unprocessable.

    Raised by a processor (typically :class:`FailFastProcessor`) when a
    record can *never* succeed — malformed schema, unparseable payload.
    A hardened job routes it straight to the dead-letter topic without
    burning retries; an unhardened job propagates it like any error.
    """

    def __init__(self, reason: str, value: Any = None):
        super().__init__(reason)
        self.reason = reason
        self.value = value


class FailFastProcessor(Processor[T, T]):
    """Schema gate: type-checks record values, rejecting mismatches.

    ``types`` is the accepted type (or tuple of types); ``check`` is an
    optional deeper validator returning a rejection reason (or ``None``
    when the value is fine). Mismatches raise :class:`PoisonRecord`, so
    in a hardened job they land on the dead-letter topic with a reason
    instead of crashing the job mid-stream.
    """

    def __init__(self, types, check: Optional[Callable[[T], Optional[str]]] = None,
                 name: str = "validate"):
        self.types = types if isinstance(types, tuple) else (types,)
        self.check = check
        self.name = name

    def process(self, record: Record[T]) -> Iterable[T]:
        value = record.value
        if not isinstance(value, self.types):
            expected = "/".join(t.__name__ for t in self.types)
            raise PoisonRecord(
                f"{self.name}: expected {expected}, "
                f"got {type(value).__name__}", value)
        if self.check is not None:
            reason = self.check(value)
            if reason is not None:
                raise PoisonRecord(f"{self.name}: {reason}", value)
        yield value


@dataclass(frozen=True)
class RetryPolicy:
    """Per-record retry with exponential backoff and bounded jitter.

    Backoff for attempt *k* is ``base * multiplier**k`` capped at
    ``max_backoff_ms``, then jittered by up to ``±jitter`` (a fraction).
    Jitter is *deterministic* — derived from (job, offset, attempt) —
    so a restored job recomputes identical delays without having to
    checkpoint RNG state. ``retry_budget`` caps total retries across
    the job's lifetime: once spent, failing records dead-letter on
    their first error (protects throughput during failure storms).
    """

    max_retries: int = 3
    base_backoff_ms: float = 50.0
    multiplier: float = 2.0
    max_backoff_ms: float = 5_000.0
    jitter: float = 0.1
    retry_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.base_backoff_ms < 0 or self.max_backoff_ms < self.base_backoff_ms:
            raise ValueError("invalid backoff configuration")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be non-negative")

    def backoff_ms(self, job_name: str, offset: int, attempt: int) -> float:
        """The (jittered) delay before retry number ``attempt``."""
        raw = min(self.base_backoff_ms * self.multiplier ** attempt,
                  self.max_backoff_ms)
        if self.jitter == 0.0:
            return raw
        unit = derive_seed(0, job_name, str(offset), str(attempt)) / 2 ** 64
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)


@dataclass(frozen=True)
class DeadLetter:
    """A poison record plus structured failure metadata."""

    value: Any
    offset: int
    ts: int
    job: str
    error: str        # exception class name
    reason: str       # exception message / rejection reason
    attempts: int     # processing attempts made (1 = no retries)


@dataclass(frozen=True)
class FlaggedRecord:
    """A record passed through *unprocessed* while the circuit is open.

    Downstream consumers must treat the wrapped value as degraded: it
    skipped the job's processors (including validation)."""

    value: Any
    reason: str = "circuit_open"


class CircuitBreaker:
    """Opens after N consecutive record failures; degrades to flagging.

    States: ``closed`` (normal processing), ``open`` (records bypass the
    processors and reach the sink as :class:`FlaggedRecord`), and
    ``half_open`` (one trial record is processed; success closes the
    breaker, failure re-opens it). The breaker half-opens after
    ``recovery_records`` pass-throughs — record-count based, matching
    the pipeline's virtual-time execution model.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, recovery_records: int = 20):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_records < 1:
            raise ValueError("recovery_records must be >= 1")
        self.failure_threshold = failure_threshold
        self.recovery_records = recovery_records
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.passthroughs = 0      # since the breaker last opened
        self.n_opens = 0

    def allow(self) -> bool:
        """Should the next record be processed (vs passed through)?"""
        if self.state == self.OPEN:
            if self.passthroughs >= self.recovery_records:
                self.state = self.HALF_OPEN
                return True
            return False
        return True

    def on_passthrough(self) -> None:
        self.passthroughs += 1

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self.state = self.CLOSED

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or (
                self.state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self.passthroughs = 0
            self.n_opens += 1

    # -- checkpoint support ---------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "passthroughs": self.passthroughs,
                "n_opens": self.n_opens}

    def restore(self, state: Dict[str, Any]) -> None:
        self.state = state["state"]
        self.consecutive_failures = state["consecutive_failures"]
        self.passthroughs = state["passthroughs"]
        self.n_opens = state["n_opens"]


# ---------------------------------------------------------------------------
# The job
# ---------------------------------------------------------------------------


class StreamJob:
    """source topic -> processors -> sink topic.

    Pass ``retry_policy``, ``dead_letter`` and/or ``circuit_breaker`` to
    run hardened (see the module docstring); without them the job keeps
    its original fail-fast semantics — any processor exception
    propagates to the caller of ``step()``.
    """

    def __init__(self, broker: Broker, source: str, sink: str,
                 processors: List[Processor], name: Optional[str] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 dead_letter: Optional[str] = None,
                 circuit_breaker: Optional[CircuitBreaker] = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.broker = broker
        self.consumer: Consumer = broker.consumer(source, group=name or sink)
        self.sink: Topic = broker.topic(sink)
        self.processors = processors
        self.name = name or f"{source}->{sink}"
        self.retry_policy = retry_policy
        self.circuit_breaker = circuit_breaker
        self._hardened = (retry_policy is not None or dead_letter is not None
                          or circuit_breaker is not None)
        if dead_letter is None and self._hardened:
            dead_letter = f"{self.name}.dlq"
        self.dead_letter: Optional[Topic] = (
            broker.topic(dead_letter) if dead_letter is not None else None)
        self.n_in = 0
        self.n_out = 0
        self.n_dead = 0
        self.n_flagged = 0
        self.retries_used = 0
        #: virtual milliseconds spent in backoff (accounting only — the
        #: pipeline never wall-clock sleeps).
        self.backoff_ms_total = 0.0
        # ``repro.stream.*`` metrics, labelled by job; falls back to the
        # broker's registry (the no-op null one unless metered), so every
        # increment below is an inert call when telemetry is off.
        self.metrics = metrics if metrics is not None else broker.metrics
        job = self.name
        counter = self.metrics.counter
        self._c_in = counter("repro.stream.records_in", job=job)
        self._c_out = counter("repro.stream.records_out", job=job)
        self._c_dead = counter("repro.stream.dead_letters", job=job)
        self._c_retries = counter("repro.stream.retries", job=job)
        self._c_flagged = counter("repro.stream.flagged", job=job)
        self._c_opens = counter("repro.stream.breaker_opens", job=job)
        self._c_checkpoints = counter("repro.stream.checkpoints", job=job)
        self._c_restores = counter("repro.stream.restores", job=job)
        self._h_backoff = self.metrics.histogram(
            "repro.stream.backoff_ms", job=job)

    # -- processing -----------------------------------------------------------

    def _apply_chain(self, record: Record) -> List[Any]:
        """Run the full processor chain over one record."""
        outputs: List[Any] = [record.value]
        for processor in self.processors:
            next_outputs: List[Any] = []
            for value in outputs:
                next_outputs.extend(
                    processor.process(Record(record.offset, record.ts, value)))
            outputs = next_outputs
        return outputs

    def _dead_letter(self, record: Record, exc: Exception, attempts: int) -> None:
        self.n_dead += 1
        self._c_dead.inc()
        self.dead_letter.produce(record.ts, DeadLetter(
            value=record.value, offset=record.offset, ts=record.ts,
            job=self.name, error=type(exc).__name__,
            reason=str(exc), attempts=attempts))

    def _budget_left(self) -> bool:
        budget = self.retry_policy.retry_budget
        return budget is None or self.retries_used < budget

    def _process_hardened(self, record: Record) -> None:
        breaker = self.circuit_breaker
        if breaker is not None and not breaker.allow():
            # Open circuit: degrade to pass-through-with-flagging so the
            # stream keeps moving while the fault clears.
            self.sink.produce(record.ts, FlaggedRecord(record.value))
            self.n_out += 1
            self.n_flagged += 1
            self._c_out.inc()
            self._c_flagged.inc()
            breaker.on_passthrough()
            return
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                outputs = self._apply_chain(record)
                break
            except PoisonRecord as exc:
                self._dead_letter(record, exc, attempt + 1)
                if breaker is not None:
                    # Poison is the record's fault, not the pipeline's:
                    # it does not count toward opening the breaker.
                    breaker.record_success()
                return
            except Exception as exc:
                if (policy is None or attempt >= policy.max_retries
                        or not self._budget_left()):
                    self._dead_letter(record, exc, attempt + 1)
                    if breaker is not None:
                        opens_before = breaker.n_opens
                        breaker.record_failure()
                        if breaker.n_opens > opens_before:
                            self._c_opens.inc()
                    return
                self.retries_used += 1
                self._c_retries.inc()
                backoff = policy.backoff_ms(self.name, record.offset, attempt)
                self.backoff_ms_total += backoff
                self._h_backoff.observe(backoff)
                attempt += 1
        # Outputs reach the sink only after the whole chain succeeded,
        # so retries never emit partial results.
        for value in outputs:
            self.sink.produce(record.ts, value)
            self.n_out += 1
            self._c_out.inc()
        if breaker is not None:
            breaker.record_success()

    def step(self, max_records: Optional[int] = None,
             until_ts: Optional[int] = None) -> int:
        """Process newly-available records; returns how many were read.

        ``until_ts`` bounds the read in record time (exclusive), so a
        virtual-time worker can pump the job only up to its current
        tick — see :meth:`repro.streaming.topic.Consumer.poll`.
        """
        records = self.consumer.poll(max_records, until_ts=until_ts)
        self._c_in.inc(len(records))
        if self._hardened:
            for record in records:
                self.n_in += 1
                self._process_hardened(record)
            return len(records)
        for record in records:
            self.n_in += 1
            for value in self._apply_chain(record):
                self.sink.produce(record.ts, value)
                self.n_out += 1
                self._c_out.inc()
        return len(records)

    def drain(self) -> int:
        """Step until the source is exhausted."""
        total = 0
        while True:
            n = self.step()
            if n == 0:
                return total
            total += n

    # -- checkpoint / recovery ------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Snapshot the job's progress as a JSON-serializable dict.

        Captures the committed consumer offset, the sink/DLQ high-water
        marks, counters, and circuit-breaker state. Restoring from this
        dict (possibly in a fresh process over the same broker state)
        resumes the job exactly-once: see :meth:`restore`.
        """
        self._c_checkpoints.inc()
        state: Dict[str, Any] = {
            "version": 1,
            "job": self.name,
            "source": self.consumer.topic.name,
            "sink": self.sink.name,
            "offset": self.consumer.offset,
            "sink_end": self.sink.end_offset,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "n_dead": self.n_dead,
            "n_flagged": self.n_flagged,
            "retries_used": self.retries_used,
            "backoff_ms_total": self.backoff_ms_total,
        }
        if self.dead_letter is not None:
            state["dlq_end"] = self.dead_letter.end_offset
        if self.circuit_breaker is not None:
            state["breaker"] = self.circuit_breaker.state_dict()
        return state

    def restore(self, state: Dict[str, Any]) -> None:
        """Resume from a :meth:`checkpoint` snapshot.

        Rolls the sink (and DLQ) back to the checkpointed high-water
        marks — discarding output from records processed after the
        checkpoint but never committed — then seeks the consumer to the
        committed offset. Replay from there is deterministic, so the
        recovered sink is identical to an uninterrupted run's: no lost
        records, no duplicates.
        """
        if state.get("version") != 1:
            raise ValueError(f"unsupported checkpoint version: {state.get('version')}")
        for key, actual in (("job", self.name),
                            ("source", self.consumer.topic.name),
                            ("sink", self.sink.name)):
            if state[key] != actual:
                raise ValueError(
                    f"checkpoint {key} mismatch: {state[key]!r} != {actual!r}")
        self._c_restores.inc()
        self.sink.truncate(state["sink_end"])
        if self.dead_letter is not None and "dlq_end" in state:
            self.dead_letter.truncate(state["dlq_end"])
        self.consumer.seek(state["offset"])
        self.n_in = state["n_in"]
        self.n_out = state["n_out"]
        self.n_dead = state["n_dead"]
        self.n_flagged = state["n_flagged"]
        self.retries_used = state["retries_used"]
        self.backoff_ms_total = state["backoff_ms_total"]
        if self.circuit_breaker is not None and "breaker" in state:
            self.circuit_breaker.restore(state["breaker"])
