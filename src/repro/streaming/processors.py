"""Small stream processors: the Spark-Structured-Streaming analog.

A :class:`StreamJob` consumes one topic, applies a chain of processors,
and produces to another topic. Jobs are pumped explicitly (``step()``),
keeping the whole pipeline deterministic and single-threaded.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, Iterable, List, Optional, TypeVar

from repro.streaming.topic import Broker, Consumer, Record, Topic

T = TypeVar("T")
U = TypeVar("U")


class Processor(Generic[T, U]):
    """Transforms one record into zero or more output values."""

    def process(self, record: Record[T]) -> Iterable[U]:
        raise NotImplementedError


class MapProcessor(Processor[T, U]):
    """Applies a function to each record value."""

    def __init__(self, fn: Callable[[T], U]):
        self.fn = fn

    def process(self, record: Record[T]) -> Iterable[U]:
        yield self.fn(record.value)


class FilterProcessor(Processor[T, T]):
    """Drops records failing a predicate."""

    def __init__(self, predicate: Callable[[T], bool]):
        self.predicate = predicate

    def process(self, record: Record[T]) -> Iterable[T]:
        if self.predicate(record.value):
            yield record.value


class FlatMapProcessor(Processor[T, U]):
    """Expands each record into many values."""

    def __init__(self, fn: Callable[[T], Iterable[U]]):
        self.fn = fn

    def process(self, record: Record[T]) -> Iterable[U]:
        return self.fn(record.value)


class StreamJob:
    """source topic -> processors -> sink topic."""

    def __init__(self, broker: Broker, source: str, sink: str,
                 processors: List[Processor], name: Optional[str] = None):
        self.broker = broker
        self.consumer: Consumer = broker.consumer(source, group=name or sink)
        self.sink: Topic = broker.topic(sink)
        self.processors = processors
        self.name = name or f"{source}->{sink}"
        self.n_in = 0
        self.n_out = 0

    def step(self, max_records: Optional[int] = None) -> int:
        """Process newly-available records; returns how many were read."""
        records = self.consumer.poll(max_records)
        for record in records:
            self.n_in += 1
            values: Iterable[Any] = (record,)
            outputs: List[Any] = [record.value]
            for processor in self.processors:
                next_outputs: List[Any] = []
                for value in outputs:
                    next_outputs.extend(
                        processor.process(Record(record.offset, record.ts, value)))
                outputs = next_outputs
            for value in outputs:
                self.sink.produce(record.ts, value)
                self.n_out += 1
        return len(records)

    def drain(self) -> int:
        """Step until the source is exhausted."""
        total = 0
        while True:
            n = self.step()
            if n == 0:
                return total
            total += n
