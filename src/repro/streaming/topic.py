"""Topics and consumers: ordered, replayable, offset-tracked streams.

Pass a :class:`repro.obs.MetricsRegistry` to a :class:`Broker` (or a
single :class:`Topic`) to count produced/truncated records per topic
under ``repro.stream.topic.*``; the default is the shared no-op
registry, so unmetered brokers pay one inert call per produce.

Bounded topics and backpressure
-------------------------------

A topic constructed with ``capacity=N`` retains at most ``N`` records.
What happens when a producer would overflow it is the topic's
*backpressure policy*:

- ``"block"`` — the producer is held back: the topic invokes its
  drain hook (:meth:`Topic.on_full`, typically wired to pump the
  consuming worker) until space frees; if no hook is registered or the
  hook stops making progress, :class:`TopicFull` is raised. This is
  the lossless policy: nothing is ever dropped, but an overloaded
  producer eventually sees the error instead of queueing unboundedly.
- ``"shed_oldest"`` — the oldest retained record is evicted to make
  room (Kafka-retention flavour). Evictions are counted under
  ``repro.stream.topic.shed`` and consumers that were positioned
  before the new start offset account the gap in
  :attr:`Consumer.missed` — sheds are *never* silent.
- ``"reject"`` — the produce fails with :class:`TopicFull` (counted
  under ``repro.stream.topic.rejected``); the caller decides.

Retained records are released from the head with :meth:`Topic.trim`
(the analog of Kafka ``DeleteRecords``): a consuming worker trims up
to its committed offset after checkpointing, which is what frees
capacity under the ``block`` policy. Offsets are absolute and stable:
shedding or trimming advances :attr:`Topic.start_offset` but never
renumbers the remaining records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

T = TypeVar("T")

#: The backpressure policies a bounded topic accepts.
BACKPRESSURE_POLICIES = ("block", "shed_oldest", "reject")

#: How many times ``produce`` re-invokes the drain hook before giving
#: up: each invocation must free at least one slot, so this only bounds
#: pathological hooks, not legitimate backpressure.
_MAX_DRAIN_ATTEMPTS = 1_000_000


class TopicFull(Exception):
    """Producing to a bounded topic that could not make room."""

    def __init__(self, topic: str, capacity: int, policy: str):
        super().__init__(
            f"topic {topic!r} full ({capacity} records, policy={policy})")
        self.topic = topic
        self.capacity = capacity
        self.policy = policy


@dataclass(frozen=True)
class Record(Generic[T]):
    """A timestamped record on a topic."""

    offset: int
    ts: int
    value: T


class Topic(Generic[T]):
    """An append-only ordered log of timestamped records.

    Unbounded by default; pass ``capacity`` (and a ``backpressure``
    policy) to bound it — see the module docstring.
    """

    def __init__(self, name: str, metrics: Optional[MetricsRegistry] = None,
                 capacity: Optional[int] = None,
                 backpressure: str = "block"):
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ValueError(f"unknown backpressure policy: {backpressure!r}")
        self.name = name
        self.capacity = capacity
        self.backpressure = backpressure
        self._log: List[Record[T]] = []
        #: absolute offset of ``_log[0]`` (advanced by shed/trim).
        self._base = 0
        #: records shed/trimmed from the head so far.
        self.n_shed = 0
        self.n_trimmed = 0
        self._drain_hook: Optional[Callable[[], bool]] = None
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._produced = self.metrics.counter(
            "repro.stream.topic.produced", topic=name)
        if capacity is not None:
            self._c_shed = self.metrics.counter(
                "repro.stream.topic.shed", topic=name)
            self._c_blocked = self.metrics.counter(
                "repro.stream.topic.blocked", topic=name)
            self._c_rejected = self.metrics.counter(
                "repro.stream.topic.rejected", topic=name)

    # -- bounded-capacity plumbing -------------------------------------------

    def on_full(self, hook: Optional[Callable[[], bool]]) -> None:
        """Register the ``block`` policy's drain hook.

        The hook is invoked when a produce finds the topic full; it
        should make the consuming side drain (e.g. pump a worker one
        tick) and return ``True`` if it made progress. ``produce``
        keeps invoking it until space frees or it reports no progress.
        """
        self._drain_hook = hook

    def _make_room(self) -> None:
        """Apply the backpressure policy until one slot is free."""
        assert self.capacity is not None
        if self.backpressure == "reject":
            self._c_rejected.inc()
            raise TopicFull(self.name, self.capacity, self.backpressure)
        if self.backpressure == "shed_oldest":
            while len(self._log) >= self.capacity:
                del self._log[0]
                self._base += 1
                self.n_shed += 1
                self._c_shed.inc()
            return
        # block: hand control to the consuming side until space frees.
        for _ in range(_MAX_DRAIN_ATTEMPTS):
            if len(self._log) < self.capacity:
                return
            if self._drain_hook is None:
                break
            self._c_blocked.inc()
            if not self._drain_hook():
                break
        if len(self._log) >= self.capacity:
            raise TopicFull(self.name, self.capacity, self.backpressure)

    def produce(self, ts: int, value: T) -> Record[T]:
        """Append a record; timestamps must be non-decreasing."""
        if self._log and ts < self._log[-1].ts:
            raise ValueError(
                f"out-of-order produce on {self.name}: {ts} < {self._log[-1].ts}")
        if self.capacity is not None and len(self._log) >= self.capacity:
            self._make_room()
        record = Record(offset=self._base + len(self._log), ts=int(ts),
                        value=value)
        self._log.append(record)
        self._produced.inc()
        return record

    def read(self, offset: int, max_records: Optional[int] = None
             ) -> List[Record[T]]:
        """Records from ``offset`` on (clamped to :attr:`start_offset`:
        head records shed or trimmed away are simply gone)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        start = max(offset, self._base) - self._base
        end = len(self._log) if max_records is None else start + max_records
        return self._log[start:end]

    @property
    def start_offset(self) -> int:
        """Absolute offset of the oldest retained record."""
        return self._base

    @property
    def end_offset(self) -> int:
        return self._base + len(self._log)

    def trim(self, new_start_offset: int) -> int:
        """Release records *before* ``new_start_offset`` from the head;
        returns how many were released.

        The retention analog of Kafka ``DeleteRecords``: a consuming
        worker trims up to its committed offset after checkpointing —
        recovery never replays below a committed offset, so trimmed
        records can never be needed again. Trimming is what frees
        capacity on a bounded ``block`` topic.
        """
        if not self._base <= new_start_offset <= self.end_offset:
            raise ValueError(
                f"trim offset {new_start_offset} outside "
                f"[{self._base}, {self.end_offset}]")
        dropped = new_start_offset - self._base
        if dropped:
            del self._log[:dropped]
            self._base = new_start_offset
            self.n_trimmed += dropped
            self.metrics.counter("repro.stream.topic.trimmed",
                                 topic=self.name).inc(dropped)
        return dropped

    def truncate(self, end_offset: int) -> int:
        """Discard records at/after ``end_offset``; returns how many.

        Crash-recovery only (the analog of Kafka log truncation when a
        restarted job rolls back to its last committed offset): a
        restored :class:`~repro.streaming.processors.StreamJob` drops
        sink records produced after its checkpoint before reprocessing,
        so recovery is exactly-once rather than at-least-once. Consumers
        of other groups positioned past ``end_offset`` must ``seek``.
        """
        if not self._base <= end_offset <= self.end_offset:
            raise ValueError(f"end_offset {end_offset} out of range")
        dropped = self.end_offset - end_offset
        del self._log[end_offset - self._base:]
        if dropped:
            self.metrics.counter("repro.stream.topic.truncated",
                                 topic=self.name).inc(dropped)
        return dropped

    def __len__(self) -> int:
        """Retained records (shed/trimmed head records excluded)."""
        return len(self._log)

    def __iter__(self) -> Iterator[Record[T]]:
        return iter(self._log)


class Consumer(Generic[T]):
    """An offset-tracking reader of one topic.

    A consumer created by a :class:`Broker` can :meth:`commit` its
    offset durably to the broker under its group name, so recovery does
    not depend on the consumer *object* surviving — a fresh consumer in
    a restarted worker resumes from ``broker.committed(topic, group)``.
    """

    def __init__(self, topic: Topic[T], group: str = "default",
                 from_beginning: bool = True,
                 broker: Optional["Broker"] = None):
        self.topic = topic
        self.group = group
        self.broker = broker
        self.offset = topic.start_offset if from_beginning else topic.end_offset
        #: records this consumer could never see because a bounded
        #: ``shed_oldest`` topic evicted them first. Sheds are counted
        #: at the topic; this attributes the gap to the reader.
        self.missed = 0

    def _skip_shed(self) -> None:
        start = self.topic.start_offset
        if self.offset < start:
            self.missed += start - self.offset
            self.offset = start

    def poll(self, max_records: Optional[int] = None,
             until_ts: Optional[int] = None) -> List[Record[T]]:
        """New records since the last poll; advances the offset.

        ``until_ts`` stops at the first record timestamped at/after it
        (exclusive bound) without consuming it — how a virtual-time
        worker reads only the triggers visible at its current tick.
        """
        self._skip_shed()
        records = self.topic.read(self.offset, max_records)
        if until_ts is not None:
            kept = 0
            for record in records:
                if record.ts >= until_ts:
                    break
                kept += 1
            records = records[:kept]
        self.offset += len(records)
        return records

    @property
    def lag(self) -> int:
        return self.topic.end_offset - self.offset

    def seek(self, offset: int) -> None:
        if not self.topic.start_offset <= offset <= self.topic.end_offset:
            raise ValueError(f"offset {offset} out of range")
        self.offset = offset

    def commit(self) -> int:
        """Durably record the current offset with the broker (under
        this consumer's group); returns the committed offset."""
        if self.broker is None:
            raise RuntimeError(
                "consumer has no broker to commit to (create it via "
                "Broker.consumer)")
        self.broker.commit(self.topic.name, self.group, self.offset)
        return self.offset


class Broker:
    """A registry of named topics plus per-group committed offsets."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._topics: Dict[str, Topic[Any]] = {}
        #: (topic, group) -> durably committed consumer offset.
        self._committed: Dict[Tuple[str, str], int] = {}
        #: handed to every topic this broker creates, and picked up by
        #: :class:`~repro.streaming.processors.StreamJob` s built on it.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    def topic(self, name: str, capacity: Optional[int] = None,
              backpressure: Optional[str] = None) -> Topic[Any]:
        """Get or create a topic.

        ``capacity``/``backpressure`` apply at creation; re-requesting
        an existing topic with a *different* bound is an error (bounds
        are part of the topic's contract), while omitting them always
        returns the existing topic unchanged.
        """
        topic = self._topics.get(name)
        if topic is None:
            topic = Topic(name, metrics=self.metrics, capacity=capacity,
                          backpressure=backpressure or "block")
            self._topics[name] = topic
            return topic
        if capacity is not None and capacity != topic.capacity:
            raise ValueError(
                f"topic {name!r} exists with capacity={topic.capacity}, "
                f"requested {capacity}")
        if backpressure is not None and backpressure != topic.backpressure:
            raise ValueError(
                f"topic {name!r} exists with backpressure="
                f"{topic.backpressure!r}, requested {backpressure!r}")
        return topic

    def consumer(self, name: str, group: str = "default",
                 from_beginning: bool = True,
                 from_committed: bool = False) -> Consumer[Any]:
        """A consumer of ``name``; with ``from_committed=True`` it
        resumes from the group's last committed offset (falling back to
        ``from_beginning`` semantics when the group never committed)."""
        consumer = Consumer(self.topic(name), group, from_beginning,
                            broker=self)
        if from_committed:
            offset = self.committed(name, group)
            if offset is not None:
                consumer.seek(max(offset, consumer.topic.start_offset))
        return consumer

    def commit(self, topic: str, group: str, offset: int) -> None:
        """Durably record ``group``'s position on ``topic``."""
        t = self.topic(topic)
        if not 0 <= offset <= t.end_offset:
            raise ValueError(f"offset {offset} out of range for {topic!r}")
        self._committed[(topic, group)] = offset

    def committed(self, topic: str, group: str) -> Optional[int]:
        """The group's last committed offset (``None`` if never)."""
        return self._committed.get((topic, group))

    def topics(self) -> List[str]:
        return sorted(self._topics)

    def __contains__(self, name: str) -> bool:
        return name in self._topics
