"""Topics and consumers: ordered, replayable, offset-tracked streams.

Pass a :class:`repro.obs.MetricsRegistry` to a :class:`Broker` (or a
single :class:`Topic`) to count produced/truncated records per topic
under ``repro.stream.topic.*``; the default is the shared no-op
registry, so unmetered brokers pay one inert call per produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generic, Iterator, List, Optional, TypeVar

from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

T = TypeVar("T")


@dataclass(frozen=True)
class Record(Generic[T]):
    """A timestamped record on a topic."""

    offset: int
    ts: int
    value: T


class Topic(Generic[T]):
    """An append-only ordered log of timestamped records."""

    def __init__(self, name: str, metrics: Optional[MetricsRegistry] = None):
        self.name = name
        self._log: List[Record[T]] = []
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._produced = self.metrics.counter(
            "repro.stream.topic.produced", topic=name)

    def produce(self, ts: int, value: T) -> Record[T]:
        """Append a record; timestamps must be non-decreasing."""
        if self._log and ts < self._log[-1].ts:
            raise ValueError(
                f"out-of-order produce on {self.name}: {ts} < {self._log[-1].ts}")
        record = Record(offset=len(self._log), ts=int(ts), value=value)
        self._log.append(record)
        self._produced.inc()
        return record

    def read(self, offset: int, max_records: Optional[int] = None
             ) -> List[Record[T]]:
        if offset < 0:
            raise ValueError("offset must be non-negative")
        end = len(self._log) if max_records is None else offset + max_records
        return self._log[offset:end]

    @property
    def end_offset(self) -> int:
        return len(self._log)

    def truncate(self, end_offset: int) -> int:
        """Discard records at/after ``end_offset``; returns how many.

        Crash-recovery only (the analog of Kafka log truncation when a
        restarted job rolls back to its last committed offset): a
        restored :class:`~repro.streaming.processors.StreamJob` drops
        sink records produced after its checkpoint before reprocessing,
        so recovery is exactly-once rather than at-least-once. Consumers
        of other groups positioned past ``end_offset`` must ``seek``.
        """
        if not 0 <= end_offset <= len(self._log):
            raise ValueError(f"end_offset {end_offset} out of range")
        dropped = len(self._log) - end_offset
        del self._log[end_offset:]
        if dropped:
            self.metrics.counter("repro.stream.topic.truncated",
                                 topic=self.name).inc(dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._log)

    def __iter__(self) -> Iterator[Record[T]]:
        return iter(self._log)


class Consumer(Generic[T]):
    """An offset-tracking reader of one topic."""

    def __init__(self, topic: Topic[T], group: str = "default",
                 from_beginning: bool = True):
        self.topic = topic
        self.group = group
        self.offset = 0 if from_beginning else topic.end_offset

    def poll(self, max_records: Optional[int] = None) -> List[Record[T]]:
        """New records since the last poll; advances the offset."""
        records = self.topic.read(self.offset, max_records)
        self.offset += len(records)
        return records

    @property
    def lag(self) -> int:
        return self.topic.end_offset - self.offset

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= self.topic.end_offset:
            raise ValueError(f"offset {offset} out of range")
        self.offset = offset


class Broker:
    """A registry of named topics."""

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._topics: Dict[str, Topic[Any]] = {}
        #: handed to every topic this broker creates, and picked up by
        #: :class:`~repro.streaming.processors.StreamJob` s built on it.
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    def topic(self, name: str) -> Topic[Any]:
        """Get or create a topic."""
        topic = self._topics.get(name)
        if topic is None:
            topic = Topic(name, metrics=self.metrics)
            self._topics[name] = topic
        return topic

    def consumer(self, name: str, group: str = "default",
                 from_beginning: bool = True) -> Consumer[Any]:
        return Consumer(self.topic(name), group, from_beginning)

    def topics(self) -> List[str]:
        return sorted(self._topics)

    def __contains__(self, name: str) -> bool:
        return name in self._topics
