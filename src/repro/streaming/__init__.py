"""In-process streaming substrate (Kafka/Spark-Structured-Streaming analog).

The paper's reactive measurement platform is built on Kafka topics and
Spark Structured Streaming jobs. This package provides the same
primitives in-process: ordered topics with offset-tracking consumers, a
discrete-event scheduler, and small stream processors (filter/map/
window join) — enough to express the reactive pipeline faithfully.

Jobs can run *hardened* for faulted inputs: per-record retries with
backoff and jitter, a dead-letter topic for poison records, a circuit
breaker degrading to pass-through-with-flagging, and checkpoint/restore
for exactly-once crash recovery (see ``docs/robustness.md``).

Topics can be *bounded* (``capacity=`` plus a producer-side
backpressure policy — ``block``, ``shed_oldest``, or ``reject``) and
the broker keeps per-group committed offsets, so a consumer's position
survives a worker kill (see ``docs/robustness.md`` §overload).
"""

from repro.streaming.topic import (
    BACKPRESSURE_POLICIES,
    Broker,
    Consumer,
    Record,
    Topic,
    TopicFull,
)
from repro.streaming.scheduler import EventScheduler, ScheduledEvent
from repro.streaming.processors import (
    CircuitBreaker,
    DeadLetter,
    FailFastProcessor,
    FilterProcessor,
    FlaggedRecord,
    FlatMapProcessor,
    MapProcessor,
    PoisonRecord,
    Processor,
    RetryPolicy,
    StreamJob,
)

__all__ = [
    "BACKPRESSURE_POLICIES",
    "Broker",
    "Consumer",
    "Record",
    "Topic",
    "TopicFull",
    "EventScheduler",
    "ScheduledEvent",
    "Processor",
    "FilterProcessor",
    "MapProcessor",
    "FlatMapProcessor",
    "FailFastProcessor",
    "PoisonRecord",
    "RetryPolicy",
    "DeadLetter",
    "FlaggedRecord",
    "CircuitBreaker",
    "StreamJob",
]
