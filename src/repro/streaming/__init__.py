"""In-process streaming substrate (Kafka/Spark-Structured-Streaming analog).

The paper's reactive measurement platform is built on Kafka topics and
Spark Structured Streaming jobs. This package provides the same
primitives in-process: ordered topics with offset-tracking consumers, a
discrete-event scheduler, and small stream processors (filter/map/
window join) — enough to express the reactive pipeline faithfully.
"""

from repro.streaming.topic import Broker, Consumer, Topic
from repro.streaming.scheduler import EventScheduler, ScheduledEvent
from repro.streaming.processors import FilterProcessor, MapProcessor, StreamJob

__all__ = [
    "Broker",
    "Consumer",
    "Topic",
    "EventScheduler",
    "ScheduledEvent",
    "FilterProcessor",
    "MapProcessor",
    "StreamJob",
]
