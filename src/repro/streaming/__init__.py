"""In-process streaming substrate (Kafka/Spark-Structured-Streaming analog).

The paper's reactive measurement platform is built on Kafka topics and
Spark Structured Streaming jobs. This package provides the same
primitives in-process: ordered topics with offset-tracking consumers, a
discrete-event scheduler, and small stream processors (filter/map/
window join) — enough to express the reactive pipeline faithfully.

Jobs can run *hardened* for faulted inputs: per-record retries with
backoff and jitter, a dead-letter topic for poison records, a circuit
breaker degrading to pass-through-with-flagging, and checkpoint/restore
for exactly-once crash recovery (see ``docs/robustness.md``).
"""

from repro.streaming.topic import Broker, Consumer, Record, Topic
from repro.streaming.scheduler import EventScheduler, ScheduledEvent
from repro.streaming.processors import (
    CircuitBreaker,
    DeadLetter,
    FailFastProcessor,
    FilterProcessor,
    FlaggedRecord,
    FlatMapProcessor,
    MapProcessor,
    PoisonRecord,
    Processor,
    RetryPolicy,
    StreamJob,
)

__all__ = [
    "Broker",
    "Consumer",
    "Record",
    "Topic",
    "EventScheduler",
    "ScheduledEvent",
    "Processor",
    "FilterProcessor",
    "MapProcessor",
    "FlatMapProcessor",
    "FailFastProcessor",
    "PoisonRecord",
    "RetryPolicy",
    "DeadLetter",
    "FlaggedRecord",
    "CircuitBreaker",
    "StreamJob",
]
