"""Discrete-event scheduler driving the reactive platform's probe timing."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

Action = Callable[[int], None]


@dataclass(order=True)
class ScheduledEvent:
    """One pending callback; ordered by (time, sequence)."""

    ts: int
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """A minimal discrete-event loop.

    Events fire in timestamp order; ties break by scheduling order.
    ``run_until`` advances the virtual clock — there is no wall-clock
    sleeping anywhere, so a 17-month probe campaign replays in seconds.
    """

    def __init__(self, start_ts: int = 0):
        self.now = int(start_ts)
        self._heap: List[ScheduledEvent] = []
        self._seq = itertools.count()
        self.n_fired = 0

    def at(self, ts: int, action: Action) -> ScheduledEvent:
        """Schedule ``action(ts)`` at an absolute time (>= now)."""
        ts = int(ts)
        if ts < self.now:
            raise ValueError(f"cannot schedule in the past ({ts} < {self.now})")
        event = ScheduledEvent(ts=ts, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay_s: int, action: Action) -> ScheduledEvent:
        """Schedule relative to the current virtual time."""
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        return self.at(self.now + delay_s, action)

    def every(self, start_ts: int, interval_s: int, until_ts: int,
              action: Action) -> List[ScheduledEvent]:
        """Schedule a periodic action over [start_ts, until_ts)."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        events = []
        ts = int(start_ts)
        while ts < until_ts:
            events.append(self.at(ts, action))
            ts += interval_s
        return events

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_ts(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].ts if self._heap else None

    def run_until(self, ts: int) -> int:
        """Fire everything scheduled strictly before ``ts``; returns the
        number of events fired. The clock ends at ``ts``."""
        fired = 0
        while self._heap and self._heap[0].ts < ts:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.ts
            event.action(event.ts)
            fired += 1
        self.now = max(self.now, int(ts))
        self.n_fired += fired
        return fired

    def run_all(self) -> int:
        """Fire every pending event.

        ``n_fired`` accounting happens in :meth:`run_until` alone, so
        each event is counted exactly once no matter how the loop is
        driven.
        """
        last = self.peek_ts()
        fired = 0
        while last is not None:
            fired += self.run_until(last + 1)
            last = self.peek_ts()
        return fired
