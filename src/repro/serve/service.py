"""The query service: cached-artifact answers to study questions.

:class:`QueryService` is the transport-free core of ``repro serve``:
``handle(target)`` maps one request target to a :class:`ServeResponse`
(status, headers, JSON body), reading only the sharded store's cached
partitions — no query ever re-runs the pipeline. The HTTP front end
(:mod:`repro.serve.api`) is a thin asyncio shell around it, and tests
drive ``handle`` directly.

Endpoints::

    GET /healthz                       liveness + maintenance flag
    GET /v1/meta                       timeline, days, domain counts
    GET /v1/impact?attack=IP@TS&domain=NAME
                                       impact of one attack on one domain
    GET /v1/slices?nsset=ID[&start=..][&end=..]
                                       per-NSSet daily time slices
    GET /v1/top?by=companies|victims|events[&n=N]
                                       top-N tables
    GET /v1/events?day=YYYY-MM-DD      event lookups for one day
    GET /metrics                       Prometheus text exposition

Degradation is graceful and explicit: a cold shard (not yet built, or
gc-evicted) or a store under maintenance answers ``503`` with a
``Retry-After`` header instead of blocking or recomputing. Every query
is accounted exactly once in ``repro.serve.queries{endpoint,outcome}``
(outcomes: ``ok``, ``bad_request``, ``not_found``, ``unavailable``,
``error`` — their sum is the request count), timed into the
``repro.serve.query_latency_ms{endpoint}`` histogram, and journaled as
``query.start`` / ``query.finish`` / ``query.error``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.core.impact import top_companies_by_impact
from repro.net.ip import ip_to_str, parse_ip
from repro.obs import NULL_TELEMETRY, QUERY_BUCKETS_MS, RunTelemetry
from repro.serve.store import ShardedStudyStore
from repro.util.timeutil import DAY, day_start, format_ts, iter_days, parse_ts

__all__ = ["ServeResponse", "QueryService"]

#: Retry-After (seconds) for a store under maintenance (gc in flight).
RETRY_MAINTENANCE_S = 5
#: Retry-After (seconds) for a cold shard (needs a build pass).
RETRY_COLD_S = 30


@dataclass
class ServeResponse:
    """One deterministic HTTP-shaped answer.

    ``body`` is a JSON document for every endpoint except ``/metrics``,
    which carries its Prometheus exposition as a raw ``str`` so scrapers
    see ``text/plain`` rather than JSON-wrapped text.
    """

    status: int
    body: object
    headers: Tuple[Tuple[str, str], ...] = ()

    @property
    def content_type(self) -> str:
        if isinstance(self.body, str):
            return "text/plain; version=0.0.4; charset=utf-8"
        return "application/json"

    def to_bytes(self) -> bytes:
        if isinstance(self.body, str):
            return self.body.encode("utf-8")
        return json.dumps(self.body, sort_keys=True,
                          separators=(",", ":")).encode("utf-8") + b"\n"


class _BadRequest(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _NotFound(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class _ShardCold(Exception):
    def __init__(self, day: int, phase: str):
        super().__init__(f"{phase}@{format_ts(day)[:10]}")
        self.day = day
        self.phase = phase


def _parse_when(text: str) -> int:
    """An epoch-seconds int, or a ``YYYY-MM-DD[ HH:MM[:SS]]`` date."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return parse_ts(text)
    except ValueError:
        raise _BadRequest(f"unparseable timestamp {text!r}")


class QueryService:
    """Answers study queries from a :class:`ShardedStudyStore`."""

    def __init__(self, store: ShardedStudyStore,
                 telemetry: Optional[RunTelemetry] = None):
        self.store = store
        self.telemetry = (telemetry if telemetry is not None
                          else store.telemetry) or NULL_TELEMETRY
        self._catalog: Optional[Dict] = None
        self._top: Dict[str, List] = {}
        self._routes = {
            "/healthz": self._healthz,
            "/v1/meta": self._meta,
            "/v1/impact": self._impact,
            "/v1/slices": self._slices,
            "/v1/top": self._top_n,
            "/v1/events": self._events,
            "/metrics": self._metrics,
        }

    # -- the entry point ------------------------------------------------------

    def handle(self, target: str, method: str = "GET") -> ServeResponse:
        """Answer one request target; never raises."""
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        endpoint = path if path in self._routes else "unknown"
        params = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        journal = self.telemetry.journal
        clock = self.telemetry.clock
        journal.emit("query.start", endpoint=endpoint, target=target)
        t0 = clock.now()
        try:
            if method != "GET":
                response = ServeResponse(405, {"error": "method_not_allowed"})
                outcome = "bad_request"
            else:
                response, outcome = self._dispatch(endpoint, path, params)
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            response = ServeResponse(500, {"error": "internal",
                                           "detail": type(exc).__name__})
            outcome = "error"
            journal.emit("query.error", endpoint=endpoint,
                         error=type(exc).__name__)
        duration_ms = (clock.now() - t0) * 1000.0
        registry = self.telemetry.registry
        registry.counter("repro.serve.queries", endpoint=endpoint,
                         outcome=outcome).inc()
        registry.histogram("repro.serve.query_latency_ms",
                           buckets=QUERY_BUCKETS_MS,
                           endpoint=endpoint).observe(duration_ms)
        journal.emit("query.finish", endpoint=endpoint,
                     status=response.status, outcome=outcome,
                     duration_ms=round(duration_ms, 3))
        return response

    def _dispatch(self, endpoint: str, path: str,
                  params: Dict[str, str]) -> Tuple[ServeResponse, str]:
        if endpoint == "unknown":
            return ServeResponse(404, {"error": "unknown_endpoint",
                                       "path": path}), "not_found"
        if self.store.in_maintenance and endpoint.startswith("/v1/"):
            return ServeResponse(
                503, {"error": "maintenance",
                      "retry_after_s": RETRY_MAINTENANCE_S},
                headers=(("Retry-After", str(RETRY_MAINTENANCE_S)),),
            ), "unavailable"
        try:
            body = self._routes[endpoint](params)
        except _BadRequest as exc:
            return ServeResponse(400, {"error": "bad_request",
                                       "detail": exc.reason}), "bad_request"
        except _NotFound as exc:
            return ServeResponse(404, {"error": "not_found",
                                       "detail": exc.reason}), "not_found"
        except _ShardCold as exc:
            return ServeResponse(
                503, {"error": "shard_cold", "phase": exc.phase,
                      "day": format_ts(exc.day)[:10],
                      "retry_after_s": RETRY_COLD_S},
                headers=(("Retry-After", str(RETRY_COLD_S)),),
            ), "unavailable"
        if isinstance(body, ServeResponse):
            return body, "ok"
        return ServeResponse(200, body), "ok"

    # -- shared plumbing ------------------------------------------------------

    def catalog(self) -> Dict:
        if self._catalog is None:
            self._catalog = self.store.catalog()
        return self._catalog

    def _load(self, day: int, phase: str):
        artifact = self.store.load_day(day, phase)
        if artifact is None:
            raise _ShardCold(day, phase)
        return artifact

    def _days(self) -> List[int]:
        return self.store.days()

    def _require(self, params: Dict[str, str], name: str) -> str:
        value = params.get(name)
        if not value:
            raise _BadRequest(f"missing required parameter {name!r}")
        return value

    # -- endpoints ------------------------------------------------------------

    def _healthz(self, params: Dict[str, str]) -> Dict:
        return {"status": "ok",
                "maintenance": self.store.in_maintenance,
                "days": len(self._days())}

    def _meta(self, params: Dict[str, str]) -> Dict:
        catalog = self.catalog()
        return {
            "start": format_ts(catalog["start"]),
            "end": format_ts(catalog["end"]),
            "days": len(catalog["days"]),
            "n_domains": catalog["n_domains"],
            "n_nssets": len(catalog["nsset_domains"]),
        }

    def _metrics(self, params: Dict[str, str]) -> ServeResponse:
        return ServeResponse(200, self.telemetry.registry.render_prometheus())

    def _parse_attack(self, text: str) -> Tuple[int, int]:
        ip_s, sep, ts_s = text.partition("@")
        if not sep:
            raise _BadRequest("attack must be IP@TS")
        try:
            ip = parse_ip(ip_s)
        except ValueError:
            raise _BadRequest(f"invalid victim IP {ip_s!r}")
        return ip, _parse_when(ts_s)

    def _find_event(self, ip: int, ts: int, nsset_id: Optional[int]):
        """(matching event, any event of the attack) across the day
        partitions the inferred start can live in."""
        day = day_start(ts)
        any_event = None
        for candidate in (day, day - DAY):
            if candidate not in self.store.day_keys():
                continue
            for event in self._load(candidate, "events"):
                if (event.attack.victim_ip == ip
                        and event.attack.start == ts):
                    any_event = any_event or event
                    if nsset_id is None or event.nsset_id == nsset_id:
                        return event, any_event
        return None, any_event

    def _find_classified(self, ip: int, ts: int):
        day = day_start(ts)
        for candidate in (day, day - DAY):
            if candidate not in self.store.day_keys():
                continue
            for classified in self._load(candidate, "join").classified:
                if (classified.attack.victim_ip == ip
                        and classified.attack.start == ts):
                    return classified
        return None

    def _impact(self, params: Dict[str, str]) -> Dict:
        ip, ts = self._parse_attack(self._require(params, "attack"))
        domain = self._require(params, "domain")
        nsset_id = self.catalog()["domains"].get(domain)
        if nsset_id is None:
            raise _NotFound(f"unknown domain {domain!r}")
        event, any_event = self._find_event(ip, ts, nsset_id)
        base = {"attack": f"{ip_to_str(ip)}@{ts}",
                "domain": domain, "nsset_id": nsset_id}
        if event is not None:
            series = event.series
            return dict(base, impact={
                "mean": event.mean_impact,
                "max": event.max_impact,
                "headline": event.impact,
                "failure_rate": event.failure_rate,
                "n_measured": event.n_measured,
                "degraded": event.degraded,
                "duration_s": event.duration_s,
                "company": event.company,
                "points": [
                    {"ts": p.ts, "n": p.n, "ok": p.ok,
                     "timeouts": p.timeouts, "servfails": p.servfails,
                     "impact": p.impact}
                    for p in series.points
                ],
            })
        if any_event is not None:
            return dict(base, impact=None, reason="no_event_for_nsset")
        if self._find_classified(ip, ts) is not None:
            return dict(base, impact=None, reason="no_measurable_impact")
        raise _NotFound(f"no attack {ip_to_str(ip)}@{ts} in the feed")

    def _slices(self, params: Dict[str, str]) -> Dict:
        try:
            nsset_id = int(self._require(params, "nsset"))
        except ValueError:
            raise _BadRequest("nsset must be an integer id")
        catalog = self.catalog()
        if str(nsset_id) not in catalog["nsset_domains"]:
            raise _NotFound(f"unknown NSSet {nsset_id}")
        start = (_parse_when(params["start"]) if params.get("start")
                 else catalog["start"])
        end = (_parse_when(params["end"]) if params.get("end")
               else catalog["end"])
        start = max(day_start(start), catalog["start"])
        end = min(end, catalog["end"])
        if start >= end:
            raise _BadRequest("empty time range")
        points = []
        for day in iter_days(start, end):
            crawl = self._load(day, "crawl")
            agg = crawl.day_aggregate(nsset_id, day)
            if agg is None:
                continue
            points.append({
                "day": format_ts(day)[:10],
                "n": agg.n,
                "failure_rate": agg.failure_rate,
                "avg_rtt": agg.avg_rtt,
                "timeouts": agg.timeout_n,
                "servfails": agg.servfail_n,
            })
        return {"nsset_id": nsset_id,
                "n_domains": catalog["nsset_domains"][str(nsset_id)],
                "start": format_ts(start), "end": format_ts(end),
                "points": points}

    def _all_events(self) -> List:
        out = []
        for day in self._days():
            out.extend(self._load(day, "events"))
        return out

    def _top_n(self, params: Dict[str, str]) -> Dict:
        by = params.get("by", "companies")
        try:
            n = int(params.get("n", "10"))
        except ValueError:
            raise _BadRequest("n must be an integer")
        if n <= 0:
            raise _BadRequest("n must be positive")
        if by not in ("companies", "victims", "events"):
            raise _BadRequest(f"unknown ranking {by!r} "
                              "(companies|victims|events)")
        if by not in self._top:
            self._top[by] = self._rank(by)
        return {"by": by, "n": n, "rows": self._top[by][:n]}

    def _rank(self, by: str) -> List[Dict]:
        if by == "companies":
            events = self._all_events()
            return [{"company": company, "impact": impact}
                    for company, impact in
                    top_companies_by_impact(events, n=len(events))]
        if by == "victims":
            counts: Dict[int, int] = {}
            for day in self._days():
                for classified in self._load(day, "join").classified:
                    ip = classified.attack.victim_ip
                    counts[ip] = counts.get(ip, 0) + 1
            ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
            return [{"victim": ip_to_str(ip), "n_attacks": count}
                    for ip, count in ranked]
        rows = []
        for event in self._all_events():
            rows.append({
                "attack": (f"{ip_to_str(event.attack.victim_ip)}"
                           f"@{event.attack.start}"),
                "nsset_id": event.nsset_id,
                "company": event.company,
                "impact": event.impact,
                "failure_rate": event.failure_rate,
            })
        rows.sort(key=lambda r: (-(r["impact"] or 0.0), r["attack"],
                                 r["nsset_id"]))
        return rows

    def _events(self, params: Dict[str, str]) -> Dict:
        day_text = self._require(params, "day")
        day = day_start(_parse_when(day_text))
        if day not in self.store.day_keys():
            raise _NotFound(f"day {day_text!r} outside the timeline")
        events = self._load(day, "events")
        attack = params.get("attack")
        if attack:
            ip, ts = self._parse_attack(attack)
            events = [e for e in events
                      if e.attack.victim_ip == ip and e.attack.start == ts]
        return {
            "day": format_ts(day)[:10],
            "n_events": len(events),
            "events": [
                {"attack": (f"{ip_to_str(e.attack.victim_ip)}"
                            f"@{e.attack.start}"),
                 "nsset_id": e.nsset_id,
                 "company": e.company,
                 "impact": e.impact,
                 "n_measured": e.n_measured,
                 "degraded": e.degraded}
                for e in events
            ],
        }
