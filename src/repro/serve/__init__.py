"""repro.serve — a query service over a sharded measurement store.

``run_study`` answers a question by recomputing the world; this package
answers questions from what is already on disk. Three layers:

- :class:`ShardedStudyStore` (:mod:`repro.serve.store`) partitions the
  study by UTC day and persists each (day, phase) partition through the
  artifact cache under per-day fingerprint keys
  (:func:`repro.artifacts.day_keys`), so editing one day's attack
  schedule dirties only that day's chain of keys;
- :class:`QueryService` (:mod:`repro.serve.service`) maps request
  targets (impact-of-attack-on-domain, per-NSSet time slices, top-N
  tables, event lookups) to JSON answers read purely from cached
  partitions, with exact per-query outcome accounting and latency
  histograms;
- :class:`QueryServer` (:mod:`repro.serve.api`) is the stdlib asyncio
  HTTP/1.1 shell exposed as ``python -m repro serve``.

See ``docs/serving.md`` for the end-to-end walkthrough.
"""

from repro.serve.api import QueryServer, run_server
from repro.serve.service import QueryService, ServeResponse
from repro.serve.store import (
    SERVE_PHASES,
    BuildReport,
    DayPlan,
    ShardedStudyStore,
    scale_attacks_on_day,
)

__all__ = [
    "SERVE_PHASES",
    "ShardedStudyStore",
    "DayPlan",
    "BuildReport",
    "scale_attacks_on_day",
    "QueryService",
    "ServeResponse",
    "QueryServer",
    "run_server",
]
