"""The HTTP/JSON front end of ``repro serve``.

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` —
stdlib only, GET only, no TLS — whose single job is to move request
targets into :meth:`QueryService.handle` and responses back out.
Queries execute synchronously *in the event loop*: the service reads
pre-computed artifacts (dict lookups plus an occasional shard load),
so queries are short, and single-threaded execution is what makes the
``repro.serve.queries`` outcome accounting exact without locks.

``QueryServer`` binds lazily (``port=0`` picks a free port, exposed as
``.port``) so tests and the benchmark can run servers concurrently
without coordinating port numbers.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.serve.service import QueryService

__all__ = ["QueryServer", "run_server"]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 64


class QueryServer:
    """Asyncio HTTP server wrapping one :class:`QueryService`."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0):
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The actually-bound port (after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                keep_alive = await self._handle_request(reader, writer)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            # Server shutdown with the connection idle: close quietly.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_request(self, reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        if len(request_line) > _MAX_REQUEST_LINE:
            await self._write_raw(writer, 431, b'{"error":"request_too_large"}\n')
            return False
        try:
            method, target, version = request_line.decode(
                "latin-1").strip().split(" ", 2)
        except ValueError:
            await self._write_raw(writer, 400, b'{"error":"malformed_request"}\n')
            return False

        # Drain the headers; only Connection matters to us (GET, no body).
        connection = ""
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "connection":
                connection = value.strip().lower()

        response = self.service.handle(target, method=method)
        keep_alive = connection != "close" and version != "HTTP/1.0"
        await self._write_response(writer, response, keep_alive)
        return keep_alive

    async def _write_response(self, writer, response, keep_alive: bool) -> None:
        body = response.to_bytes()
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(response.status, "OK")
        head = [f"HTTP/1.1 {response.status} {reason}",
                f"Content-Type: {response.content_type}",
                f"Content-Length: {len(body)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        head.extend(f"{name}: {value}" for name, value in response.headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    async def _write_raw(self, writer, status: int, body: bytes) -> None:
        writer.write((f"HTTP/1.1 {status} Bad Request\r\n"
                      "Content-Type: application/json\r\n"
                      f"Content-Length: {len(body)}\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


def run_server(service: QueryService, host: str = "127.0.0.1",
               port: int = 8080) -> None:
    """Serve until interrupted (the blocking CLI entry point)."""
    server = QueryServer(service, host=host, port=port)

    async def _main() -> None:
        await server.start()
        print(f"repro serve: listening on http://{server.host}:{server.port}",
              flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
