"""The sharded measurement store: day-partitioned study artifacts.

One :class:`ShardedStudyStore` wraps a config, its (possibly edited)
attack schedule, and an :class:`~repro.artifacts.store.ArtifactStore`.
Each timeline day owns a four-artifact partition — telescope feed,
crawl measurement store, join, events — persisted under the per-day
chained keys of :func:`repro.artifacts.fingerprint.day_keys`, so the
store factors the monolithic study into independently-buildable,
independently-invalidated day shards.

:meth:`build` is incremental by construction: it plans each day with
:func:`repro.engine.partial_plan`, dispatches the executor only for
the day's *missing* pipeline partitions (cache middleware fetches the
rest), and assembles events partitions from cached neighbours. A
fully-warm day costs one ``has()`` probe per phase; after editing one
day's schedule (:func:`scale_attacks_on_day`,
``ShardedStudyStore(..., edit=...)``) only the invalidated day chains
re-execute — the property the serve tests assert byte-for-byte.

Partition semantics are serve-specific, not byte-equal to a monolithic
``run_study``: each day's telescope runs on a fresh, day-derived RNG
(the shared-stream simulator is order-dependent across attacks, so day
purity requires it), and each day's events read the crawl days the
partition's attacks can touch (previous day for baselines, later days
for windows crossing midnight). Within the serve layer everything is
deterministic: same config + schedule => same keys => same bytes.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.artifacts import PhaseCache, dumps_catalog, loads_catalog
from repro.artifacts.fingerprint import (attacks_starting_on, catalog_key,
                                         day_keys, events_crawl_cover)
from repro.core.events import extract_events
from repro.core.nsset import NSSetMetadata
from repro.core.pipeline import STUDY_GRAPH
from repro.engine import (CacheMiddleware, Executor, JournalMiddleware,
                          RunContext, SpanMiddleware, WorkerPolicy,
                          partial_plan)
from repro.obs import NULL_TELEMETRY, RunTelemetry
from repro.openintel.storage import MeasurementStore
from repro.util.rng import derive_rng, derive_seed
from repro.util.timeutil import DAY, day_start, format_ts
from repro.world.config import WorldConfig
from repro.world.simulation import World, build_world

__all__ = ["DayPlan", "BuildReport", "ShardedStudyStore",
           "scale_attacks_on_day", "SERVE_PHASES"]

#: The four per-day partition phases, in chain order.
SERVE_PHASES = ("telescope", "crawl", "join", "events")

#: Pipeline-graph partitions (built through the executor; events
#: partitions are assembled outside the graph from cached neighbours).
_PIPELINE_PHASES = ("telescope", "crawl", "join")


def scale_attacks_on_day(attacks, day: int, factor: float) -> List:
    """A copy of ``attacks`` with every vector of every attack starting
    on ``day`` scaled by ``factor`` — the canonical what-if edit knob
    (``repro serve --edit-day --edit-scale``)."""
    out = []
    for attack in attacks:
        if day_start(attack.window.start) == day:
            vectors = [dataclasses.replace(v, pps=v.pps * factor)
                       for v in attack.vectors]
            out.append(dataclasses.replace(attack, vectors=vectors))
        else:
            out.append(attack)
    return out


@dataclasses.dataclass(frozen=True)
class DayPlan:
    """One day's partition keys and their cache disposition."""

    day: int
    keys: Mapping[str, str]
    missing: Tuple[str, ...]

    @property
    def warm(self) -> bool:
        return not self.missing

    def action(self, phase: str) -> str:
        return "compute" if phase in self.missing else "reuse"

    def to_doc(self) -> Dict:
        """A deterministic JSON-able form (``repro serve --plan``)."""
        return {
            "day": format_ts(self.day)[:10],
            "keys": {phase: self.keys[phase] for phase in SERVE_PHASES},
            "actions": {phase: self.action(phase)
                        for phase in SERVE_PHASES},
        }


@dataclasses.dataclass
class BuildReport:
    """What one :meth:`ShardedStudyStore.build` pass did, per phase."""

    computed: Dict[str, List[int]]
    reused: Dict[str, List[int]]

    @property
    def n_computed(self) -> int:
        return sum(len(v) for v in self.computed.values())

    @property
    def n_reused(self) -> int:
        return sum(len(v) for v in self.reused.values())

    def summary(self) -> str:
        """Deterministic multi-line summary (CI byte-diffs warm runs)."""
        n_days = len(set(d for v in self.computed.values() for d in v)
                     | set(d for v in self.reused.values() for d in v))
        lines = [f"serve store: {n_days} days x {len(SERVE_PHASES)} phases "
                 f"({self.n_computed} partitions computed, "
                 f"{self.n_reused} reused)"]
        for phase in SERVE_PHASES:
            done = sorted(self.computed.get(phase, []))
            days = (" [" + " ".join(format_ts(d)[:10] for d in done) + "]"
                    if done else "")
            lines.append(f"  {phase}: computed {len(done)}, "
                         f"reused {len(self.reused.get(phase, []))}{days}")
        return "\n".join(lines)


class ShardedStudyStore:
    """Day-partitioned study artifacts over one artifact cache."""

    def __init__(self, config: WorldConfig, cache,
                 install_scenarios: bool = True,
                 telemetry: Optional[RunTelemetry] = None,
                 n_workers: int = 1,
                 edit: Optional[Callable[[List], List]] = None,
                 loaded_cap: int = 64):
        self.config = config
        self.install_scenarios = install_scenarios
        self.telemetry = telemetry or NULL_TELEMETRY
        self.cache = PhaseCache.open(cache, telemetry=self.telemetry)
        self.n_workers = n_workers
        self._edit = edit
        self._world: Optional[World] = None
        self._metadata: Optional[NSSetMetadata] = None
        self._day_keys: Optional[Dict[int, Dict[str, str]]] = None
        #: warm (phase, day) -> artifact, LRU-capped.
        self._loaded: Dict[Tuple[str, int], object] = {}
        self._loaded_cap = loaded_cap
        self._maintenance = False

    # -- inputs ---------------------------------------------------------------

    def world(self) -> World:
        """The (lazily built, possibly edited) ground-truth world."""
        if self._world is None:
            world = build_world(self.config,
                                install_scenarios=self.install_scenarios)
            if self._edit is not None:
                world.replace_attacks(self._edit(list(world.attacks)))
            self._world = world
        return self._world

    def metadata(self) -> NSSetMetadata:
        if self._metadata is None:
            world = self.world()
            self._metadata = NSSetMetadata(world.directory, world.prefix2as,
                                           world.as2org, world.census)
        return self._metadata

    def day_keys(self) -> Dict[int, Dict[str, str]]:
        """Per-day chained keys of the current (edited) schedule."""
        if self._day_keys is None:
            self._day_keys = day_keys(self.config, self.world().attacks,
                                      self.install_scenarios)
        return self._day_keys

    def days(self) -> List[int]:
        return sorted(self.day_keys())

    # -- planning -------------------------------------------------------------

    def plan(self) -> List[DayPlan]:
        """Which partitions a :meth:`build` would compute vs reuse.

        Deterministic and side-effect free (``has`` probes only — no
        LRU touches), so two consecutive plans byte-match.
        """
        store = self.cache.store
        return [
            DayPlan(day=day, keys=keys,
                    missing=tuple(phase for phase in SERVE_PHASES
                                  if not store.has(keys[phase])))
            for day, keys in sorted(self.day_keys().items())
        ]

    # -- building -------------------------------------------------------------

    def build(self) -> BuildReport:
        """Bring every day partition into the cache, incrementally.

        Two passes: the pipeline partitions (telescope -> crawl ->
        join) run per day through the executor with day-scoped keys —
        :func:`repro.engine.partial_plan` decides what actually
        executes — then events partitions are assembled from the
        cached join + neighbouring crawl days. Warm partitions are
        never recomputed, and untouched days' artifacts are never
        rewritten.
        """
        journal = self.telemetry.journal
        plans = self.plan()
        report = BuildReport(computed={p: [] for p in SERVE_PHASES},
                             reused={p: [] for p in SERVE_PHASES})
        journal.emit("serve.build.start", days=len(plans),
                     cold=sum(1 for p in plans if not p.warm))
        with self.telemetry.tracer.span("serve.build"):
            for plan in plans:
                self._build_pipeline_day(plan, report)
            for plan in plans:
                self._build_events_day(plan, report)
            # Materialize the catalog now, while the world is in hand,
            # so serving never rebuilds it per query.
            self.catalog()
        journal.emit("serve.build.finish", computed=report.n_computed,
                     reused=report.n_reused)
        return report

    def _count_partition(self, phase: str, action: str) -> None:
        self.telemetry.registry.counter("repro.serve.partitions",
                                        phase=phase, action=action).inc()

    def _record(self, report: BuildReport, plan: DayPlan,
                phase: str) -> None:
        action = plan.action(phase)
        bucket = (report.computed if action == "compute"
                  else report.reused)
        bucket[phase].append(plan.day)
        self._count_partition(phase, f"{action}d")
        self.telemetry.journal.emit("serve.partition",
                                    day=format_ts(plan.day)[:10],
                                    phase=phase, action=action)

    def _build_pipeline_day(self, plan: DayPlan,
                            report: BuildReport) -> None:
        targets = [p for p in _PIPELINE_PHASES if p in plan.missing]
        if targets:
            graph_plan = partial_plan(STUDY_GRAPH, targets,
                                      keys=plan.keys,
                                      has=self.cache.store.has)
            run_targets = [p.name for p in graph_plan
                           if p.action == "compute"]
            self._run_day(plan, run_targets)
        for phase in _PIPELINE_PHASES:
            self._record(report, plan, phase)

    def _run_day(self, plan: DayPlan, targets: List[str]) -> None:
        world = self.world()
        day = plan.day
        # Each day's telescope runs on its own derived stream (the
        # shared-rng simulator is draw-order-dependent across attacks,
        # so day purity requires a per-day fresh one); the crawl is
        # per-(domain, day) pure already and just gets windowed.
        rng = derive_rng(world.rngs.spawn_seed("serve", "telescope"),
                         str(day))
        jitter = derive_seed(world.rngs.spawn_seed("serve", "jitter"),
                             str(day))
        ctx = RunContext(telemetry=self.telemetry, params={
            "config": self.config,
            "world": world,
            "injector": None,
            "install_scenarios": self.install_scenarios,
            "n_workers": self.n_workers,
            "progress": None,
            "columnar": False,
            "attacks": attacks_starting_on(world.attacks, day),
            "telescope_rng": rng,
            "telescope_jitter_seed": jitter,
            "crawl_window": (day, day + DAY),
        })
        middleware = [SpanMiddleware(), JournalMiddleware(),
                      CacheMiddleware(self.cache, plan.keys),
                      WorkerPolicy()]
        Executor(STUDY_GRAPH, middleware=middleware).run(ctx, targets=targets)

    def _build_events_day(self, plan: DayPlan,
                          report: BuildReport) -> None:
        if "events" in plan.missing:
            world = self.world()
            join = self.load_day(plan.day, "join")
            merged = MeasurementStore()
            cover = events_crawl_cover(
                plan.day, attacks_starting_on(world.attacks, plan.day),
                self.config.timeline)
            for day in cover:
                part = self.load_day(day, "crawl")
                if part is not None:
                    merged.merge(part)
            events = extract_events(
                join, merged, self.metadata(),
                min_domains=self.config.event_min_domains)
            self.cache.save("events", plan.keys["events"], events)
            self._loaded[("events", plan.day)] = events
            self._trim_loaded()
        self._record(report, plan, "events")

    # -- reading --------------------------------------------------------------

    def has_day(self, day: int, phase: str) -> bool:
        if ((phase, day)) in self._loaded:
            return True
        keys = self.day_keys().get(day)
        return keys is not None and self.cache.store.has(keys[phase])

    def load_day(self, day: int, phase: str):
        """The day's ``phase`` artifact, or ``None`` when the shard is
        cold (not yet built, or evicted by gc). Warm partitions are
        kept in a small in-process LRU."""
        cached = self._loaded.get((phase, day))
        if cached is not None:
            return cached
        keys = self.day_keys().get(day)
        if keys is None:
            raise KeyError(f"day {format_ts(day)} outside the timeline")
        artifact = self.cache.fetch(phase, keys[phase])
        if artifact is None:
            return None
        self.telemetry.registry.counter("repro.serve.shard_loads",
                                        phase=phase).inc()
        self._loaded[(phase, day)] = artifact
        self._trim_loaded()
        return artifact

    def _trim_loaded(self) -> None:
        while len(self._loaded) > self._loaded_cap:
            self._loaded.pop(next(iter(self._loaded)))

    # -- the catalog ----------------------------------------------------------

    def catalog(self) -> Dict:
        """The domain->NSSet catalog (cached under its own key)."""
        key = catalog_key(self.config, self.install_scenarios)
        data = self.cache.store.get(key)
        if data is not None:
            try:
                return loads_catalog(data)
            except ValueError:
                pass
        catalog = self._build_catalog()
        self.cache.store.put(key, dumps_catalog(catalog), phase="catalog")
        return catalog

    def _build_catalog(self) -> Dict:
        world = self.world()
        window = self.config.timeline.window
        domains = {str(rec.name): rec.nsset_id
                   for rec in world.directory.domains}
        nsset_domains: Dict[str, int] = {}
        for rec in world.directory.domains:
            nsset = str(rec.nsset_id)
            nsset_domains[nsset] = nsset_domains.get(nsset, 0) + 1
        return {
            "start": window.start,
            "end": window.end,
            "days": self.days(),
            "n_domains": len(domains),
            "domains": domains,
            "nsset_domains": nsset_domains,
        }

    # -- maintenance ----------------------------------------------------------

    @property
    def in_maintenance(self) -> bool:
        return self._maintenance

    @contextmanager
    def maintenance(self) -> Iterator[None]:
        """Mark the store as under maintenance; the query service
        answers 503 + Retry-After for the duration."""
        self._maintenance = True
        try:
            yield
        finally:
            self._maintenance = False

    def gc(self, max_bytes: int):
        """LRU-evict down to ``max_bytes`` under the maintenance flag;
        evicted shards answer 503 (cold) until rebuilt."""
        with self.maintenance():
            evicted = self.cache.store.gc(max_bytes)
        if evicted:
            # Drop the whole warm set: an evicted shard must turn cold
            # immediately, and survivors just reload on next use.
            self._loaded.clear()
        return evicted
