"""Transport protocols and well-known ports used in the attack analysis.

The paper's §6.2 characterizes attacks by IP protocol (TCP/UDP/ICMP) and
first destination port; port 80 (HTTP), 53 (DNS) and 443 (HTTPS) carry
the findings, so they get named constants here.
"""

from __future__ import annotations

from typing import Dict

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_PROTO_NAMES: Dict[int, str] = {
    PROTO_ICMP: "ICMP",
    PROTO_TCP: "TCP",
    PROTO_UDP: "UDP",
}

PORT_DNS = 53
PORT_HTTP = 80
PORT_HTTPS = 443
PORT_NTP = 123
PORT_SSH = 22
PORT_SMTP = 25
PORT_MEMCACHED = 11211

_PORT_NAMES: Dict[int, str] = {
    PORT_DNS: "DNS",
    PORT_HTTP: "HTTP",
    PORT_HTTPS: "HTTPS",
    PORT_NTP: "NTP",
    PORT_SSH: "SSH",
    PORT_SMTP: "SMTP",
    PORT_MEMCACHED: "MEMCACHED",
}


def proto_name(proto: int) -> str:
    """Human name for an IP protocol number (falls back to the number)."""
    return _PROTO_NAMES.get(proto, f"proto{proto}")


def port_name(port: int) -> str:
    """Human name for a well-known port (falls back to the number)."""
    return _PORT_NAMES.get(port, str(port))


def validate_port(port: int) -> int:
    if not 0 <= port <= 0xFFFF:
        raise ValueError(f"invalid port: {port}")
    return port


def validate_proto(proto: int) -> int:
    if not 0 <= proto <= 0xFF:
        raise ValueError(f"invalid IP protocol: {proto}")
    return proto
