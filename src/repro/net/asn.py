"""Autonomous system and organization types.

Mirrors the two CAIDA ancillary datasets the paper uses: prefix2AS (an
address maps to the AS number originating its covering prefix) and
AS2Org (an AS number maps to the operating organization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.ip import IPv4Prefix


@dataclass(frozen=True)
class Organization:
    """An operating organization (the AS2Org granularity of Tables 4/6)."""

    org_id: str
    name: str
    country: str = "ZZ"

    def __str__(self) -> str:
        return self.name


@dataclass
class AS:
    """An autonomous system with its announced prefixes."""

    number: int
    org: Organization
    prefixes: List[IPv4Prefix] = field(default_factory=list)
    country: Optional[str] = None

    def __post_init__(self) -> None:
        if not 0 < self.number < 2 ** 32:
            raise ValueError(f"invalid AS number: {self.number}")
        if self.country is None:
            self.country = self.org.country

    @property
    def asn(self) -> int:
        return self.number

    def announce(self, prefix: IPv4Prefix) -> None:
        """Add a prefix announcement (idempotent)."""
        if prefix not in self.prefixes:
            self.prefixes.append(prefix)

    def originates(self, ip) -> bool:
        return any(prefix.contains_ip(ip) for prefix in self.prefixes)

    @property
    def address_count(self) -> int:
        return sum(p.num_addresses for p in self.prefixes)

    def __str__(self) -> str:
        return f"AS{self.number} ({self.org.name})"

    def __hash__(self) -> int:
        return hash(self.number)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AS):
            return self.number == other.number
        return NotImplemented
