"""Binary radix (Patricia-style) trie for longest-prefix matching.

Backs the prefix2AS dataset lookups (mapping an attacked IP to its
origin AS) exactly as CAIDA's RouteViews-derived dataset is used in the
paper. Supports insert, exact lookup, longest-prefix match, and covered
enumeration.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.net.ip import IPV4_BITS, coerce_ip, network_of

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_Node[V]"]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps CIDR prefixes to values with longest-prefix-match semantics.

    >>> trie = PrefixTrie()
    >>> trie.insert("10.0.0.0/8", "corp")
    >>> trie.insert("10.1.0.0/16", "lab")
    >>> trie.longest_match("10.1.2.3")
    (('10.1.0.0/16' network int, 16), 'lab')  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _bits(network: int, length: int) -> Iterator[int]:
        for i in range(length):
            yield (network >> (IPV4_BITS - 1 - i)) & 1

    @staticmethod
    def _key(prefix) -> Tuple[int, int]:
        """Accept an IPv4Prefix, an ``(int, len)`` pair, or a CIDR string."""
        if isinstance(prefix, tuple):
            network, length = prefix
            return network_of(coerce_ip(network), length), int(length)
        if isinstance(prefix, str):
            from repro.net.ip import parse_prefix

            return parse_prefix(prefix)
        return prefix.network, prefix.length

    def insert(self, prefix, value: V) -> None:
        """Insert or replace the value at ``prefix``."""
        network, length = self._key(prefix)
        node = self._root
        for bit in self._bits(network, length):
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def exact(self, prefix) -> Optional[V]:
        """Value stored exactly at ``prefix``, or None."""
        network, length = self._key(prefix)
        node = self._root
        for bit in self._bits(network, length):
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node.value if node.has_value else None

    def longest_match(self, ip) -> Optional[Tuple[Tuple[int, int], V]]:
        """Longest-prefix match for an address.

        Returns ``((network, length), value)`` of the most specific
        covering prefix, or None when nothing covers the address.
        """
        addr = coerce_ip(ip)
        node = self._root
        best: Optional[Tuple[Tuple[int, int], V]] = None
        if node.has_value:
            best = ((0, 0), node.value)  # default route
        for depth in range(IPV4_BITS):
            bit = (addr >> (IPV4_BITS - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                length = depth + 1
                best = ((network_of(addr, length), length), node.value)
        return best

    def lookup(self, ip) -> Optional[V]:
        """Just the value of the longest match (the common call)."""
        match = self.longest_match(ip)
        return match[1] if match else None

    def covered(self, prefix) -> Iterator[Tuple[Tuple[int, int], V]]:
        """All stored prefixes equal to or more specific than ``prefix``."""
        network, length = self._key(prefix)
        node = self._root
        for bit in self._bits(network, length):
            child = node.children[bit]
            if child is None:
                return
            node = child
        yield from self._walk(node, network, length)

    def _walk(self, node: _Node[V], network: int, length: int
              ) -> Iterator[Tuple[Tuple[int, int], V]]:
        if node.has_value:
            yield (network, length), node.value
        if length >= IPV4_BITS:
            return
        zero, one = node.children
        if zero is not None:
            yield from self._walk(zero, network, length + 1)
        if one is not None:
            yield from self._walk(one, network | (1 << (IPV4_BITS - 1 - length)), length + 1)

    def items(self) -> Iterator[Tuple[Tuple[int, int], V]]:
        """All (prefix, value) pairs in the trie, in address order."""
        return self._walk(self._root, 0, 0)

    def remove(self, prefix) -> bool:
        """Remove the value at ``prefix``; returns True if it existed.

        Leaves structural nodes in place (fine for our workloads, which
        build once and query many times).
        """
        network, length = self._key(prefix)
        node = self._root
        for bit in self._bits(network, length):
            child = node.children[bit]
            if child is None:
                return False
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        return True
