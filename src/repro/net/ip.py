"""Int-backed IPv4 address and prefix types.

Addresses are stored as plain 32-bit unsigned integers; the classes here
are thin, hashable wrappers with parsing and formatting. Hot paths (the
telescope, the join) work directly on ints via the module-level helpers.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Union

IPV4_BITS = 32
IPV4_SPACE = 1 << IPV4_BITS  # 2**32

IPLike = Union[int, str, "IPv4Address"]


def parse_ip(text: str) -> int:
    """Parse dotted-quad notation into an int. Strict: exactly four
    decimal octets, no leading-zero ambiguity beyond plain ints."""
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part or not part.isdigit() or len(part) > 3:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"invalid IPv4 address: {text!r}")
        value = (value << 8) | octet
    return value


def ip_to_str(value: int) -> str:
    """Format a 32-bit int as dotted-quad."""
    if not 0 <= value < IPV4_SPACE:
        raise ValueError(f"IPv4 int out of range: {value}")
    return f"{(value >> 24) & 0xFF}.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"


def coerce_ip(value: IPLike) -> int:
    """Accept an int, a dotted-quad string, or an IPv4Address; return int."""
    if isinstance(value, IPv4Address):
        return value.value
    if isinstance(value, int):
        if not 0 <= value < IPV4_SPACE:
            raise ValueError(f"IPv4 int out of range: {value}")
        return value
    return parse_ip(value)


def mask_of(length: int) -> int:
    """Netmask int for a prefix length."""
    if not 0 <= length <= IPV4_BITS:
        raise ValueError(f"invalid prefix length: {length}")
    if length == 0:
        return 0
    return ((1 << length) - 1) << (IPV4_BITS - length)


def network_of(ip: int, length: int) -> int:
    """Network base address of ``ip`` at prefix length ``length``."""
    return ip & mask_of(length)


def slash24_of(ip: int) -> int:
    """Base address of the /24 containing ``ip`` (the paper's aggregation
    granularity for prefix diversity and the anycast census match)."""
    return ip & 0xFFFFFF00


def slash16_of(ip: int) -> int:
    return ip & 0xFFFF0000


def parse_prefix(text: str) -> Tuple[int, int]:
    """Parse ``a.b.c.d/len`` into a canonical (network, length) pair."""
    if "/" not in text:
        raise ValueError(f"prefix must contain '/': {text!r}")
    ip_part, _, len_part = text.partition("/")
    if not len_part.isdigit():
        raise ValueError(f"invalid prefix length in {text!r}")
    length = int(len_part)
    base = network_of(parse_ip(ip_part), length)
    return base, length


class IPv4Address:
    """A hashable, totally-ordered IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: IPLike):
        object.__setattr__(self, "value", coerce_ip(value))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IPv4Address is immutable")

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        return ip_to_str(self.value)

    def __repr__(self) -> str:
        return f"IPv4Address({ip_to_str(self.value)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self.value == other.value
        if isinstance(other, int):
            return self.value == other
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < int(other)

    def __le__(self, other: "IPv4Address") -> bool:
        return self.value <= int(other)

    def __gt__(self, other: "IPv4Address") -> bool:
        return self.value > int(other)

    def __ge__(self, other: "IPv4Address") -> bool:
        return self.value >= int(other)

    def __hash__(self) -> int:
        return hash(self.value)

    @property
    def slash24(self) -> "IPv4Prefix":
        return IPv4Prefix(slash24_of(self.value), 24)

    def in_prefix(self, prefix: "IPv4Prefix") -> bool:
        return prefix.contains_ip(self.value)


class IPv4Prefix:
    """A CIDR prefix, canonicalized so the host bits are zero."""

    __slots__ = ("network", "length")

    def __init__(self, network: IPLike, length: int):
        base = coerce_ip(network)
        if not 0 <= length <= IPV4_BITS:
            raise ValueError(f"invalid prefix length: {length}")
        canonical = network_of(base, length)
        if canonical != base:
            raise ValueError(
                f"{ip_to_str(base)}/{length} has host bits set; "
                f"did you mean {ip_to_str(canonical)}/{length}?")
        object.__setattr__(self, "network", canonical)
        object.__setattr__(self, "length", length)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("IPv4Prefix is immutable")

    @classmethod
    def parse(cls, text: str) -> "IPv4Prefix":
        base, length = parse_prefix(text)
        return cls(base, length)

    @classmethod
    def containing(cls, ip: IPLike, length: int) -> "IPv4Prefix":
        """The /length prefix containing ``ip`` (host bits stripped)."""
        return cls(network_of(coerce_ip(ip), length), length)

    @property
    def mask(self) -> int:
        return mask_of(self.length)

    @property
    def num_addresses(self) -> int:
        return 1 << (IPV4_BITS - self.length)

    @property
    def first(self) -> int:
        return self.network

    @property
    def last(self) -> int:
        return self.network | (self.num_addresses - 1)

    def contains_ip(self, ip: IPLike) -> bool:
        return (coerce_ip(ip) & self.mask) == self.network

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        return other.length >= self.length and self.contains_ip(other.network)

    def addresses(self) -> Iterator[int]:
        """Iterate every address int in the prefix (careful with short
        prefixes: a /9 has 8M addresses)."""
        return iter(range(self.first, self.last + 1))

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        if new_length < self.length or new_length > IPV4_BITS:
            raise ValueError("new_length must be within [length, 32]")
        step = 1 << (IPV4_BITS - new_length)
        for base in range(self.first, self.last + 1, step):
            yield IPv4Prefix(base, new_length)

    def random_ip(self, rng) -> int:
        """A uniformly random address inside the prefix."""
        return self.network | rng.randrange(self.num_addresses)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Prefix):
            return self.network == other.network and self.length == other.length
        return NotImplemented

    def __lt__(self, other: "IPv4Prefix") -> bool:
        return (self.network, self.length) < (other.network, other.length)

    def __hash__(self) -> int:
        return hash((self.network, self.length))

    def __str__(self) -> str:
        return f"{ip_to_str(self.network)}/{self.length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix.parse({str(self)!r})"

    def __contains__(self, ip: IPLike) -> bool:
        return self.contains_ip(ip)
