"""Networking primitives: IPv4 addresses/prefixes, radix trie, ASNs, ports.

These are built from scratch on plain integers rather than the stdlib
``ipaddress`` module: the join pipeline touches millions of addresses and
the int-backed representation keeps hashing/masking cheap while still
offering friendly parsing and formatting at the edges.
"""

from repro.net.ip import (
    IPV4_SPACE,
    IPv4Address,
    IPv4Prefix,
    ip_to_str,
    parse_ip,
    parse_prefix,
    slash24_of,
)
from repro.net.prefix_trie import PrefixTrie
from repro.net.asn import AS, Organization
from repro.net.ports import (
    PORT_DNS,
    PORT_HTTP,
    PORT_HTTPS,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    port_name,
    proto_name,
)

__all__ = [
    "IPV4_SPACE",
    "IPv4Address",
    "IPv4Prefix",
    "ip_to_str",
    "parse_ip",
    "parse_prefix",
    "slash24_of",
    "PrefixTrie",
    "AS",
    "Organization",
    "PORT_DNS",
    "PORT_HTTP",
    "PORT_HTTPS",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "port_name",
    "proto_name",
]
