"""The curated RSDoS feed: records, container, serialization.

Mirrors CAIDA's published schema: one record per (victim, 5-minute
window) with protocol, first targeted port, number of unique ports,
peak packet rate, and darknet /16 breadth — plus the attack-level
aggregation (:class:`repro.telescope.rsdos.InferredAttack`) that the
longitudinal tables count.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional, Sequence, TextIO

from repro.attacks.model import Attack
from repro.telescope.backscatter import BackscatterSimulator, WindowObservation
from repro.telescope.rsdos import InferredAttack, RSDoSClassifier, RSDoSThresholds
from repro.net.ip import ip_to_str, parse_ip, slash24_of
from repro.util.timeutil import Window

#: The paper's extrapolation constant (telescope covers 1/341.33).
EXTRAPOLATION = 341.33


def ppm_to_victim_pps(ppm: float, extrapolation: float = EXTRAPOLATION) -> float:
    """Footnote 2 of the paper: telescope ppm -> global victim pps."""
    return ppm * extrapolation / 60.0


@dataclass(frozen=True)
class FeedRecord:
    """One curated feed row (victim x 5-minute window)."""

    window_ts: int
    victim_ip: int
    proto: int
    first_port: int
    n_ports: int
    n_packets: int
    max_ppm: float
    n_slash16: int
    n_unique_sources: int

    @classmethod
    def from_observation(cls, obs: WindowObservation) -> "FeedRecord":
        return cls(window_ts=obs.window_ts, victim_ip=obs.victim_ip,
                   proto=obs.proto, first_port=obs.first_port,
                   n_ports=obs.n_ports, n_packets=obs.n_packets,
                   max_ppm=obs.max_ppm, n_slash16=obs.n_slash16,
                   n_unique_sources=obs.n_unique_sources)


class RSDoSFeed:
    """The full curated dataset: window records + inferred attacks."""

    def __init__(self, records: Sequence[FeedRecord],
                 attacks: Sequence[InferredAttack]):
        self.records: List[FeedRecord] = sorted(
            records, key=lambda r: (r.window_ts, r.victim_ip))
        self.attacks: List[InferredAttack] = sorted(
            attacks, key=lambda a: (a.start, a.victim_ip))

    # -- construction -----------------------------------------------------------

    @classmethod
    def observe(cls, ground_truth: Iterable[Attack],
                simulator: BackscatterSimulator,
                thresholds: Optional[RSDoSThresholds] = None,
                columnar: bool = False, registry=None) -> "RSDoSFeed":
        """Run the full telescope pipeline over a ground-truth schedule.

        With ``columnar`` the observations stream into a
        :class:`repro.columnar.ObservationBatch` and inference/curation
        run over flat columns — bit-identical output (same attacks,
        same records, same order), at batch speed. ``registry``
        (optional) receives the ``repro.columnar.*`` counters.
        """
        if columnar:
            from repro.columnar import (ObservationBatch, curate_records,
                                        infer_attacks)

            batch = ObservationBatch.from_observations(
                simulator.observe_all(ground_truth))
            inferred = infer_attacks(batch, thresholds, registry=registry)
            return cls(curate_records(batch, inferred), inferred)
        observations = list(simulator.observe_all(ground_truth))
        classifier = RSDoSClassifier(thresholds)
        inferred = classifier.infer(observations)
        # Curated records keep only windows belonging to inferred attacks.
        keep: Dict[int, List[Window]] = {}
        for attack in inferred:
            keep.setdefault(attack.victim_ip, []).append(attack.window)
        records = [FeedRecord.from_observation(o) for o in observations
                   if any(w.contains(o.window_ts) for w in keep.get(o.victim_ip, ()))]
        return cls(records, inferred)

    # -- queries ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.attacks)

    def victims(self) -> List[int]:
        return sorted({a.victim_ip for a in self.attacks})

    def victim_slash24s(self) -> List[int]:
        return sorted({slash24_of(a.victim_ip) for a in self.attacks})

    def attacks_on(self, victim_ip: int) -> List[InferredAttack]:
        return [a for a in self.attacks if a.victim_ip == victim_ip]

    def records_of(self, attack: InferredAttack) -> List[FeedRecord]:
        return [r for r in self.records
                if r.victim_ip == attack.victim_ip
                and attack.window.contains(r.window_ts)]

    def in_window(self, window: Window) -> List[InferredAttack]:
        return [a for a in self.attacks
                if a.start < window.end and window.start < a.end]

    # -- serialization (CSV, CAIDA-flavoured) --------------------------------------

    _RECORD_FIELDS = [f.name for f in fields(FeedRecord)]

    def dump_records(self, fp: TextIO) -> None:
        writer = csv.writer(fp)
        writer.writerow(self._RECORD_FIELDS)
        for r in self.records:
            writer.writerow([
                r.window_ts, ip_to_str(r.victim_ip), r.proto, r.first_port,
                r.n_ports, r.n_packets, f"{r.max_ppm:.3f}", r.n_slash16,
                r.n_unique_sources])

    _ATTACK_FIELDS = [f.name for f in fields(InferredAttack)]

    def dump_attacks(self, fp: TextIO) -> None:
        """Write the inferred attacks as CSV with exact float columns.

        Unlike :meth:`dump_records` (whose ``max_ppm`` is rounded for
        human eyes), float columns here use ``repr`` and therefore
        round-trip bit-for-bit — the contract the artifact cache and
        :meth:`load_attacks` rely on.
        """
        writer = csv.writer(fp)
        writer.writerow(self._ATTACK_FIELDS)
        for a in self.attacks:
            writer.writerow([repr(v) if isinstance(v, float) else v
                             for v in (getattr(a, name)
                                       for name in self._ATTACK_FIELDS)])

    @classmethod
    def load_attacks(cls, fp: TextIO) -> List[InferredAttack]:
        """Parse :meth:`dump_attacks` output back into attacks."""
        reader = csv.reader(fp)
        header = next(reader, None)
        if header != cls._ATTACK_FIELDS:
            raise ValueError("unexpected attacks header")
        out = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(cls._ATTACK_FIELDS):
                raise ValueError(f"line {lineno}: wrong field count")
            values = dict(zip(cls._ATTACK_FIELDS, row))
            out.append(InferredAttack(
                victim_ip=int(values["victim_ip"]),
                start=int(values["start"]), end=int(values["end"]),
                n_packets=int(values["n_packets"]),
                max_ppm=float(values["max_ppm"]),
                max_slash16=int(values["max_slash16"]),
                n_unique_sources=int(values["n_unique_sources"]),
                proto=int(values["proto"]),
                first_port=int(values["first_port"]),
                n_ports=int(values["n_ports"]),
                n_windows=int(values["n_windows"])))
        return out

    @classmethod
    def load_records(cls, fp: TextIO) -> List[FeedRecord]:
        reader = csv.reader(fp)
        header = next(reader, None)
        if header != cls._RECORD_FIELDS:
            raise ValueError("unexpected feed header")
        out = []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(cls._RECORD_FIELDS):
                raise ValueError(f"line {lineno}: wrong field count")
            out.append(FeedRecord(
                window_ts=int(row[0]), victim_ip=parse_ip(row[1]),
                proto=int(row[2]), first_port=int(row[3]), n_ports=int(row[4]),
                n_packets=int(row[5]), max_ppm=float(row[6]),
                n_slash16=int(row[7]), n_unique_sources=int(row[8])))
        return out
