"""RSDoS inference: turning backscatter into attack events.

Applies Moore-et-al-style thresholds to per-victim backscatter streams
(minimum packets, minimum duration, minimum breadth across the darknet)
and merges windows separated by less than an inactivity gap into one
inferred attack — the unit counted in Tables 1 and 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

from repro.telescope.backscatter import WindowObservation
from repro.util.timeutil import FIVE_MINUTES, HOUR, Window


@dataclass(frozen=True)
class RSDoSThresholds:
    """Noise-rejection thresholds for attack inference.

    Defaults follow the flavor of Moore et al. / CAIDA's curation:
    at least 25 backscatter packets, at least 60 seconds of activity,
    and breadth across at least 2 darknet /16s (a single-/16 stream is
    more likely scanning or misconfiguration than uniform spoofing).
    Windows separated by more than ``gap_s`` of silence split into
    distinct attacks (Jonker et al. use about an hour).
    """

    min_packets: int = 25
    min_duration_s: int = 60
    min_slash16: int = 2
    gap_s: int = 1 * HOUR

    def __post_init__(self) -> None:
        if self.min_packets < 1 or self.min_duration_s < 0 or self.min_slash16 < 1:
            raise ValueError("invalid thresholds")
        if self.gap_s < FIVE_MINUTES:
            raise ValueError("gap must be at least one window")


def attack_problem(obj: object) -> Optional[str]:
    """Why ``obj`` is not a well-formed :class:`InferredAttack` record
    (``None`` when it is fine).

    The schema gate for every consumer of the feed: the hardened
    streaming validator and the dataset join both use it to route
    damaged records (truncated rows, out-of-range addresses, swapped
    windows, NaN rates) to dead-letter/reject paths instead of letting
    them crash an analysis or leak NaNs into one.
    """
    if not isinstance(obj, InferredAttack):
        return f"not an InferredAttack: {type(obj).__name__}"
    if not isinstance(obj.victim_ip, int) or isinstance(obj.victim_ip, bool):
        return f"victim_ip not an int: {type(obj.victim_ip).__name__}"
    if not 0 <= obj.victim_ip < 2 ** 32:
        return f"victim_ip outside IPv4 space: {obj.victim_ip}"
    if not isinstance(obj.start, int) or not isinstance(obj.end, int):
        return "window bounds must be ints"
    if obj.end <= obj.start:
        return f"empty or inverted window: [{obj.start}, {obj.end})"
    if obj.n_packets < 0:
        return f"negative packet count: {obj.n_packets}"
    if not math.isfinite(obj.max_ppm) or obj.max_ppm < 0:
        return f"invalid max_ppm: {obj.max_ppm}"
    if obj.n_unique_sources < 0 or obj.n_windows < 1:
        return "invalid source/window counters"
    return None


@dataclass
class InferredAttack:
    """One RSDoS-inferred attack against one victim IP."""

    victim_ip: int
    start: int
    end: int
    n_packets: int
    max_ppm: float
    max_slash16: int
    n_unique_sources: int
    proto: int
    first_port: int
    n_ports: int
    n_windows: int

    @property
    def window(self) -> Window:
        return Window(self.start, self.end)

    @property
    def duration_s(self) -> int:
        return self.end - self.start

    def inferred_victim_pps(self, extrapolation: float = 341.33) -> float:
        """The paper's footnote-2 extrapolation: ppm x 341 / 60."""
        return self.max_ppm * extrapolation / 60.0

    def inferred_attacker_ips(self, extrapolation: float = 341.33) -> float:
        """Unique darknet sources scaled to the full IPv4 space."""
        return self.n_unique_sources * extrapolation


class RSDoSClassifier:
    """Groups window observations into inferred attacks."""

    def __init__(self, thresholds: Optional[RSDoSThresholds] = None):
        self.thresholds = thresholds or RSDoSThresholds()

    def infer(self, observations: Iterable[WindowObservation]
              ) -> List[InferredAttack]:
        """Classify a stream of window observations (any order) into
        inferred attacks, dropping sub-threshold noise."""
        by_victim: Dict[int, List[WindowObservation]] = {}
        for obs in observations:
            by_victim.setdefault(obs.victim_ip, []).append(obs)
        attacks: List[InferredAttack] = []
        for victim_ip, windows in by_victim.items():
            windows.sort(key=lambda o: o.window_ts)
            attacks.extend(self._infer_victim(victim_ip, windows))
        attacks.sort(key=lambda a: (a.start, a.victim_ip))
        return attacks

    def _infer_victim(self, victim_ip: int,
                      windows: List[WindowObservation]) -> Iterator[InferredAttack]:
        th = self.thresholds
        group: List[WindowObservation] = []
        for obs in windows:
            if group and obs.window_ts - group[-1].window_ts > th.gap_s:
                attack = self._finalize(victim_ip, group)
                if attack is not None:
                    yield attack
                group = []
            group.append(obs)
        if group:
            attack = self._finalize(victim_ip, group)
            if attack is not None:
                yield attack

    def _finalize(self, victim_ip: int,
                  group: List[WindowObservation]) -> Optional[InferredAttack]:
        th = self.thresholds
        n_packets = sum(o.n_packets for o in group)
        if n_packets < th.min_packets:
            return None
        if max(o.n_slash16 for o in group) < th.min_slash16:
            return None
        start = group[0].window_ts
        end = group[-1].window_ts + FIVE_MINUTES
        if len(group) == 1 and n_packets < th.min_packets * 2:
            # A single sparse window cannot establish min duration; keep
            # it only if it clearly clears the packet bar.
            pass
        if end - start < th.min_duration_s:
            return None
        # First port/proto: from the earliest window (the feed's "first
        # observed port").
        first = group[0]
        return InferredAttack(
            victim_ip=victim_ip,
            start=start,
            end=end,
            n_packets=n_packets,
            max_ppm=max(o.max_ppm for o in group),
            max_slash16=max(o.n_slash16 for o in group),
            n_unique_sources=max(o.n_unique_sources for o in group),
            proto=first.proto,
            first_port=first.first_port,
            n_ports=max(o.n_ports for o in group),
            n_windows=len(group),
        )
