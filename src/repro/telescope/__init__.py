"""UCSD Network Telescope analog: darknet, backscatter, RSDoS inference.

The darknet passively receives backscatter — response packets victims of
randomly-spoofed attacks send to spoofed sources that happen to fall in
the telescope's /9 + /10 (1/341.33 of IPv4 space). The RSDoS pipeline
turns the raw observations into the 5-minute tumbling-window feed the
paper's join consumes, applying Moore-et-al-style inference thresholds.
"""

from repro.telescope.darknet import Darknet, TELESCOPE_COVERAGE
from repro.telescope.backscatter import BackscatterSimulator, WindowObservation
from repro.telescope.rsdos import (
    InferredAttack,
    RSDoSClassifier,
    RSDoSThresholds,
    attack_problem,
)
from repro.telescope.feed import FeedRecord, RSDoSFeed, ppm_to_victim_pps
from repro.telescope.reflector import (
    InferredReflection,
    ReflectorClassifier,
    ReflectorFeed,
    ReflectorObservation,
    ReflectorSimulator,
    ReflectorThresholds,
    match_reflections,
)

__all__ = [
    "Darknet",
    "TELESCOPE_COVERAGE",
    "BackscatterSimulator",
    "WindowObservation",
    "InferredAttack",
    "RSDoSClassifier",
    "RSDoSThresholds",
    "attack_problem",
    "FeedRecord",
    "RSDoSFeed",
    "ppm_to_victim_pps",
    "ReflectorObservation",
    "ReflectorThresholds",
    "InferredReflection",
    "ReflectorSimulator",
    "ReflectorClassifier",
    "ReflectorFeed",
    "match_reflections",
]
