"""Reflector-query inference: the amplification telescope branch.

Amplification attacks produce no backscatter — the victim never answers
the darknet, because the flood arrives *from* the amplifiers, spoofed
as legitimate responses. What the darknet does see is the attacker's
query spray: amplifier lists are harvested by scanning and go stale,
and the stale entries that fall inside the telescope receive the same
DNS queries (source spoofed as the victim) as the live amplifiers. Each
query's *source* address therefore names the victim, and a burst of
identical queries from one "source" across several darknet targets is
the signature of an ongoing reflection attack ("The Far Side of DNS
Amplification" flavour).

This module mirrors the RSDoS pipeline one layer over:

=====================  ==========================
backscatter branch     reflector branch
=====================  ==========================
WindowObservation      :class:`ReflectorObservation`
RSDoSClassifier        :class:`ReflectorClassifier`
RSDoSThresholds        :class:`ReflectorThresholds`
InferredAttack         :class:`InferredReflection`
RSDoSFeed              :class:`ReflectorFeed`
=====================  ==========================

The feed converts each :class:`InferredReflection` into a regular
:class:`~repro.telescope.rsdos.InferredAttack` (UDP/53, rate
extrapolated through the BAF) so the *unmodified* dataset join consumes
the merged curated feed — the second feed the scenario-pack layer
promises, without a pipeline fork.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.attacks.model import Attack
from repro.net.ports import PORT_DNS, PROTO_UDP
from repro.telescope.darknet import Darknet
from repro.telescope.rsdos import InferredAttack
from repro.util.rng import derive_rng
from repro.util.timeutil import FIVE_MINUTES, HOUR, Window

__all__ = ["ReflectorObservation", "ReflectorThresholds",
           "InferredReflection", "ReflectorSimulator",
           "ReflectorClassifier", "ReflectorFeed", "match_reflections"]


@dataclass(frozen=True)
class ReflectorObservation:
    """Darknet-side aggregate of one victim's reflector queries in one
    5-minute window."""

    window_ts: int
    victim_ip: int          # the spoofed query *source* = the victim
    n_queries: int
    max_qpm: float          # peak queries/minute within the window
    n_dark_targets: int     # distinct stale list entries hit
    qtype: str

    def __post_init__(self) -> None:
        if self.n_queries < 0:
            raise ValueError("query count must be non-negative")


@dataclass(frozen=True)
class ReflectorThresholds:
    """Noise rejection for reflector-query inference.

    A real spray revisits its list: demand at least ``min_queries``
    queries spread over ``min_windows`` windows and ``min_dark_targets``
    distinct darknet addresses (a single-target stream is a scanner,
    not a reflection attack). Bursts separated by more than ``gap_s``
    of silence split into distinct attacks, matching the RSDoS gap.
    """

    min_queries: int = 20
    min_windows: int = 2
    min_dark_targets: int = 3
    gap_s: int = 1 * HOUR

    def __post_init__(self) -> None:
        if self.min_queries < 1 or self.min_windows < 1 \
                or self.min_dark_targets < 1:
            raise ValueError("invalid thresholds")
        if self.gap_s < FIVE_MINUTES:
            raise ValueError("gap must be at least one window")


@dataclass
class InferredReflection:
    """One inferred reflection attack against one victim IP."""

    victim_ip: int
    start: int
    end: int
    n_queries: int
    max_qpm: float
    max_dark_targets: int
    qtype: str
    n_windows: int
    #: mean BAF assumed when extrapolating victim-side rate (the
    #: simulator stamps the ground-truth value; a real deployment would
    #: use the qtype's published amplification factor).
    assumed_baf: float = 1.0

    @property
    def window(self) -> Window:
        return Window(self.start, self.end)

    @property
    def duration_s(self) -> int:
        return self.end - self.start

    def inferred_victim_pps(self, list_share: float,
                            extrapolation_queries: float) -> float:
        """Victim-side rate implied by the darknet's query view: scale
        the observed per-minute spray back to the full amplifier list,
        then through the amplification factor."""
        return (self.max_qpm / 60.0) * extrapolation_queries \
            * self.assumed_baf / max(list_share, 1e-12)

    def to_inferred(self) -> InferredAttack:
        """The reflection as a join-compatible inferred attack.

        Reflection floods arrive at the victim as UDP/53 responses, so
        the record presents as a DNS-port attack; ``max_ppm`` carries
        the query-rate view (the BAF extrapolation stays a method on
        this class — the join only needs ports and windows).
        """
        return InferredAttack(
            victim_ip=self.victim_ip,
            start=self.start,
            end=self.end,
            n_packets=self.n_queries,
            max_ppm=self.max_qpm,
            max_slash16=max(1, self.max_dark_targets),
            n_unique_sources=1,  # all queries spoof the one victim
            proto=PROTO_UDP,
            first_port=PORT_DNS,
            n_ports=1,
            n_windows=self.n_windows,
        )


class ReflectorSimulator:
    """Samples per-window reflector-query observations from ground truth.

    Every draw comes from a stream derived from ``(jitter_seed,
    victim_ip, window_ts)`` — a pure function of what is being observed,
    so observations are identical whether attacks are processed
    serially, batched, or in any order (the same contract the
    backscatter jitter streams honour).
    """

    def __init__(self, darknet: Darknet, jitter_seed: int):
        self.darknet = darknet
        self.jitter_seed = jitter_seed

    def observe_attack(self, attack: Attack) -> List[ReflectorObservation]:
        """All 5-minute reflector observations of one attack. Empty
        unless the attack is an amplification with stale list entries
        inside the telescope."""
        if not attack.reflector_visible:
            return []
        amp = attack.amplification
        assert amp is not None
        n_dark = amp.darknet_list_entries
        # The attacker spreads query_pps uniformly over its list; the
        # darknet's share of that spray is its share of list entries.
        dark_qps = amp.query_pps * n_dark / amp.n_amplifiers
        observations: List[ReflectorObservation] = []
        for ts in attack.window.buckets(FIVE_MINUTES):
            w_start = max(ts, attack.window.start)
            w_end = min(ts + FIVE_MINUTES, attack.window.end)
            seconds = w_end - w_start
            if seconds <= 0:
                continue
            mid = (w_start + w_end) // 2
            # Scrubbing upstream of the victim does not silence the
            # query spray, but the attack stopping does.
            if attack.effective_pps(mid) <= 0 \
                    and not attack.window.contains(mid):
                continue
            rng = derive_rng(self.jitter_seed, "reflector",
                             str(attack.victim_ip), str(ts))
            n_queries = self._sample_count(rng, dark_qps * seconds)
            if n_queries == 0:
                continue
            targets = self._expected_unique_targets(n_queries, n_dark)
            qpm = n_queries / max(seconds / 60.0, 1e-9)
            max_qpm = qpm * (1.0 + abs(rng.gauss(0.0, 0.05)))
            observations.append(ReflectorObservation(
                window_ts=ts, victim_ip=attack.victim_ip,
                n_queries=n_queries, max_qpm=max_qpm,
                n_dark_targets=max(1, int(round(targets))),
                qtype=amp.qtype))
        return observations

    def observe_all(self, attacks: Iterable[Attack]
                    ) -> Iterator[ReflectorObservation]:
        for attack in attacks:
            yield from self.observe_attack(attack)

    @staticmethod
    def _expected_unique_targets(n_queries: int, n_dark: int) -> float:
        """Coupon-collector expectation of distinct stale entries hit."""
        if n_queries <= 0 or n_dark <= 0:
            return 0.0
        return n_dark * (1.0 - math.exp(-n_queries / n_dark))

    @staticmethod
    def _sample_count(rng, expected: float) -> int:
        """Poisson sample (normal approximation above 1000)."""
        if expected <= 0:
            return 0
        if expected > 1000:
            return max(0, int(round(rng.gauss(expected, math.sqrt(expected)))))
        limit = math.exp(-expected)
        k = 0
        p = 1.0
        while True:
            p *= rng.random()
            if p <= limit:
                return k
            k += 1


class ReflectorClassifier:
    """Groups reflector observations into inferred reflections."""

    def __init__(self, thresholds: Optional[ReflectorThresholds] = None):
        self.thresholds = thresholds or ReflectorThresholds()

    def infer(self, observations: Iterable[ReflectorObservation]
              ) -> List[InferredReflection]:
        by_victim: Dict[int, List[ReflectorObservation]] = {}
        for obs in observations:
            by_victim.setdefault(obs.victim_ip, []).append(obs)
        reflections: List[InferredReflection] = []
        for victim_ip, windows in by_victim.items():
            windows.sort(key=lambda o: o.window_ts)
            reflections.extend(self._infer_victim(victim_ip, windows))
        reflections.sort(key=lambda r: (r.start, r.victim_ip))
        return reflections

    def _infer_victim(self, victim_ip: int,
                      windows: List[ReflectorObservation]
                      ) -> Iterator[InferredReflection]:
        th = self.thresholds
        group: List[ReflectorObservation] = []
        for obs in windows:
            if group and obs.window_ts - group[-1].window_ts > th.gap_s:
                reflection = self._finalize(victim_ip, group)
                if reflection is not None:
                    yield reflection
                group = []
            group.append(obs)
        if group:
            reflection = self._finalize(victim_ip, group)
            if reflection is not None:
                yield reflection

    def _finalize(self, victim_ip: int,
                  group: List[ReflectorObservation]
                  ) -> Optional[InferredReflection]:
        th = self.thresholds
        n_queries = sum(o.n_queries for o in group)
        if n_queries < th.min_queries:
            return None
        if len(group) < th.min_windows:
            return None
        if max(o.n_dark_targets for o in group) < th.min_dark_targets:
            return None
        return InferredReflection(
            victim_ip=victim_ip,
            start=group[0].window_ts,
            end=group[-1].window_ts + FIVE_MINUTES,
            n_queries=n_queries,
            max_qpm=max(o.max_qpm for o in group),
            max_dark_targets=max(o.n_dark_targets for o in group),
            qtype=group[0].qtype,
            n_windows=len(group),
        )


class ReflectorFeed:
    """The curated reflector-query dataset: observations, inferred
    reflections, and their join-compatible projection."""

    def __init__(self, observations: Iterable[ReflectorObservation],
                 reflections: Iterable[InferredReflection]):
        self.observations: List[ReflectorObservation] = sorted(
            observations, key=lambda o: (o.window_ts, o.victim_ip))
        self.reflections: List[InferredReflection] = sorted(
            reflections, key=lambda r: (r.start, r.victim_ip))

    @classmethod
    def observe(cls, ground_truth: Iterable[Attack],
                simulator: ReflectorSimulator,
                thresholds: Optional[ReflectorThresholds] = None,
                baf_of: Optional[Dict[int, float]] = None) -> "ReflectorFeed":
        """Run the reflector branch over a ground-truth schedule.

        ``baf_of`` maps victim IPs to the mean BAF to stamp on the
        inferred reflections (the simulator builds it from ground truth
        when asked via :meth:`observe_world_truth`).
        """
        observations = list(simulator.observe_all(ground_truth))
        reflections = ReflectorClassifier(thresholds).infer(observations)
        if baf_of:
            for r in reflections:
                r.assumed_baf = baf_of.get(r.victim_ip, r.assumed_baf)
        # Keep only observations belonging to an inferred reflection
        # (the same curation step the RSDoS feed applies).
        keep: Dict[int, List[Window]] = {}
        for r in reflections:
            keep.setdefault(r.victim_ip, []).append(r.window)
        curated = [o for o in observations
                   if any(w.contains(o.window_ts)
                          for w in keep.get(o.victim_ip, ()))]
        return cls(curated, reflections)

    def __len__(self) -> int:
        return len(self.reflections)

    def victims(self) -> List[int]:
        return sorted({r.victim_ip for r in self.reflections})

    def inferred_attacks(self) -> List[InferredAttack]:
        """The reflections projected into the join's record type."""
        return [r.to_inferred() for r in self.reflections]


def match_reflections(ground_truth: Iterable[Attack],
                      reflections: Iterable[InferredReflection]
                      ) -> List[Tuple[Attack, Optional[InferredReflection]]]:
    """Pair each reflector-visible ground-truth attack with the
    overlapping inferred reflection on the same victim (``None`` when
    the darknet missed it) — the validation harness the acceptance
    criterion asks for."""
    by_victim: Dict[int, List[InferredReflection]] = {}
    for r in reflections:
        by_victim.setdefault(r.victim_ip, []).append(r)
    out: List[Tuple[Attack, Optional[InferredReflection]]] = []
    for attack in ground_truth:
        if not attack.reflector_visible:
            continue
        hit = None
        for r in by_victim.get(attack.victim_ip, ()):
            if r.start < attack.window.end and attack.window.start < r.end:
                hit = r
                break
        out.append((attack, hit))
    return out
