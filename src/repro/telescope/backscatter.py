"""Backscatter generation: what the darknet sees of each attack.

For every randomly-spoofed attack, the victim answers the attack packets
it can (suppressed when its uplink is saturated — §6.5's "the attack
succeeds and impedes responses"), and the uniformly-spoofed share of
those responses lands in the telescope at the coverage ratio. We
aggregate per 5-minute tumbling window, which is exactly the granularity
of CAIDA's curated feed, sampling packet counts Poisson-style rather
than materializing packets (a packet-level reference path exists for
validation in the test suite).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.attacks.model import Attack
from repro.net.ip import IPV4_SPACE
from repro.telescope.darknet import Darknet
from repro.util.rng import derive_rng
from repro.util.timeutil import FIVE_MINUTES
from repro.world.capacity import overload_drop

# Victims answer attack traffic at most at this fraction of it even when
# healthy (some stacks rate-limit RSTs/ICMP).
_DEFAULT_RESPONSE_RATIO = 1.0

# A callable the world provides: inbound-link utilization of the victim
# at an instant (0.0 for victims we model no link for).
LinkUtilFn = Callable[[int, int], float]


@dataclass
class WindowObservation:
    """Telescope-side aggregate for one victim in one 5-minute window."""

    window_ts: int
    victim_ip: int
    n_packets: int
    max_ppm: float
    n_slash16: int
    n_unique_sources: int       # distinct darknet addresses hit
    proto: int
    first_port: int
    n_ports: int

    def __post_init__(self) -> None:
        if self.n_packets < 0:
            raise ValueError("packet count must be non-negative")


class BackscatterSimulator:
    """Samples per-window telescope observations from ground truth."""

    def __init__(self, darknet: Darknet, rng: random.Random,
                 link_util_fn: Optional[LinkUtilFn] = None,
                 headroom: float = 0.8,
                 jitter_seed: Optional[int] = None):
        self.darknet = darknet
        self.rng = rng
        self.link_util_fn = link_util_fn or (lambda ip, ts: 0.0)
        self.headroom = headroom
        #: root of the per-(victim, window) max_ppm jitter streams. The
        #: jitter must not ride the shared ``rng``: an inline draw per
        #: emitted window couples a window's jitter to how many windows
        #: were processed before it (and to ``Random.gauss``'s cached
        #: pair), which silently diverges under any batched/reordered
        #: processing. One draw here keys the whole family to the
        #: simulator's seed instead.
        self.jitter_seed = (jitter_seed if jitter_seed is not None
                            else rng.getrandbits(64))

    # -- per-attack observation -------------------------------------------------

    def observe_attack(self, attack: Attack) -> List[WindowObservation]:
        """All 5-minute window observations the telescope makes of one
        attack. Empty when no vector is randomly spoofed."""
        if not attack.telescope_visible:
            return []
        spoofed_vectors = [v for v in attack.vectors
                           if v.spoofing.telescope_visible]
        proto = spoofed_vectors[0].proto
        ports = tuple(dict.fromkeys(p for v in spoofed_vectors for p in v.ports))
        first_port = ports[0] if ports else 0
        pool = attack.spoof_pool_size or IPV4_SPACE
        pool_in_darknet = pool * self.darknet.coverage
        cum_packets = 0.0

        observations: List[WindowObservation] = []
        for ts in attack.window.buckets(FIVE_MINUTES):
            w_start = max(ts, attack.window.start)
            w_end = min(ts + FIVE_MINUTES, attack.window.end)
            seconds = w_end - w_start
            if seconds <= 0:
                continue
            mid = (w_start + w_end) // 2
            spoofed_pps = attack.effective_spoofed_pps(mid)
            if spoofed_pps <= 0:
                continue
            link_util = self.link_util_fn(attack.victim_ip, mid)
            respond = (1.0 - overload_drop(link_util, self.headroom)) \
                * attack.response_ratio
            response_packets = spoofed_pps * respond * seconds
            expected = self.darknet.expected_hits(response_packets)
            n_packets = self._sample_count(expected)
            if n_packets == 0:
                continue
            # Cumulative distinct darknet sources so far (saturating at
            # the spoof pool's darknet share).
            cum_packets += n_packets
            unique_sources = self.darknet.expected_unique_addresses(
                cum_packets, pool_in_darknet)
            n_slash16 = int(round(self.darknet.expected_unique_slash16(n_packets)))
            ppm = n_packets / max(seconds / 60.0, 1e-9)
            max_ppm = ppm * self.window_jitter(attack.victim_ip, ts)
            observations.append(WindowObservation(
                window_ts=ts, victim_ip=attack.victim_ip,
                n_packets=n_packets, max_ppm=max_ppm,
                n_slash16=max(1, n_slash16),
                n_unique_sources=int(round(unique_sources)),
                proto=proto, first_port=first_port, n_ports=max(1, len(ports))))
        return observations

    def window_jitter(self, victim_ip: int, window_ts: int) -> float:
        """The peak-rate jitter factor of one (victim, window) pair.

        Drawn from a stream derived from ``(jitter_seed, victim_ip,
        window_ts)``, so it is a pure function of what is being observed
        — identical whether windows are processed serially, batched, or
        in any order.
        """
        jr = derive_rng(self.jitter_seed, str(victim_ip), str(window_ts))
        return 1.0 + abs(jr.gauss(0.0, 0.05))

    def observe_all(self, attacks: Iterable[Attack]) -> Iterator[WindowObservation]:
        for attack in attacks:
            yield from self.observe_attack(attack)

    def _sample_count(self, expected: float) -> int:
        """Poisson sample (normal approximation above 1000)."""
        if expected <= 0:
            return 0
        if expected > 1000:
            return max(0, int(round(self.rng.gauss(expected, math.sqrt(expected)))))
        # Knuth's algorithm is fine at these magnitudes.
        limit = math.exp(-expected)
        k = 0
        p = 1.0
        while True:
            p *= self.rng.random()
            if p <= limit:
                return k
            k += 1

    # -- packet-level reference path (validation) ---------------------------------

    def materialize_packets(self, attack: Attack, max_packets: int = 200_000
                            ) -> List[Tuple[int, int]]:
        """Generate individual ``(timestamp, darknet destination)``
        backscatter packets for small attacks.

        Used by tests to validate the aggregate fast path against a
        ground-truth packet stream; refuses attacks that would exceed
        ``max_packets`` expected telescope packets.
        """
        if not attack.telescope_visible:
            return []
        expected_total = (attack.spoofed_pps * attack.window.duration
                          * self.darknet.coverage)
        if expected_total > max_packets:
            raise ValueError(
                f"attack would produce ~{expected_total:.0f} telescope packets; "
                f"cap is {max_packets}")
        packets: List[Tuple[int, int]] = []
        for ts in range(attack.window.start, attack.window.end):
            spoofed_pps = attack.effective_spoofed_pps(ts)
            link_util = self.link_util_fn(attack.victim_ip, ts)
            respond = (1.0 - overload_drop(link_util, self.headroom)) \
                * attack.response_ratio
            expected = spoofed_pps * respond * self.darknet.coverage
            for _ in range(self._sample_count(expected)):
                packets.append((ts, self.darknet.sample_address(self.rng)))
        return packets
