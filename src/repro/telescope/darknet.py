"""The darknet itself: announced unused space that only receives.

The UCSD-NT announces a /9 and a /10 — 12,582,912 addresses, 1/341.33
of the 2^32 IPv4 space. The paper's intensity extrapolation (footnote 2:
``21.8 Kppm x 341 / 60 s = 124 Kpps``) comes straight from this ratio.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, Tuple

from repro.net.ip import IPV4_SPACE, IPv4Prefix
from repro.topology.internet import TELESCOPE_SLASH9, TELESCOPE_SLASH10

#: 1 / 341.33...: the fraction of IPv4 space the telescope observes.
TELESCOPE_COVERAGE = (TELESCOPE_SLASH9.num_addresses
                      + TELESCOPE_SLASH10.num_addresses) / IPV4_SPACE


class Darknet:
    """The telescope's address space and sampling helpers."""

    def __init__(self, prefixes: Sequence[IPv4Prefix] = (TELESCOPE_SLASH9,
                                                         TELESCOPE_SLASH10)):
        if not prefixes:
            raise ValueError("a darknet needs at least one prefix")
        self.prefixes: Tuple[IPv4Prefix, ...] = tuple(prefixes)
        self.n_addresses = sum(p.num_addresses for p in self.prefixes)

    @property
    def coverage(self) -> float:
        """Fraction of IPv4 space observed."""
        return self.n_addresses / IPV4_SPACE

    @property
    def extrapolation_factor(self) -> float:
        """Multiply telescope-observed counts by this for global
        estimates (the paper's x341)."""
        return 1.0 / self.coverage

    @property
    def n_slash16s(self) -> int:
        """Number of /16 blocks inside the darknet (the feed reports how
        many receive backscatter per window)."""
        return sum(max(1, p.num_addresses // 65536) for p in self.prefixes)

    def contains(self, ip: int) -> bool:
        return any(p.contains_ip(ip) for p in self.prefixes)

    def sample_address(self, rng: random.Random) -> int:
        """A uniformly random telescope address (weighted by prefix size)."""
        x = rng.randrange(self.n_addresses)
        for prefix in self.prefixes:
            if x < prefix.num_addresses:
                return prefix.network + x
            x -= prefix.num_addresses
        raise AssertionError("unreachable")

    def expected_hits(self, response_packets: float) -> float:
        """Expected telescope packets out of uniformly-spoofed responses."""
        return response_packets * self.coverage

    def expected_unique_slash16(self, n_packets: float) -> float:
        """Expected distinct darknet /16s hit by ``n_packets`` uniform
        packets (coupon-collector expectation)."""
        blocks = self.n_slash16s
        if n_packets <= 0:
            return 0.0
        return blocks * (1.0 - math.exp(-n_packets / blocks))

    def expected_unique_addresses(self, n_packets: float,
                                  pool_in_darknet: float) -> float:
        """Expected distinct darknet addresses hit, when the attacker
        spoofs from a pool of which ``pool_in_darknet`` addresses fall
        inside the telescope."""
        if n_packets <= 0 or pool_in_darknet <= 0:
            return 0.0
        return pool_in_darknet * (1.0 - math.exp(-n_packets / pool_in_darknet))
