"""Ancillary datasets: open-resolver scans and dataset I/O helpers."""

from repro.datasets.openresolvers import OpenResolverScan
from repro.datasets.io import dataset_bundle_dump, dataset_bundle_load

__all__ = [
    "OpenResolverScan",
    "dataset_bundle_dump",
    "dataset_bundle_load",
]
