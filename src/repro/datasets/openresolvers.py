"""Open-resolver scan dataset (Yazdani et al. analog).

The paper uses open-resolver scans to filter incidental public-resolver
addresses (8.8.8.8, 1.1.1.1, ...) out of the authoritative-infrastructure
analysis: misconfigured domains point NS records at them, but attacks on
them are not attacks on authoritative DNS (Tables 4/5).
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional, Set, TextIO

from repro.net.ip import ip_to_str, parse_ip


class OpenResolverScan:
    """A snapshot of addresses observed answering recursive queries."""

    def __init__(self, ips: Optional[Iterable[int]] = None,
                 scanned_at: Optional[int] = None):
        self._ips: Set[int] = {int(ip) for ip in (ips or ())}
        self.scanned_at = scanned_at

    @classmethod
    def from_world(cls, world, scanned_at: Optional[int] = None
                   ) -> "OpenResolverScan":
        """Scan the simulated world: every answering public-resolver
        target shows up (recall is effectively perfect for the handful
        of major public resolvers the filter exists for)."""
        return cls(world.open_resolver_ips, scanned_at)

    def add(self, ip) -> None:
        self._ips.add(parse_ip(ip) if isinstance(ip, str) else int(ip))

    def is_open_resolver(self, ip: int) -> bool:
        return int(ip) in self._ips

    def filter_out(self, ips: Iterable[int]) -> Iterator[int]:
        """Yield only addresses that are NOT open resolvers."""
        for ip in ips:
            if int(ip) not in self._ips:
                yield int(ip)

    def __len__(self) -> int:
        return len(self._ips)

    def __contains__(self, ip: int) -> bool:
        return self.is_open_resolver(ip)

    # -- serialization -----------------------------------------------------------

    def dump(self, fp: TextIO) -> None:
        fp.write(json.dumps({
            "scanned_at": self.scanned_at,
            "resolvers": [ip_to_str(ip) for ip in sorted(self._ips)],
        }) + "\n")

    @classmethod
    def load(cls, fp: TextIO) -> "OpenResolverScan":
        row = json.loads(fp.readline())
        return cls((parse_ip(t) for t in row["resolvers"]),
                   scanned_at=row.get("scanned_at"))
