"""Bundle I/O: persist a study's derived datasets to a directory.

Lets users export the simulated feeds (RSDoS records, prefix2AS, AS2Org,
anycast census, open-resolver scan) in the text formats the rest of the
library loads, so analyses can be re-run without re-simulating.

Writes are crash-safe: every file goes through
:func:`repro.util.fileio.atomic_write` (temp file + ``os.replace``), so
an interrupted export can never leave a truncated dataset behind. Loads
are diagnosable: a damaged file raises :class:`DatasetBundleError`
naming the offending path, never a bare parse error from deep inside a
format module.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.anycast.census import AnycastCensus
from repro.datasets.openresolvers import OpenResolverScan
from repro.telescope.feed import RSDoSFeed
from repro.topology.as2org import AS2Org
from repro.topology.prefix2as import Prefix2AS
from repro.util.fileio import atomic_write

_FILES = {
    "rsdos": "rsdos_records.csv",
    "prefix2as": "prefix2as.tsv",
    "as2org": "as2org.jsonl",
    "census": "anycast_census.jsonl",
    "openresolvers": "open_resolvers.json",
}


class DatasetBundleError(ValueError):
    """A bundle file exists but cannot be parsed."""


@dataclass
class DatasetBundle:
    """The ancillary datasets of one study run."""

    feed_records: Optional[list] = None
    prefix2as: Optional[Prefix2AS] = None
    as2org: Optional[AS2Org] = None
    census: Optional[AnycastCensus] = None
    openresolvers: Optional[OpenResolverScan] = None


def dataset_bundle_dump(path: str, feed: Optional[RSDoSFeed] = None,
                        prefix2as: Optional[Prefix2AS] = None,
                        as2org: Optional[AS2Org] = None,
                        census: Optional[AnycastCensus] = None,
                        openresolvers: Optional[OpenResolverScan] = None) -> None:
    """Write whichever datasets are provided under ``path``, atomically
    per file."""
    os.makedirs(path, exist_ok=True)
    if feed is not None:
        with atomic_write(os.path.join(path, _FILES["rsdos"])) as fp:
            feed.dump_records(fp)
    if prefix2as is not None:
        with atomic_write(os.path.join(path, _FILES["prefix2as"])) as fp:
            prefix2as.dump(fp)
    if as2org is not None:
        with atomic_write(os.path.join(path, _FILES["as2org"])) as fp:
            as2org.dump(fp)
    if census is not None:
        with atomic_write(os.path.join(path, _FILES["census"])) as fp:
            census.dump(fp)
    if openresolvers is not None:
        with atomic_write(os.path.join(path, _FILES["openresolvers"])) as fp:
            openresolvers.dump(fp)


def _load_file(path: str, loader):
    """Parse one bundle file, wrapping any parse failure with the path."""
    with open(path) as fp:
        try:
            return loader(fp)
        except Exception as exc:
            raise DatasetBundleError(
                f"corrupt dataset file {path}: {exc}") from exc


def dataset_bundle_load(path: str) -> DatasetBundle:
    """Load whatever datasets exist under ``path``.

    Absent files simply leave their bundle slot ``None``; a present but
    unparseable file raises :class:`DatasetBundleError` naming it.
    """
    bundle = DatasetBundle()
    rsdos_path = os.path.join(path, _FILES["rsdos"])
    if os.path.exists(rsdos_path):
        bundle.feed_records = _load_file(rsdos_path, RSDoSFeed.load_records)
    p2a_path = os.path.join(path, _FILES["prefix2as"])
    if os.path.exists(p2a_path):
        bundle.prefix2as = _load_file(p2a_path, Prefix2AS.load)
    a2o_path = os.path.join(path, _FILES["as2org"])
    if os.path.exists(a2o_path):
        bundle.as2org = _load_file(a2o_path, AS2Org.load)
    census_path = os.path.join(path, _FILES["census"])
    if os.path.exists(census_path):
        bundle.census = _load_file(census_path, AnycastCensus.load)
    or_path = os.path.join(path, _FILES["openresolvers"])
    if os.path.exists(or_path):
        bundle.openresolvers = _load_file(or_path, OpenResolverScan.load)
    return bundle
