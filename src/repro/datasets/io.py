"""Bundle I/O: persist a study's derived datasets to a directory.

Lets users export the simulated feeds (RSDoS records, prefix2AS, AS2Org,
anycast census, open-resolver scan) in the text formats the rest of the
library loads, so analyses can be re-run without re-simulating.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.anycast.census import AnycastCensus
from repro.datasets.openresolvers import OpenResolverScan
from repro.telescope.feed import RSDoSFeed
from repro.topology.as2org import AS2Org
from repro.topology.prefix2as import Prefix2AS

_FILES = {
    "rsdos": "rsdos_records.csv",
    "prefix2as": "prefix2as.tsv",
    "as2org": "as2org.jsonl",
    "census": "anycast_census.jsonl",
    "openresolvers": "open_resolvers.json",
}


@dataclass
class DatasetBundle:
    """The ancillary datasets of one study run."""

    feed_records: Optional[list] = None
    prefix2as: Optional[Prefix2AS] = None
    as2org: Optional[AS2Org] = None
    census: Optional[AnycastCensus] = None
    openresolvers: Optional[OpenResolverScan] = None


def dataset_bundle_dump(path: str, feed: Optional[RSDoSFeed] = None,
                        prefix2as: Optional[Prefix2AS] = None,
                        as2org: Optional[AS2Org] = None,
                        census: Optional[AnycastCensus] = None,
                        openresolvers: Optional[OpenResolverScan] = None) -> None:
    """Write whichever datasets are provided under ``path``."""
    os.makedirs(path, exist_ok=True)
    if feed is not None:
        with open(os.path.join(path, _FILES["rsdos"]), "w") as fp:
            feed.dump_records(fp)
    if prefix2as is not None:
        with open(os.path.join(path, _FILES["prefix2as"]), "w") as fp:
            prefix2as.dump(fp)
    if as2org is not None:
        with open(os.path.join(path, _FILES["as2org"]), "w") as fp:
            as2org.dump(fp)
    if census is not None:
        with open(os.path.join(path, _FILES["census"]), "w") as fp:
            census.dump(fp)
    if openresolvers is not None:
        with open(os.path.join(path, _FILES["openresolvers"]), "w") as fp:
            openresolvers.dump(fp)


def dataset_bundle_load(path: str) -> DatasetBundle:
    """Load whatever datasets exist under ``path``."""
    bundle = DatasetBundle()
    rsdos_path = os.path.join(path, _FILES["rsdos"])
    if os.path.exists(rsdos_path):
        with open(rsdos_path) as fp:
            bundle.feed_records = RSDoSFeed.load_records(fp)
    p2a_path = os.path.join(path, _FILES["prefix2as"])
    if os.path.exists(p2a_path):
        with open(p2a_path) as fp:
            bundle.prefix2as = Prefix2AS.load(fp)
    a2o_path = os.path.join(path, _FILES["as2org"])
    if os.path.exists(a2o_path):
        with open(a2o_path) as fp:
            bundle.as2org = AS2Org.load(fp)
    census_path = os.path.join(path, _FILES["census"])
    if os.path.exists(census_path):
        with open(census_path) as fp:
            bundle.census = AnycastCensus.load(fp)
    or_path = os.path.join(path, _FILES["openresolvers"])
    if os.path.exists(or_path):
        with open(or_path) as fp:
            bundle.openresolvers = OpenResolverScan.load(fp)
    return bundle
