"""Capacity model: attack load → drop probability, delay, SERVFAIL.

The model has two stages, mirroring the failure modes the paper
discusses:

* **Link stage** — every attack packet destined to any address in a /24
  crosses that /24's uplink, which is *bit*-bound: a 1400-byte UDP flood
  saturates a 10 Gbps uplink at ~900 Kpps while a 60-byte SYN flood at
  the same packet rate is only ~340 Mbps. A saturated uplink drops query
  and response datagrams indiscriminately; this is why nameservers
  sharing one /24 (mil.ru, §5.2.3) fail together, and why the telescope
  under-observes victims behind saturated links (§6.5: "the attack
  succeeds and impedes responses that serve as backscatter signal").
* **Server stage** — packets that reach the victim consume server
  resources (*packet*-bound), weighted by how expensive they are to
  dispose of: UDP floods to port 53 are parsed by the DNS software
  itself (application-aware attacks, §6.3.1, weight
  ``app_layer_factor``); TCP SYNs to port 53 burn SYN-queue state
  (weight 1); packets to other ports are discarded cheaply in the
  kernel (weight ``other_port_factor``).

Drop probability follows the classic overload form ``1 - headroom/u``
above the headroom threshold: a server at twice its capacity answers
~40% of queries, at 10x ~8%. Sub-saturation queueing adds an M/M/1-style
delay that only matters near saturation. SERVFAIL is a distinct mode:
an application-overloaded (but link-healthy) server answers quickly with
an error — the 8% SERVFAIL share of failures in §6.3.1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dns.server import ServerReply
from repro.net.ports import PORT_DNS, PROTO_UDP

# Sub-saturation service time that stretches as the queue builds.
_SERVICE_MS = 2.0
_MAX_QUEUE_UTIL = 0.97


@dataclass(frozen=True)
class LoadBreakdown:
    """Utilization of one nameserver at one instant, per stage."""

    server_util: float = 0.0   # packet-weighted load / server capacity (pps)
    link_util: float = 0.0     # attack bits on the /24 uplink / link bps
    app_util: float = 0.0      # UDP port-53 component of server load
    blackout: bool = False     # geofence: all external queries dropped

    @property
    def quiet(self) -> bool:
        return (not self.blackout and self.server_util == 0.0
                and self.link_util == 0.0)

    def combined_drop(self, headroom: float) -> float:
        """Probability a query/response datagram pair is lost."""
        p_link = overload_drop(self.link_util, headroom)
        p_server = overload_drop(self.server_util, headroom)
        return 1.0 - (1.0 - p_link) * (1.0 - p_server)


def overload_drop(util: float, headroom: float) -> float:
    """Drop probability at utilization ``util`` given ``headroom``.

    Zero below the headroom threshold, then ``1 - headroom/util``: the
    resource serves ``headroom`` worth of traffic and sheds the rest.
    """
    if util <= headroom:
        return 0.0
    return 1.0 - headroom / util


def response_fraction(link_util: float, headroom: float = 0.8) -> float:
    """Fraction of attack packets the victim's responses survive for.

    Backscatter (SYN-ACKs, RSTs, ICMP) is small and cheap to emit; what
    suppresses it is the inbound uplink dropping the attack packets
    themselves. This is the §6.5 effect where a devastating attack can
    *shrink* the telescope's view of itself.
    """
    return 1.0 - overload_drop(link_util, headroom)


def queue_delay_ms(util: float) -> float:
    """M/M/1-flavoured queueing delay: negligible until near saturation."""
    rho = min(max(util, 0.0), _MAX_QUEUE_UTIL)
    return _SERVICE_MS / (1.0 - rho) - _SERVICE_MS


class CapacityModel:
    """Samples per-query server replies from a load breakdown."""

    def __init__(self, headroom: float = 0.8, app_layer_factor: float = 4.0,
                 other_port_factor: float = 0.5, servfail_weight: float = 0.10):
        if not 0 < headroom <= 1:
            raise ValueError("headroom must be within (0, 1]")
        if app_layer_factor < 1:
            raise ValueError("app_layer_factor must be >= 1")
        if not 0 <= other_port_factor <= 1:
            raise ValueError("other_port_factor must be within [0, 1]")
        if not 0 <= servfail_weight <= 1:
            raise ValueError("servfail_weight must be within [0, 1]")
        self.headroom = headroom
        self.app_layer_factor = app_layer_factor
        self.other_port_factor = other_port_factor
        self.servfail_weight = servfail_weight

    # -- load weighting --------------------------------------------------------

    def server_cost_pps(self, pps: float, ports, proto: int) -> float:
        """Capacity-weighted cost of an attack vector at the server.

        UDP datagrams to port 53 look like DNS queries and are parsed by
        the authoritative software (expensive); TCP SYNs to port 53 cost
        SYN-queue work (weight 1); everything else dies in the kernel.
        """
        if PORT_DNS in ports:
            if proto == PROTO_UDP:
                return pps * self.app_layer_factor
            return pps
        return pps * self.other_port_factor

    def is_app_layer(self, ports, proto: int) -> bool:
        """Does a vector reach the DNS application itself?"""
        return proto == PROTO_UDP and PORT_DNS in ports

    # -- reply sampling -----------------------------------------------------------

    def sample_reply(self, rng: random.Random, base_rtt_ms: float,
                     load: LoadBreakdown) -> ServerReply:
        """What one query datagram experiences under ``load``.

        Staged like the real path: a blackout drops everything; the /24
        uplink drops a share of *all* packets — attack and query alike —
        so the server only ever sees link survivors; the surviving
        attack load then drives the server stage, where an
        application-overloaded (but reachable) server converts some
        would-be answers into fast SERVFAILs.
        """
        if load.blackout:
            return ServerReply.dropped()
        rtt = base_rtt_ms + rng.expovariate(1.0 / 2.0)  # ~2ms network jitter
        if load.quiet:
            return ServerReply.ok(rtt)
        p_link = overload_drop(load.link_util, self.headroom)
        if p_link > 0 and rng.random() < p_link:
            return ServerReply.dropped()
        survival = 1.0 - p_link
        eff_server = load.server_util * survival
        eff_app = load.app_util * survival
        p_drop = overload_drop(eff_server, self.headroom)
        # SERVFAIL: application-layer floods exhaust the DNS software
        # directly (full weight); any severe server overload also makes
        # it occasionally answer with SERVFAIL (e.g. failed internal
        # lookups) at a reduced weight.
        app_component = ((eff_app - self.headroom) / eff_app
                         if eff_app > self.headroom else 0.0)
        server_component = (0.1 * (eff_server - self.headroom) / eff_server
                            if eff_server > self.headroom else 0.0)
        p_servfail = self.servfail_weight * max(app_component, server_component)
        roll = rng.random()
        if roll < p_servfail:
            return ServerReply.servfail(rtt + queue_delay_ms(eff_server))
        if roll < p_servfail + p_drop * (1.0 - p_servfail):
            return ServerReply.dropped()
        return ServerReply.ok(rtt + queue_delay_ms(eff_server))
