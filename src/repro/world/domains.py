"""The registered-domain population and its delegations.

Domains are assigned to hosting providers by market share (Zipf-ish
weights), with the paper-relevant structure layered in: TransIP's .nl
concentration, a misconfigured tail pointing NS records at public
resolvers (Table 5), and a slice of domains adding a secondary provider
(producing the multi-AS NSSets of Figure 12).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.dns.name import DomainName
from repro.dns.zone import Delegation
from repro.world.hosting import HostingProvider

# Global TLD mix of the measured namespace (single-label suffixes).
TLD_MIX: Tuple[Tuple[str, float], ...] = (
    ("com", 0.40), ("net", 0.08), ("org", 0.07), ("de", 0.08),
    ("nl", 0.06), ("ru", 0.07), ("fr", 0.04), ("info", 0.05),
    ("it", 0.03), ("at", 0.02), ("es", 0.02), ("se", 0.02),
    ("pl", 0.02), ("io", 0.02), ("biz", 0.02),
)


@dataclass
class DomainRecord:
    """One registered domain and its (static) delegation."""

    domain_id: int
    name: DomainName
    provider_name: str
    delegation: Delegation
    nsset_id: int
    secondary_provider: Optional[str] = None
    misconfig: bool = False
    third_party_web: bool = False

    @property
    def tld(self) -> str:
        return self.name.tld or ""


@dataclass(frozen=True)
class MisconfigTarget:
    """An address misconfigured domains point NS records at."""

    ip: int
    label: str
    weight: float = 1.0


class NSSetRegistry:
    """Interns NSSets (sorted tuples of nameserver IPv4 ints) to ids."""

    def __init__(self) -> None:
        self._ids: Dict[Tuple[int, ...], int] = {}
        self._keys: List[Tuple[int, ...]] = []

    def intern(self, ips: Iterable[int]) -> int:
        key = tuple(sorted(set(int(ip) for ip in ips)))
        nsset_id = self._ids.get(key)
        if nsset_id is None:
            nsset_id = len(self._keys)
            self._ids[key] = nsset_id
            self._keys.append(key)
        return nsset_id

    def ips_of(self, nsset_id: int) -> Tuple[int, ...]:
        return self._keys[nsset_id]

    def __len__(self) -> int:
        return len(self._keys)

    def items(self) -> Iterable[Tuple[int, Tuple[int, ...]]]:
        return enumerate(self._keys)


class DomainDirectory:
    """All domains plus the reverse indexes the join pipeline needs."""

    def __init__(self) -> None:
        self.domains: List[DomainRecord] = []
        self.nssets = NSSetRegistry()
        #: nameserver IP -> ids of domains delegating to it.
        self.by_ns_ip: Dict[int, Set[int]] = {}
        #: nsset_id -> ids of member domains.
        self.by_nsset: Dict[int, Set[int]] = {}
        self.by_name: Dict[DomainName, int] = {}

    def add(self, name, provider: HostingProvider,
            delegation: Delegation, secondary: Optional[str] = None,
            misconfig: bool = False, third_party_web: bool = False
            ) -> DomainRecord:
        name = DomainName(name)
        if name in self.by_name:
            raise ValueError(f"duplicate domain: {name}")
        nsset_id = self.nssets.intern(delegation.nameserver_ips)
        record = DomainRecord(
            domain_id=len(self.domains), name=name,
            provider_name=provider.name, delegation=delegation,
            nsset_id=nsset_id, secondary_provider=secondary,
            misconfig=misconfig, third_party_web=third_party_web)
        self.domains.append(record)
        self.by_name[name] = record.domain_id
        self.by_nsset.setdefault(nsset_id, set()).add(record.domain_id)
        for ip in delegation.nameserver_ips:
            self.by_ns_ip.setdefault(ip, set()).add(record.domain_id)
        return record

    def __len__(self) -> int:
        return len(self.domains)

    def __getitem__(self, domain_id: int) -> DomainRecord:
        return self.domains[domain_id]

    def get_by_name(self, name) -> Optional[DomainRecord]:
        domain_id = self.by_name.get(DomainName(name))
        return self.domains[domain_id] if domain_id is not None else None

    # -- join-pipeline views ----------------------------------------------------

    def nameserver_ips(self) -> Set[int]:
        """Every IPv4 address appearing in an NS delegation — the "is
        this victim DNS infrastructure?" set of the join (§4.2)."""
        return set(self.by_ns_ip)

    def domains_of_ip(self, ip: int) -> Set[int]:
        return self.by_ns_ip.get(ip, set())

    def domain_count_of_ip(self, ip: int) -> int:
        return len(self.by_ns_ip.get(ip, ()))

    def nssets_of_ip(self, ip: int) -> Set[int]:
        """NSSets containing a given nameserver IP."""
        return {self.domains[d].nsset_id for d in self.by_ns_ip.get(ip, ())}

    def domains_of_nsset(self, nsset_id: int) -> Set[int]:
        return self.by_nsset.get(nsset_id, set())

    def nsset_sizes(self) -> Dict[int, int]:
        return {nsset_id: len(ids) for nsset_id, ids in self.by_nsset.items()}


# ---------------------------------------------------------------------------
# Population generation
# ---------------------------------------------------------------------------


class _WeightedPicker:
    """O(log n) weighted choice over a fixed table."""

    def __init__(self, items: Sequence, weights: Sequence[float]):
        if len(items) != len(weights) or not items:
            raise ValueError("items/weights must be equal-length and non-empty")
        self.items = list(items)
        self.cum: List[float] = []
        acc = 0.0
        for w in weights:
            if w < 0:
                raise ValueError("weights must be non-negative")
            acc += w
            self.cum.append(acc)
        if acc <= 0:
            raise ValueError("weights must sum to a positive value")
        self.total = acc

    def pick(self, rng: random.Random):
        return self.items[bisect_right(self.cum, rng.random() * self.total)]


def _delegation_for(provider: HostingProvider,
                    partner: Optional[HostingProvider], name) -> Delegation:
    ns_addrs = {ns.host: (ns.ip,) for ns in provider.nameservers}
    if partner is not None:
        # Secondary service: the partner contributes its first two NS.
        for ns in partner.nameservers[:2]:
            ns_addrs[ns.host] = (ns.ip,)
    return Delegation.build(name, ns_addrs)


def build_population(rng: random.Random, providers: Sequence[HostingProvider],
                     n_domains: int, misconfig_targets: Sequence[MisconfigTarget],
                     misconfig_fraction: float, multi_provider_fraction: float,
                     secondary_pool: Sequence[str],
                     transip_third_party_web: float = 0.27) -> DomainDirectory:
    """Generate the registered-domain population.

    ``secondary_pool`` names the providers offering secondary-NS service
    (nic.ru et al.); multi-provider domains pair their primary with one
    of these.
    """
    directory = DomainDirectory()
    by_name = {p.name: p for p in providers}
    picker = _WeightedPicker(providers, [p.weight for p in providers])
    tld_picker = _WeightedPicker([t for t, _ in TLD_MIX], [w for _, w in TLD_MIX])
    mis_picker = (_WeightedPicker([m for m in misconfig_targets],
                                  [m.weight for m in misconfig_targets])
                  if misconfig_targets else None)
    secondaries = [by_name[n] for n in secondary_pool if n in by_name]

    for i in range(n_domains):
        provider = picker.pick(rng)
        if provider.tld_preference and rng.random() < provider.tld_preference[1]:
            tld = provider.tld_preference[0]
        else:
            tld = tld_picker.pick(rng)
        name = DomainName(f"dom{i:07d}.{tld}")

        if mis_picker is not None and rng.random() < misconfig_fraction:
            target = mis_picker.pick(rng)
            delegation = Delegation.build(
                name, {DomainName(f"ns.{target.label}.example"): (target.ip,)})
            directory.add(name, provider, delegation, misconfig=True)
            continue

        partner = None
        if secondaries and rng.random() < multi_provider_fraction:
            candidates = [s for s in secondaries if s.name != provider.name]
            if candidates:
                partner = rng.choice(candidates)
        third_party = (provider.name == "TransIP"
                       and rng.random() < transip_third_party_web)
        delegation = _delegation_for(provider, partner, name)
        directory.add(name, provider, delegation,
                      secondary=partner.name if partner else None,
                      third_party_web=third_party)
    return directory
