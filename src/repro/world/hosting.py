"""Hosting providers and nameserver deployments.

Builds the provider landscape the domain population delegates to. The
deployment spectrum matches what the paper's resilience analysis (§6.6)
distinguishes: anycast vs unicast, one vs many /24 prefixes, one vs many
ASNs — plus the named analog providers whose case studies the paper
documents (TransIP: three unicast nameservers on three /24s behind one
ASN; mil.ru: three nameservers on a single /24; nic.ru: a secondary-NS
service; the mega-anycast public clouds).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.anycast.deployment import AnycastDeployment
from repro.dns.name import DomainName
from repro.dns.server import NameserverId
from repro.net.asn import AS, Organization
from repro.net.ip import IPv4Prefix
from repro.topology.generator import GeneratedTopology
from repro.topology.internet import InternetTopology
from repro.util.rng import derive_seed

# Baseline RTT (ms) from the OpenINTEL vantage point (Netherlands) to a
# unicast server in each country.
_COUNTRY_RTT_MS: Dict[str, float] = {
    "NL": 8.0, "DE": 14.0, "FR": 16.0, "AT": 18.0, "GB": 12.0,
    "ES": 28.0, "SE": 22.0, "IT": 24.0, "PL": 26.0, "TR": 45.0,
    "US": 90.0, "CA": 95.0, "BR": 110.0, "MX": 120.0,
    "RU": 45.0, "JP": 130.0, "IN": 125.0, "CN": 140.0, "KR": 135.0,
    "AU": 160.0, "ZA": 105.0,
}
_DEFAULT_RTT_MS = 70.0
_ANYCAST_RTT_MS = 12.0  # nearest-site RTT from the vantage


class ProfileKind(enum.Enum):
    """Deployment archetypes spanning the paper's resilience spectrum."""

    MEGA_ANYCAST = "mega_anycast"
    LARGE_ANYCAST = "large_anycast"
    PARTIAL_ANYCAST = "partial_anycast"
    MULTI_PREFIX_UNICAST = "multi_prefix_unicast"
    SINGLE_PREFIX_UNICAST = "single_prefix_unicast"
    SELF_HOSTED = "self_hosted"
    PUBLIC_RESOLVER = "public_resolver"


@dataclass(frozen=True)
class DeploymentProfile:
    """Structural parameters of a provider's nameserver fleet."""

    kind: ProfileKind
    n_nameservers: int
    n_prefixes: int
    n_asns: int = 1
    anycast_sites: int = 0          # 0 = unicast
    anycast_ns: int = 0             # how many NS are anycast (partial)
    server_capacity_pps: float = 50_000.0
    site_capacity_pps: float = 150_000.0
    #: /24 uplink bandwidth (bits) shared by co-located unicast servers.
    link_bps: float = 10e9

    def __post_init__(self) -> None:
        if self.n_nameservers < 1:
            raise ValueError("a provider needs at least one nameserver")
        if self.n_prefixes < 1 or self.n_prefixes > self.n_nameservers:
            raise ValueError("n_prefixes must be within [1, n_nameservers]")
        if self.n_asns < 1 or self.n_asns > self.n_prefixes:
            raise ValueError("n_asns must be within [1, n_prefixes]")
        if self.anycast_ns > self.n_nameservers:
            raise ValueError("anycast_ns cannot exceed n_nameservers")

    @property
    def is_anycast(self) -> bool:
        return self.anycast_sites > 0 and self.anycast_ns == self.n_nameservers

    @property
    def is_partial_anycast(self) -> bool:
        return self.anycast_sites > 0 and 0 < self.anycast_ns < self.n_nameservers


@dataclass
class Nameserver:
    """One authoritative nameserver of a provider."""

    nsid: NameserverId
    provider_name: str
    asn: int
    capacity_pps: float
    base_rtt_ms: float
    link_bps: float = 10e9
    anycast: Optional[AnycastDeployment] = None
    #: True for addresses that are actually public resolvers / dead ends
    #: (misconfiguration targets) rather than real authoritatives.
    is_misconfig_target: bool = False
    answers_queries: bool = True

    @property
    def ip(self) -> int:
        return self.nsid.ip

    @property
    def host(self) -> DomainName:
        return self.nsid.host

    @property
    def is_anycast(self) -> bool:
        return self.anycast is not None

    def vantage_site(self, region: str):
        if self.anycast is None:
            return None
        return self.anycast.site_for_region(region)


@dataclass
class HostingProvider:
    """A DNS hosting provider: org, ASes, nameserver fleet, market share."""

    name: str
    org: Organization
    asns: Tuple[int, ...]
    profile: DeploymentProfile
    nameservers: List[Nameserver] = field(default_factory=list)
    weight: float = 1.0
    tld_preference: Optional[Tuple[str, float]] = None  # (tld, share)
    partners: List[str] = field(default_factory=list)   # secondary providers

    @property
    def ns_ips(self) -> Tuple[int, ...]:
        return tuple(sorted(ns.ip for ns in self.nameservers))

    @property
    def slash24s(self) -> Tuple[int, ...]:
        return tuple(sorted({ns.nsid.slash24 for ns in self.nameservers}))

    @property
    def slug(self) -> str:
        return "".join(c if c.isalnum() else "-" for c in self.name.lower()).strip("-")


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------

def _rtt_for(country: str, rng: random.Random) -> float:
    base = _COUNTRY_RTT_MS.get(country, _DEFAULT_RTT_MS)
    return max(2.0, rng.gauss(base, base * 0.08))


def build_provider(internet: InternetTopology, rng: random.Random,
                   name: str, org: Organization, ases: Sequence[AS],
                   profile: DeploymentProfile, weight: float,
                   ns_domain: Optional[str] = None,
                   tld_preference: Optional[Tuple[str, float]] = None,
                   ) -> HostingProvider:
    """Allocate prefixes and wire up a provider's nameserver fleet.

    Nameservers are spread round-robin across ``n_prefixes`` /24s, which
    are themselves spread round-robin across the provider's ASes —
    exactly the structural variables Figures 11-13 stratify by.
    """
    if len(ases) < profile.n_asns:
        raise ValueError(f"{name}: profile needs {profile.n_asns} ASes, got {len(ases)}")
    used_ases = list(ases[: profile.n_asns])
    prefixes: List[IPv4Prefix] = []
    for i in range(profile.n_prefixes):
        asys = used_ases[i % len(used_ases)]
        prefixes.append(internet.allocate(asys, 24))
    ns_domain = ns_domain or f"{_slugify(name)}-dns.net"
    provider = HostingProvider(
        name=name, org=org, asns=tuple(a.number for a in used_ases),
        profile=profile, weight=weight, tld_preference=tld_preference)
    country = org.country
    for i in range(profile.n_nameservers):
        prefix = prefixes[i % len(prefixes)]
        asys = used_ases[i % len(used_ases)]
        ip = prefix.network | (10 + i)
        host = DomainName(f"ns{i + 1}.{ns_domain}")
        if profile.is_anycast or (profile.is_partial_anycast and i < profile.anycast_ns):
            deployment = AnycastDeployment.build(
                seed=derive_seed(rng.getrandbits(32), name, str(i)),
                n_sites=profile.anycast_sites,
                per_site_capacity_pps=profile.site_capacity_pps)
            base_rtt = max(3.0, rng.gauss(_ANYCAST_RTT_MS, 3.0))
        else:
            deployment = None
            base_rtt = _rtt_for(country, rng)
        provider.nameservers.append(Nameserver(
            nsid=NameserverId(host, ip),
            provider_name=name,
            asn=internet.origin_asn(ip) or asys.number,
            capacity_pps=profile.server_capacity_pps,
            base_rtt_ms=base_rtt,
            link_bps=profile.link_bps,
            anycast=deployment,
        ))
    return provider


def _slugify(name: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in name.lower()).strip("-")


# Analog provider specs: (name, profile, weight, tld_preference).
# Weights are relative market shares of the domain population.
def analog_provider_specs() -> List[Tuple[str, DeploymentProfile, float,
                                          Optional[Tuple[str, float]]]]:
    mega = DeploymentProfile(ProfileKind.MEGA_ANYCAST, n_nameservers=4,
                             n_prefixes=4, anycast_sites=30, anycast_ns=4,
                             site_capacity_pps=2_000_000.0)
    large = DeploymentProfile(ProfileKind.LARGE_ANYCAST, n_nameservers=4,
                              n_prefixes=4, anycast_sites=12, anycast_ns=4,
                              site_capacity_pps=600_000.0)
    partial = DeploymentProfile(ProfileKind.PARTIAL_ANYCAST, n_nameservers=4,
                                n_prefixes=4, anycast_sites=8, anycast_ns=2,
                                site_capacity_pps=300_000.0,
                                server_capacity_pps=80_000.0)
    multi = DeploymentProfile(ProfileKind.MULTI_PREFIX_UNICAST,
                              n_nameservers=3, n_prefixes=3,
                              server_capacity_pps=80_000.0)
    small = DeploymentProfile(ProfileKind.SINGLE_PREFIX_UNICAST,
                              n_nameservers=2, n_prefixes=1,
                              server_capacity_pps=20_000.0, link_bps=1e9)
    # TransIP: three unicast NS, three /24s, one ASN (paper §5.1.1);
    # capacity 50 Kpps reproduces the December (partial impairment) vs
    # March (20% timeouts) contrast given the reported attack rates.
    transip = DeploymentProfile(ProfileKind.MULTI_PREFIX_UNICAST,
                                n_nameservers=3, n_prefixes=3,
                                server_capacity_pps=50_000.0)
    return [
        ("Cloudflare", mega, 0.13, None),
        ("Google", mega, 0.10, None),
        ("GoDaddy", large, 0.05, None),
        ("Amazon", large, 0.08, None),
        ("Microsoft", large, 0.05, None),
        ("OVH", partial, 0.05, None),
        ("Hetzner", multi, 0.04, None),
        ("Fastly", large, 0.02, None),
        ("Unified Layer", multi, 0.04, None),
        ("TransIP", transip, 0.04, ("nl", 0.66)),
        ("nic.ru", multi, 0.02, ("ru", 0.8)),
        ("Beeline RU", small, 0.008, ("ru", 0.9)),
        ("Euskaltel", small, 0.010, None),
        ("NForce B.V.", small, 0.010, None),
        ("Co-Co NL", small, 0.010, None),
        ("NMU Group", small, 0.010, None),
        ("My Lock De", small, 0.010, None),
        ("DigiHosting NL", small, 0.010, None),
        ("Apple Russia", small, 0.010, ("ru", 0.9)),
        ("ITandTEL", small, 0.010, None),
        ("Linode", multi, 0.01, None),
        ("Contabo", small, 0.010, None),
        ("Birbir", small, 0.004, None),
        ("Pendc", small, 0.003, None),
    ]


def build_analog_providers(gen: GeneratedTopology, rng: random.Random
                           ) -> List[HostingProvider]:
    providers = []
    for name, profile, weight, tld_pref in analog_provider_specs():
        asys = gen.analog_as[name]
        providers.append(build_provider(
            gen.internet, rng, name, asys.org, [asys], profile, weight,
            tld_preference=tld_pref))
    return providers


def build_filler_providers(gen: GeneratedTopology, rng: random.Random,
                           n: int, zipf_alpha: float) -> List[HostingProvider]:
    """Mid-market providers with a rank-dependent profile mix: higher
    ranks anycast, the tail single-prefix unicast."""
    providers = []
    filler_as = [a for a in gen.filler_as]
    for rank in range(n):
        asys = filler_as[rank % len(filler_as)]
        share = 1.0 / ((rank + 3) ** zipf_alpha)
        if rank < max(2, n // 10):
            profile = DeploymentProfile(
                ProfileKind.LARGE_ANYCAST, n_nameservers=4, n_prefixes=4,
                anycast_sites=10, anycast_ns=4, site_capacity_pps=1_000_000.0)
        elif rank < n // 4:
            profile = DeploymentProfile(
                ProfileKind.PARTIAL_ANYCAST, n_nameservers=3, n_prefixes=3,
                anycast_sites=6, anycast_ns=1, site_capacity_pps=250_000.0,
                server_capacity_pps=60_000.0)
        elif rank < n // 2:
            profile = DeploymentProfile(
                ProfileKind.MULTI_PREFIX_UNICAST,
                n_nameservers=rng.choice((2, 3, 4)), n_prefixes=2,
                server_capacity_pps=rng.choice((40_000.0, 60_000.0, 100_000.0)))
        else:
            profile = DeploymentProfile(
                ProfileKind.SINGLE_PREFIX_UNICAST,
                n_nameservers=rng.choice((2, 3)), n_prefixes=1,
                server_capacity_pps=rng.choice((8_000.0, 15_000.0, 30_000.0)),
                link_bps=rng.choice((1e9, 2e9)))
        providers.append(build_provider(
            gen.internet, rng, f"Hosting-{rank:03d}", asys.org, [asys],
            profile, weight=share * 0.35))
    return providers


def build_selfhosted_providers(gen: GeneratedTopology, rng: random.Random,
                               n: int) -> List[HostingProvider]:
    """The long tail: tiny self-hosted deployments (1-3 NS, one /24,
    single-digit capacity), each serving a handful of domains. These are
    the NSSets that fail hard in Figure 7."""
    providers = []
    filler_as = [a for a in gen.filler_as]
    for i in range(n):
        asys = rng.choice(filler_as)
        n_ns = rng.choice((1, 2, 2, 3))
        profile = DeploymentProfile(
            ProfileKind.SELF_HOSTED, n_nameservers=n_ns, n_prefixes=1,
            server_capacity_pps=rng.choice((2_000.0, 5_000.0, 10_000.0, 20_000.0)),
            link_bps=1e9)
        providers.append(build_provider(
            gen.internet, rng, f"SelfHost-{i:04d}", asys.org, [asys],
            profile, weight=rng.uniform(0.0001, 0.001)))
    return providers
