"""World assembly and the live query-time behaviour of nameservers.

:func:`build_world` wires together topology, providers, domains, attack
schedule, scripted case-study scenarios, the anycast census, and the
ancillary datasets. The resulting :class:`World` answers the one
question the measurement platforms ask: *what does nameserver X do with
a query at time t?* — which it derives from the attack load active at
that instant via the capacity model.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.anycast.census import AnycastCensus
from repro.attacks.generator import (
    HotTarget,
    TargetCatalog,
    generate_schedule,
)
from repro.attacks.model import Attack
from repro.dns.name import DomainName
from repro.dns.rr import RRType
from repro.dns.server import NameserverId, ServerReply
from repro.net.ip import IPv4Prefix, ip_to_str, parse_ip, slash24_of
from repro.topology.as2org import AS2Org
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.prefix2as import Prefix2AS
from repro.util.rng import RngStreams
from repro.util.timeutil import DAY, Timeline, day_start
from repro.world.capacity import CapacityModel, LoadBreakdown
from repro.world.config import WorldConfig
from repro.world.domains import (
    DomainDirectory,
    MisconfigTarget,
    build_population,
)
from repro.world.hosting import (
    HostingProvider,
    Nameserver,
    build_analog_providers,
    build_filler_providers,
    build_selfhosted_providers,
)

# Public-resolver and other misconfiguration-target addresses (Table 5).
# (address, label, owning analog org or None, answers queries?, weight in
# the misconfigured-domain pool, paper's attack count for hot-target
# scheduling.)
SPECIAL_TARGETS = (
    ("8.8.4.4", "Google DNS", "Google", True, 0.26, 2803),
    ("8.8.8.8", "Google DNS", "Google", True, 0.26, 2298),
    ("1.1.1.1", "CloudFlare DNS", "Cloudflare", True, 0.16, 1118),
    ("204.79.197.200", "Bing", "Microsoft", True, 0.08, 668),
    ("13.107.21.200", "Bing", "Microsoft", True, 0.06, 438),
    ("23.227.38.32", "Cloudflare", "Cloudflare", True, 0.06, 273),
    ("192.168.12.34", "Private IP", None, False, 0.06, 346),
    ("198.51.100.77", "Company NAS", None, False, 0.06, 400),
)

# Paper count for the Unified Layer shared IP (redacted in Table 5).
UNIFIED_LAYER_HOT_COUNT = 2566
# Providers offering secondary-NS service (multi-AS NSSets, Figure 12).
SECONDARY_POOL = ("nic.ru", "GoDaddy", "Hosting-000", "Hosting-001", "Hosting-002")


class AttackIndex:
    """Time-indexed lookup of active attacks per victim IP and /24."""

    def __init__(self, tracked_s24s: Iterable[int]):
        self._tracked = set(tracked_s24s)
        self._by_ip: Dict[int, List[Attack]] = {}
        self._by_s24: Dict[int, List[Attack]] = {}
        self._ip_starts: Dict[int, List[int]] = {}
        self._s24_starts: Dict[int, List[int]] = {}
        self._ip_maxdur: Dict[int, int] = {}
        self._s24_maxdur: Dict[int, int] = {}
        #: days (day-start ts) with any impact per ip / per tracked /24,
        #: padded one day past the impact window for recovery recording.
        self.ip_days: Set[Tuple[int, int]] = set()
        self.s24_days: Set[Tuple[int, int]] = set()
        self._frozen = False

    def add(self, attack: Attack) -> None:
        if self._frozen:
            raise RuntimeError("index is frozen")
        self._by_ip.setdefault(attack.victim_ip, []).append(attack)
        s24 = attack.victim_slash24
        if s24 in self._tracked:
            self._by_s24.setdefault(s24, []).append(attack)
        window = attack.impact_window
        first = day_start(window.start)
        last = day_start(window.end) + DAY  # one-day recovery margin
        day = first
        while day <= last:
            self.ip_days.add((attack.victim_ip, day))
            if s24 in self._tracked:
                self.s24_days.add((s24, day))
            day += DAY

    def freeze(self) -> None:
        for table, starts, maxdur in (
                (self._by_ip, self._ip_starts, self._ip_maxdur),
                (self._by_s24, self._s24_starts, self._s24_maxdur)):
            for key, attacks in table.items():
                attacks.sort(key=lambda a: a.impact_window.start)
                starts[key] = [a.impact_window.start for a in attacks]
                maxdur[key] = max(a.impact_window.duration for a in attacks)
        self._frozen = True

    @staticmethod
    def _active(attacks: List[Attack], starts: List[int], maxdur: int,
                ts: int) -> List[Attack]:
        idx = bisect_right(starts, ts)
        out = []
        j = idx - 1
        floor = ts - maxdur
        while j >= 0 and starts[j] > floor:
            window = attacks[j].impact_window
            if window.contains(int(ts)):
                out.append(attacks[j])
            j -= 1
        return out

    def active_on_ip(self, ip: int, ts: float) -> List[Attack]:
        attacks = self._by_ip.get(ip)
        if not attacks:
            return []
        return self._active(attacks, self._ip_starts[ip],
                            self._ip_maxdur[ip], int(ts))

    def active_on_s24(self, s24: int, ts: float) -> List[Attack]:
        attacks = self._by_s24.get(s24)
        if not attacks:
            return []
        return self._active(attacks, self._s24_starts[s24],
                            self._s24_maxdur[s24], int(ts))

    def attacks_on_ip(self, ip: int) -> List[Attack]:
        return list(self._by_ip.get(ip, ()))


class World:
    """The assembled ground truth plus query-time behaviour."""

    def __init__(self, config: WorldConfig):
        self.config = config
        self.timeline: Timeline = config.timeline
        self.rngs = RngStreams(config.seed)
        self.providers: Dict[str, HostingProvider] = {}
        self.nameservers_by_ip: Dict[int, Nameserver] = {}
        self.directory = DomainDirectory()
        self.attacks: List[Attack] = []
        self.capacity_model = CapacityModel(
            headroom=config.headroom,
            app_layer_factor=config.app_layer_factor,
            other_port_factor=config.other_port_factor,
            servfail_weight=config.servfail_weight)
        self.link_capacity: Dict[int, float] = {}
        self.census: Optional[AnycastCensus] = None
        self.prefix2as: Optional[Prefix2AS] = None
        self.as2org: Optional[AS2Org] = None
        self.open_resolver_ips: Set[int] = set()
        self.internet = None  # set by build_world
        self.pack = None  # ScenarioPack instance, set by build_world
        self._index: Optional[AttackIndex] = None
        self._attack_weights: Dict[int, Tuple[float, float, float]] = {}
        self._vantage_site: Dict[int, Tuple[float, float]] = {}  # ip -> (share, cap)
        self._rng_transport = self.rngs.stream("transport")
        #: nsset_id -> day-start timestamps needing 5-minute recording.
        self._dense_days: Dict[int, FrozenSet[int]] = {}

    # -- registration -------------------------------------------------------

    def add_provider(self, provider: HostingProvider) -> None:
        if provider.name in self.providers:
            raise ValueError(f"duplicate provider: {provider.name}")
        self.providers[provider.name] = provider
        for ns in provider.nameservers:
            self.register_nameserver(ns)

    def register_nameserver(self, ns: Nameserver) -> None:
        existing = self.nameservers_by_ip.get(ns.ip)
        if existing is not None and existing is not ns:
            raise ValueError(f"duplicate nameserver IP: {ns.nsid}")
        self.nameservers_by_ip[ns.ip] = ns

    # -- attack machinery --------------------------------------------------------

    def finalize_attacks(self) -> None:
        """Index the attack schedule; call after all attacks are added."""
        tracked = {slash24_of(ip) for ip in self.nameservers_by_ip}
        index = AttackIndex(tracked)
        for attack in self.attacks:
            index.add(attack)
            self._attack_weights[attack.attack_id] = self._weights_of(attack)
        index.freeze()
        self._index = index
        self._build_link_capacities()
        self._build_vantage_sites()
        self._build_dense_days()

    def replace_attacks(self, attacks: Iterable[Attack]) -> None:
        """Swap in an edited attack schedule and rebuild every derived
        structure (index, weights, dense days) — the serve layer's
        what-if edit hook. The schedule is re-sorted into the canonical
        ``(start, victim_ip)`` order the generator produces."""
        self.attacks = sorted(attacks,
                              key=lambda a: (a.window.start, a.victim_ip))
        self._attack_weights.clear()
        self._dense_days.clear()
        self.finalize_attacks()

    def _weights_of(self, attack: Attack) -> Tuple[float, float, float]:
        """(server-cost fraction, app-layer fraction, mean bits/packet)
        of an attack's aggregate rate."""
        total = attack.total_pps
        server_cost = sum(
            self.capacity_model.server_cost_pps(v.pps, v.ports, v.proto)
            for v in attack.vectors)
        app = sum(v.pps for v in attack.vectors
                  if self.capacity_model.is_app_layer(v.ports, v.proto))
        bits = sum(v.pps * v.packet_bytes * 8 for v in attack.vectors)
        return server_cost / total, app / total, bits / total

    def _build_link_capacities(self) -> None:
        """Per-/24 uplink bandwidth: the largest uplink of the unicast
        servers behind it (co-located servers share it)."""
        best: Dict[int, float] = {}
        for ns in self.nameservers_by_ip.values():
            if ns.anycast is not None or ns.is_misconfig_target:
                continue
            s24 = ns.nsid.slash24
            best[s24] = max(best.get(s24, 0.0), ns.link_bps)
        self.link_capacity = best

    def _build_vantage_sites(self) -> None:
        region = self.config.vantage_region
        for ns in self.nameservers_by_ip.values():
            if ns.anycast is not None:
                site = ns.anycast.site_for_region(region)
                self._vantage_site[ns.ip] = (site.catchment_weight,
                                             site.capacity_pps)

    def _build_dense_days(self) -> None:
        """Precompute, per NSSet, the days needing 5-minute recording."""
        assert self._index is not None
        ip_days: Dict[int, Set[int]] = {}
        for ip, day in self._index.ip_days:
            ip_days.setdefault(ip, set()).add(day)
        s24_days: Dict[int, Set[int]] = {}
        for s24, day in self._index.s24_days:
            s24_days.setdefault(s24, set()).add(day)
        for nsset_id, ips in self.directory.nssets.items():
            days: Set[int] = set()
            for ip in ips:
                days |= ip_days.get(ip, set())
                days |= s24_days.get(slash24_of(ip), set())
            if days:
                self._dense_days[nsset_id] = frozenset(days)

    def dense_days_of(self, nsset_id: int) -> FrozenSet[int]:
        return self._dense_days.get(nsset_id, frozenset())

    def is_dense_day(self, nsset_id: int, day: int) -> bool:
        days = self._dense_days.get(nsset_id)
        return bool(days) and day in days

    # -- load & replies ------------------------------------------------------------

    def load_at(self, ns: Nameserver, ts: float) -> LoadBreakdown:
        """Utilization breakdown of one nameserver at one instant."""
        assert self._index is not None, "finalize_attacks() not called"
        attacks = self._index.active_on_ip(ns.ip, ts)
        blackout = any(
            (bw := a.blackout_window()) is not None and bw.contains(int(ts))
            for a in attacks)
        server_cost = 0.0
        app_pps = 0.0
        direct_bps = 0.0
        for attack in attacks:
            pps = attack.effective_pps(int(ts))
            if pps <= 0.0:
                continue
            server_frac, app_frac, bits_pp = self._attack_weights[attack.attack_id]
            server_cost += pps * server_frac
            app_pps += pps * app_frac
            direct_bps += pps * bits_pp
        if ns.anycast is not None:
            share, site_cap = self._vantage_site[ns.ip]
            return LoadBreakdown(
                server_util=server_cost * share / site_cap,
                link_util=0.0,
                app_util=app_pps * share / site_cap,
                blackout=blackout)
        s24 = ns.nsid.slash24
        link_bps = direct_bps
        for attack in self._index.active_on_s24(s24, ts):
            if attack.victim_ip != ns.ip:
                pps = attack.effective_pps(int(ts))
                if pps > 0.0:
                    link_bps += pps * self._attack_weights[attack.attack_id][2]
        link_cap = self.link_capacity.get(s24, float("inf"))
        return LoadBreakdown(
            server_util=server_cost / ns.capacity_pps,
            link_util=link_bps / link_cap,
            app_util=app_pps / ns.capacity_pps,
            blackout=blackout)

    def set_transport_rng(self, rng: random.Random) -> random.Random:
        """Redirect the transport's randomness; returns the previous rng.

        The sharded crawl reseeds a private stream per ``(domain, day)``
        (see :mod:`repro.openintel.platform`) so reply samples depend
        only on which domain-day is being measured — never on how many
        prior queries other workers issued — making crawl results
        invariant to the worker count. Callers must restore the previous
        rng when done so other probing subsystems keep their shared
        stream semantics.
        """
        prev = self._rng_transport
        self._rng_transport = rng
        return prev

    def transport(self, ns_ip: int, qname: DomainName, qtype: RRType,
                  ts: float) -> ServerReply:
        """Deliver one query datagram; the Transport for resolvers."""
        ns = self.nameservers_by_ip.get(ns_ip)
        if ns is None:
            return ServerReply.dropped()  # lame delegation
        if ns.is_misconfig_target:
            if not ns.answers_queries:
                return ServerReply.dropped()
            return ServerReply.ok(ns.base_rtt_ms
                                  + self._rng_transport.expovariate(0.5))
        load = self.load_at(ns, ts)
        return self.capacity_model.sample_reply(
            self._rng_transport, ns.base_rtt_ms, load)

    # -- convenience ------------------------------------------------------------

    def nameserver_ips(self) -> Set[int]:
        return set(self.nameservers_by_ip)

    def attacks_on_ip(self, ip: int) -> List[Attack]:
        assert self._index is not None
        return self._index.attacks_on_ip(ip)

    def provider_of_ip(self, ip: int) -> Optional[HostingProvider]:
        ns = self.nameservers_by_ip.get(ip)
        return self.providers.get(ns.provider_name) if ns else None

    def anycast_ips(self) -> Set[int]:
        return {ip for ip, ns in self.nameservers_by_ip.items()
                if ns.anycast is not None}


# ---------------------------------------------------------------------------
# Assembly
# ---------------------------------------------------------------------------


def build_world(config: Optional[WorldConfig] = None,
                install_scenarios: bool = True) -> World:
    """Build the full study world from a configuration.

    Set ``install_scenarios=False`` to get only the statistical
    background (useful for isolating the longitudinal analyses from the
    scripted case studies).
    """
    config = config or WorldConfig()
    from repro.attacks.packs import get_pack
    pack = get_pack(config.scenario_pack, config.pack_params)
    world = World(config)
    world.pack = pack
    rng_topo = world.rngs.stream("topology")
    gen = generate_topology(rng_topo, TopologyConfig())
    world.internet = gen.internet

    rng_prov = world.rngs.stream("providers")
    for provider in build_analog_providers(gen, rng_prov):
        world.add_provider(provider)
    for provider in build_filler_providers(
            gen, rng_prov, config.n_filler_providers, config.provider_zipf_alpha):
        world.add_provider(provider)
    for provider in build_selfhosted_providers(
            gen, rng_prov, config.n_selfhosted_providers):
        world.add_provider(provider)

    misconfig_targets, hot_targets = _install_special_targets(world, gen)

    # The census observes ground-truth anycast deployments (before the
    # population exists; it only needs the nameserver addresses).
    world.census = AnycastCensus.observe_world(
        seed=world.rngs.spawn_seed("census"),
        anycast_ips=world.anycast_ips(),
        recall=config.census_recall)
    world.open_resolver_ips = {
        parse_ip(ip) for ip, label, _, answers, _, _ in SPECIAL_TARGETS
        if answers and "DNS" in label}

    rng_pop = world.rngs.stream("population")
    world.directory = build_population(
        rng_pop, list(world.providers.values()), config.n_domains,
        misconfig_targets, config.misconfig_fraction,
        config.multi_provider_fraction, SECONDARY_POOL,
        config.transip_third_party_web)
    _ensure_misconfig_coverage(world, misconfig_targets, rng_pop)

    if install_scenarios:
        from repro.world import scenarios
        scenarios.install_scenario_infrastructure(world, gen)

    # Pack infrastructure lands after the scripted scenarios and before
    # the routing tables are derived, so pack providers resolve through
    # prefix2AS/AS2Org like everything else. Packs draw only from
    # ``pack:<name>`` streams, so the background build is unperturbed.
    pack.install_world(world, gen)

    world.prefix2as = Prefix2AS.from_topology(gen.internet)
    world.as2org = AS2Org.from_topology(gen.internet)

    rng_attacks = world.rngs.stream("attacks")
    catalog = _build_target_catalog(world, gen, hot_targets, rng_attacks)
    world.attacks = generate_schedule(
        rng_attacks, world.timeline, catalog, config.schedule)

    if install_scenarios:
        from repro.world import scenarios
        world.attacks.extend(scenarios.scenario_attacks(world))
        world.attacks.sort(key=lambda a: (a.window.start, a.victim_ip))

    extra = pack.generate_attacks(world)
    if extra:
        world.attacks.extend(extra)
        world.attacks.sort(key=lambda a: (a.window.start, a.victim_ip))

    world.finalize_attacks()
    return world


def _install_special_targets(world: World, gen) -> Tuple[List[MisconfigTarget],
                                                         List[HotTarget]]:
    """Announce and register the public-resolver / misconfig addresses."""
    misconfig: List[MisconfigTarget] = []
    hot: List[HotTarget] = []
    for text, label, org_name, answers, weight, paper_count in SPECIAL_TARGETS:
        ip = parse_ip(text)
        if org_name is not None:
            asys = gen.analog_as[org_name]
            prefix = IPv4Prefix(slash24_of(ip), 24)
            if world.internet.origin_asn(ip) is None:
                world.internet.announce(asys, prefix)
        host = DomainName(f"resolver-{text.replace('.', '-')}.example")
        world.register_nameserver(Nameserver(
            nsid=NameserverId(host, ip), provider_name=label,
            asn=world.internet.origin_asn(ip) or 0,
            capacity_pps=1e9, base_rtt_ms=6.0, anycast=None,
            is_misconfig_target=True, answers_queries=answers))
        misconfig.append(MisconfigTarget(ip=ip, label=label.replace(" ", "-").lower(),
                                         weight=weight))
        hot.append(HotTarget(ip=ip, n_attacks=paper_count, label=label))
    # The Unified Layer shared IP: a real authoritative that also hosts
    # web content, drawing frequent (ineffective) attacks.
    ul = world.providers["Unified Layer"]
    hot.append(HotTarget(ip=ul.nameservers[0].ip,
                         n_attacks=UNIFIED_LAYER_HOT_COUNT,
                         label="Unified Layer"))
    return misconfig, hot


def _ensure_misconfig_coverage(world: World, targets: List[MisconfigTarget],
                               rng: random.Random) -> None:
    """Guarantee at least one misconfigured domain per special target.

    The Table 4/5 phenomenon (public resolvers ranking among attacked
    "nameservers") only exists if the addresses appear in NS records;
    at small population scales the random misconfiguration draw can
    miss a target entirely.
    """
    from repro.dns.zone import Delegation

    providers = list(world.providers.values())
    for target in targets:
        if world.directory.domains_of_ip(target.ip):
            continue
        name = DomainName(
            f"misconfigured-{target.label}-{ip_to_str(target.ip).replace('.', '-')}.com")
        delegation = Delegation.build(
            name, {DomainName(f"ns.{target.label}.example"): (target.ip,)})
        world.directory.add(name, rng.choice(providers), delegation,
                            misconfig=True)


def _build_target_catalog(world: World, gen, hot_targets: List[HotTarget],
                          rng: random.Random) -> TargetCatalog:
    special = {h.ip for h in hot_targets}
    weights: Dict[int, float] = {}
    for ip in world.directory.nameserver_ips():
        if ip in special:
            continue
        if ip not in world.nameservers_by_ip:
            continue
        count = world.directory.domain_count_of_ip(ip)
        weights[ip] = math.sqrt(count) + 1.0
    other_pool: List[int] = []
    filler_prefixes = [p for asys in gen.filler_as for p in asys.prefixes]
    for _ in range(8000):
        prefix = rng.choice(filler_prefixes)
        other_pool.append(prefix.random_ip(rng))
    ns_groups: Dict[int, Tuple[int, ...]] = {}
    for provider in world.providers.values():
        group = provider.ns_ips
        for ip in group:
            ns_groups[ip] = group
    return TargetCatalog(ns_ip_weights=weights, other_ips=other_pool,
                         hot_targets=hot_targets, ns_groups=ns_groups)
