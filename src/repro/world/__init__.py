"""The simulated ground-truth world: providers, domains, load, attacks.

Everything the two measurement systems observe is generated here: a
seeded Internet with DNS hosting providers spanning the deployment
spectrum (mega anycast down to self-hosted single-/24 unicast), a Zipf
domain population delegating to them, and a capacity model translating
attack load into drop probability, queueing delay, and SERVFAIL.
"""

from repro.world.config import WorldConfig
from repro.world.capacity import CapacityModel, LoadBreakdown
from repro.world.hosting import (
    DeploymentProfile,
    HostingProvider,
    Nameserver,
    ProfileKind,
)
from repro.world.domains import DomainDirectory, DomainRecord
from repro.world.simulation import World, build_world

__all__ = [
    "WorldConfig",
    "CapacityModel",
    "LoadBreakdown",
    "DeploymentProfile",
    "HostingProvider",
    "Nameserver",
    "ProfileKind",
    "DomainDirectory",
    "DomainRecord",
    "World",
    "build_world",
]
