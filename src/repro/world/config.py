"""World configuration: one dataclass of knobs with scaled defaults.

The paper's world is the whole Internet (4M attacks, >200M domains); the
default configuration here is a laptop-scale slice (tens of thousands of
domains, tens of thousands of attacks) chosen so that every *ratio* the
paper reports is preserved while absolute counts shrink by the scale
factor. ``WorldConfig.paper_scale()`` documents the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.attacks.generator import AttackScheduleConfig
from repro.attacks.packs import DEFAULT_PACK, validate_pack_name
from repro.dns.resolver import ResolverConfig
from repro.util.timeutil import Timeline

# Total RSDoS attacks the paper observed over the 17 months (Table 1);
# used to derive the hot-target scale factor.
PAPER_TOTAL_ATTACKS = 4_039_485


@dataclass(frozen=True)
class WorldConfig:
    """Every knob of the simulated study world."""

    seed: int = 42

    # -- timeline -------------------------------------------------------------
    start: str = Timeline.PAPER_START
    end_exclusive: str = Timeline.PAPER_END_EXCLUSIVE

    # -- domain population ------------------------------------------------------
    n_domains: int = 20_000
    #: fraction of domains whose NS records point at public resolvers or
    #: other nonsense (the Table 5 misconfiguration phenomenon).
    misconfig_fraction: float = 0.004
    #: fraction of domains adding a secondary provider (multi-AS NSSets).
    multi_provider_fraction: float = 0.06
    #: tiny self-hosted deployments (1-20 domains each).
    n_selfhosted_providers: int = 220
    #: generated mid-market hosting providers on top of the analogs.
    n_filler_providers: int = 45
    #: Zipf skew of the provider size distribution.
    provider_zipf_alpha: float = 1.05
    #: share of TransIP-hosted domains under .nl (paper: ~two-thirds).
    transip_nl_share: float = 0.66
    #: fraction of TransIP domains whose web content is hosted third-party
    #: (paper §5.1.1: ~27%).
    transip_third_party_web: float = 0.27

    # -- attack schedule ---------------------------------------------------------
    attacks_per_month: int = 2_000
    dns_attack_fraction: float = 0.0075
    schedule: AttackScheduleConfig = field(default=None)  # type: ignore[assignment]

    # -- scenario pack -----------------------------------------------------------
    #: the attack-class plugin driving extra world/schedule/telescope
    #: hooks (see :mod:`repro.attacks.packs`); ``volumetric`` is the
    #: paper's model and adds nothing to the background above.
    scenario_pack: str = DEFAULT_PACK
    #: the selected pack's parameter dataclass (``None`` = pack
    #: defaults). Canonicalized into every fingerprint, so changing a
    #: pack knob invalidates caches and serve day-keys like any other
    #: config field.
    pack_params: object = None

    # -- measurement ---------------------------------------------------------------
    vantage_region: str = "eu-west"  # OpenINTEL probes from the Netherlands
    resolver: ResolverConfig = field(default_factory=ResolverConfig)
    #: minimum measured domains for an attack event (paper §6.3).
    event_min_domains: int = 5

    # -- capacity model ---------------------------------------------------------
    #: servers keep answering cleanly below this utilization.
    headroom: float = 0.8
    #: capacity-cost multiplier of UDP port-53 (application-layer) attack
    #: packets relative to generic volumetric packets.
    app_layer_factor: float = 4.0
    #: capacity-cost multiplier of non-DNS-port packets at the server
    #: (the kernel discards them cheaply; the link still carries them).
    other_port_factor: float = 0.5
    #: probability weight of the SERVFAIL (application exhaustion) mode,
    #: calibrated so SERVFAIL stays the minority failure signature
    #: (paper §6.3.1: 92% timeout / 8% SERVFAIL).
    servfail_weight: float = 0.12

    # -- census -------------------------------------------------------------------
    census_recall: float = 0.92

    def __post_init__(self) -> None:
        if self.n_domains <= 0:
            raise ValueError("n_domains must be positive")
        for name in ("misconfig_fraction", "multi_provider_fraction",
                     "transip_nl_share", "transip_third_party_web",
                     "dns_attack_fraction", "servfail_weight"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be within [0, 1]")
        if not 0 < self.headroom <= 1:
            raise ValueError("headroom must be within (0, 1]")
        validate_pack_name(self.scenario_pack)
        if self.schedule is None:
            # Hot-target counts in Table 5 are 17-month totals; the
            # generator spreads a count of ``paper_count x scale`` over
            # the configured timeline. Matching the paper's *per-month*
            # hot-target rate therefore needs the volume ratio times the
            # fraction of the 17-month window this world covers.
            n_months = max(1, len(list(self.timeline.months())))
            paper_monthly = PAPER_TOTAL_ATTACKS / 17.0
            object.__setattr__(self, "schedule", AttackScheduleConfig(
                attacks_per_month=self.attacks_per_month,
                dns_attack_fraction=self.dns_attack_fraction,
                scale=(self.attacks_per_month / paper_monthly) * (n_months / 17.0),
            ))

    @property
    def timeline(self) -> Timeline:
        return Timeline(self.start, self.end_exclusive)

    def paper_scale(self) -> float:
        """Approximate count scale factor vs the paper (attacks axis)."""
        return (self.attacks_per_month * 17) / PAPER_TOTAL_ATTACKS

    def scaled(self, factor: float) -> "WorldConfig":
        """A copy with domain and attack volumes scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return replace(
            self,
            n_domains=max(1000, int(self.n_domains * factor)),
            attacks_per_month=max(50, int(self.attacks_per_month * factor)),
            schedule=None,  # re-derived in __post_init__
        )

    @classmethod
    def tiny(cls, seed: int = 42) -> "WorldConfig":
        """A unit-test scale world: one month, few domains."""
        return cls(
            seed=seed,
            start="2021-03-01",
            end_exclusive="2021-04-01",
            n_domains=600,
            n_selfhosted_providers=20,
            n_filler_providers=8,
            attacks_per_month=120,
        )

    @classmethod
    def small(cls, seed: int = 42) -> "WorldConfig":
        """Integration-test scale: three months, a few thousand domains."""
        return cls(
            seed=seed,
            start="2021-01-01",
            end_exclusive="2021-04-01",
            n_domains=4_000,
            n_selfhosted_providers=60,
            n_filler_providers=20,
            attacks_per_month=600,
        )
