"""Scripted case-study scenarios from the paper.

Each scenario reproduces the infrastructure shape and attack timeline
the paper documents:

* **TransIP** (§5.1): three unicast nameservers A/B/C on three /24s
  behind one ASN. December 2020 — nameserver A hit hard (124 Kpps of
  victim response traffic after the x341/60 extrapolation of 21.8 Kppm),
  B and C lightly; impairment persists ~8 hours past the attack
  (aftermath). March 2021 — all three hit (~6x December's peak);
  ~20% of queries time out; impact window matches the telescope window.
* **mil.ru** (§5.2.1): three nameservers on one /24, single ASN; 8-day
  attack (March 11-18, 2022); geofence blackout makes the domain
  unresolvable from outside Russia March 12-16.
* **RZD railways** (§5.2.2): three nameservers on two /24s, one ASN;
  attack March 8, 2022, 15:30-20:45; service only intermittently
  recovers at 06:00 the next morning (aftermath).
* **nic.ru** (§6.3.1): secondary-NS service; March 2022 attack causing
  100% resolution failure. **Euskaltel** (§6.3.1): small ISP failing
  ~83% of queries. **Contabo** (§6.5): 19-hour attack with ~30x RTT.
* **Table 6 providers**: one tuned attack per named company producing
  the decreasing RTT-impact ladder (NForce 348x ... ITandTEL 74x).
* **Mega-provider peaks** (Figure 5): eight attacks on deployments
  hosting millions of (scaled) domains, with negligible impact.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.attacks.model import Attack, AttackVector, Campaign, ImpairmentProfile, Spoofing
from repro.dns.name import DomainName
from repro.net.ports import PORT_DNS, PORT_HTTP, PROTO_UDP
from repro.util.timeutil import HOUR, MINUTE, Window, parse_ts
from repro.world.domains import _delegation_for
from repro.world.hosting import DeploymentProfile, ProfileKind, build_provider
from repro.world.simulation import World

# Victim-response packet rates from Table 2 after the paper's own
# extrapolation (telescope ppm x 341 / 60).
TRANSIP_DEC_PPS = (124_000.0, 21_600.0, 16_500.0)
TRANSIP_DEC_POOLS = (5_790_000, 1_570_000, 1_330_000)
TRANSIP_MAR_PPS = (710_000.0, 700_000.0, 74_000.0)
TRANSIP_MAR_POOLS = (7_000_000, 6_190_000, 823_000)

# Table 6 ladder: (provider, paper-reported peak Impact_on_RTT). The
# per-attack drop probability is solved per nameserver from this target
# and the server's actual baseline RTT (see drop_for_impact): with
# per-attempt drop probability p, the resolver's expected extra
# resolution time is f(p) = 1.5p + 3p^2 + 6p^3 + 6p^4 + 6p^5 seconds
# (the retransmission backoff ladder), and Impact ~= 1 + f(p)/baseline.
# The vector kind mirrors §6.2/§6.3.1: most effective attacks are
# application-aware UDP/53 floods, but some succeed via TCP SYN floods
# on port 53 or on port 80 (the same IP often hosts web and DNS).
TABLE6_TARGETS: Tuple[Tuple[str, float, str], ...] = (
    ("NForce B.V.", 348.0, "udp53"),
    ("Co-Co NL", 219.0, "tcp80"),
    ("NMU Group", 181.0, "udp53"),
    ("Hetzner", 174.0, "tcp53"),
    ("My Lock De", 146.0, "tcp80"),
    ("DigiHosting NL", 140.0, "udp53"),
    ("Apple Russia", 100.0, "udp53"),
    ("GoDaddy", 76.0, "udp53"),
    ("Linode", 75.0, "tcp53"),
    ("ITandTEL", 74.0, "tcp80"),
)

# (server cost factor, vector constructor) per kind; cost factors match
# CapacityModel's weighting of each packet type.
_VECTOR_KINDS = {
    "udp53": (4.0, lambda rate: AttackVector.udp_flood(PORT_DNS, rate)),
    "tcp53": (1.0, lambda rate: AttackVector.tcp_syn(PORT_DNS, rate)),
    "tcp80": (0.5, lambda rate: AttackVector.tcp_syn(PORT_HTTP, rate)),
}
TABLE6_DATES = (
    "2021-02-09 14:00", "2021-04-21 09:30", "2021-05-17 20:15",
    "2021-07-03 11:45", "2021-08-26 16:30", "2021-10-14 08:20",
    "2022-01-21 13:00",  # Apple Russia: the paper notes Jan 21, 2022
    "2021-11-29 22:10", "2021-12-13 07:40", "2022-02-08 18:25",
)

MEGA_PEAK_MONTHS = ("2021-01-12 15:00", "2021-03-18 10:00", "2021-05-25 21:00",
                    "2021-07-07 03:00", "2021-09-14 12:00", "2021-11-23 17:00",
                    "2022-01-19 09:00", "2022-03-21 14:00")


def expected_retry_burn_s(p: float) -> float:
    """Expected extra resolution time (seconds) of an *answered* query
    at per-attempt drop probability ``p``.

    OpenINTEL's RTT averages cover answered queries (total failures
    count as errors, not RTT), so the relevant statistic conditions on
    eventual success. Under the default backoff ladder (1.5 s, 3 s, then
    6 s) and the 15 s deadline, success is only possible after 0-3
    burned attempts with cumulative burn 0 / 1.5 / 4.5 / 10.5 s:

        E[burn | answered] = sum(p^k C_k) / sum(p^k),  k = 0..3.

    Validated against the resolver simulation to within ~1%.
    """
    if not 0 <= p < 1:
        raise ValueError("p must be within [0, 1)")
    cumulative = (0.0, 1.5, 4.5, 10.5)
    num = 0.0
    den = 0.0
    weight = 1.0
    for burn in cumulative:
        num += weight * burn
        den += weight
        weight *= p
    return num / den


def drop_for_impact(target_impact: float, baseline_ms: float) -> float:
    """Per-attempt drop probability producing ``target_impact`` as the
    mean Equation-1 impact against a server with ``baseline_ms`` RTT.

    Inverts :func:`expected_retry_burn_s` by bisection. Targets beyond
    the backoff ladder's reach saturate at p=0.95.
    """
    if target_impact <= 1.0 or baseline_ms <= 0:
        return 0.0
    target_burn = (target_impact - 1.0) * baseline_ms / 1000.0
    lo, hi = 0.0, 0.95
    if expected_retry_burn_s(hi) <= target_burn:
        return hi
    for _ in range(60):
        mid = (lo + hi) / 2
        if expected_retry_burn_s(mid) < target_burn:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def rate_for_drop(p_target: float, capacity_pps: float, headroom: float = 0.8,
                  cost_factor: float = 4.0) -> float:
    """Attack rate producing per-attempt drop probability ``p_target``
    at the server stage (``cost_factor`` = capacity cost per packet)."""
    if not 0 <= p_target < 1:
        raise ValueError("p_target must be within [0, 1)")
    if p_target == 0:
        return 0.0
    utilization = headroom / (1.0 - p_target)
    return utilization * capacity_pps / cost_factor


# ---------------------------------------------------------------------------
# Scenario infrastructure (providers + domains beyond the generated set)
# ---------------------------------------------------------------------------


def install_scenario_infrastructure(world: World, gen) -> None:
    """Add the Russian case-study providers and their domains."""
    rng = world.rngs.stream("scenarios")
    internet = world.internet

    # mil.ru: three nameservers on a single /24, one ASN (§5.2.3 calls
    # this the textbook illustration of poor resilience).
    mod_org = internet.add_org("Russian Ministry of Defense", country="RU")
    mod_as = internet.add_as(mod_org, number=204172, country="RU")
    mod_profile = DeploymentProfile(
        ProfileKind.SELF_HOSTED, n_nameservers=3, n_prefixes=1,
        server_capacity_pps=30_000.0, link_bps=1e9)
    mod = build_provider(internet, rng, "Russian MoD", mod_org, [mod_as],
                         mod_profile, weight=0.0, ns_domain="mil.ru")
    world.add_provider(mod)
    for name in ("mil.ru", "минобороны.рф", "recruit-mil.ru"):
        world.directory.add(DomainName(name), mod, _delegation_for(mod, None, name))

    # RZD railways: three nameservers on two /24s, one ASN.
    rzd_org = internet.add_org("RZD Railways", country="RU")
    rzd_as = internet.add_as(rzd_org, number=204732, country="RU")
    rzd_profile = DeploymentProfile(
        ProfileKind.SELF_HOSTED, n_nameservers=3, n_prefixes=2,
        server_capacity_pps=20_000.0, link_bps=1e9)
    rzd = build_provider(internet, rng, "RZD", rzd_org, [rzd_as],
                         rzd_profile, weight=0.0, ns_domain="rzd.ru")
    world.add_provider(rzd)
    world.directory.add(DomainName("rzd.ru"), rzd, _delegation_for(rzd, None, "rzd.ru"))


# ---------------------------------------------------------------------------
# Scripted attacks
# ---------------------------------------------------------------------------


def transip_campaigns(world: World) -> List[Campaign]:
    transip = world.providers["TransIP"]
    a, b, c = transip.nameservers[:3]

    dec = Campaign("transip-december-2020")
    # A's heavy vector ends at midnight; impairment persists ~8 h
    # (aftermath), matching OpenINTEL's observation window.
    dec.add(Attack(
        victim_ip=a.ip,
        window=Window(parse_ts("2020-11-30 22:00"), parse_ts("2020-12-01 00:00")),
        vectors=[AttackVector.tcp_syn(PORT_DNS, TRANSIP_DEC_PPS[0])],
        impairment=ImpairmentProfile(aftermath_s=8 * HOUR, aftermath_load=0.9),
        spoof_pool_size=TRANSIP_DEC_POOLS[0]))
    for ns, pps, pool in zip((b, c), TRANSIP_DEC_PPS[1:], TRANSIP_DEC_POOLS[1:]):
        dec.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts("2020-11-30 22:00"), parse_ts("2020-12-01 12:30")),
            vectors=[AttackVector.tcp_syn(PORT_DNS, pps)],
            spoof_pool_size=pool))

    mar = Campaign("transip-march-2021")
    for ns, pps, pool in zip((a, b, c), TRANSIP_MAR_PPS, TRANSIP_MAR_POOLS):
        mar.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts("2021-03-01 19:00"), parse_ts("2021-03-02 01:00")),
            vectors=[AttackVector.tcp_syn(PORT_DNS, pps)],
            # TransIP deployed IP-level scrubbing during this attack; it
            # kept the impact window aligned with the telescope window
            # (no aftermath) without fully absorbing the load.
            impairment=ImpairmentProfile(scrub_delay_s=90 * MINUTE,
                                         scrub_efficiency=0.35),
            spoof_pool_size=pool))
    return [dec, mar]


def russia_campaigns(world: World) -> List[Campaign]:
    mod = world.providers["Russian MoD"]
    milru = Campaign("mil-ru-march-2022")
    blackout_start = parse_ts("2022-03-12 00:00")
    blackout_end = parse_ts("2022-03-17 06:00")
    for ns in mod.nameservers:
        milru.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts("2022-03-11 10:00"), parse_ts("2022-03-18 20:00")),
            vectors=[
                # Telescope-visible vector is modest; the severe component
                # is a reflected volumetric flood, invisible to the
                # telescope (§5.2.1: newspapers reported a severe attack
                # while the telescope saw modest intensity). The 1400-byte
                # flood saturates the single shared /24 uplink.
                AttackVector.tcp_syn(PORT_DNS, 30_000.0),
                AttackVector(PROTO_UDP, (PORT_HTTP,), 200_000.0,
                             Spoofing.REFLECTED, 1400),
            ],
            impairment=ImpairmentProfile(
                blackout_start=blackout_start,
                blackout_s=blackout_end - blackout_start)))

    rzd = world.providers["RZD"]
    rzd_campaign = Campaign("rzd-march-2022")
    attack_start = parse_ts("2022-03-08 15:30")
    attack_end = parse_ts("2022-03-08 20:45")
    recovery = parse_ts("2022-03-09 06:00")
    for ns in rzd.nameservers:
        rzd_campaign.add(Attack(
            victim_ip=ns.ip,
            window=Window(attack_start, attack_end),
            vectors=[AttackVector.udp_flood(PORT_DNS, 800_000.0)],
            # §5.2.2: the domain stays unresolvable overnight (we model
            # an upstream block until 06:00) and is only *intermittently*
            # responsive from 06:00 (a decaying residual load tail).
            impairment=ImpairmentProfile(
                blackout_start=attack_end,
                blackout_s=recovery - attack_end,
                aftermath_s=int((recovery - attack_end) * 1.35),
                aftermath_load=0.5)))
    return [milru, rzd_campaign]


def failure_case_campaigns(world: World) -> List[Campaign]:
    """nic.ru (100% failure), Euskaltel (~83%), Contabo (19 h / ~30x)."""
    campaigns = []

    nicru = world.providers["nic.ru"]
    c1 = Campaign("nic-ru-march-2022")
    for ns in nicru.nameservers:
        c1.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts("2022-03-05 14:00"), parse_ts("2022-03-05 16:00")),
            vectors=[AttackVector.udp_flood(PORT_DNS, 25_000_000.0)]))
    campaigns.append(c1)

    euskaltel = world.providers["Euskaltel"]
    c2 = Campaign("euskaltel-2021")
    for ns in euskaltel.nameservers:
        c2.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts("2021-06-15 11:00"), parse_ts("2021-06-15 12:00")),
            vectors=[AttackVector.udp_flood(PORT_DNS, 80_000.0)]))
    campaigns.append(c2)

    contabo = world.providers["Contabo"]
    c3 = Campaign("contabo-19h")
    # The paper's outlier: a 19-hour attack with a moderate ~30x impact.
    for ns in contabo.nameservers:
        rate = rate_for_drop(drop_for_impact(30.0, ns.base_rtt_ms),
                             ns.capacity_pps)
        c3.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts("2021-09-12 01:00"), parse_ts("2021-09-12 20:00")),
            vectors=[AttackVector.udp_flood(PORT_DNS, rate)]))
    campaigns.append(c3)

    beeline = world.providers["Beeline RU"]
    c4 = Campaign("beeline-march-2022")
    for i, start in enumerate(("2022-03-03 10:00", "2022-03-07 18:00",
                               "2022-03-12 09:00", "2022-03-19 15:00",
                               "2022-03-25 12:00")):
        ns = beeline.nameservers[i % len(beeline.nameservers)]
        c4.add(Attack(
            victim_ip=ns.ip,
            window=Window(parse_ts(start), parse_ts(start) + 45 * MINUTE),
            vectors=[AttackVector.tcp_syn(PORT_DNS, 30_000.0)]))
    campaigns.append(c4)
    return campaigns


def table6_campaigns(world: World) -> List[Campaign]:
    """One tuned attack per Table 6 company, hitting the paper's
    reported impact factor against each server's actual baseline."""
    campaigns = []
    for (name, target_impact, kind), date in zip(TABLE6_TARGETS, TABLE6_DATES):
        provider = world.providers[name]
        campaign = Campaign(f"table6-{provider.slug}")
        start = parse_ts(date)
        cost_factor, make_vector = _VECTOR_KINDS[kind]
        for ns in provider.nameservers:
            p_target = drop_for_impact(target_impact, ns.base_rtt_ms)
            if p_target <= 0:
                continue
            if ns.anycast is not None:
                site = ns.anycast.site_for_region(world.config.vantage_region)
                capacity = site.capacity_pps / max(site.catchment_weight, 1e-9)
            else:
                capacity = ns.capacity_pps
            rate = rate_for_drop(p_target, capacity,
                                 headroom=world.config.headroom,
                                 cost_factor=cost_factor)
            campaign.add(Attack(
                victim_ip=ns.ip,
                # Two hours: long enough for the daily crawl to clear the
                # >=5-measured-domains event threshold on these small
                # deployments at the reproduction's population scale.
                window=Window(start, start + 2 * HOUR),
                vectors=[make_vector(rate)]))
        campaigns.append(campaign)
    return campaigns


def mega_peak_campaigns(world: World) -> List[Campaign]:
    """Eight attacks on the largest deployments (Figure 5's 10M-domain
    peaks, scaled): huge absolute rates, negligible per-site impact."""
    megas = [world.providers["Cloudflare"], world.providers["Google"]]
    campaigns = []
    for i, date in enumerate(MEGA_PEAK_MONTHS):
        provider = megas[i % 2]
        campaign = Campaign(f"mega-peak-{i}")
        start = parse_ts(date)
        for ns in provider.nameservers:
            campaign.add(Attack(
                victim_ip=ns.ip,
                window=Window(start, start + 35 * MINUTE),
                vectors=[AttackVector.tcp_syn(PORT_HTTP, 900_000.0)]))
        campaigns.append(campaign)
    return campaigns


def scenario_attacks(world: World) -> List[Attack]:
    """All scripted attacks, clipped to the world's timeline."""
    campaigns: List[Campaign] = []
    campaigns.extend(transip_campaigns(world))
    campaigns.extend(russia_campaigns(world))
    campaigns.extend(failure_case_campaigns(world))
    campaigns.extend(table6_campaigns(world))
    campaigns.extend(mega_peak_campaigns(world))
    timeline = world.timeline
    out: List[Attack] = []
    for campaign in campaigns:
        for attack in campaign.attacks:
            if attack.window.start in timeline and attack.window.end <= timeline.end:
                out.append(attack)
    return out
