"""The simulated Internet's address plan and AS registry.

Keeps the global invariants honest: prefixes never overlap reserved
space or the darknet telescope, every announced prefix has exactly one
origin AS (no MOAS in the synthetic world), and IP→AS lookup is
longest-prefix match, as with RouteViews-derived data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.asn import AS, Organization
from repro.net.ip import IPV4_SPACE, IPv4Prefix, ip_to_str
from repro.net.prefix_trie import PrefixTrie

# The UCSD telescope announces a /9 and a /10; we reserve an analogous
# pair in the synthetic plan. 44.0.0.0/9 + 44.128.0.0/10 covers
# 8M + 4M = 12,582,912 addresses = 1/341.33 of the IPv4 space, matching
# the paper's coverage ratio.
TELESCOPE_SLASH9 = IPv4Prefix.parse("44.0.0.0/9")
TELESCOPE_SLASH10 = IPv4Prefix.parse("44.128.0.0/10")


@dataclass(frozen=True)
class ReservedSpace:
    """Address ranges the allocator must never hand out."""

    prefixes: Tuple[IPv4Prefix, ...] = (
        IPv4Prefix.parse("0.0.0.0/8"),       # "this network"
        IPv4Prefix.parse("10.0.0.0/8"),      # RFC 1918
        IPv4Prefix.parse("127.0.0.0/8"),     # loopback
        IPv4Prefix.parse("169.254.0.0/16"),  # link local
        IPv4Prefix.parse("172.16.0.0/12"),   # RFC 1918
        IPv4Prefix.parse("192.168.0.0/16"),  # RFC 1918
        IPv4Prefix.parse("224.0.0.0/3"),     # multicast + class E
        TELESCOPE_SLASH9,                    # darknet
        TELESCOPE_SLASH10,                   # darknet
    )

    def covers(self, prefix: IPv4Prefix) -> bool:
        return any(r.contains_prefix(prefix) or prefix.contains_prefix(r)
                   for r in self.prefixes)

    def contains_ip(self, ip: int) -> bool:
        return any(r.contains_ip(ip) for r in self.prefixes)


class AllocationError(RuntimeError):
    """The address plan ran out of space or detected an overlap."""


class InternetTopology:
    """Registry of organizations, ASes, and announced prefixes."""

    def __init__(self, reserved: Optional[ReservedSpace] = None):
        self.reserved = reserved or ReservedSpace()
        self._orgs: Dict[str, Organization] = {}
        self._ases: Dict[int, AS] = {}
        self._routes: PrefixTrie[int] = PrefixTrie()  # prefix -> ASN
        self._next_asn = 1
        # The sequential allocator starts at 16.0.0.0; the low /8s
        # (1.0.0.0/8, 8.0.0.0/8, ...) stay free for the well-known
        # service addresses announced explicitly (8.8.8.8, 1.1.1.1, ...).
        self._alloc_cursor = 16 << 24

    # -- organizations -----------------------------------------------------

    def add_org(self, name: str, country: str = "ZZ",
                org_id: Optional[str] = None) -> Organization:
        org_id = org_id or f"org-{len(self._orgs) + 1:05d}"
        if org_id in self._orgs:
            raise ValueError(f"duplicate org id: {org_id}")
        org = Organization(org_id=org_id, name=name, country=country)
        self._orgs[org_id] = org
        return org

    def orgs(self) -> List[Organization]:
        return list(self._orgs.values())

    # -- ASes ---------------------------------------------------------------

    def add_as(self, org: Organization, number: Optional[int] = None,
               country: Optional[str] = None) -> AS:
        if number is None:
            while self._next_asn in self._ases:
                self._next_asn += 1
            number = self._next_asn
            self._next_asn += 1
        if number in self._ases:
            raise ValueError(f"duplicate ASN: {number}")
        asys = AS(number=number, org=org, country=country)
        self._ases[number] = asys
        return asys

    def get_as(self, number: int) -> AS:
        return self._ases[number]

    def ases(self) -> List[AS]:
        return list(self._ases.values())

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    # -- address allocation / announcement -----------------------------------

    def announce(self, asys: AS, prefix: IPv4Prefix) -> None:
        """Announce ``prefix`` from ``asys``; rejects overlaps with
        reserved space or an existing different-origin announcement."""
        if self.reserved.covers(prefix):
            raise AllocationError(f"{prefix} overlaps reserved space")
        existing = self._routes.exact((prefix.network, prefix.length))
        if existing is not None and existing != asys.number:
            raise AllocationError(
                f"{prefix} already announced by AS{existing}")
        self._routes.insert((prefix.network, prefix.length), asys.number)
        asys.announce(prefix)

    def allocate(self, asys: AS, length: int) -> IPv4Prefix:
        """Allocate and announce the next free prefix of ``length``.

        Walks the sequential cursor, skipping reserved space. Allocation
        is in /16-aligned strides for lengths <= 16 and packs within the
        current /16 for longer prefixes.
        """
        if not 8 <= length <= 24:
            raise AllocationError(f"unsupported allocation length: {length}")
        step = 1 << (32 - length)
        cursor = self._alloc_cursor
        base = ((cursor + step - 1) // step) * step
        for _ in range(1 << 20):
            if base + step > IPV4_SPACE:
                raise AllocationError("address space exhausted")
            prefix = IPv4Prefix(base, length)
            is_free = (not self.reserved.covers(prefix)
                       and self._routes.lookup(base) is None
                       and next(iter(self._routes.covered(prefix)), None) is None)
            if is_free:
                self._alloc_cursor = base + step
                self.announce(asys, prefix)
                return prefix
            base += step
        raise AllocationError("no free prefix found")

    # -- lookups --------------------------------------------------------------

    def origin_asn(self, ip) -> Optional[int]:
        """Origin ASN of the longest-matching announced prefix."""
        return self._routes.lookup(ip)

    def origin_as(self, ip) -> Optional[AS]:
        asn = self.origin_asn(ip)
        return self._ases.get(asn) if asn is not None else None

    def origin_org(self, ip) -> Optional[Organization]:
        asys = self.origin_as(ip)
        return asys.org if asys else None

    def routes(self) -> Iterator[Tuple[IPv4Prefix, int]]:
        for (network, length), asn in self._routes.items():
            yield IPv4Prefix(network, length), asn

    @property
    def n_routes(self) -> int:
        return len(self._routes)

    def describe(self) -> str:
        return (f"InternetTopology: {len(self._orgs)} orgs, "
                f"{len(self._ases)} ASes, {self.n_routes} routes, "
                f"cursor at {ip_to_str(self._alloc_cursor)}")
