"""Synthetic AS-level Internet topology and the CAIDA-style lookups.

The paper attributes attacked IPs to ASes via CAIDA's RouteViews
prefix2AS dataset and to companies via AS2Org. Here a seeded generator
builds an AS-level world (with real-world analog organizations so the
case studies and Tables 4-6 are directly comparable), and the two
datasets are derived from it with the same lookup semantics.
"""

from repro.topology.internet import InternetTopology, ReservedSpace
from repro.topology.generator import TopologyConfig, generate_topology
from repro.topology.prefix2as import Prefix2AS
from repro.topology.as2org import AS2Org

__all__ = [
    "InternetTopology",
    "ReservedSpace",
    "TopologyConfig",
    "generate_topology",
    "Prefix2AS",
    "AS2Org",
]
