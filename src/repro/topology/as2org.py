"""AS-to-organization dataset (CAIDA AS2Org analog).

Maps AS numbers to operating organizations so per-company aggregations
(Table 4's top attacked companies, Table 6's most-affected companies)
can group sibling ASes under one name.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, TextIO, Tuple

from repro.net.asn import Organization
from repro.topology.internet import InternetTopology


class AS2Org:
    """ASN → Organization mapping with org-level grouping helpers."""

    def __init__(self) -> None:
        self._by_asn: Dict[int, Organization] = {}
        self._orgs: Dict[str, Organization] = {}

    @classmethod
    def from_topology(cls, internet: InternetTopology) -> "AS2Org":
        dataset = cls()
        for asys in internet.ases():
            dataset.add(asys.number, asys.org)
        return dataset

    def add(self, asn: int, org: Organization) -> None:
        if asn <= 0:
            raise ValueError(f"invalid ASN: {asn}")
        self._by_asn[asn] = org
        self._orgs.setdefault(org.org_id, org)

    def org_of(self, asn: int) -> Optional[Organization]:
        return self._by_asn.get(asn)

    def name_of(self, asn: int) -> str:
        """Company name for an ASN, with a stable fallback for unknowns."""
        org = self._by_asn.get(asn)
        return org.name if org else f"AS{asn}"

    def siblings(self, asn: int) -> List[int]:
        """All ASNs operated by the same organization."""
        org = self._by_asn.get(asn)
        if org is None:
            return [asn]
        return sorted(n for n, o in self._by_asn.items() if o.org_id == org.org_id)

    def organizations(self) -> List[Organization]:
        return list(self._orgs.values())

    def items(self) -> Iterator[Tuple[int, Organization]]:
        return iter(sorted(self._by_asn.items()))

    def __len__(self) -> int:
        return len(self._by_asn)

    def __contains__(self, asn: int) -> bool:
        return asn in self._by_asn

    # -- serialization (JSONL: one mapping per line) -------------------------

    def dump(self, fp: TextIO) -> None:
        for asn, org in self.items():
            fp.write(json.dumps({
                "asn": asn, "org_id": org.org_id,
                "name": org.name, "country": org.country,
            }) + "\n")

    @classmethod
    def load(cls, fp: TextIO) -> "AS2Org":
        dataset = cls()
        orgs: Dict[str, Organization] = {}
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                org_id = row["org_id"]
                org = orgs.get(org_id)
                if org is None:
                    org = Organization(org_id=org_id, name=row["name"],
                                       country=row.get("country", "ZZ"))
                    orgs[org_id] = org
                dataset.add(int(row["asn"]), org)
            except (KeyError, ValueError, TypeError) as exc:
                raise ValueError(f"line {lineno}: malformed AS2Org row") from exc
        return dataset
