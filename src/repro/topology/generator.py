"""Seeded synthetic topology generation.

Creates the organizations and ASes the study world runs on. The paper's
results name real companies (Tables 4-6, the case studies); to keep the
benchmarks directly comparable we seed *analog* organizations with the
same names, ASNs and countries, then fill the rest of the world with
generated eyeball/hosting/enterprise networks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.asn import AS
from repro.topology.internet import InternetTopology

# (name, ASN, country) — the named players from the paper. ASNs match the
# real-world numbers quoted in Table 4 where the paper lists them.
ANALOG_ORGS: Tuple[Tuple[str, int, str], ...] = (
    ("Google", 15169, "US"),
    ("Unified Layer", 46606, "US"),
    ("Cloudflare", 13335, "US"),
    ("OVH", 16276, "FR"),
    ("Hetzner", 24940, "DE"),
    ("Amazon", 16509, "US"),
    ("Microsoft", 8068, "US"),
    ("Fastly", 54113, "US"),
    ("Birbir", 199608, "TR"),
    ("Pendc", 48678, "TR"),
    ("TransIP", 20857, "NL"),
    ("GoDaddy", 26496, "US"),
    ("Linode", 63949, "US"),
    ("NForce B.V.", 43350, "NL"),
    ("Co-Co NL", 204010, "NL"),
    ("NMU Group", 204018, "SE"),
    ("My Lock De", 204020, "DE"),
    ("DigiHosting NL", 204022, "NL"),
    ("Apple Russia", 714, "RU"),
    ("ITandTEL", 29081, "AT"),
    ("Contabo", 51167, "DE"),
    ("nic.ru", 15756, "RU"),
    ("Euskaltel", 12338, "ES"),
    ("Beeline RU", 3216, "RU"),
    ("Rostelecom", 12389, "RU"),
    ("Verisign", 26415, "US"),
    ("Bing", 8075, "US"),
)

_COUNTRIES = ("US", "DE", "NL", "FR", "GB", "RU", "BR", "JP", "IN", "CN",
              "IT", "ES", "SE", "PL", "CA", "AU", "TR", "ZA", "MX", "KR")

_ORG_KINDS = ("hosting", "isp", "enterprise", "cloud", "cdn")


@dataclass(frozen=True)
class TopologyConfig:
    """Knobs for the synthetic topology size."""

    n_filler_orgs: int = 400
    prefixes_per_filler: int = 2
    filler_prefix_length: int = 20
    multi_as_org_fraction: float = 0.05
    include_analogs: bool = True

    def __post_init__(self) -> None:
        if self.n_filler_orgs < 0:
            raise ValueError("n_filler_orgs must be non-negative")
        if not 0 <= self.multi_as_org_fraction <= 1:
            raise ValueError("multi_as_org_fraction must be within [0, 1]")


@dataclass
class GeneratedTopology:
    """The generator's output bundle."""

    internet: InternetTopology
    analog_as: Dict[str, AS] = field(default_factory=dict)
    filler_as: List[AS] = field(default_factory=list)

    def as_of(self, org_name: str) -> AS:
        """The (first) AS of a named analog organization."""
        return self.analog_as[org_name]


def generate_topology(rng: random.Random,
                      config: Optional[TopologyConfig] = None) -> GeneratedTopology:
    """Build the synthetic Internet.

    Analog orgs get their real ASNs plus a couple of address blocks;
    filler orgs get sequential ASNs from 60000 upward so they can never
    collide with the analog set.
    """
    config = config or TopologyConfig()
    internet = InternetTopology()
    out = GeneratedTopology(internet=internet)

    if config.include_analogs:
        for name, asn, country in ANALOG_ORGS:
            org = internet.add_org(name, country=country)
            asys = internet.add_as(org, number=asn, country=country)
            # Named players are substantial networks: a /16 plus a /20.
            internet.allocate(asys, 16)
            internet.allocate(asys, 20)
            out.analog_as[name] = asys

    next_asn = 60000
    for i in range(config.n_filler_orgs):
        kind = _ORG_KINDS[i % len(_ORG_KINDS)]
        country = rng.choice(_COUNTRIES)
        org = internet.add_org(f"{kind.title()}-{i:04d}", country=country)
        n_as = 2 if rng.random() < config.multi_as_org_fraction else 1
        for _ in range(n_as):
            asys = internet.add_as(org, number=next_asn, country=country)
            next_asn += 1
            for _ in range(config.prefixes_per_filler):
                internet.allocate(asys, config.filler_prefix_length)
            out.filler_as.append(asys)
    return out
