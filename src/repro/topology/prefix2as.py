"""Prefix-to-AS dataset (CAIDA RouteViews prefix2as analog).

A point-in-time snapshot of announced routes supporting the IP→origin-AS
attribution used throughout the analysis (Tables 3-6). Built either from
the live topology or loaded from the serialized text format (which
mirrors CAIDA's ``prefix<TAB>length<TAB>asn`` files).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, TextIO, Tuple

from repro.net.ip import IPv4Prefix, ip_to_str, parse_ip
from repro.net.prefix_trie import PrefixTrie
from repro.topology.internet import InternetTopology


class Prefix2AS:
    """Longest-prefix-match IP→ASN lookup table."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[int] = PrefixTrie()

    @classmethod
    def from_topology(cls, internet: InternetTopology) -> "Prefix2AS":
        dataset = cls()
        for prefix, asn in internet.routes():
            dataset.add(prefix, asn)
        return dataset

    @classmethod
    def from_entries(cls, entries: Iterable[Tuple[IPv4Prefix, int]]) -> "Prefix2AS":
        dataset = cls()
        for prefix, asn in entries:
            dataset.add(prefix, asn)
        return dataset

    def add(self, prefix: IPv4Prefix, asn: int) -> None:
        if asn <= 0:
            raise ValueError(f"invalid ASN: {asn}")
        self._trie.insert((prefix.network, prefix.length), asn)

    def lookup(self, ip) -> Optional[int]:
        """Origin ASN for an address, or None if unrouted."""
        return self._trie.lookup(ip)

    def lookup_prefix(self, ip) -> Optional[Tuple[IPv4Prefix, int]]:
        """(matched prefix, ASN) for an address, or None."""
        match = self._trie.longest_match(ip)
        if match is None:
            return None
        (network, length), asn = match
        return IPv4Prefix(network, length), asn

    def __len__(self) -> int:
        return len(self._trie)

    def entries(self) -> Iterator[Tuple[IPv4Prefix, int]]:
        for (network, length), asn in self._trie.items():
            yield IPv4Prefix(network, length), asn

    # -- serialization (CAIDA-like text format) -----------------------------

    def dump(self, fp: TextIO) -> None:
        for prefix, asn in self.entries():
            fp.write(f"{ip_to_str(prefix.network)}\t{prefix.length}\t{asn}\n")

    @classmethod
    def load(cls, fp: TextIO) -> "Prefix2AS":
        dataset = cls()
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"line {lineno}: expected 3 tab-separated fields")
            network, length, asn = parts
            # CAIDA encodes MOAS origins as comma/underscore sets; we take
            # the first origin, as the paper's single-attribution does.
            first_asn = asn.replace("_", ",").split(",")[0]
            dataset.add(IPv4Prefix(parse_ip(network), int(length)), int(first_asn))
        return dataset
