"""Command-line interface: ``python -m repro <command>``.

Subcommands:

``report``
    Build a world, run both measurement systems, print the full study
    report (the §5/§6 analyses).
``export``
    Run a study and write its derived datasets (RSDoS feed records,
    prefix2AS, AS2Org, anycast census, open-resolver scan) to a
    directory in the library's text formats.
``case``
    Replay one of the scripted case studies (``transip`` or ``russia``)
    and print its timeline tables.
``visibility``
    Print the §4.3 limitations quantified against ground truth.
``cache``
    Inspect and maintain an artifact cache directory: ``ls`` the
    manifest, ``gc`` down to a byte cap, or ``clear`` everything.
``packs``
    List the registered scenario packs (:mod:`repro.attacks.packs`):
    ``packs ls`` prints each pack's name and description. Study
    commands select one with ``--scenario-pack``; unknown names are
    rejected with the list of available packs.
``graph``
    Print the declared phase DAG (:mod:`repro.engine`) — every
    pipeline phase and lazy analysis with its inputs — as text or,
    with ``--dot``, in Graphviz DOT form; ``--from-journal PATH``
    annotates the DOT nodes with last-run phase durations taken from a
    run journal.
``obs``
    The observability toolbox (:mod:`repro.obs.cli`): ``summary`` and
    ``tail`` digest a run journal or telemetry snapshot, ``diff``
    compares two snapshots, ``bench-diff`` compares fresh
    ``BENCH_*.json`` benchmark results against the committed
    baselines and flags regressions.
``serve``
    Build (or incrementally refresh) a day-sharded measurement store
    in an artifact cache and serve study queries over HTTP/JSON
    (:mod:`repro.serve`): impact of an attack on a domain, per-NSSet
    time slices, top-N tables, event lookups. ``--build-only`` stops
    after the incremental build; ``--plan`` prints the per-day
    compute/reuse plan as JSON without running anything;
    ``--edit-day``/``--edit-scale`` rescale one day's attacks to
    demonstrate single-day invalidation.
``reactive``
    Drive the production-rate reactive platform
    (:mod:`repro.reactive`) over a synthetic trigger storm: admission
    control, backpressure, and — with ``--chaos`` — worker kills
    recovered exactly-once from checkpoints. The stdout summary is
    byte-identical with chaos on or off (that is the point); kill and
    restore counts go to stderr.

Every subcommand accepts ``--trace`` (print the phase-timing tree to
stderr afterwards), ``--metrics-out PATH`` (write the run's
``repro.obs/v2`` telemetry snapshot as JSON), ``--journal PATH``
(append the structured run journal, JSONL) and ``--profile``
(per-phase CPU/RSS/allocation gauges). All of them only observe:
stdout is byte-identical with or without them.

Every study-running subcommand also accepts ``--cache-dir PATH``: phase
outputs (telescope feed, crawl store, join, events) are cached there by
config fingerprint, and later runs with the same config skip those
phases — with bit-identical stdout (see ``docs/caching.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import ChaosConfig, WorldConfig, run_study
from repro.attacks.packs import UnknownPackError
from repro.core.visibility import analyze_visibility
from repro.datasets.io import dataset_bundle_dump
from repro.obs import NULL_TELEMETRY, RunTelemetry
from repro.util.tables import Table, format_pct


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--domains", type=int, default=8000,
                        help="registered domains (default 8000)")
    parser.add_argument("--attacks-per-month", type=int, default=1200)
    parser.add_argument("--start", default="2020-11-01")
    parser.add_argument("--end", default="2022-04-01",
                        help="end date, exclusive")
    parser.add_argument("--scenario-pack", default="volumetric",
                        metavar="NAME",
                        help="run under scenario pack NAME (see `repro "
                             "packs ls`; default volumetric = the plain "
                             "background schedule)")
    parser.add_argument("--chaos", choices=("light", "moderate", "heavy"),
                        default=None, metavar="LEVEL",
                        help="inject seeded faults at LEVEL "
                             "(light/moderate/heavy) and run the "
                             "hardened pipeline")
    parser.add_argument("--chaos-seed", type=int, default=0,
                        help="fault-schedule seed (default 0; independent "
                             "of the world --seed)")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="crawl with N processes forked from the "
                             "pre-built world (default 1 = serial); the "
                             "results are bit-for-bit identical for any "
                             "N, chaos runs force serial")
    parser.add_argument("--columnar", action="store_true",
                        help="run the hottest phases (telescope "
                             "inference, crawl ingest, event extraction) "
                             "over repro.columnar batch columns; output "
                             "is bit-identical to the object path, chaos "
                             "runs force the object path")
    _add_cache_args(parser)


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-dir", metavar="PATH", default=None,
                        help="cache phase outputs under PATH (created if "
                             "missing) and skip phases already cached for "
                             "this config; outputs are bit-identical warm "
                             "or cold, chaos runs bypass the cache")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="record phase spans and print the "
                             "phase-timing tree (stderr) after the "
                             "command; outputs are unchanged")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the run's telemetry snapshot "
                             "(repro.obs/v2 JSON: metrics + spans) to "
                             "PATH")
    parser.add_argument("--journal", metavar="PATH", default=None,
                        help="write the structured run journal (JSONL: "
                             "phases, cache traffic, faults, worker "
                             "lifecycle) to PATH; stdout is unchanged")
    parser.add_argument("--profile", action="store_true",
                        help="record per-phase CPU, peak-RSS and "
                             "allocation gauges (repro.profile.*); "
                             "outputs are unchanged")


def _telemetry_from(args: argparse.Namespace) -> RunTelemetry:
    """An enabled bundle when any telemetry flag is set, else the no-op
    one (whose clock is still real, so wall-time prints keep working).

    ``--journal`` opens the journal here — attached to the bundle
    rather than handed to ``run_study`` to own — so commands that keep
    observing after the pipeline returns (lazy report analyses, the
    reactive drain) land in the same file; :func:`_emit_telemetry`
    closes it.
    """
    if (getattr(args, "trace", False) or getattr(args, "metrics_out", None)
            or getattr(args, "journal", None)
            or getattr(args, "profile", False)):
        telemetry = RunTelemetry.create()
        path = getattr(args, "journal", None)
        if path:
            from repro.obs import RunJournal

            telemetry.attach_journal(RunJournal(
                path, run_id=telemetry.run_id, clock=telemetry.clock,
                started_at_utc=telemetry.started_at_utc))
        return telemetry
    return NULL_TELEMETRY


def _emit_telemetry(args: argparse.Namespace,
                    telemetry: RunTelemetry) -> None:
    """Print the trace tree / write the snapshot, as flags request.

    Everything goes to stderr or to the ``--metrics-out`` file: stdout
    stays byte-identical to a run without telemetry flags.
    """
    if getattr(args, "trace", False):
        tree = telemetry.render_trace()
        if tree:
            print(f"phase timings:\n{tree}", file=sys.stderr)
    path = getattr(args, "metrics_out", None)
    if path:
        telemetry.write_json(path)
        print(f"telemetry snapshot written to {path}", file=sys.stderr)
    journal = telemetry.journal
    if journal.enabled:
        journal.close()
        print(f"run journal written to {journal.path}", file=sys.stderr)


def _config_from(args: argparse.Namespace) -> WorldConfig:
    return WorldConfig(
        seed=args.seed,
        start=args.start,
        end_exclusive=args.end,
        n_domains=args.domains,
        attacks_per_month=args.attacks_per_month,
        scenario_pack=getattr(args, "scenario_pack", "volumetric"),
    )


def _run(args: argparse.Namespace):
    config = _config_from(args)
    chaos = None
    if getattr(args, "chaos", None):
        chaos = ChaosConfig.preset(args.chaos, seed=args.chaos_seed)
        print(f"chaos enabled ({args.chaos}, seed {args.chaos_seed}):\n"
              f"{chaos.describe()}", file=sys.stderr)
    workers = getattr(args, "workers", 1)
    print(f"running study {config.start} .. {config.end_exclusive} "
          f"({config.n_domains} domains, "
          f"{config.attacks_per_month} attacks/month"
          + (f", {workers} crawl workers" if workers != 1 else "")
          + ")...", file=sys.stderr)
    # Wall time comes from the telemetry clock (monotonic even when the
    # bundle itself is the no-op one), so the ad-hoc "done in" line and
    # the --trace span tree measure on the same axis.
    telemetry = _telemetry_from(args)
    clock = telemetry.clock
    t0 = clock.now()
    study = run_study(config, chaos=chaos, n_workers=workers,
                      telemetry=telemetry,
                      cache=getattr(args, "cache_dir", None),
                      columnar=getattr(args, "columnar", False),
                      journal=(telemetry.journal
                               if telemetry.journal.enabled else None),
                      profile=getattr(args, "profile", False))
    print(f"done in {clock.now() - t0:.1f}s", file=sys.stderr)
    if study.chaos is not None:
        print(study.chaos.summary(), file=sys.stderr)
        print(f"join rejected {len(study.join.rejected)} records; "
              f"{len(study.degraded_events)}/{len(study.events)} events "
              f"degraded; store rejected {study.store.n_rejected} rows",
              file=sys.stderr)
    return study


def cmd_report(args: argparse.Namespace) -> int:
    study = _run(args)
    print(study.report())
    _emit_telemetry(args, study.telemetry)
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    study = _run(args)
    with study.telemetry.tracer.span("export"):
        dataset_bundle_dump(
            args.output,
            feed=study.feed,
            prefix2as=study.world.prefix2as,
            as2org=study.world.as2org,
            census=study.world.census,
            openresolvers=study.open_resolvers,
        )
    print(f"datasets written to {args.output}/", file=sys.stderr)
    _emit_telemetry(args, study.telemetry)
    return 0


def cmd_case(args: argparse.Namespace) -> int:
    script = {"transip": "transip_case_study",
              "russia": "russian_infrastructure"}[args.name]
    # The case scripts live in examples/; execute them in-process.
    import importlib.util
    import os

    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))), "examples",
        f"{script}.py")
    if not os.path.exists(path):
        print(f"case script not found: {path}", file=sys.stderr)
        return 1
    telemetry = _telemetry_from(args)
    spec = importlib.util.spec_from_file_location(script, path)
    module = importlib.util.module_from_spec(spec)
    with telemetry.tracer.span(f"case.{args.name}"):
        with telemetry.tracer.span("load"):
            spec.loader.exec_module(module)
        with telemetry.tracer.span("run"):
            status = module.main()
    _emit_telemetry(args, telemetry)
    return status


def cmd_visibility(args: argparse.Namespace) -> int:
    study = _run(args)
    with study.telemetry.tracer.span("visibility"):
        report = analyze_visibility(study.world.attacks, study.feed)
    table = Table(["attack class", "detected", "total", "rate"],
                  title="Telescope visibility (§4.3 oracle)")
    for name, (detected, total) in sorted(report.by_class.items()):
        table.add_row([name, detected, total,
                       format_pct(detected / total if total else 0.0)])
    print(table.render())
    if report.multivector_underestimate is not None:
        print(f"\nmulti-vector rate seen: "
              f"{report.multivector_underestimate:.0%} of truth")
    _emit_telemetry(args, study.telemetry)
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.artifacts.store import ArtifactStore

    if not args.cache_dir:
        print("cache commands require --cache-dir", file=sys.stderr)
        return 2
    store = ArtifactStore(args.cache_dir)
    if args.action == "ls":
        # Stable listing order (by key) so two `ls` runs over the same
        # cache are byte-identical regardless of manifest insert order.
        entries = sorted(store.entries(), key=lambda e: e.key)
        if getattr(args, "json", False):
            import json

            print(json.dumps({
                "dir": args.cache_dir,
                "n_entries": len(entries),
                "total_bytes": store.total_bytes,
                "entries": [
                    {"key": entry.key, "phase": entry.phase or None,
                     "size": entry.size, "created": entry.created,
                     "last_used": entry.last_used}
                    for entry in entries
                ],
            }, sort_keys=True, indent=2))
            return 0
        table = Table(["key", "phase", "size (B)", "size", "created",
                       "last used"],
                      title=f"Artifact cache {args.cache_dir} "
                            f"({len(entries)} entries, "
                            f"{store.total_bytes} bytes)")
        for entry in entries:
            table.add_row([entry.key[:16], entry.phase or "-", entry.size,
                           _format_size(entry.size),
                           _format_ts(entry.created),
                           _format_ts(entry.last_used)])
        print(table.render())
        return 0
    if args.action == "gc":
        if args.max_bytes is None:
            print("cache gc requires --max-bytes", file=sys.stderr)
            return 2
        evicted = store.gc(args.max_bytes)
        freed = sum(e.size for e in evicted)
        print(f"evicted {len(evicted)} entries ({freed} bytes); "
              f"{len(store)} remain ({store.total_bytes} bytes)")
        return 0
    if args.action == "clear":
        dropped = store.clear()
        print(f"cleared {dropped} entries from {args.cache_dir}")
        return 0
    raise AssertionError(f"unknown cache action {args.action!r}")


def cmd_packs(args: argparse.Namespace) -> int:
    from repro.attacks.packs import available_packs, get_pack

    # Only `ls` today; argparse enforces the choice.
    table = Table(["pack", "description"],
                  title="Registered scenario packs")
    for name in available_packs():
        pack = get_pack(name)
        table.add_row([name + (" (default)" if name == "volumetric"
                               else ""),
                       pack.description])
    table.caption = ("select one with --scenario-pack NAME on report/"
                     "export/visibility runs")
    print(table.render())
    return 0


def cmd_graph(args: argparse.Namespace) -> int:
    from repro.core.pipeline import study_graph

    graph = study_graph(analyses=not args.no_analyses)
    durations = None
    if args.from_journal:
        from repro.obs.journal import phase_durations

        durations = phase_durations(args.from_journal)
    print(graph.to_dot(durations=durations) if args.dot
          else graph.render_text())
    return 0


def cmd_reactive(args: argparse.Namespace) -> int:
    from repro import build_world
    from repro.chaos.injector import FaultInjector
    from repro.reactive import (
        ReactiveService,
        fast_transport,
        synthetic_triggers,
    )
    from repro.util.timeutil import HOUR

    config = WorldConfig(
        seed=args.seed,
        start=args.start,
        end_exclusive=args.end,
        n_domains=args.domains,
        n_selfhosted_providers=max(10, args.domains // 30),
        n_filler_providers=max(5, args.domains // 75),
        attacks_per_month=120,
    )
    telemetry = _telemetry_from(args)
    injector = None
    if args.chaos:
        chaos = ChaosConfig.reactive_preset(args.chaos, seed=args.chaos_seed)
        injector = FaultInjector(chaos, telemetry=telemetry)
        print(f"chaos enabled ({args.chaos}, seed {args.chaos_seed}):\n"
              f"{chaos.describe()}", file=sys.stderr)
    clock = telemetry.clock
    t0 = clock.now()
    print(f"building world ({config.n_domains} domains)...", file=sys.stderr)
    world = build_world(config)
    triggers = synthetic_triggers(world, args.triggers,
                                  seed=args.trigger_seed,
                                  invalid_share=args.invalid_share)
    service = ReactiveService(
        world,
        probes_per_window=args.probes_per_window,
        post_attack_s=int(args.post_attack_hours * HOUR),
        probe_budget=args.probe_budget,
        feed_capacity=args.capacity,
        backpressure=args.backpressure,
        transport=fast_transport(seed=config.seed),
        telemetry=telemetry)
    print(f"running {len(triggers)} triggers...", file=sys.stderr)
    report = service.run(triggers, injector=injector)
    print(f"done in {clock.now() - t0:.1f}s", file=sys.stderr)
    # stdout carries only the deterministic summary: a --chaos run must
    # byte-match a clean one (exactly-once recovery); the chaos side
    # goes to stderr.
    print(report.summary())
    print(report.chaos_summary(), file=sys.stderr)
    if injector is not None and injector.counts:
        faults = ", ".join(
            f"{surface}.{kind}={n}"
            for (surface, kind), n in sorted(injector.counts.items()))
        print(f"faults injected: {faults}", file=sys.stderr)
    _emit_telemetry(args, telemetry)
    return 0


def _format_ts(ts: float) -> str:
    import datetime

    if not ts:
        return "-"
    return datetime.datetime.fromtimestamp(ts).strftime("%Y-%m-%d %H:%M:%S")


def _format_size(n: int) -> str:
    """``n`` bytes, human-readable (1536 -> ``1.5 KiB``)."""
    if n < 1024:
        return f"{n} B"
    value = float(n)
    for unit in ("KiB", "MiB", "GiB"):
        value /= 1024.0
        if value < 1024:
            return f"{value:.1f} {unit}"
    return f"{value / 1024.0:.1f} TiB"


def cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serve import (
        QueryService,
        ShardedStudyStore,
        run_server,
        scale_attacks_on_day,
    )
    from repro.util.timeutil import parse_ts

    if not args.cache_dir:
        print("serve requires --cache-dir", file=sys.stderr)
        return 2
    config = _config_from(args)
    telemetry = _telemetry_from(args)
    if telemetry is NULL_TELEMETRY:
        # /metrics is the server's own observability surface: it must be
        # live even when no --metrics-out/--trace flag was passed.
        telemetry = RunTelemetry.create()
    edit = None
    if args.edit_day:
        day = parse_ts(args.edit_day)
        factor = args.edit_scale

        def edit(attacks):
            return scale_attacks_on_day(attacks, day, factor)

    store = ShardedStudyStore(config, args.cache_dir, telemetry=telemetry,
                              n_workers=args.workers, edit=edit)
    if args.plan:
        print(json.dumps([plan.to_doc() for plan in store.plan()],
                         sort_keys=True, indent=2))
        _emit_telemetry(args, telemetry)
        return 0
    clock = telemetry.clock
    t0 = clock.now()
    print(f"building shard store in {args.cache_dir} "
          f"({config.start} .. {config.end_exclusive}, "
          f"{config.n_domains} domains)...", file=sys.stderr)
    report = store.build()
    print(f"built in {clock.now() - t0:.1f}s", file=sys.stderr)
    print(report.summary())
    if args.build_only:
        _emit_telemetry(args, telemetry)
        return 0
    service = QueryService(store, telemetry=telemetry)
    run_server(service, host=args.host, port=args.port)
    _emit_telemetry(args, telemetry)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Investigating the impact of DDoS "
                    "attacks on DNS infrastructure' (IMC 2022)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="run a study, print the report")
    _add_world_args(p_report)
    _add_obs_args(p_report)
    p_report.set_defaults(func=cmd_report)

    p_export = sub.add_parser("export", help="export derived datasets")
    _add_world_args(p_export)
    _add_obs_args(p_export)
    p_export.add_argument("--output", default="./repro-datasets",
                          help="output directory")
    p_export.set_defaults(func=cmd_export)

    p_case = sub.add_parser("case", help="replay a scripted case study")
    p_case.add_argument("name", choices=("transip", "russia"))
    _add_obs_args(p_case)
    p_case.set_defaults(func=cmd_case)

    p_vis = sub.add_parser("visibility",
                           help="quantify telescope blind spots (§4.3)")
    _add_world_args(p_vis)
    _add_obs_args(p_vis)
    p_vis.set_defaults(func=cmd_visibility)

    p_cache = sub.add_parser("cache",
                             help="inspect/maintain an artifact cache")
    p_cache.add_argument("action", choices=("ls", "gc", "clear"))
    _add_cache_args(p_cache)
    p_cache.add_argument("--max-bytes", type=int, default=None, metavar="N",
                         help="gc: evict least-recently-used entries until "
                              "the cache fits N bytes")
    p_cache.add_argument("--json", action="store_true",
                         help="ls: print the listing as JSON (full keys, "
                              "sorted, machine-readable)")
    p_cache.set_defaults(func=cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="serve study queries from a sharded measurement store")
    p_serve.add_argument("--seed", type=int, default=42)
    p_serve.add_argument("--domains", type=int, default=2000,
                         help="registered domains (default 2000)")
    p_serve.add_argument("--attacks-per-month", type=int, default=400)
    p_serve.add_argument("--start", default="2021-03-01")
    p_serve.add_argument("--end", default="2021-04-01",
                         help="end date, exclusive")
    p_serve.add_argument("--cache-dir", metavar="PATH", required=True,
                         help="the shard store: day-partitioned phase "
                              "outputs cached under PATH by per-day "
                              "fingerprint keys; rebuilds recompute only "
                              "days whose inputs changed")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080,
                         help="listen port (0 picks a free one)")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="crawl each day's partition with N processes "
                              "(default 1 = serial)")
    p_serve.add_argument("--build-only", action="store_true",
                         help="build/refresh the shard store and exit "
                              "without starting the HTTP server")
    p_serve.add_argument("--plan", action="store_true",
                         help="print the per-day compute/reuse plan as "
                              "JSON and exit without running anything")
    p_serve.add_argument("--edit-day", metavar="DATE", default=None,
                         help="rescale the attacks starting on DATE "
                              "(YYYY-MM-DD) before building, to exercise "
                              "single-day invalidation")
    p_serve.add_argument("--edit-scale", type=float, default=2.0,
                         metavar="FACTOR",
                         help="pps factor applied by --edit-day "
                              "(default 2.0)")
    _add_obs_args(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_reactive = sub.add_parser(
        "reactive",
        help="drive the production-rate reactive platform")
    p_reactive.add_argument("--seed", type=int, default=42)
    p_reactive.add_argument("--domains", type=int, default=600,
                            help="registered domains (default 600)")
    p_reactive.add_argument("--start", default="2021-03-01")
    p_reactive.add_argument("--end", default="2021-04-01",
                            help="end date, exclusive")
    p_reactive.add_argument("--triggers", type=int, default=200, metavar="N",
                            help="synthetic attack triggers to replay "
                                 "(default 200)")
    p_reactive.add_argument("--trigger-seed", type=int, default=0,
                            help="trigger-storm seed (independent of the "
                                 "world --seed)")
    p_reactive.add_argument("--invalid-share", type=float, default=0.02,
                            help="share of triggers damaged to exercise "
                                 "the dead-letter path (default 0.02)")
    p_reactive.add_argument("--probes-per-window", type=int, default=10,
                            metavar="N",
                            help="domains probed per campaign per 5-minute "
                                 "window (paper: 50; default 10)")
    p_reactive.add_argument("--probe-budget", type=int, default=100,
                            metavar="N",
                            help="global domain-probes per window across "
                                 "all campaigns; overflow waits, throttles, "
                                 "or sheds — loudly (default 100)")
    p_reactive.add_argument("--post-attack-hours", type=float, default=2.0,
                            help="probing tail after each attack ends "
                                 "(paper: 24h; default 2 for quick runs)")
    p_reactive.add_argument("--capacity", type=int, default=None, metavar="N",
                            help="bound the trigger topic to N records "
                                 "(default unbounded)")
    p_reactive.add_argument("--backpressure",
                            choices=("block", "shed_oldest", "reject"),
                            default="block",
                            help="bounded-topic overflow policy "
                                 "(default block)")
    p_reactive.add_argument("--chaos",
                            choices=("light", "moderate", "heavy"),
                            default=None, metavar="LEVEL",
                            help="kill the worker with per-tick probability "
                                 "by LEVEL; recovery restores from the last "
                                 "checkpoint and stdout stays byte-identical")
    p_reactive.add_argument("--chaos-seed", type=int, default=0,
                            help="kill-schedule seed (default 0)")
    _add_obs_args(p_reactive)
    p_reactive.set_defaults(func=cmd_reactive)

    p_packs = sub.add_parser("packs",
                             help="list the registered scenario packs")
    p_packs.add_argument("action", choices=("ls",))
    p_packs.set_defaults(func=cmd_packs)

    p_graph = sub.add_parser("graph",
                             help="print the declared phase DAG")
    p_graph.add_argument("--dot", action="store_true",
                         help="emit Graphviz DOT instead of text")
    p_graph.add_argument("--no-analyses", action="store_true",
                         help="pipeline phases only, without the lazy "
                              "analysis.* nodes")
    p_graph.add_argument("--from-journal", metavar="PATH", default=None,
                         dest="from_journal",
                         help="annotate --dot nodes with last-run phase "
                              "durations read from a run journal")
    p_graph.set_defaults(func=cmd_graph)

    from repro.obs.cli import add_obs_parser

    add_obs_parser(sub)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnknownPackError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
