"""Concrete fault artifacts: what a damaged record looks like.

Corruption here is *realistic* damage — the kinds of malformed rows a
real attack-time telemetry pipeline emits (Nawrocki et al. stress that
attack-window data is inherently lossy and corrupt): out-of-range
victim addresses, swapped window bounds, NaN rates, negative counters,
and records cut mid-serialization. Downstream stages must route these
to a dead-letter topic or reject them with a reason — never crash, and
never let a NaN reach an analysis.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.telescope.rsdos import InferredAttack

__all__ = ["TransientFault", "TruncatedRecord", "corrupt_attack",
           "truncate_attack"]


class TransientFault(RuntimeError):
    """An injected, retryable failure (the chaos analog of a worker
    hiccup: a lost RPC, a brief broker disconnect)."""


@dataclass(frozen=True)
class TruncatedRecord:
    """A record cut mid-serialization: only a byte prefix survived.

    Carries the prefix so dead-letter forensics can show what arrived;
    exposes none of the original record's attributes, which is exactly
    why validation must catch it by type, not by field access.
    """

    payload: str
    n_bytes: int

    def __repr__(self) -> str:
        return f"TruncatedRecord({self.payload!r}..., {self.n_bytes}B)"


_NAN = float("nan")


def corrupt_attack(attack: InferredAttack, rng: random.Random) -> InferredAttack:
    """Field-level damage to one feed record (style chosen by ``rng``)."""
    style = rng.randrange(5)
    if style == 0:      # victim address outside the IPv4 space
        return dataclasses.replace(attack, victim_ip=2 ** 32 + rng.randrange(1000))
    if style == 1:      # window bounds swapped (end precedes start)
        return dataclasses.replace(attack, start=attack.end, end=attack.start)
    if style == 2:      # rate column became NaN
        return dataclasses.replace(attack, max_ppm=_NAN)
    if style == 3:      # negative packet counter (integer underflow)
        return dataclasses.replace(attack, n_packets=-attack.n_packets - 1)
    # stringly-typed victim column (schema drift)
    return dataclasses.replace(attack, victim_ip=f"{attack.victim_ip:#x}")  # type: ignore[arg-type]


def truncate_attack(attack: InferredAttack, rng: random.Random) -> TruncatedRecord:
    """Replace a feed record with its serialized prefix."""
    serialized = repr(attack)
    cut = rng.randrange(1, max(2, len(serialized) // 2))
    return TruncatedRecord(payload=serialized[:cut], n_bytes=cut)
