"""The seeded fault injector: wraps pipeline surfaces, logs every fault.

One :class:`FaultInjector` drives a whole faulted run. It owns its own
:class:`repro.util.rng.RngStreams` family (derived from the chaos seed,
independent of the world's streams), so:

- the same ``(world seed, chaos seed)`` pair always injects the same
  fault schedule — chaos runs are exactly reproducible; and
- a null policy injects nothing and perturbs nothing: wrappers with all
  probabilities at zero either return the wrapped object unchanged or
  draw no randomness, keeping disabled-chaos runs byte-identical to
  unwrapped runs.

Every fault fired is appended to :attr:`FaultInjector.events`, so a
chaos test can assert not just "the pipeline survived" but "it survived
*these specific* injected faults".
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.chaos.faults import (
    TransientFault,
    TruncatedRecord,
    corrupt_attack,
    truncate_attack,
)
from repro.chaos.policy import ChaosConfig, FaultPolicy
from repro.dns.server import ServerReply
from repro.obs import NULL_TELEMETRY, RunTelemetry
from repro.streaming.processors import (
    CircuitBreaker,
    FailFastProcessor,
    FlaggedRecord,
    Processor,
    Record,
    RetryPolicy,
    StreamJob,
)
from repro.streaming.topic import Broker
from repro.telescope.rsdos import InferredAttack, attack_problem
from repro.util.rng import RngStreams, derive_seed

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: where, what kind, and forensic detail."""

    surface: str
    kind: str
    detail: str = ""


class _ChaoticProcessor(Processor):
    """Wraps a processor with transient-exception injection."""

    def __init__(self, inner: Processor, injector: "FaultInjector",
                 policy: FaultPolicy, rng: random.Random):
        self.inner = inner
        self._injector = injector
        self._policy = policy
        self._rng = rng

    def process(self, record: Record) -> Iterable[Any]:
        if self._injector._fire("processor", "exception",
                                self._policy.exception_p, self._rng,
                                self._policy, f"offset={record.offset}"):
            raise TransientFault(f"injected worker fault at offset {record.offset}")
        return self.inner.process(record)


class FaultInjector:
    """Applies a :class:`ChaosConfig` to the pipeline's surfaces."""

    #: Consulted by the engine's worker-count policy: the injector is
    #: stateful (burst continuations, the fault log, its RNG streams
    #: all live in this process), so a faulted crawl cannot be sharded
    #: across forked workers without splitting that state. Every chaos
    #: run therefore forces the crawl serial, with a warning.
    forces_serial_crawl = True

    def __init__(self, config: ChaosConfig,
                 telemetry: Optional[RunTelemetry] = None):
        self.config = config
        self.rngs = RngStreams(derive_seed(config.seed, "chaos"))
        #: the run's telemetry: every fault fired is also counted under
        #: ``repro.chaos.faults{surface,kind}``, and the hardened feed
        #: job's broker/metrics hang off the same registry. Telemetry
        #: never feeds back into the fault schedule (no RNG draws).
        self.telemetry = telemetry or NULL_TELEMETRY
        self.events: List[FaultEvent] = []
        #: per-(surface, kind) pending burst continuations.
        self._burst_left: Dict[Tuple[str, str], int] = {}
        #: dead letters captured by :meth:`harden_feed` (value objects).
        self.dead_letters: List[Any] = []
        self.feed_job: Optional[StreamJob] = None
        self.feed_broker: Optional[Broker] = None

    # -- fault firing ---------------------------------------------------------

    def _fire(self, surface: str, kind: str, p: float, rng: random.Random,
              policy: FaultPolicy, detail: str = "") -> bool:
        """Burst-aware Bernoulli draw; logs the fault when it fires.

        Draws from ``rng`` only when ``p > 0`` and no burst is pending,
        so zero-probability kinds consume no randomness at all.
        """
        key = (surface, kind)
        left = self._burst_left.get(key, 0)
        if left > 0:
            self._burst_left[key] = left - 1
        elif p > 0.0 and rng.random() < p:
            if policy.burst_len > 1:
                self._burst_left[key] = policy.burst_len - 1
        else:
            return False
        self.events.append(FaultEvent(surface, kind, detail))
        self.telemetry.registry.counter("repro.chaos.faults",
                                        surface=surface, kind=kind).inc()
        self.telemetry.journal.emit("chaos.fault", surface=surface,
                                    kind=kind, detail=detail)
        return True

    @property
    def counts(self) -> Counter:
        """Faults fired so far, keyed by (surface, kind)."""
        return Counter((e.surface, e.kind) for e in self.events)

    # -- transport ------------------------------------------------------------

    def wrap_transport(self, transport: Callable, force: bool = False) -> Callable:
        """Inject datagram loss, reply corruption, and clock skew.

        With a null transport policy the original callable is returned
        unchanged (zero overhead when chaos is off); pass ``force=True``
        to keep the armed wrapper anyway — the overhead benchmark uses
        this to price the always-armed path.
        """
        policy = self.config.transport
        if policy.is_null and not force:
            return transport
        rng = self.rngs.stream("transport")
        skew_s = policy.max_clock_skew_s

        def chaotic_transport(ns_ip, qname, qtype, when):
            if self._fire("transport", "clock_skew", policy.clock_skew_p,
                          rng, policy):
                when = when + rng.uniform(-skew_s, skew_s)
            if self._fire("transport", "drop", policy.drop_p, rng, policy):
                return ServerReply.dropped()
            reply = transport(ns_ip, qname, qtype, when)
            if self._fire("transport", "corrupt", policy.corrupt_p, rng, policy):
                # A damaged response datagram: the resolver sees a
                # parse-level failure, which surfaces as SERVFAIL.
                return ServerReply.servfail(
                    reply.rtt_ms if reply.answered else 5.0)
            return reply

        return chaotic_transport

    # -- record streams -------------------------------------------------------

    def wrap_records(self, values: Iterable[Any], surface: str = "feed",
                     corrupter: Optional[Callable] = None,
                     truncator: Optional[Callable] = None) -> List[Any]:
        """Apply drop/corrupt/truncate/duplicate/reorder faults to a
        record stream; returns the faulted list (input untouched)."""
        policy: FaultPolicy = getattr(self.config, surface)
        values = list(values)
        if policy.is_null:
            return values
        rng = self.rngs.stream(surface)
        out: List[Any] = []
        for value in values:
            if self._fire(surface, "drop", policy.drop_p, rng, policy):
                continue
            if truncator is not None and self._fire(
                    surface, "truncate", policy.truncate_p, rng, policy):
                out.append(truncator(value, rng))
                continue
            if corrupter is not None and self._fire(
                    surface, "corrupt", policy.corrupt_p, rng, policy):
                out.append(corrupter(value, rng))
                continue
            out.append(value)
            if self._fire(surface, "duplicate", policy.duplicate_p, rng, policy):
                out.append(value)
            if len(out) >= 2 and self._fire(
                    surface, "reorder", policy.reorder_p, rng, policy):
                out[-1], out[-2] = out[-2], out[-1]
        return out

    def wrap_feed(self, attacks: Iterable[InferredAttack]) -> List[Any]:
        """Fault the RSDoS feed stream (drops, corruption, truncation,
        duplicates, reordering)."""
        return self.wrap_records(attacks, "feed",
                                 corrupter=corrupt_attack,
                                 truncator=truncate_attack)

    # -- processors -----------------------------------------------------------

    def wrap_processor(self, processor: Processor) -> Processor:
        """Make a stream processor fail transiently with the configured
        probability (retryable :class:`TransientFault`)."""
        policy = self.config.processor
        if policy.is_null:
            return processor
        return _ChaoticProcessor(processor, self, policy,
                                 self.rngs.stream("processor"))

    # -- workers --------------------------------------------------------------

    def worker_crash_hook(self) -> Optional[Callable[[int], bool]]:
        """A per-tick kill switch for the reactive campaign worker.

        Returns ``None`` when the ``worker`` policy is null (the worker
        runs unwrapped, zero overhead). Otherwise returns a callable
        the worker consults once per 5-minute tick: ``True`` means the
        worker dies there (``crash`` fault logged) and must be
        restarted from its last checkpoint.
        """
        policy = self.config.worker
        if policy.is_null:
            return None
        rng = self.rngs.stream("worker")

        def should_crash(tick_ts: int) -> bool:
            return self._fire("worker", "crash", policy.crash_p, rng,
                              policy, f"tick={tick_ts}")

        return should_crash

    # -- the hardened feed path -----------------------------------------------

    def harden_feed(self, attacks: Iterable[InferredAttack]) -> List[InferredAttack]:
        """Fault the feed, then push it through the hardened validation
        job: retries for transient faults, a dead-letter topic for
        poison records, a circuit breaker for failure storms.

        Returns the surviving, schema-valid attacks; poison records land
        in :attr:`dead_letters` (as :class:`DeadLetter` values on the
        job's DLQ topic, with failure metadata).
        """
        faulted = self.wrap_records(list(attacks), "feed",
                                    corrupter=corrupt_attack,
                                    truncator=truncate_attack)
        broker = Broker(metrics=self.telemetry.registry)
        topic = broker.topic("rsdos-feed")
        # Offsets serve as the (monotonic) topic timestamps: chaos may
        # have reordered attack start times, which is the point.
        for i, value in enumerate(faulted):
            topic.produce(i, value)
        validator = FailFastProcessor(
            InferredAttack, check=attack_problem, name="feed-schema")
        job = StreamJob(
            broker, "rsdos-feed", "rsdos-feed-clean",
            [self.wrap_processor(validator)],
            name="feed-validate",
            retry_policy=RetryPolicy(max_retries=3),
            dead_letter="rsdos-feed.dlq",
            circuit_breaker=CircuitBreaker())
        job.drain()
        self.feed_broker = broker
        self.feed_job = job
        self.dead_letters = [r.value for r in broker.topic("rsdos-feed.dlq")]
        survivors: List[InferredAttack] = []
        for record in broker.topic("rsdos-feed-clean"):
            value = record.value
            if isinstance(value, FlaggedRecord):
                # Breaker-open passthrough: the record skipped validation,
                # so validate here before letting it rejoin the stream.
                value = value.value
                if attack_problem(value) is not None:
                    continue
            survivors.append(value)
        return survivors

    # -- the measurement store ------------------------------------------------

    def wrap_store_ingest(self, store) -> None:
        """Damage RTT rows *at ingest*: the crawl's rows reach the store
        with NaN or negative round-trip times, modelling corrupted
        telemetry on the wire. The store's ingest guard must reject
        (count, not aggregate) them — and the study must then flag
        itself degraded even when no aggregate, join record, or event
        was otherwise touched.

        A null ingest policy leaves the store unwrapped (zero overhead,
        byte-identical clean runs).
        """
        policy = self.config.ingest
        if policy.is_null:
            return
        rng = self.rngs.stream("ingest")
        real_add = store.add_fast

        def chaotic_add(nsset_id, ts, status, rtt_ms, dense):
            if self._fire("ingest", "corrupt", policy.corrupt_p, rng,
                          policy, f"nsset={nsset_id} ts={ts}"):
                rtt_ms = float("nan") if rng.random() < 0.5 else -1.0 - rtt_ms
            real_add(nsset_id, ts, status, rtt_ms, dense)

        store.add_fast = chaotic_add

    def corrupt_store(self, store) -> None:
        """Damage a filled :class:`MeasurementStore` in place: whole
        missing OpenINTEL days and corrupt 5-minute buckets."""
        policy = self.config.store
        if policy.is_null:
            return
        rng = self.rngs.stream("store")
        if policy.missing_day_p > 0:
            for key in sorted(store.daily):
                if self._fire("store", "missing_day", policy.missing_day_p,
                              rng, policy, f"nsset={key[0]} day={key[1]}"):
                    del store.daily[key]
        if policy.corrupt_p > 0:
            for key in sorted(store.buckets):
                if self._fire("store", "corrupt", policy.corrupt_p,
                              rng, policy, f"nsset={key[0]} ts={key[1]}"):
                    self._corrupt_aggregate(store.buckets[key], rng)

    @staticmethod
    def _corrupt_aggregate(agg, rng: random.Random) -> None:
        """In-place damage that ``Aggregate.is_valid`` must catch."""
        style = rng.randrange(3)
        if style == 0:
            agg._rtt_partials = [float("nan")]  # NaN crept into a sum column
        elif style == 1:
            agg.n = -agg.n - 1                # integer underflow on a counter
        else:
            agg.ok_n = agg.n + 7              # counter drift: ok > total

    # -- reporting ------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable account of everything injected so far."""
        lines = [f"chaos seed {self.config.seed}: "
                 f"{len(self.events)} faults injected"]
        for (surface, kind), n in sorted(self.counts.items()):
            lines.append(f"  {surface:<10} {kind:<12} x{n}")
        if self.dead_letters:
            lines.append(f"  dead-lettered feed records: {len(self.dead_letters)}")
        if self.feed_job is not None:
            job = self.feed_job
            lines.append(f"  feed-validate job: in={job.n_in} out={job.n_out} "
                         f"dead={job.n_dead} flagged={job.n_flagged} "
                         f"retries={job.retries_used}")
        return "\n".join(lines)
