"""Deterministic fault injection (chaos engineering for the pipeline).

The paper's reactive platform must keep measuring *while the
infrastructure it depends on is under DDoS*; attack-time telemetry is
lossy, duplicated, reordered, and corrupt. This package injects exactly
those faults — reproducibly, from a seed — so the hardened streaming
layer and the degradation paths in :mod:`repro.core` can be exercised
end to end:

>>> from repro import ChaosConfig, WorldConfig, run_study
>>> study = run_study(WorldConfig.tiny(), chaos=ChaosConfig.preset("moderate", seed=1))
>>> print(study.chaos.summary())                    # doctest: +SKIP

See ``docs/robustness.md`` for the fault model and the invariants the
chaos suite asserts.
"""

from repro.chaos.faults import TransientFault, TruncatedRecord
from repro.chaos.injector import FaultEvent, FaultInjector
from repro.chaos.policy import FAULT_KINDS, ChaosConfig, FaultPolicy

__all__ = [
    "ChaosConfig",
    "FaultPolicy",
    "FaultInjector",
    "FaultEvent",
    "TransientFault",
    "TruncatedRecord",
    "FAULT_KINDS",
]
