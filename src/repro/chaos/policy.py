"""Fault policies: what can go wrong, how often, and in what bursts.

A :class:`FaultPolicy` assigns a probability to each fault kind on one
*surface* (the transport, the RSDoS feed, the measurement store, or a
stream processor). A :class:`ChaosConfig` composes one policy per
surface under a single chaos seed, so an entire faulted run is
reproducible from ``(world seed, chaos seed)`` alone.

Fault draws come from the injector's own named RNG streams (see
:mod:`repro.util.rng`), never from the world's: enabling chaos perturbs
*what the pipeline sees*, not how the ground truth evolves.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, fields

__all__ = ["FaultPolicy", "ChaosConfig", "FAULT_KINDS"]

#: Every fault kind an injector can log (surface-dependent subset applies).
FAULT_KINDS = (
    "drop",          # record or reply silently lost
    "corrupt",       # field-level damage (invalid IPs, NaNs, swapped windows)
    "truncate",      # record cut mid-serialization (unparseable remainder)
    "duplicate",     # record delivered twice
    "reorder",       # record swapped with its predecessor
    "exception",     # transient processor failure (retryable)
    "clock_skew",    # timestamp perturbed
    "missing_day",   # a whole OpenINTEL day vanishes for one NSSet
    "crash",         # the worker process dies mid-run (restartable)
)

_PROB_FIELDS = ("drop_p", "corrupt_p", "truncate_p", "duplicate_p",
                "reorder_p", "exception_p", "clock_skew_p", "missing_day_p",
                "crash_p")


@dataclass(frozen=True)
class FaultPolicy:
    """Per-fault probabilities for one surface, plus burst behaviour.

    ``burst_len`` > 1 makes faults arrive in runs: once a fault of some
    kind fires, the next ``burst_len - 1`` opportunities of that kind
    fire too — modelling correlated loss (a congested path drops many
    datagrams in a row, not one in a thousand uniformly).
    """

    drop_p: float = 0.0
    corrupt_p: float = 0.0
    truncate_p: float = 0.0
    duplicate_p: float = 0.0
    reorder_p: float = 0.0
    exception_p: float = 0.0
    clock_skew_p: float = 0.0
    max_clock_skew_s: int = 0
    missing_day_p: float = 0.0
    crash_p: float = 0.0
    burst_len: int = 1

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {p}")
        if self.max_clock_skew_s < 0:
            raise ValueError("max_clock_skew_s must be non-negative")
        if self.clock_skew_p > 0 and self.max_clock_skew_s == 0:
            raise ValueError("clock_skew_p > 0 requires max_clock_skew_s > 0")
        if self.burst_len < 1:
            raise ValueError("burst_len must be >= 1")

    @property
    def is_null(self) -> bool:
        """True when no fault can ever fire (zero-probability everywhere)."""
        return all(getattr(self, name) == 0.0 for name in _PROB_FIELDS)

    def scaled(self, factor: float) -> "FaultPolicy":
        """A copy with every probability multiplied by ``factor`` (capped
        at 1), for dialing a preset up or down."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        changes = {name: min(1.0, getattr(self, name) * factor)
                   for name in _PROB_FIELDS}
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ChaosConfig:
    """One fault policy per surface, under a single chaos seed.

    Surfaces:

    - ``transport``: the resolver-to-nameserver datagram path (drops,
      reply corruption as SERVFAIL, clock skew on the query instant).
    - ``feed``: the RSDoS attack stream entering the join (drops,
      corruption, truncation, duplicates, reordering).
    - ``store``: the measurement store after the crawl (whole missing
      OpenINTEL days, corrupt 5-minute buckets).
    - ``ingest``: measurement rows on their way *into* the store during
      the crawl (RTT values damaged to NaN/negative; the store's ingest
      guard rejects and counts them). Null in every preset — enable it
      explicitly to exercise the rejected-row degradation path.
    - ``processor``: stream processors (transient, retryable exceptions).
    - ``worker``: the reactive campaign worker (``crash_p`` per 5-minute
      tick — the worker dies and is restarted from its last checkpoint).
      Null in every study preset; the reactive platform's chaos-soak and
      ``repro reactive --chaos`` enable it via :meth:`reactive_preset`.
    """

    seed: int = 0
    transport: FaultPolicy = field(default_factory=FaultPolicy)
    feed: FaultPolicy = field(default_factory=FaultPolicy)
    store: FaultPolicy = field(default_factory=FaultPolicy)
    ingest: FaultPolicy = field(default_factory=FaultPolicy)
    processor: FaultPolicy = field(default_factory=FaultPolicy)
    worker: FaultPolicy = field(default_factory=FaultPolicy)

    @property
    def is_null(self) -> bool:
        return (self.transport.is_null and self.feed.is_null
                and self.store.is_null and self.ingest.is_null
                and self.processor.is_null and self.worker.is_null)

    @classmethod
    def preset(cls, level: str = "moderate", seed: int = 0) -> "ChaosConfig":
        """A named fault schedule: ``light``, ``moderate``, or ``heavy``.

        ``moderate`` is calibrated so a study completes with every
        analysis intact but visibly degraded (the chaos suite's
        default); ``heavy`` stresses burst loss and is expected to
        dead-letter a noticeable share of the feed.
        """
        try:
            factor = {"light": 0.4, "moderate": 1.0, "heavy": 2.5}[level]
        except KeyError:
            raise ValueError(f"unknown chaos level: {level!r}") from None
        return cls(
            seed=seed,
            transport=FaultPolicy(drop_p=0.01, corrupt_p=0.005,
                                  clock_skew_p=0.005, max_clock_skew_s=120,
                                  burst_len=3).scaled(factor),
            feed=FaultPolicy(drop_p=0.02, corrupt_p=0.02, truncate_p=0.01,
                             duplicate_p=0.02, reorder_p=0.02).scaled(factor),
            store=FaultPolicy(missing_day_p=0.01,
                              corrupt_p=0.01).scaled(factor),
            processor=FaultPolicy(exception_p=0.02).scaled(factor),
        )

    @classmethod
    def reactive_preset(cls, level: str = "moderate",
                        seed: int = 0) -> "ChaosConfig":
        """A worker-kill-only schedule for the reactive platform.

        Only the ``worker`` surface is armed (``crash_p`` per tick), so
        a chaos-soaked reactive run must produce a probe store
        *bit-identical* to an unfaulted one — kills are recovered
        exactly-once from checkpoints, and no other fault perturbs what
        the probes observe.
        """
        try:
            crash_p = {"light": 0.01, "moderate": 0.03, "heavy": 0.08}[level]
        except KeyError:
            raise ValueError(f"unknown chaos level: {level!r}") from None
        return cls(seed=seed, worker=FaultPolicy(crash_p=crash_p))

    def describe(self) -> str:
        """One line per non-null surface, for logs and CLI output."""
        lines = []
        for surface in ("transport", "feed", "store", "ingest", "processor",
                        "worker"):
            policy: FaultPolicy = getattr(self, surface)
            if policy.is_null:
                continue
            probs = ", ".join(
                f"{name[:-2]}={getattr(policy, name):.3g}"
                for name in _PROB_FIELDS if getattr(policy, name) > 0)
            burst = f", burst={policy.burst_len}" if policy.burst_len > 1 else ""
            lines.append(f"{surface}: {probs}{burst}")
        return "\n".join(lines) if lines else "(no faults enabled)"
