"""The production-rate reactive service: ingest, admit, probe, recover.

This is §4.3.1 rebuilt as an overload-aware campaign pipeline. Attack
triggers flow from the RSDoS feed through a *bounded* topic (capacity
plus a backpressure policy, see :mod:`repro.streaming.topic`) into a
hardened validation job and then the priority
:class:`~repro.reactive.campaigns.CampaignScheduler`. A single
:class:`CampaignWorker` drives everything in 5-minute virtual-time
ticks; the :class:`ReactiveService` owns the worker's lifecycle —
including killing it (chaos) and restoring a fresh one from the last
checkpoint, exactly-once.

Exactly-once recovery
---------------------

The worker checkpoints at tick boundaries (every ``checkpoint_every``
ticks), where the probe event heap is empty. A checkpoint is

- the broker-durable committed offset of the campaigns consumer,
- the validation job's own checkpoint (offsets + sink high-water),
- the results topic's end offset, and
- the full campaign state (waiting/active/finished).

Restore truncates the results and validated topics back to the
checkpointed high-water marks, seeks consumers to committed offsets,
and rebuilds campaign state; replay from there is deterministic (pure
transport, per-campaign derived RNGs, totally-ordered scheduling), so
a killed-and-restored run produces a probe store *bit-identical* to an
uninterrupted one. After checkpointing, the worker ``trim``\\ s the
trigger and validated topics up to the committed offsets — recovery
never replays below a committed offset, and the release is what frees
capacity on a bounded ``block`` trigger topic.

Metric exactness under chaos: the worker's live counters (admitted,
probes, trigger latency observations…) are staged in a
:class:`~repro.obs.registry.BufferedRegistry` and folded into the real
registry only at the tick-checkpoint boundary — the same commit point
the broker offsets use. Work a crash rolls back dies with the buffer
(a fresh worker starts a fresh one), so replay cannot double-count:
faulted and unfaulted runs end with identical ``repro.reactive.*``
series (modulo the kill/restore counters themselves, which only exist
under chaos). Broker transport metrics (``repro.stream.*``) remain
at-least-once, as do run-journal records — journal entries are
labeled with the worker incarnation instead of being deduplicated, so
the journal shows the replays the metrics hide.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Union

from repro.chaos.injector import FaultInjector
from repro.core.reactive import ReactiveProbe, ReactiveStore
from repro.dns.rr import RRType
from repro.obs.journal import NULL_JOURNAL
from repro.obs.registry import buffered
from repro.obs.telemetry import NULL_TELEMETRY, RunTelemetry
from repro.reactive.campaigns import (
    Campaign,
    CampaignScheduler,
    CampaignState,
    plan_campaign,
)
from repro.streaming.processors import (
    FailFastProcessor,
    FilterProcessor,
    RetryPolicy,
    StreamJob,
)
from repro.streaming.topic import Broker
from repro.telescope.feed import RSDoSFeed
from repro.telescope.rsdos import InferredAttack, attack_problem
from repro.util.rng import derive_rng
from repro.util.timeutil import DAY, FIVE_MINUTES, MINUTE, Window, window_start
from repro.world.simulation import World

__all__ = [
    "CampaignWorker",
    "ReactiveReport",
    "ReactiveService",
    "WorkerKilled",
    "replay_transport",
]

#: Topic names of the reactive pipeline (Kafka-style fixed plumbing).
TRIGGER_TOPIC = "rsdos-triggers"
VALIDATED_TOPIC = "dns-triggers"
RESULTS_TOPIC = "probe-results"
#: The campaign consumer's broker group (its committed offsets live
#: under this name, so recovery does not need the consumer object).
CONSUMER_GROUP = "campaigns"


class WorkerKilled(Exception):
    """The chaos worker-crash surface fired: the worker is dead.

    Raised from inside :meth:`CampaignWorker.run_tick` *before* the
    tick commits, so everything the tick did is uncommitted work that
    recovery rolls back and replays.
    """

    def __init__(self, tick_ts: int):
        super().__init__(f"worker killed during tick at {tick_ts}")
        self.tick_ts = tick_ts


def replay_transport(world: World, seed: int = 0):
    """A replay-safe wrapper around the world's transport.

    ``World.transport`` draws reply samples from a shared RNG stream —
    stateful, so replaying a probe after a crash would observe a
    different reply. This wrapper reseeds a private stream per
    ``(ns_ip, qname, ts)`` (the same idiom the sharded crawl uses for
    worker-count invariance), making every probe a pure function of
    what is being probed and when — the property exactly-once recovery
    depends on.
    """
    def transport(ns_ip, qname, qtype, ts):
        rng = derive_rng(seed, "reactive.transport", str(ns_ip), str(qname),
                         str(int(ts)))
        prev = world.set_transport_rng(rng)
        try:
            return world.transport(ns_ip, qname, qtype, ts)
        finally:
            world.set_transport_rng(prev)
    return transport


class CampaignWorker:
    """One pipeline worker: validate triggers, admit, probe, checkpoint.

    The worker advances in 5-minute virtual-time ticks. Each
    :meth:`run_tick`:

    1. positions itself (fast-forwarding over empty windows when idle);
    2. pumps the hardened validation job up to the tick's end;
    3. ingests validated triggers into planned campaigns;
    4. runs admission control, lays out and fires this window's probes;
    5. retires finished campaigns and updates gauges;
    6. consults the chaos crash hook — dying *here* leaves the tick
       uncommitted — then commits the tick and, every
       ``checkpoint_every`` ticks, checkpoints.
    """

    def __init__(self, broker: Broker, world: World, *,
                 probes_per_window: int, trigger_sla_s: int,
                 post_attack_s: int, probe_budget: Optional[int],
                 shed_after_s: int, min_allocation: int,
                 checkpoint_every: int, transport, seed: int,
                 crash_hook: Optional[Callable[[int], bool]] = None,
                 on_checkpoint: Optional[Callable[[Dict], None]] = None,
                 journal=NULL_JOURNAL):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.broker = broker
        self.world = world
        self.transport = transport
        self.seed = seed
        self.probes_per_window = probes_per_window
        self.trigger_sla_s = trigger_sla_s
        self.post_attack_s = post_attack_s
        self.checkpoint_every = checkpoint_every
        self.crash_hook = crash_hook
        self.on_checkpoint = on_checkpoint or (lambda state: None)
        self.journal = journal
        # Live metrics are staged and folded in at checkpoint time, so
        # a crash discards exactly the increments whose work the
        # restore rolls back (see the module docstring).
        self.metrics = buffered(broker.metrics)
        ns_ips = world.directory.nameserver_ips()
        self.trigger_topic = broker.topic(TRIGGER_TOPIC)
        self.job = StreamJob(
            broker, TRIGGER_TOPIC, VALIDATED_TOPIC,
            [FailFastProcessor(InferredAttack, check=attack_problem,
                               name="trigger-schema"),
             FilterProcessor(lambda a: a.victim_ip in ns_ips)],
            name="trigger-validate",
            retry_policy=RetryPolicy(max_retries=2),
            dead_letter=f"{TRIGGER_TOPIC}.dlq")
        self.validated = broker.topic(VALIDATED_TOPIC)
        self.consumer = broker.consumer(VALIDATED_TOPIC, group=CONSUMER_GROUP,
                                        from_committed=True)
        self.results = broker.topic(RESULTS_TOPIC)
        self.campaigns = CampaignScheduler(
            probes_per_window=probes_per_window, probe_budget=probe_budget,
            shed_after_s=shed_after_s, min_allocation=min_allocation,
            on_probe=self._probe, metrics=self.metrics, journal=journal)
        #: end of the last committed tick (the next tick's start).
        self.now_window: Optional[int] = None
        self.ticks = 0
        #: validated triggers whose victim serves no delegated domains.
        self.n_no_domains = 0
        metrics = self.metrics
        self._c_probes = metrics.counter("repro.reactive.probes")
        self._c_ticks = metrics.counter("repro.reactive.ticks")
        self._c_checkpoints = metrics.counter("repro.reactive.checkpoints")
        self._g_queue = metrics.gauge("repro.reactive.queue_depth")
        self._g_feed_lag = metrics.gauge("repro.reactive.feed_lag")
        self._g_active = metrics.gauge("repro.reactive.active_campaigns")
        self._g_waiting = metrics.gauge("repro.reactive.waiting_campaigns")

    # -- positioning ----------------------------------------------------------

    def _next_input_ts(self) -> Optional[int]:
        """Timestamp of the earliest unconsumed record anywhere upstream."""
        pending = self.trigger_topic.read(self.job.consumer.offset, 1)
        ready = self.validated.read(self.consumer.offset, 1)
        candidates = [records[0].ts for records in (pending, ready) if records]
        return min(candidates) if candidates else None

    def _position(self) -> Optional[int]:
        """The next tick's window start, or ``None`` when fully drained.

        While campaigns are in flight the worker ticks contiguously;
        when idle it fast-forwards the virtual clock to the window of
        the next unconsumed trigger instead of grinding through empty
        windows one by one.
        """
        if self.now_window is not None and not self.campaigns.idle():
            return self.now_window
        nxt = self._next_input_ts()
        if nxt is None:
            return None
        w = window_start(nxt)
        if self.now_window is not None and w <= self.now_window:
            return self.now_window
        self.campaigns.run_until(w)
        return w

    # -- the tick -------------------------------------------------------------

    def run_tick(self) -> bool:
        """Advance one 5-minute window; ``False`` when fully drained."""
        w = self._position()
        if w is None:
            return False
        tick_end = w + FIVE_MINUTES
        self.job.step(until_ts=tick_end)
        for record in self.consumer.poll(until_ts=tick_end):
            campaign = plan_campaign(
                self.world, record.value, record.ts,
                probes_per_window=self.probes_per_window,
                trigger_sla_s=self.trigger_sla_s,
                post_attack_s=self.post_attack_s, seed=self.seed)
            if campaign is None:
                self.n_no_domains += 1
                continue
            self.campaigns.submit(campaign)
        self.campaigns.admit_tick(w)
        self.campaigns.schedule_window(w)
        self.campaigns.run_until(tick_end)
        for campaign in self.campaigns.finish_tick(tick_end):
            self.metrics.gauge("repro.reactive.campaign_probes",
                               campaign=campaign.key).set(campaign.n_probes)
        self._g_queue.set(float(len(self.trigger_topic)))
        self._g_feed_lag.set(float(self.job.consumer.lag))
        self._g_active.set(float(len(self.campaigns.active)))
        self._g_waiting.set(float(len(self.campaigns.waitlist)))
        self._c_ticks.inc()
        if self.crash_hook is not None and self.crash_hook(w):
            raise WorkerKilled(w)
        self.now_window = tick_end
        self.ticks += 1
        if self.ticks % self.checkpoint_every == 0:
            self.checkpoint_now()
        return True

    # -- probing --------------------------------------------------------------

    def _probe(self, campaign: Campaign, domain_id: int, ts: int) -> None:
        """Probe every nameserver of a domain once (the NS-exhaustive
        measurement OpenINTEL cannot do, §4.3/§9); results go to the
        results topic, which is what checkpoints roll back."""
        record = self.world.directory[domain_id]
        for ns_ip in record.delegation.nameserver_ips:
            reply = self.transport(ns_ip, record.name, RRType.NS, ts)
            self.results.produce(ts, ReactiveProbe(
                ts=ts, domain_id=domain_id, ns_ip=ns_ip,
                answered=reply.answered,
                rtt_ms=reply.rtt_ms if reply.answered else None))
            campaign.n_probes += 1
            self._c_probes.inc()

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint_now(self) -> Dict:
        """Commit offsets durably, snapshot state, release retention.

        Trimming the trigger/validated topics up to the committed
        offsets is safe (recovery never replays below them) and is what
        frees capacity on a bounded ``block`` trigger topic.
        """
        self.consumer.commit()
        state = {
            "version": 1,
            "now": self.now_window,
            "ticks": self.ticks,
            "n_no_domains": self.n_no_domains,
            "job": self.job.checkpoint(),
            "results_end": self.results.end_offset,
            "campaigns": self.campaigns.checkpoint(),
        }
        self.trigger_topic.trim(self.job.consumer.offset)
        self.validated.trim(self.consumer.offset)
        self._c_checkpoints.inc()
        # The checkpoint is the durability point: everything staged up
        # to here is committed work, so fold it into the real registry.
        self.metrics.flush()
        self.journal.emit("worker.checkpoint", surface="reactive",
                          ticks=self.ticks)
        self.on_checkpoint(state)
        return state

    def restore(self, state: Dict) -> None:
        """Resume a *fresh* worker from a checkpoint over the same broker."""
        if state.get("version") != 1:
            raise ValueError(
                f"unsupported checkpoint version: {state.get('version')}")
        self.job.restore(state["job"])
        self.results.truncate(state["results_end"])
        # The campaigns consumer was already constructed from the
        # broker's committed offset — the half of the checkpoint that
        # survives without the consumer object.
        self.campaigns.restore(state["campaigns"], now=state["now"] or 0)
        self.now_window = state["now"]
        self.ticks = state["ticks"]
        self.n_no_domains = state["n_no_domains"]


@dataclass
class ReactiveReport:
    """What a reactive run did, exactly.

    ``counts`` is exact accounting from final state (not the
    at-least-once live counters): every trigger is attributed to
    exactly one of ``feed_shed`` / ``invalid`` / ``ignored`` /
    ``done`` / ``shed`` — ``unaccounted`` is the difference and must be
    zero (the no-silent-drops invariant).
    """

    campaigns: List[Campaign]
    store: ReactiveStore
    counts: Dict[str, int]
    trigger_latency_p50_s: Optional[int]
    trigger_latency_p99_s: Optional[int]

    def store_digest(self) -> str:
        """SHA-256 over the canonical probe log — the bit-identity
        witness the chaos-soak compares across faulted/unfaulted runs."""
        h = hashlib.sha256()
        for p in self.store.probes:
            h.update(f"{p.ts},{p.domain_id},{p.ns_ip},"
                     f"{int(p.answered)},{p.rtt_ms!r}\n".encode())
        return h.hexdigest()

    def degraded_campaigns(self) -> List[Campaign]:
        return [c for c in self.campaigns if c.degraded]

    def summary(self) -> str:
        """Deterministic run summary — byte-identical between a chaos
        run and a clean one (kills/restores live in
        :meth:`chaos_summary`, not here)."""
        c = self.counts
        p50 = self.trigger_latency_p50_s
        p99 = self.trigger_latency_p99_s
        lines = [
            ("reactive: triggers={triggers} feed_shed={feed_shed} "
             "invalid={invalid} ignored={ignored} done={done} shed={shed} "
             "unaccounted={unaccounted}").format(**c),
            (f"degraded: late={c['late']} throttled={c['throttled']} "
             f"shed={c['shed']}"),
            (f"probes: {c['probes']} over {c['done']} campaigns, "
             f"store={len(self.store)}"),
            ("trigger latency: "
             + (f"p50={p50}s p99={p99}s" if p50 is not None else "n/a")),
            f"store sha256: {self.store_digest()}",
        ]
        return "\n".join(lines)

    def chaos_summary(self) -> str:
        """The non-deterministic half: what chaos did to the worker."""
        c = self.counts
        return (f"chaos: kills={c['kills']} restores={c['restores']} "
                f"checkpoints={c['checkpoints']}")


class ReactiveService:
    """Owns a reactive run end to end, including worker recovery.

    One service instance runs one feed (a fresh broker per
    :meth:`run`). Overload knobs: ``feed_capacity`` + ``backpressure``
    bound the trigger topic; ``probe_budget`` caps concurrent
    domain-probes per window; ``shed_after_s`` bounds how long a
    campaign may wait before it is shed (loudly) instead of triggering
    uselessly late.
    """

    def __init__(self, world: World, *, probes_per_window: int = 50,
                 trigger_sla_s: int = 10 * MINUTE,
                 post_attack_s: int = DAY,
                 probe_budget: Optional[int] = None,
                 shed_after_s: int = 30 * MINUTE,
                 min_allocation: int = 1,
                 feed_capacity: Optional[int] = None,
                 backpressure: str = "block",
                 checkpoint_every: int = 6,
                 seed: Optional[int] = None,
                 transport=None,
                 telemetry: Optional[RunTelemetry] = None):
        self.world = world
        self.probes_per_window = probes_per_window
        self.trigger_sla_s = trigger_sla_s
        self.post_attack_s = post_attack_s
        self.probe_budget = probe_budget
        self.shed_after_s = shed_after_s
        self.min_allocation = min_allocation
        self.feed_capacity = feed_capacity
        self.backpressure = backpressure
        self.checkpoint_every = checkpoint_every
        self.seed = seed if seed is not None else world.config.seed
        self.transport = transport or replay_transport(world, self.seed)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.registry = self.telemetry.registry
        self._c_kills = self.registry.counter("repro.reactive.worker_kills")
        self._c_restores = self.registry.counter("repro.reactive.restores")
        # run state (set up per run())
        self._broker: Optional[Broker] = None
        self._worker: Optional[CampaignWorker] = None
        self._checkpoint: Optional[Dict] = None
        self._crash_hook: Optional[Callable[[int], bool]] = None
        self._max_restores = 0
        self.n_kills = 0
        self.n_restores = 0
        self.n_checkpoints = 0

    # -- worker lifecycle -----------------------------------------------------

    def _new_worker(self) -> CampaignWorker:
        # Journal records from this incarnation carry its number: under
        # chaos the journal is at-least-once (replays re-log), and the
        # label is what tells replayed records apart.
        journal = self.telemetry.journal.bind(
            surface="reactive", incarnation=self.n_restores)
        return CampaignWorker(
            self._broker, self.world,
            probes_per_window=self.probes_per_window,
            trigger_sla_s=self.trigger_sla_s,
            post_attack_s=self.post_attack_s,
            probe_budget=self.probe_budget,
            shed_after_s=self.shed_after_s,
            min_allocation=self.min_allocation,
            checkpoint_every=self.checkpoint_every,
            transport=self.transport, seed=self.seed,
            crash_hook=self._crash_hook,
            on_checkpoint=self._on_checkpoint,
            journal=journal)

    def _on_checkpoint(self, state: Dict) -> None:
        self._checkpoint = state
        self.n_checkpoints += 1

    def _recover(self, tick_ts: Optional[int] = None) -> None:
        """Replace the dead worker with a fresh one restored from the
        last checkpoint (the kill-and-resume half of exactly-once)."""
        journal = self.telemetry.journal
        journal.emit("worker.kill", surface="reactive",
                     incarnation=self.n_restores, tick_ts=tick_ts)
        self.n_kills += 1
        self._c_kills.inc()
        if self.n_restores >= self._max_restores:
            raise RuntimeError(
                f"worker killed {self.n_kills} times; restore cap "
                f"({self._max_restores}) exhausted")
        self.n_restores += 1
        self._c_restores.inc()
        self._worker = self._new_worker()
        self._worker.restore(self._checkpoint)
        journal.emit("worker.restore", surface="reactive",
                     incarnation=self.n_restores,
                     ticks=self._worker.ticks)

    def _pump(self) -> bool:
        """The bounded trigger topic's drain hook (``block`` policy):
        a blocked produce hands control here until space frees."""
        try:
            if self._worker.run_tick():
                return True
        except WorkerKilled as exc:
            self._recover(exc.tick_ts)
            return True
        # Fully drained: any capacity still held is consumed-but-
        # untrimmed retention; a checkpoint commits and releases it.
        before = self._worker.trigger_topic.start_offset
        self._worker.checkpoint_now()
        return self._worker.trigger_topic.start_offset > before

    # -- the run --------------------------------------------------------------

    def run(self, feed: Union[RSDoSFeed, Iterable[InferredAttack]], *,
            window: Optional[Window] = None,
            injector: Optional[FaultInjector] = None,
            max_restores: int = 10_000) -> ReactiveReport:
        """Replay the feed through the full pipeline and return the
        exact report. Pass a chaos ``injector`` with an armed ``worker``
        surface to exercise kill/restore recovery."""
        attacks = feed.attacks if isinstance(feed, RSDoSFeed) else list(feed)
        triggers = sorted(
            (a for a in attacks if window is None
             or (a.start < window.end and window.start < a.end)),
            key=lambda a: (a.start, a.victim_ip))
        self._broker = Broker(metrics=self.registry)
        self._crash_hook = (injector.worker_crash_hook()
                            if injector is not None else None)
        self._max_restores = max_restores
        self.n_kills = self.n_restores = self.n_checkpoints = 0
        trigger_topic = self._broker.topic(
            TRIGGER_TOPIC, capacity=self.feed_capacity,
            backpressure=self.backpressure)
        self._worker = self._new_worker()
        # An immediate checkpoint, so a crash on the very first tick
        # has something to restore from.
        self._worker.checkpoint_now()
        trigger_topic.on_full(self._pump)
        with self.telemetry.tracer.span("reactive.run"):
            with self.telemetry.tracer.span("reactive.ingest"):
                for attack in triggers:
                    trigger_topic.produce(attack.start, attack)
            with self.telemetry.tracer.span("reactive.drain"):
                # One child span per worker incarnation: a clean run
                # has exactly one; every chaos kill ends the current
                # span and a restored worker opens the next.
                draining = True
                while draining:
                    with self.telemetry.tracer.span(
                            "reactive.worker",
                            incarnation=self.n_restores) as span:
                        try:
                            while self._worker.run_tick():
                                pass
                            draining = False
                        except WorkerKilled as exc:
                            span.annotate(killed_at=exc.tick_ts)
                            self._recover(exc.tick_ts)
            # Final checkpoint: commit and release whatever the tail held.
            self._worker.checkpoint_now()
        return self._report(triggers, trigger_topic)

    # -- reporting ------------------------------------------------------------

    def _report(self, triggers: List[InferredAttack],
                trigger_topic) -> ReactiveReport:
        worker = self._worker
        campaigns = worker.campaigns.all_campaigns()
        store = ReactiveStore()
        for record in worker.results.read(0):
            store.add(record.value)
        done = [c for c in campaigns if c.state == CampaignState.DONE]
        shed = [c for c in campaigns if c.state == CampaignState.SHED]
        n_feed_shed = trigger_topic.n_shed
        n_invalid = worker.job.n_dead
        n_filtered = worker.job.n_in - worker.job.n_dead - worker.job.n_out
        n_ignored = n_filtered + worker.n_no_domains
        counts = {
            "triggers": len(triggers),
            "feed_shed": n_feed_shed,
            "invalid": n_invalid,
            "ignored": n_ignored,
            "admitted": len(done),
            "done": len(done),
            "shed": len(shed),
            "late": sum(1 for c in campaigns if "late" in c.reasons),
            "throttled": sum(1 for c in campaigns if "throttled" in c.reasons),
            "probes": sum(c.n_probes for c in campaigns),
            "unaccounted": (len(triggers) - n_feed_shed - n_invalid
                            - n_ignored - len(done) - len(shed)),
            "kills": self.n_kills,
            "restores": self.n_restores,
            "checkpoints": self.n_checkpoints,
        }
        latencies = sorted(c.trigger_latency_s for c in done)
        p50 = _percentile(latencies, 0.50)
        p99 = _percentile(latencies, 0.99)
        # Exact end-of-run metrics (the live counters above are
        # at-least-once under chaos replay; these are not).
        reg = self.registry
        reg.counter("repro.reactive.triggers").inc(counts["triggers"])
        reg.counter("repro.reactive.invalid").inc(n_invalid)
        reg.counter("repro.reactive.ignored").inc(n_ignored)
        reg.counter("repro.reactive.shed", reason="feed").inc(n_feed_shed)
        reg.gauge("repro.reactive.campaigns", state="done").set(len(done))
        reg.gauge("repro.reactive.campaigns", state="shed").set(len(shed))
        reg.gauge("repro.reactive.probe_store_size").set(float(len(store)))
        if p50 is not None:
            reg.gauge("repro.reactive.trigger_latency_p50_s").set(float(p50))
            reg.gauge("repro.reactive.trigger_latency_p99_s").set(float(p99))
        return ReactiveReport(
            campaigns=campaigns, store=store, counts=counts,
            trigger_latency_p50_s=p50, trigger_latency_p99_s=p99)


def _percentile(sorted_values: List[int], q: float) -> Optional[int]:
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]
