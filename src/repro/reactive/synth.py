"""Synthetic production-rate trigger load for soak and bench runs.

The RSDoS feed a real deployment sees is bursty: broad DDoS waves hit
many nameservers at once, separated by quiet stretches.
:func:`synthetic_triggers` reproduces that shape against a simulated
world's *actual* nameserver addresses, so every well-formed trigger
survives the pipeline's victim-is-a-nameserver join and the platform
faces genuine concurrent-campaign pressure — thousands of triggers in
one run, far beyond what the world's own attack schedule generates.

:func:`fast_transport` replaces the world's capacity-model transport
with a pure hash-derived reply sampler: deterministic in
``(ns_ip, qname, ts)`` (so replay after a worker kill is bit-identical)
and cheap enough to probe millions of times in a soak.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dns.server import ServerReply
from repro.telescope.rsdos import InferredAttack
from repro.util.rng import derive_rng, derive_seed
from repro.util.timeutil import FIVE_MINUTES, HOUR, MINUTE, parse_ts
from repro.world.simulation import World

__all__ = ["fast_transport", "synthetic_triggers"]


def synthetic_triggers(world: World, n: int, *, seed: int = 0,
                       start_ts: Optional[int] = None,
                       burst_max: int = 12,
                       gap_max_s: int = 2 * HOUR,
                       duration_min_s: int = 10 * MINUTE,
                       duration_max_s: int = 2 * HOUR,
                       invalid_share: float = 0.0) -> List[InferredAttack]:
    """``n`` bursty attack triggers against the world's nameservers.

    Triggers arrive in waves of up to ``burst_max`` simultaneous
    attacks, with up to ``gap_max_s`` of quiet between waves — the
    overload shape admission control exists for. ``invalid_share`` > 0
    damages that share of records (negative packet counts, inverted
    windows) so the validation job's dead-letter path sees traffic too.
    Returned sorted by ``(start, victim_ip)``; deterministic in
    ``(world, n, seed)``.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0.0 <= invalid_share <= 1.0:
        raise ValueError("invalid_share must be within [0, 1]")
    if burst_max < 1 or gap_max_s < 0:
        raise ValueError("invalid burst/gap configuration")
    if not 0 < duration_min_s <= duration_max_s:
        raise ValueError("invalid duration range")
    ns_ips = sorted(world.directory.nameserver_ips())
    if not ns_ips:
        raise ValueError("world has no nameservers to attack")
    rng = derive_rng(seed, "reactive.synth")
    if start_ts is None:
        start_ts = parse_ts(world.config.start)
    attacks: List[InferredAttack] = []
    wave_ts = int(start_ts)
    while len(attacks) < n:
        burst = min(rng.randint(1, burst_max), n - len(attacks))
        for _ in range(burst):
            victim = rng.choice(ns_ips)
            start = wave_ts + rng.randrange(0, FIVE_MINUTES)
            duration = rng.randint(duration_min_s, duration_max_s)
            attack = InferredAttack(
                victim_ip=victim,
                start=start,
                end=start + duration,
                n_packets=rng.randint(25, 50_000),
                max_ppm=float(rng.randint(10, 5_000)),
                max_slash16=rng.randint(2, 64),
                n_unique_sources=rng.randint(1, 2_000),
                proto=rng.choice((6, 17)),
                first_port=rng.randrange(0, 65_536),
                n_ports=rng.randint(1, 8),
                n_windows=max(1, duration // FIVE_MINUTES))
            if invalid_share > 0.0 and rng.random() < invalid_share:
                attack = _damage(attack, rng)
            attacks.append(attack)
        wave_ts += FIVE_MINUTES + rng.randrange(0, gap_max_s + 1)
    attacks.sort(key=lambda a: (a.start, a.victim_ip))
    return attacks


def _damage(attack: InferredAttack, rng) -> InferredAttack:
    """Break one schema invariant so ``attack_problem`` rejects it."""
    kind = rng.randrange(3)
    if kind == 0:
        attack.n_packets = -attack.n_packets
    elif kind == 1:
        attack.end = attack.start  # empty window
    else:
        attack.max_ppm = float("nan")
    return attack


def fast_transport(seed: int = 0, loss: float = 0.1,
                   base_rtt_ms: float = 5.0, spread_ms: float = 120.0):
    """A pure, hash-derived reply sampler for soak/bench scale.

    Every reply is a function of ``(ns_ip, qname, ts)`` alone: the same
    probe replayed after a worker kill observes the same reply, which
    is what makes recovered probe stores bit-identical. ``loss`` is the
    unconditional drop share; answered probes get an RTT spread over
    ``[base_rtt_ms, base_rtt_ms + spread_ms)``.
    """
    if not 0.0 <= loss <= 1.0:
        raise ValueError("loss must be within [0, 1]")

    def transport(ns_ip, qname, qtype, ts) -> ServerReply:
        unit = derive_seed(seed, "reactive.fast", str(ns_ip), str(qname),
                           str(int(ts))) / 2 ** 64
        if unit < loss:
            return ServerReply.dropped()
        # Reuse the draw's upper range as the RTT unit so one hash
        # covers both decisions.
        rtt_unit = (unit - loss) / (1.0 - loss) if loss < 1.0 else 0.0
        return ServerReply.ok(round(base_rtt_ms + rtt_unit * spread_ms, 3))

    return transport
