"""The production-rate reactive platform (§4.3.1, hardened).

The original :class:`repro.core.reactive.ReactivePlatform` schedules
every triggered campaign unconditionally — correct at study scale,
hopeless at production event rates. This package rebuilds the platform
as an overload-aware pipeline:

- triggers flow through a *bounded* topic with a backpressure policy
  (``block`` / ``shed_oldest`` / ``reject``) and a hardened validation
  job (schema gate + dead-letter queue);
- a priority :class:`CampaignScheduler` applies admission control:
  deadline-ordered probing, a global probe budget, deterministic
  shedding by documented priority (newest attacks, highest-impact
  victims first), with every degradation flagged and counted under
  ``repro.reactive.*`` — never a silent drop;
- the :class:`CampaignWorker` checkpoints at tick boundaries and the
  :class:`ReactiveService` restores a killed worker exactly-once: a
  chaos-soaked run's probe store is bit-identical to an unfaulted one
  (see ``tests/integration/test_reactive_soak.py``).

The legacy platform remains for study-scale use; this package is the
one the ``repro reactive`` CLI and the soak/bench suites exercise.
"""

from repro.reactive.campaigns import (
    Campaign,
    CampaignScheduler,
    CampaignState,
    TRIGGER_LATENCY_BUCKETS_S,
    plan_campaign,
)
from repro.reactive.service import (
    CampaignWorker,
    ReactiveReport,
    ReactiveService,
    WorkerKilled,
    replay_transport,
)
from repro.reactive.synth import fast_transport, synthetic_triggers

__all__ = [
    "Campaign",
    "CampaignScheduler",
    "CampaignState",
    "CampaignWorker",
    "ReactiveReport",
    "ReactiveService",
    "TRIGGER_LATENCY_BUCKETS_S",
    "WorkerKilled",
    "fast_transport",
    "plan_campaign",
    "replay_transport",
    "synthetic_triggers",
]
