"""Campaigns, priorities, and overload-aware admission control.

One :class:`Campaign` is the probing plan for one triggered attack
(§4.3.1: up to 50 related domains every 5 minutes, every nameserver of
each, for the attack plus 24 hours). The :class:`CampaignScheduler`
owns every campaign's lifecycle on top of the discrete-event
:class:`~repro.streaming.scheduler.EventScheduler`:

``waiting`` -> ``active`` -> ``done``, or ``waiting`` -> ``shed``.

Scheduling is *deadline-ordered*: among admitted campaigns, probes are
laid out each window in order of trigger deadline (the paper's
10-minute SLO first), then report time, then victim — a total,
deterministic order.

Admission control and the shed priority
---------------------------------------

The scheduler admits campaigns against a global *probe budget* — the
maximum number of domain-probes all active campaigns may spend per
5-minute window (the operational analog of the paper's ethics bound).
When concurrent campaigns exceed it, the platform degrades *loudly*
and deterministically:

1. Waiting campaigns are considered **newest report first, then
   highest impact** (more related domains), then lowest victim IP /
   earliest attack start as tiebreaks. The newest attacks are the most
   valuable to measure (the onset is the interesting part; a stale
   trigger has already missed its window) and high-impact victims
   affect the most domains — so those win the budget.
2. A campaign that does not fit entirely may be admitted **throttled**
   (a reduced per-window allocation, never below ``min_allocation``),
   flagged ``throttled``.
3. A campaign still waiting ``shed_after_s`` after its report is
   **shed**: state ``shed``, flagged ``shed``, counted under
   ``repro.reactive.shed{reason=overload}`` — exactly like a degraded
   analysis, never a silent drop.
4. A campaign admitted after its trigger deadline is flagged ``late``
   (and counted) rather than pretending the SLO held.

Every transition is deterministic in (feed contents, configuration),
so a killed-and-restored worker replays the same decisions — the basis
of the platform's exactly-once recovery.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.journal import NULL_JOURNAL
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.streaming.scheduler import EventScheduler
from repro.telescope.rsdos import InferredAttack
from repro.util.rng import derive_rng
from repro.util.timeutil import FIVE_MINUTES, MINUTE, window_start

__all__ = [
    "Campaign",
    "CampaignScheduler",
    "CampaignState",
    "TRIGGER_LATENCY_BUCKETS_S",
    "plan_campaign",
]

#: Trigger-latency histogram bounds (seconds): minute-granular up to the
#: 10-minute SLO, then coarser into overload territory.
TRIGGER_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    60.0, 120.0, 180.0, 240.0, 300.0, 360.0, 420.0, 480.0, 540.0, 600.0,
    900.0, 1200.0, 1800.0, 3600.0)


class CampaignState:
    """The campaign lifecycle states (plain strings, checkpointable)."""

    WAITING = "waiting"
    ACTIVE = "active"
    DONE = "done"
    SHED = "shed"


@dataclass
class Campaign:
    """The probing plan and runtime state for one triggered attack."""

    attack: InferredAttack
    #: the (sampled, sorted) related domains this campaign probes.
    domain_ids: Tuple[int, ...]
    #: how many domains the victim serves in total (pre-sampling) — the
    #: admission priority's notion of impact.
    impact: int
    #: when the feed reported the attack (the record's topic timestamp).
    report_ts: int
    #: report_ts + the trigger SLO: starting after this is *late*.
    deadline: int
    #: probing stops here (attack end + the 24 h tail).
    ends_at: int
    state: str = CampaignState.WAITING
    #: domain-probes per 5-minute window granted at admission.
    allocation: int = 0
    triggered_at: Optional[int] = None
    shed_at: Optional[int] = None
    #: round-robin position over ``domain_ids`` across windows.
    cursor: int = 0
    #: nameserver probes recorded so far.
    n_probes: int = 0
    #: degradation flags, in the order they were applied.
    reasons: Tuple[str, ...] = ()

    @property
    def victim_ip(self) -> int:
        return self.attack.victim_ip

    @property
    def key(self) -> str:
        """Stable identity: one victim can be attacked repeatedly."""
        return f"{self.attack.victim_ip}@{self.attack.start}"

    @property
    def degraded(self) -> bool:
        return bool(self.reasons)

    @property
    def trigger_latency_s(self) -> Optional[int]:
        """Report-to-trigger delay (``None`` until admitted)."""
        if self.triggered_at is None:
            return None
        return self.triggered_at - self.report_ts

    @property
    def first_window(self) -> int:
        """First 5-minute probing window once triggered."""
        assert self.triggered_at is not None
        return window_start(self.triggered_at) + FIVE_MINUTES

    def flag(self, reason: str) -> None:
        """Mark the campaign degraded (idempotent per reason)."""
        if reason not in self.reasons:
            self.reasons = self.reasons + (reason,)

    # -- checkpoint serialization --------------------------------------------

    def to_dict(self) -> Dict:
        state = asdict(self)
        state["attack"] = asdict(self.attack)
        state["domain_ids"] = list(self.domain_ids)
        state["reasons"] = list(self.reasons)
        return state

    @classmethod
    def from_dict(cls, state: Dict) -> "Campaign":
        state = dict(state)
        state["attack"] = InferredAttack(**state["attack"])
        state["domain_ids"] = tuple(state["domain_ids"])
        state["reasons"] = tuple(state["reasons"])
        return cls(**state)


def plan_campaign(world, attack: InferredAttack, report_ts: int, *,
                  probes_per_window: int, trigger_sla_s: int,
                  post_attack_s: int, seed: int) -> Optional[Campaign]:
    """Plan one campaign for one reported attack (``None`` when the
    victim serves no delegated domains).

    Domain sampling draws from a per-campaign RNG stream derived from
    ``(seed, victim, start)``, so the plan is identical no matter how
    many campaigns were planned before it — a restarted worker replans
    the exact same campaign.
    """
    domains = sorted(world.directory.domains_of_ip(attack.victim_ip))
    if not domains:
        return None
    impact = len(domains)
    if impact > probes_per_window:
        rng = derive_rng(seed, "reactive.sample", str(attack.victim_ip),
                         str(attack.start))
        domains = sorted(rng.sample(domains, probes_per_window))
    return Campaign(
        attack=attack,
        domain_ids=tuple(domains),
        impact=impact,
        report_ts=report_ts,
        deadline=report_ts + trigger_sla_s,
        ends_at=attack.end + post_attack_s)


def _shed_priority(campaign: Campaign) -> Tuple[int, int, int, int]:
    """Admission order under overload: newest report first, then
    highest impact, then (victim, start) as the deterministic tiebreak.
    Whatever doesn't fit the budget in this order waits — and is shed
    once stale."""
    return (-campaign.report_ts, -campaign.impact,
            campaign.attack.victim_ip, campaign.attack.start)


def _deadline_order(campaign: Campaign) -> Tuple[int, int, int, int]:
    """Probe layout order among active campaigns: trigger deadline
    first (the 10-minute SLO), then report time, then (victim, start)."""
    return (campaign.deadline, campaign.report_ts,
            campaign.attack.victim_ip, campaign.attack.start)


class CampaignScheduler:
    """Deadline-ordered, budget-capped campaign execution.

    Built on :class:`EventScheduler`: each 5-minute tick, the owner
    calls :meth:`admit_tick` (admission control + shedding),
    :meth:`schedule_window` (lay out this window's probes), then
    :meth:`run_until` (fire them in virtual time) and
    :meth:`finish_tick`. All state is checkpointable at tick
    boundaries (the event heap is empty there), so a killed worker
    restores mid-run with nothing lost.
    """

    def __init__(self, *, probes_per_window: int = 50,
                 probe_budget: Optional[int] = None,
                 shed_after_s: int = 30 * MINUTE,
                 min_allocation: int = 1,
                 on_probe: Optional[Callable[[Campaign, int, int], None]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 journal=NULL_JOURNAL):
        if probes_per_window < 1:
            raise ValueError("probes_per_window must be >= 1")
        if probe_budget is not None and probe_budget < 1:
            raise ValueError("probe_budget must be >= 1")
        if not 1 <= min_allocation <= probes_per_window:
            raise ValueError(
                "min_allocation must be within [1, probes_per_window]")
        if shed_after_s < 0:
            raise ValueError("shed_after_s must be non-negative")
        self.probes_per_window = probes_per_window
        self.probe_budget = probe_budget
        self.shed_after_s = shed_after_s
        self.min_allocation = min_allocation
        self.on_probe = on_probe or (lambda campaign, domain_id, ts: None)
        self.scheduler = EventScheduler()
        self.waitlist: List[Campaign] = []
        self.active: List[Campaign] = []
        #: done + shed campaigns, in completion order.
        self.finished: List[Campaign] = []
        #: sum of active allocations (domain-probes per window in use).
        self.in_flight = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self.metrics = metrics
        self.journal = journal
        self._c_admitted = metrics.counter("repro.reactive.admitted")
        self._c_shed = metrics.counter("repro.reactive.shed",
                                       reason="overload")
        self._c_late = metrics.counter("repro.reactive.late")
        self._c_throttled = metrics.counter("repro.reactive.throttled")
        self._h_latency = metrics.histogram(
            "repro.reactive.trigger_latency_s",
            buckets=TRIGGER_LATENCY_BUCKETS_S)

    # -- intake ---------------------------------------------------------------

    def submit(self, campaign: Campaign) -> None:
        """Queue a planned campaign for admission."""
        campaign.state = CampaignState.WAITING
        self.waitlist.append(campaign)

    # -- per-tick lifecycle ---------------------------------------------------

    def admit_tick(self, w: int) -> None:
        """Shed stale waiters, then admit by priority within budget."""
        kept: List[Campaign] = []
        for campaign in self.waitlist:
            if w - campaign.report_ts > self.shed_after_s:
                self._shed(campaign, w)
            else:
                kept.append(campaign)
        self.waitlist = kept
        still_waiting: List[Campaign] = []
        for campaign in sorted(self.waitlist, key=_shed_priority):
            full = min(len(campaign.domain_ids), self.probes_per_window)
            if self.probe_budget is None:
                grant = full
            else:
                remaining = self.probe_budget - self.in_flight
                grant = min(full, remaining)
                if grant < min(full, self.min_allocation):
                    still_waiting.append(campaign)
                    continue
            self._admit(campaign, w, grant, full)
        self.waitlist = sorted(still_waiting, key=_shed_priority)

    def _admit(self, campaign: Campaign, w: int, grant: int,
               full: int) -> None:
        campaign.state = CampaignState.ACTIVE
        campaign.allocation = grant
        campaign.triggered_at = max(campaign.deadline, w)
        if campaign.triggered_at > campaign.deadline:
            campaign.flag("late")
            self._c_late.inc()
        if grant < full:
            campaign.flag("throttled")
            self._c_throttled.inc()
        self.in_flight += grant
        self.active.append(campaign)
        self._c_admitted.inc()
        self._h_latency.observe(float(campaign.trigger_latency_s))
        self.journal.emit("reactive.admit", campaign=campaign.key,
                          allocation=grant, full=full,
                          latency_s=campaign.trigger_latency_s,
                          late="late" in campaign.reasons,
                          throttled="throttled" in campaign.reasons)

    def _shed(self, campaign: Campaign, w: int) -> None:
        campaign.state = CampaignState.SHED
        campaign.shed_at = w
        campaign.flag("shed")
        self.finished.append(campaign)
        self._c_shed.inc()
        self.journal.emit("reactive.shed", campaign=campaign.key,
                          waited_s=w - campaign.report_ts)

    def schedule_window(self, w: int) -> int:
        """Lay out this window's probes for every active campaign, in
        deadline order; returns the number of probe slots scheduled.

        Each campaign spends its allocation spread evenly across the
        window (the paper's ~one-query-every-6-seconds ethics bound),
        round-robining over its domain set across windows.
        """
        scheduled = 0
        for campaign in sorted(self.active, key=_deadline_order):
            if not campaign.first_window <= w < campaign.ends_at:
                continue
            n = len(campaign.domain_ids)
            spacing = FIVE_MINUTES // campaign.allocation
            base = campaign.cursor
            for i in range(campaign.allocation):
                domain_id = campaign.domain_ids[(base + i) % n]
                self.scheduler.at(
                    w + i * spacing,
                    self._probe_action(campaign, domain_id))
                scheduled += 1
            campaign.cursor += campaign.allocation
        return scheduled

    def _probe_action(self, campaign: Campaign, domain_id: int):
        def action(ts: int) -> None:
            self.on_probe(campaign, domain_id, ts)
        return action

    def run_until(self, ts: int) -> int:
        """Fire everything scheduled before ``ts`` (virtual time)."""
        return self.scheduler.run_until(ts)

    def finish_tick(self, tick_end: int) -> List[Campaign]:
        """Retire campaigns whose probing ended; frees their budget."""
        done: List[Campaign] = []
        remaining: List[Campaign] = []
        for campaign in self.active:
            if campaign.ends_at <= tick_end:
                campaign.state = CampaignState.DONE
                self.in_flight -= campaign.allocation
                self.finished.append(campaign)
                done.append(campaign)
            else:
                remaining.append(campaign)
        self.active = remaining
        return done

    def idle(self) -> bool:
        """No campaigns anywhere and nothing left on the event heap."""
        return (not self.active and not self.waitlist
                and self.scheduler.pending == 0)

    def all_campaigns(self) -> List[Campaign]:
        """Every campaign ever submitted, in a deterministic order."""
        return sorted(
            self.finished + self.active + self.waitlist,
            key=lambda c: (c.report_ts, c.attack.victim_ip, c.attack.start))

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self) -> Dict:
        """Tick-boundary snapshot (the event heap is empty there)."""
        assert self.scheduler.pending == 0, \
            "checkpoint only at tick boundaries"
        return {
            "waitlist": [c.to_dict() for c in self.waitlist],
            "active": [c.to_dict() for c in self.active],
            "finished": [c.to_dict() for c in self.finished],
            "in_flight": self.in_flight,
        }

    def restore(self, state: Dict, now: int) -> None:
        """Rebuild campaign state from a checkpoint; the event heap
        restarts empty at ``now`` (probes are re-laid-out per window)."""
        self.waitlist = [Campaign.from_dict(c) for c in state["waitlist"]]
        self.active = [Campaign.from_dict(c) for c in state["active"]]
        self.finished = [Campaign.from_dict(c) for c in state["finished"]]
        self.in_flight = state["in_flight"]
        self.scheduler = EventScheduler(start_ts=now)
