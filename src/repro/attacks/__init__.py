"""DDoS attack modeling: spoofing classes, vectors, and schedule generation.

The telescope only ever sees the *randomly spoofed* portion of the
attack landscape (paper §2.1/§4.3: ~60% of attacks per Jonker et al.);
the model therefore distinguishes spoofing types per vector, and the
world applies full load while the telescope samples backscatter only
from randomly-spoofed vectors.
"""

from repro.attacks.model import (
    AmplificationProfile,
    Attack,
    AttackVector,
    Campaign,
    ImpairmentProfile,
    Spoofing,
)
from repro.attacks.generator import (
    AttackMix,
    AttackScheduleConfig,
    HotTarget,
    TargetCatalog,
    generate_schedule,
)
from repro.attacks.packs import (
    DEFAULT_PACK,
    ScenarioPack,
    TelescopeSignature,
    UnknownPackError,
    VolumetricPack,
    available_packs,
    get_pack,
    register_pack,
    validate_pack_name,
)

__all__ = [
    "AmplificationProfile",
    "Attack",
    "AttackVector",
    "Campaign",
    "ImpairmentProfile",
    "Spoofing",
    "AttackMix",
    "AttackScheduleConfig",
    "HotTarget",
    "TargetCatalog",
    "generate_schedule",
    "DEFAULT_PACK",
    "ScenarioPack",
    "TelescopeSignature",
    "UnknownPackError",
    "VolumetricPack",
    "available_packs",
    "get_pack",
    "register_pack",
    "validate_pack_name",
]
